"""Command-line interface: list and run the paper's experiments.

Usage::

    repro list
    repro run fig4 [--fast] [--out report.txt] [--workers 4] [--no-cache]
    repro run all [--fast] [--sanitize]
    repro lint [paths ...] [--format json] [--baseline FILE]
    repro cache info
    repro cache clear

``--workers`` and ``--no-cache`` configure the shared execution runtime
(:mod:`repro.runtime`) by exporting ``REPRO_WORKERS`` /
``REPRO_NO_CACHE`` for the process, so every sweep the experiment
touches picks them up.  ``--sanitize`` (or ``REPRO_SANITIZE=1``)
switches on the numerical sanitizer of :mod:`repro.sanitize` for the
run, and ``repro lint`` is the static analysis front end of
:mod:`repro.analysis`.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro import sanitize
from repro.analysis.cli import build_parser as build_lint_parser
from repro.analysis.cli import main as lint_main
from repro.reporting.experiments import EXPERIMENTS, run_experiment
from repro.runtime import NO_CACHE_ENV, WORKERS_ENV, ArtifactCache, cache_root


def _cmd_list(_args) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key in EXPERIMENTS:
        description, _ = EXPERIMENTS[key]
        print(f"{key.ljust(width)}  {description}")
    return 0


def _apply_runtime_flags(args) -> None:
    """Export runtime knobs so every sweep layer sees them."""
    if getattr(args, "workers", None) is not None:
        os.environ[WORKERS_ENV] = str(args.workers)
    if getattr(args, "no_cache", False):
        os.environ[NO_CACHE_ENV] = "1"
    if getattr(args, "sanitize", False):
        sanitize.enable()


def _cmd_run(args) -> int:
    _apply_runtime_flags(args)
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    reports = []
    for target in targets:
        if target not in EXPERIMENTS:
            print(f"unknown experiment {target!r}; try 'repro list'",
                  file=sys.stderr)
            return 2
        start = time.perf_counter()
        report, _ = run_experiment(target, fast=args.fast)
        elapsed = time.perf_counter() - start
        banner = f"=== {target} ({elapsed:.1f} s) ==="
        reports.append(banner + "\n" + report)
        print(banner)
        print(report)
        print()
    if args.out:
        Path(args.out).write_text("\n\n".join(reports) + "\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_lint(args) -> int:
    return lint_main(args=args)


def _cmd_cache(args) -> int:
    store = ArtifactCache("tables")
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached table(s) from {store.directory}")
        return 0
    keys = store.keys()
    size_mb = store.size_bytes() / 1e6
    print(f"cache root:  {cache_root()}")
    print(f"enabled:     {store.enabled}")
    print(f"tables:      {len(keys)} artifact(s), {size_mb:.2f} MB")
    for key in keys:
        print(f"  {key}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Technology exploration for graphene "
                    "nanoribbon FETs' (DAC 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment", help="experiment id or 'all'")
    p_run.add_argument("--fast", action="store_true",
                       help="reduced resolution for a quick pass")
    p_run.add_argument("--out", help="also write the report to a file")
    p_run.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes for every sweep "
                            f"(default: ${WORKERS_ENV} or serial)")
    p_run.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk device-table cache")
    p_run.add_argument("--sanitize", action="store_true",
                       help="enable the numerical sanitizer "
                            "(equivalent to REPRO_SANITIZE=1)")
    p_run.set_defaults(func=_cmd_run)

    p_lint = sub.add_parser(
        "lint", parents=[build_lint_parser()], add_help=False,
        help="physics-aware static analysis of the repro tree")
    p_lint.set_defaults(func=_cmd_lint)

    p_cache = sub.add_parser("cache",
                             help="inspect or clear the on-disk cache")
    p_cache.add_argument("action", choices=("info", "clear"),
                         help="'info' lists artifacts, 'clear' deletes them")
    p_cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
