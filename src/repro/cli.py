"""Command-line interface: list and run the paper's experiments.

Usage::

    repro list
    repro run fig4 [--fast] [--out report.txt] [--workers 4] [--no-cache]
    repro run all [--fast] [--sanitize] [--trace]
    repro run fig4 [--strict] [--checkpoint N] [--resume] [--faults SPEC]
    repro run fig4 [--engine modespace] [--backend numba]
    repro lint [paths ...] [--format json] [--baseline FILE]
    repro characterize [--check|--update|--docs] [--only fig2,table1] [--fast]
    repro cache info
    repro cache clear
    repro trace summarize manifest.json [--format text|json] [--top N]

``--workers`` and ``--no-cache`` configure the shared execution runtime
(:mod:`repro.runtime`) by exporting ``REPRO_WORKERS`` /
``REPRO_NO_CACHE`` for the process, so every sweep the experiment
touches picks them up.  ``--sanitize`` (or ``REPRO_SANITIZE=1``)
switches on the numerical sanitizer of :mod:`repro.sanitize` for the
run, ``--trace`` (or ``REPRO_TRACE=1``) switches on the observability
layer of :mod:`repro.obs` and writes a JSON run manifest next to the
report, and ``repro lint`` is the static analysis front end of
:mod:`repro.analysis`.  ``--strict`` / ``--checkpoint N`` / ``--resume``
/ ``--faults SPEC`` configure the resilience layer of
:mod:`repro.runtime.resilience` (see ``docs/robustness.md``) by
exporting ``REPRO_STRICT`` / ``REPRO_CHECKPOINT`` / ``REPRO_RESUME`` /
``REPRO_FAULTS``.  ``--engine`` selects the transport engine behind
the device sweeps (:mod:`repro.device.engines`, exporting
``REPRO_ENGINE``) and ``--backend`` the array backend behind the NEGF
kernels (:mod:`repro.runtime.backend`, exporting ``REPRO_BACKEND``).
``--adaptive`` / ``--refine-levels`` / ``--mc-target-ci`` switch the
fig3/fig6 experiments onto the adaptive engines
(:mod:`repro.exploration.adaptive`,
:mod:`repro.variability.adaptive`; exporting ``REPRO_ADAPTIVE`` /
``REPRO_REFINE_LEVELS`` / ``REPRO_MC_TARGET_CI`` — see
``docs/performance.md``).  ``--scheduler`` / ``--hosts`` select the
dispatch seam (:mod:`repro.runtime.distributed`; exporting
``REPRO_SCHEDULER`` / ``REPRO_HOSTS`` — see ``docs/robustness.md``).
``repro trace summarize`` renders a manifest as a human-readable
summary (or a condensed JSON document).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro import obs, sanitize
from repro.analysis.cli import build_parser as build_lint_parser
from repro.analysis.cli import main as lint_main
from repro.characterize.cli import build_parser as build_characterize_parser
from repro.characterize.cli import main as characterize_main
from repro.device.engines import ENGINE_ENV, ENGINES
from repro.exploration.adaptive import ADAPTIVE_ENV, REFINE_LEVELS_ENV
from repro.runtime.backend import BACKEND_ENV, BACKEND_NAMES
from repro.reporting.experiments import EXPERIMENTS, run_experiment
from repro.variability.adaptive import MC_TARGET_CI_ENV
from repro.runtime import (
    CHECKPOINT_ENV,
    FAULTS_ENV,
    HOSTS_ENV,
    NO_CACHE_ENV,
    RESUME_ENV,
    SCHEDULER_ENV,
    STRICT_ENV,
    WORKERS_ENV,
    ArtifactCache,
    cache_root,
)


def _cmd_list(_args) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key in EXPERIMENTS:
        description, _ = EXPERIMENTS[key]
        print(f"{key.ljust(width)}  {description}")
    return 0


def _apply_runtime_flags(args) -> None:
    """Export runtime knobs so every sweep layer sees them."""
    if getattr(args, "workers", None) is not None:
        os.environ[WORKERS_ENV] = str(args.workers)
    if getattr(args, "no_cache", False):
        os.environ[NO_CACHE_ENV] = "1"
    if getattr(args, "strict", False):
        os.environ[STRICT_ENV] = "1"
    if getattr(args, "checkpoint", None) is not None:
        os.environ[CHECKPOINT_ENV] = str(args.checkpoint)
    if getattr(args, "resume", False):
        os.environ[RESUME_ENV] = "1"
    if getattr(args, "faults", None):
        os.environ[FAULTS_ENV] = str(args.faults)
        from repro.runtime import faults as _faults
        _faults.enable(str(args.faults))
    if getattr(args, "adaptive", False):
        os.environ[ADAPTIVE_ENV] = "1"
    if getattr(args, "refine_levels", None) is not None:
        os.environ[REFINE_LEVELS_ENV] = str(args.refine_levels)
    if getattr(args, "mc_target_ci", None) is not None:
        os.environ[MC_TARGET_CI_ENV] = str(args.mc_target_ci)
    if getattr(args, "scheduler", None):
        os.environ[SCHEDULER_ENV] = str(args.scheduler)
    if getattr(args, "hosts", None):
        os.environ[HOSTS_ENV] = str(args.hosts)
    if getattr(args, "engine", None):
        os.environ[ENGINE_ENV] = str(args.engine)
    if getattr(args, "backend", None):
        os.environ[BACKEND_ENV] = str(args.backend)
    if getattr(args, "sanitize", False):
        sanitize.enable()
    if getattr(args, "trace", False):
        obs.enable()


def _manifest_path(out: str | None) -> Path:
    """Manifest lands next to the report (``<out>.manifest.json``)."""
    if out:
        return Path(str(out) + ".manifest.json")
    return Path("repro-run.manifest.json")


def _cmd_run(args) -> int:
    _apply_runtime_flags(args)
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    reports = []
    if obs.ACTIVE:
        obs.reset()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    for target in targets:
        if target not in EXPERIMENTS:
            print(f"unknown experiment {target!r}; try 'repro list'",
                  file=sys.stderr)
            return 2
        start = time.perf_counter()
        with obs.span(f"cli.run.{target}", fast=args.fast):
            report, _ = run_experiment(target, fast=args.fast)
        elapsed = time.perf_counter() - start
        banner = f"=== {target} ({elapsed:.1f} s) ==="
        reports.append(banner + "\n" + report)
        print(banner)
        print(report)
        print()
    if args.out:
        Path(args.out).write_text("\n\n".join(reports) + "\n")
        print(f"wrote {args.out}")
    if obs.ACTIVE:
        manifest = obs.build_manifest(
            label="repro run " + " ".join(targets),
            config={"experiments": targets, "fast": bool(args.fast)},
            wall_s=time.perf_counter() - wall_start,
            cpu_s=time.process_time() - cpu_start)
        path = obs.write_manifest(manifest, _manifest_path(args.out))
        print(f"wrote {path}")
    return 0


def _cmd_lint(args) -> int:
    return lint_main(args=args)


def _cmd_characterize(args) -> int:
    return characterize_main(args=args)


def _cmd_cache(args) -> int:
    store = ArtifactCache("tables")
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached table(s) from {store.directory}")
        return 0
    keys = store.keys()
    size_mb = store.size_bytes() / 1e6
    print(f"cache root:  {cache_root()}")
    print(f"enabled:     {store.enabled}")
    print(f"tables:      {len(keys)} artifact(s), {size_mb:.2f} MB")
    for key in keys:
        print(f"  {key}")
    return 0


def _cmd_trace(args) -> int:
    if args.action != "summarize":  # argparse restricts; defensive
        print(f"unknown trace action {args.action!r}", file=sys.stderr)
        return 2
    try:
        manifest = obs.load_manifest(args.manifest)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot read manifest: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(obs.summarize_json(manifest, top=args.top),
                         indent=2))
    else:
        print(obs.summarize_text(manifest, top=args.top), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Technology exploration for graphene "
                    "nanoribbon FETs' (DAC 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment", help="experiment id or 'all'")
    p_run.add_argument("--fast", action="store_true",
                       help="reduced resolution for a quick pass")
    p_run.add_argument("--out", help="also write the report to a file")
    p_run.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes for every sweep "
                            f"(default: ${WORKERS_ENV} or serial)")
    p_run.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk device-table cache")
    p_run.add_argument("--sanitize", action="store_true",
                       help="enable the numerical sanitizer "
                            "(equivalent to REPRO_SANITIZE=1)")
    p_run.add_argument("--strict", action="store_true",
                       help="raise on the first non-converged sweep cell "
                            "instead of quarantining it "
                            "(equivalent to REPRO_STRICT=1)")
    p_run.add_argument("--checkpoint", type=int, default=None, metavar="N",
                       help="write an atomic sweep checkpoint every N "
                            "completed rows/samples "
                            "(equivalent to REPRO_CHECKPOINT=N)")
    p_run.add_argument("--resume", action="store_true",
                       help="resume sweeps from existing checkpoints, "
                            "recomputing only missing cells "
                            "(equivalent to REPRO_RESUME=1)")
    p_run.add_argument("--faults", default=None, metavar="SPEC",
                       help="deterministic fault injection spec, e.g. "
                            "'scf@3,17x2;worker@1' "
                            "(equivalent to REPRO_FAULTS=SPEC; testing "
                            "aid — see docs/robustness.md)")
    p_run.add_argument("--adaptive", action="store_true",
                       help="adaptive engines: contour-guided V_DD-V_T "
                            "refinement for fig3, variance-adaptive "
                            "Monte Carlo for fig6 "
                            "(equivalent to REPRO_ADAPTIVE=1)")
    p_run.add_argument("--refine-levels", type=int, default=None,
                       metavar="L",
                       help="coarse stride 2**L for --adaptive "
                            "refinement (default: auto; equivalent to "
                            "REPRO_REFINE_LEVELS=L)")
    p_run.add_argument("--mc-target-ci", type=float, default=None,
                       metavar="CI",
                       help="relative bootstrap CI half-width at which "
                            "the adaptive Monte Carlo stops (default "
                            "0.05 with --adaptive; equivalent to "
                            "REPRO_MC_TARGET_CI=CI)")
    p_run.add_argument("--scheduler", choices=("local", "distributed"),
                       default=None,
                       help="dispatch seam behind every sweep wave "
                            "(equivalent to REPRO_SCHEDULER=NAME; "
                            "default local)")
    p_run.add_argument("--hosts", default=None, metavar="SPEC",
                       help="agent host spec for --scheduler distributed, "
                            "e.g. 'local*3' or 'ssh a@box;ssh b@box' "
                            "(equivalent to REPRO_HOSTS=SPEC)")
    p_run.add_argument("--engine", choices=ENGINES, default=None,
                       help="transport engine for device sweeps "
                            "(equivalent to REPRO_ENGINE=NAME; default "
                            "semianalytic)")
    p_run.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                       help="array backend for the NEGF kernels "
                            "(equivalent to REPRO_BACKEND=NAME; default "
                            "numpy)")
    p_run.add_argument("--trace", action="store_true",
                       help="enable tracing/metrics and write a JSON run "
                            "manifest (equivalent to REPRO_TRACE=1)")
    p_run.set_defaults(func=_cmd_run)

    p_lint = sub.add_parser(
        "lint", parents=[build_lint_parser()], add_help=False,
        help="physics-aware static analysis of the repro tree")
    p_lint.set_defaults(func=_cmd_lint)

    p_char = sub.add_parser(
        "characterize", parents=[build_characterize_parser()],
        add_help=False,
        help="golden-regression harness over all paper experiments")
    p_char.set_defaults(func=_cmd_characterize)

    p_cache = sub.add_parser("cache",
                             help="inspect or clear the on-disk cache")
    p_cache.add_argument("action", choices=("info", "clear"),
                         help="'info' lists artifacts, 'clear' deletes them")
    p_cache.set_defaults(func=_cmd_cache)

    p_trace = sub.add_parser("trace",
                             help="inspect run manifests written by --trace")
    p_trace.add_argument("action", choices=("summarize",),
                         help="'summarize' renders a manifest")
    p_trace.add_argument("manifest", help="path to a *.manifest.json file")
    p_trace.add_argument("--format", choices=("text", "json"),
                         default="text", help="output format")
    p_trace.add_argument("--top", type=int, default=obs.DEFAULT_TOP_SPANS,
                         metavar="N", help="spans to list in the ranking")
    p_trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
