"""Command-line interface: list and run the paper's experiments.

Usage::

    repro list
    repro run fig4 [--fast] [--out report.txt]
    repro run all [--fast]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.reporting.experiments import EXPERIMENTS, run_experiment


def _cmd_list(_args) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key in EXPERIMENTS:
        description, _ = EXPERIMENTS[key]
        print(f"{key.ljust(width)}  {description}")
    return 0


def _cmd_run(args) -> int:
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    reports = []
    for target in targets:
        if target not in EXPERIMENTS:
            print(f"unknown experiment {target!r}; try 'repro list'",
                  file=sys.stderr)
            return 2
        start = time.time()
        report, _ = run_experiment(target, fast=args.fast)
        elapsed = time.time() - start
        banner = f"=== {target} ({elapsed:.1f} s) ==="
        reports.append(banner + "\n" + report)
        print(banner)
        print(report)
        print()
    if args.out:
        Path(args.out).write_text("\n\n".join(reports) + "\n")
        print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Technology exploration for graphene "
                    "nanoribbon FETs' (DAC 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment", help="experiment id or 'all'")
    p_run.add_argument("--fast", action="store_true",
                       help="reduced resolution for a quick pass")
    p_run.add_argument("--out", help="also write the report to a file")
    p_run.set_defaults(func=_cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
