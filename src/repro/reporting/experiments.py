"""Runnable experiment registry: one entry per paper table/figure.

Each ``run_*`` function regenerates one artifact of the paper's
evaluation and returns ``(report_text, data)`` where ``data`` is a
dictionary of raw results (figure series, metric values) suitable for
asserting against in tests and benchmarks.  The CLI (``python -m
repro.cli run <id>``) and the benchmark harness both dispatch through
:data:`EXPERIMENTS`.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.circuit.inverter import inverter_snm
from repro.constants import ROOM_TEMPERATURE_K
from repro.device.geometry import ChargeImpurity, GNRFETGeometry
from repro.exploration.adaptive import adaptive_enabled, refine_vdd_vt
from repro.device.iv import sweep_iv
from repro.device.negf_device import NEGFDevice
from repro.device.vt_extraction import extract_vt_linear
from repro.exploration.compare_cmos import table1_comparison
from repro.exploration.contours import contour_lines
from repro.exploration.operating_point import (
    min_edp_at_frequency,
    min_edp_at_frequency_and_snm,
    min_edp_point,
)
from repro.exploration.sweep import sweep_vdd_vt
from repro.exploration.technology import GNRFETTechnology
from repro.reporting.ascii_plot import ascii_histogram, ascii_line_plot
from repro.reporting.figures import FigureSeries
from repro.reporting.tables import format_pct_pair, format_table
from repro.variability.adaptive import (
    mc_target_ci_default,
    run_ring_oscillator_monte_carlo_adaptive,
)
from repro.variability.combined import combined_variation_study
from repro.variability.impurity import charge_impurity_study
from repro.variability.latch_study import latch_variability_study
from repro.variability.montecarlo import run_ring_oscillator_monte_carlo
from repro.variability.width import width_variation_study


@lru_cache(maxsize=4)
def nominal_technology() -> GNRFETTechnology:
    """The nominal N=12 technology, built once per process."""
    return GNRFETTechnology.build()


# --------------------------------------------------------------------- #
# Figure 2: intrinsic I-V and V_T extraction
# --------------------------------------------------------------------- #
def run_fig2(fast: bool = False) -> tuple[str, dict]:
    """Fig. 2(a): I-V of the ideal N=12 GNRFET at several V_D;
    Fig. 2(b): V_T extraction at low V_D with and without gate offset."""
    tech = nominal_technology()
    table = tech.ribbon_table
    vg = table.vg
    mask = (vg >= 0.0) & (vg <= 0.75 + 1e-9)
    series = []
    for vd in (0.05, 0.25, 0.5, 0.75):
        j = int(np.argmin(np.abs(table.vd - vd)))
        series.append(FigureSeries(
            name=f"VD={table.vd[j]:.2f}V", x=vg[mask],
            y=table.current_a[mask, j],
            meta={"figure": "2a", "xlabel": "VG (V)", "ylabel": "ID (A)"}))

    # V_T extraction at VD = 0.05 V for offsets 0 and 0.2 V.
    j05 = int(np.argmin(np.abs(table.vd - 0.05)))
    vt_results = {}
    for offset in (0.0, 0.2):
        shifted = table.with_gate_offset(offset)
        curve = np.array([shifted.current(v, float(table.vd[j05]))
                          for v in vg[mask]])
        vt_results[offset] = extract_vt_linear(vg[mask], curve,
                                               vd=float(table.vd[j05]))

    plot = ascii_line_plot(
        vg[mask], {s.name: np.abs(s.y) + 1e-14 for s in series},
        logy=True, title="Fig 2(a): ID-VG of ideal N=12 GNRFET (log scale)")
    rows = [[f"{off:.1f} V", f"{vt:.3f} V"]
            for off, vt in vt_results.items()]
    tab = format_table(["gate offset", "extracted VT"], rows,
                       title="Fig 2(b): VT by linear extrapolation "
                             "(VD = 0.05 V)")
    report = plot + "\n\n" + tab
    return report, {"series": series, "vt": vt_results}


# --------------------------------------------------------------------- #
# Figure 3(b): EDP / frequency / SNM contours
# --------------------------------------------------------------------- #
def run_fig3(fast: bool = False) -> tuple[str, dict]:
    """Fig. 3(b): contours over the (V_T, V_DD) plane and points A/B/C."""
    tech = nominal_technology()
    if fast:
        vt_grid = np.linspace(0.02, 0.3, 8)
        vdd_grid = np.linspace(0.1, 0.7, 8)
    else:
        vt_grid = np.linspace(0.02, 0.30, 15)
        vdd_grid = np.linspace(0.10, 0.70, 13)
    adaptive = None
    if adaptive_enabled():
        adaptive = refine_vdd_vt(tech, vt_grid, vdd_grid)
        grid = adaptive.grid
    else:
        grid = sweep_vdd_vt(tech, vt_grid, vdd_grid)

    opt = min_edp_point(grid)
    point_a = min_edp_at_frequency(grid, 3e9)
    # SNM floor: the paper uses 0.15 V; our SNM scale runs lower (see
    # EXPERIMENTS.md), so point B uses the same *relative* floor.
    snm_floor = 0.6 * float(np.nanmax(grid.snm_v))
    point_b = min_edp_at_frequency_and_snm(grid, 3e9, snm_floor)

    log_edp = grid.log_edp()
    contour_levels = np.linspace(np.nanmin(log_edp) + 0.3,
                                 np.nanmax(log_edp) - 0.3, 6)
    contours = {f"ln EDP={lev:.1f}": contour_lines(grid.vt, grid.vdd,
                                                   log_edp, float(lev))
                for lev in contour_levels}
    freq_contours = {f"f={f / 1e9:.0f}GHz": contour_lines(
        grid.vt, grid.vdd, grid.frequency_hz, f) for f in (1e9, 3e9, 6e9)}

    rows = [
        ["global EDP optimum", f"{opt.vt:.2f}", f"{opt.vdd:.2f}",
         f"{opt.frequency_hz / 1e9:.2f}", f"{opt.edp_j_s * 1e27:.1f}",
         f"{opt.snm_v:.3f}"],
        ["A (min EDP @ 3GHz)", f"{point_a.vt:.2f}", f"{point_a.vdd:.2f}",
         f"{point_a.frequency_hz / 1e9:.2f}",
         f"{point_a.edp_j_s * 1e27:.1f}", f"{point_a.snm_v:.3f}"],
        [f"B (+SNM>={snm_floor:.2f})", f"{point_b.vt:.2f}",
         f"{point_b.vdd:.2f}", f"{point_b.frequency_hz / 1e9:.2f}",
         f"{point_b.edp_j_s * 1e27:.1f}", f"{point_b.snm_v:.3f}"],
    ]
    report = format_table(
        ["operating point", "VT", "VDD", "f (GHz)", "EDP (fJ-ps)", "SNM (V)"],
        rows, title="Fig 3(b): exploration of the 15-stage FO4 ring oscillator")
    return report, {"grid": grid, "optimum": opt, "A": point_a,
                    "B": point_b, "snm_floor": snm_floor,
                    "edp_contours": contours,
                    "frequency_contours": freq_contours,
                    "adaptive": adaptive}


# --------------------------------------------------------------------- #
# Table 1: GNRFET vs scaled CMOS
# --------------------------------------------------------------------- #
def run_table1(fast: bool = False) -> tuple[str, dict]:
    """Table 1: frequency / EDP / SNM of GNRFET A/B/C vs CMOS nodes."""
    tech = nominal_technology()
    points = {"A": (0.06, 0.3), "B": (0.13, 0.4), "C": (0.23, 0.4)}
    gnr_rows, cmos_rows, r_min, r_max = table1_comparison(
        tech, points, transient=not fast)

    rows = []
    for r in gnr_rows + cmos_rows:
        rows.append([r.label, f"{r.frequency_ghz:.2f}",
                     f"{r.edp_fj_ps:.1f}", f"{r.snm_v:.3f}"])
    report = format_table(
        ["technology", "freq (GHz)", "EDP (fJ-ps)", "SNM (V)"], rows,
        title="Table 1: GNRFET operating points vs scaled CMOS "
              f"(CMOS/GNRFET-B EDP ratio {r_min:.0f}-{r_max:.0f}x)")
    return report, {"gnrfet": gnr_rows, "cmos": cmos_rows,
                    "edp_ratio_range": (r_min, r_max)}


# --------------------------------------------------------------------- #
# Figure 4: I-V vs GNR width
# --------------------------------------------------------------------- #
def run_fig4(fast: bool = False) -> tuple[str, dict]:
    """Fig. 4: I-V at V_D = 0.5 V for N = 9 / 12 / 15 / 18."""
    vg = np.round(np.arange(0.0, 0.7501, 0.05 if fast else 0.025), 10)
    series = []
    ratios = {}
    for n in (9, 12, 15, 18):
        sweep = sweep_iv(GNRFETGeometry(n_index=n), vg, np.array([0.0, 0.5]))
        current = sweep.current_a[:, 1]
        series.append(FigureSeries(
            name=f"N={n}", x=vg, y=current,
            meta={"figure": "4", "xlabel": "VG (V)", "ylabel": "ID (A)"}))
        ratios[n] = float(current[-1] / max(current.min(), 1e-30))
    plot = ascii_line_plot(vg, {s.name: np.abs(s.y) + 1e-14 for s in series},
                           logy=True,
                           title="Fig 4: ID-VG at VD=0.5V vs GNR width")
    rows = [[f"N={n}", f"{r:.0f}"] for n, r in ratios.items()]
    tab = format_table(["ribbon", "Ion/Ioff"], rows)
    return plot + "\n\n" + tab, {"series": series, "on_off_ratios": ratios}


# --------------------------------------------------------------------- #
# Figure 5: charge-impurity band profiles and I-V
# --------------------------------------------------------------------- #
def run_fig5(fast: bool = False) -> tuple[str, dict]:
    """Fig. 5(a): NEGF conduction-band profiles with impurities -2q..+2q;
    Fig. 5(b): I-V of N=12 with +-2q impurities (fast engine)."""
    profiles = []
    n_x = 31 if fast else 51
    for q in (-2.0, -1.0, 0.0, 1.0, 2.0):
        imp = ChargeImpurity(charge_e=q) if q else None
        device = NEGFDevice(GNRFETGeometry(n_index=12, impurity=imp),
                            n_x=n_x, n_y=11)
        result = device.solve(0.1, 0.5)
        label = "no impurity" if q == 0 else f"{q:+g}q"
        profiles.append(FigureSeries(
            name=label, x=result.x_nm, y=result.conduction_band_ev,
            meta={"figure": "5a", "xlabel": "x (nm)", "ylabel": "EC (eV)"}))

    vg = np.round(np.arange(0.0, 0.7501, 0.05), 10)
    iv_series = []
    for q in (-2.0, 0.0, 2.0):
        imp = ChargeImpurity(charge_e=q) if q else None
        sweep = sweep_iv(GNRFETGeometry(n_index=12, impurity=imp),
                         vg, np.array([0.0, 0.5]))
        label = "no impurity" if q == 0 else f"{q:+g}q"
        iv_series.append(FigureSeries(
            name=label, x=vg, y=sweep.current_a[:, 1],
            meta={"figure": "5b"}))

    i_on = {s.name: float(s.y[-1]) for s in iv_series}
    drop = i_on["no impurity"] / i_on["-2q"]
    plot_a = ascii_line_plot(
        profiles[0].x, {p.name: p.y for p in profiles},
        title="Fig 5(a): conduction band with oxide charge impurity "
              "(NEGF+Poisson)")
    plot_b = ascii_line_plot(
        vg, {s.name: np.abs(s.y) + 1e-14 for s in iv_series}, logy=True,
        title="Fig 5(b): ID-VG at VD=0.5V with charge impurities")
    report = (plot_a + "\n\n" + plot_b
              + f"\n\n-2q impurity lowers Ion by {drop:.1f}x "
                "(paper: ~6x)")
    return report, {"profiles": profiles, "iv": iv_series,
                    "ion_drop_minus2q": drop}


# --------------------------------------------------------------------- #
# Tables 2-4: inverter sensitivity studies
# --------------------------------------------------------------------- #
def _sensitivity_report(title, nominal, entries, key_fmt) -> str:
    lines = [title,
             f"nominal: delay {nominal.delay_s * 1e12:.2f} ps, "
             f"Pstat {nominal.static_power_w * 1e6:.3f} uW, "
             f"Pdyn {nominal.dynamic_power_w * 1e6:.3f} uW, "
             f"SNM {nominal.snm_v:.3f} V", ""]
    rows = []
    for key, e in entries.items():
        rows.append([key_fmt(key),
                     format_pct_pair(e.delay_pct),
                     format_pct_pair(e.static_power_pct),
                     format_pct_pair(e.dynamic_power_pct),
                     format_pct_pair(e.snm_pct)])
    lines.append(format_table(
        ["p/n variant", "delay %", "Pstat %", "Pdyn %", "SNM %"], rows))
    return "\n".join(lines)


def run_table2(fast: bool = False) -> tuple[str, dict]:
    """Table 2: independent n/p width variation effects on the inverter."""
    tech = nominal_technology()
    indices = (9, 18) if fast else (9, 12, 15, 18)
    nominal, entries = width_variation_study(tech, indices=indices)
    report = _sensitivity_report(
        "Table 2: GNR width variation (cells: one affected, all affected)",
        nominal, entries, lambda k: f"p:N={k[0]} n:N={k[1]}")
    return report, {"nominal": nominal, "entries": entries}


def run_table3(fast: bool = False) -> tuple[str, dict]:
    """Table 3: independent n/p charge-impurity effects on the inverter."""
    tech = nominal_technology()
    charges = (-2.0, 0.0, 2.0) if fast else (-2.0, -1.0, 0.0, 1.0, 2.0)
    nominal, entries = charge_impurity_study(tech, charges=charges)
    report = _sensitivity_report(
        "Table 3: charge impurities (cells: one affected, all affected)",
        nominal, entries, lambda k: f"p:{k[0]:+g}q n:{k[1]:+g}q")
    return report, {"nominal": nominal, "entries": entries}


def run_table4(fast: bool = False) -> tuple[str, dict]:
    """Table 4: simultaneous width + impurity variations."""
    tech = nominal_technology()
    variants = (((9, 1.0), (18, -1.0)) if fast
                else ((9, -1.0), (9, 1.0), (18, -1.0), (18, 1.0)))
    nominal, entries = combined_variation_study(tech, variants=variants)
    report = _sensitivity_report(
        "Table 4: simultaneous width and impurity variations",
        nominal, entries,
        lambda k: f"p:N={k[0][0]}{k[0][1]:+g}q n:N={k[1][0]}{k[1][1]:+g}q")
    return report, {"nominal": nominal, "entries": entries}


# --------------------------------------------------------------------- #
# Figure 6: Monte Carlo histograms
# --------------------------------------------------------------------- #
def run_fig6(fast: bool = False) -> tuple[str, dict]:
    """Fig. 6: Monte Carlo distributions of the ring oscillator."""
    tech = nominal_technology()
    n_samples = 200 if fast else 2000
    target_ci = mc_target_ci_default()
    if adaptive_enabled() or target_ci is not None:
        result = run_ring_oscillator_monte_carlo_adaptive(
            tech, n_max=n_samples,
            target_ci=0.05 if target_ci is None else target_ci)
    else:
        result = run_ring_oscillator_monte_carlo(tech, n_samples=n_samples)
    report = "\n\n".join([
        ascii_histogram(result.frequencies_hz / 1e9, title=(
            "Fig 6: frequency (GHz); nominal "
            f"{result.nominal_frequency_hz / 1e9:.2f}, mean shift "
            f"{result.mean_frequency_shift:+.1%} (paper: -10%)")),
        ascii_histogram(result.dynamic_power_w * 1e6, title=(
            "Fig 6: dynamic power (uW); mean shift "
            f"{result.mean_dynamic_power_shift:+.1%} (paper: ~0%)")),
        ascii_histogram(result.static_power_w * 1e6, title=(
            "Fig 6: static power (uW); mean shift "
            f"{result.mean_static_power_shift:+.1%} (paper: +23%)")),
    ])
    return report, {"result": result}


# --------------------------------------------------------------------- #
# Figure 7: latch butterfly curves
# --------------------------------------------------------------------- #
def run_fig7(fast: bool = False) -> tuple[str, dict]:
    """Fig. 7: latch butterfly under worst-case variations + defects."""
    tech = nominal_technology()
    cases = latch_variability_study(tech)
    nominal = cases[0]
    rows = []
    for c in cases:
        rows.append([c.label, f"{c.snm_v * 1e3:.0f} mV",
                     f"{c.static_power_w * 1e6:.3f} uW",
                     f"{c.static_power_w / nominal.static_power_w:.1f}x"])
    tab = format_table(["case", "SNM", "static power", "vs nominal"],
                       rows, title="Fig 7: latch under variations and defects")
    worst = cases[-1]
    plot = ascii_line_plot(
        worst.butterfly.v_in,
        {"fwd": worst.butterfly.forward,
         "mir(x)": np.interp(worst.butterfly.v_in,
                             np.sort(worst.butterfly.mirrored_x),
                             worst.butterfly.mirrored_y[np.argsort(
                                 worst.butterfly.mirrored_x)])},
        title="worst-case butterfly (collapsed eye)")
    return tab + "\n\n" + plot, {"cases": cases}


# --------------------------------------------------------------------- #
# Extensions (mechanisms the paper names but defers; see EXPERIMENTS.md)
# --------------------------------------------------------------------- #
def run_ext_roughness(fast: bool = False) -> tuple[str, dict]:
    """Edge-roughness defects in the real-space p_z basis (paper ref 17)."""
    from repro.variability.edge_roughness import roughness_width_study

    study = roughness_width_study(
        indices=(9, 18) if fast else (9, 12, 18),
        probabilities=(0.05,) if fast else (0.02, 0.05, 0.1),
        n_cells=12 if fast else 24,
        n_samples=4 if fast else 10)
    rows = [[f"N={n}", f"{p:.2f}", f"{s.mean_transmission:.3f}",
             f"{s.std_transmission:.3f}"]
            for (n, p), s in sorted(study.items())]
    report = format_table(["ribbon", "p_vacancy", "<T>", "std T"], rows,
                          title="Edge roughness: first-plateau transmission")
    return report, {"study": study}


def run_ext_oxide(fast: bool = False) -> tuple[str, dict]:
    """Oxide-thickness variation study."""
    from repro.variability.oxide import oxide_thickness_study

    tech = nominal_technology()
    thicknesses = (1.5, 2.1) if fast else (1.2, 1.5, 1.8, 2.1)
    nominal, entries = oxide_thickness_study(tech,
                                             thicknesses_nm=thicknesses)
    rows = [[f"{e.oxide_thickness_nm:.1f}",
             f"{e.metrics.delay_s * 1e12:.2f}",
             f"{e.metrics.static_power_w * 1e6:.4f}",
             f"{e.snm_pct:+.0f}%"] for e in entries]
    report = format_table(
        ["t_ox (nm)", "delay (ps)", "Pstat (uW)", "d-SNM"], rows,
        title="Oxide-thickness variation")
    return report, {"nominal": nominal, "entries": entries}


def run_ext_temperature(fast: bool = False) -> tuple[str, dict]:
    """Temperature sweep of device leakage and inverter metrics."""
    from repro.exploration.temperature import (
        leakage_activation_energy_ev,
        temperature_study,
    )

    temps = ((ROOM_TEMPERATURE_K, 400.0) if fast
             else (250.0, ROOM_TEMPERATURE_K, 350.0, 400.0))
    points = temperature_study(temperatures_k=temps)
    e_a = leakage_activation_energy_ev(points)
    rows = [[f"{p.temperature_k:.0f}", f"{p.i_min_a * 1e9:.2f}",
             f"{p.inverter_static_power_w * 1e6:.4f}",
             f"{p.inverter_delay_s * 1e12:.2f}"] for p in points]
    report = format_table(
        ["T (K)", "Imin (nA)", "Pstat (uW)", "delay est (ps)"], rows,
        title=f"Temperature sweep (leakage E_a = {e_a * 1e3:.0f} meV)")
    return report, {"points": points, "activation_energy_ev": e_a}


def run_ext_yield(fast: bool = False) -> tuple[str, dict]:
    """Memory yield / ECC analysis from sampled latch SNMs."""
    from repro.variability.yield_model import (
        ECCAnalysis,
        cell_failure_probability,
        sample_latch_snm,
    )

    tech = nominal_technology()
    snm = sample_latch_snm(tech, n_cells=40 if fast else 250,
                           n_vtc_points=21 if fast else 31)
    rows = []
    for budget in (0.02, 0.035, 0.05):
        p_cell = cell_failure_probability(snm, budget)
        ecc = ECCAnalysis(p_cell=max(p_cell, 1e-6))
        rows.append([f"{budget * 1e3:.0f} mV", f"{p_cell:.3f}",
                     f"{ecc.word_failure_sec():.2e}",
                     f"{ecc.overhead:.1%}"])
    report = format_table(
        ["noise budget", "p_cell", "SEC word fail", "ECC overhead"],
        rows, title="Latch yield under per-ribbon variability")
    return report, {"snm_samples": snm}


#: Experiment registry: id -> (description, callable).
EXPERIMENTS = {
    "fig2": ("Fig 2: intrinsic N=12 I-V and VT extraction", run_fig2),
    "fig3": ("Fig 3(b): EDP/frequency/SNM contours and points A/B/C",
             run_fig3),
    "table1": ("Table 1: GNRFET vs scaled CMOS", run_table1),
    "fig4": ("Fig 4: I-V vs GNR width", run_fig4),
    "fig5": ("Fig 5: charge-impurity band profiles and I-V", run_fig5),
    "table2": ("Table 2: width-variation sensitivity", run_table2),
    "table3": ("Table 3: charge-impurity sensitivity", run_table3),
    "table4": ("Table 4: simultaneous variations", run_table4),
    "fig6": ("Fig 6: ring-oscillator Monte Carlo", run_fig6),
    "fig7": ("Fig 7: latch butterfly study", run_fig7),
    "ext-roughness": ("Extension: edge-roughness defects (paper ref 17)",
                      run_ext_roughness),
    "ext-oxide": ("Extension: oxide-thickness variation", run_ext_oxide),
    "ext-temperature": ("Extension: temperature dependence",
                        run_ext_temperature),
    "ext-yield": ("Extension: memory yield and ECC overhead",
                  run_ext_yield),
}


def run_experiment(experiment_id: str, fast: bool = False) -> tuple[str, dict]:
    """Dispatch one experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(sorted(EXPERIMENTS))}")
    _, fn = EXPERIMENTS[experiment_id]
    return fn(fast=fast)
