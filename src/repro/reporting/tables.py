"""Fixed-width ASCII table formatting."""

from __future__ import annotations

from typing import Sequence


def format_pct_pair(pair: tuple[float, float]) -> str:
    """Render the paper's "one affected, all affected" cell: ``6,77``."""
    def fmt(x: float) -> str:
        if not (x == x):  # NaN
            return "-"
        return f"{x:+.0f}"
    return f"{fmt(pair[0])},{fmt(pair[1])}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    col_sep: str = "  ",
) -> str:
    """Render rows as an aligned fixed-width table.

    Cells are stringified with ``str``; numeric alignment is right, text
    left (decided per column by majority).
    """
    str_rows = [[str(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    n_cols = len(str_headers)
    for row in str_rows:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {n_cols}: {row}")

    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numberish(s: str) -> bool:
        t = s.replace(",", "").replace("+", "").replace("-", "")
        t = t.replace(".", "").replace("e", "").replace("E", "")
        return t.isdigit() or s in ("-", "")

    right = []
    for i in range(n_cols):
        votes = sum(1 for row in str_rows if is_numberish(row[i]))
        right.append(votes >= max(1, len(str_rows) // 2))

    def render_row(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            out.append(cell.rjust(widths[i]) if right[i]
                       else cell.ljust(widths[i]))
        return col_sep.join(out).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(str_headers))
    lines.append(col_sep.join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
