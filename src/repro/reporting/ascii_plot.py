"""Minimal ASCII renderings of line plots and histograms."""

from __future__ import annotations

import numpy as np


def ascii_line_plot(
    x: np.ndarray,
    ys: dict[str, np.ndarray],
    width: int = 72,
    height: int = 20,
    logy: bool = False,
    title: str = "",
) -> str:
    """Plot one or more series against a shared x-axis.

    Each series gets a marker from ``*+o#x%@`` in insertion order; the
    y-axis is annotated with min/max, the x-axis with its range.
    """
    x = np.asarray(x, dtype=float)
    markers = "*+o#x%@&"
    series = {}
    for name, y in ys.items():
        y = np.asarray(y, dtype=float)
        if y.shape != x.shape:
            raise ValueError(f"series {name!r} length mismatch")
        series[name] = np.log10(np.clip(y, 1e-300, None)) if logy else y

    all_y = np.concatenate(list(series.values()))
    finite = all_y[np.isfinite(all_y)]
    if finite.size == 0:
        return title + "\n(no finite data)"
    y_lo, y_hi = float(finite.min()), float(finite.max())
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x.min()), float(x.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, y) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        for xi, yi in zip(x, y):
            if not np.isfinite(yi):
                continue
            col = int((xi - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yi - y_lo) / (y_hi - y_lo) * (height - 1))
            canvas[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    prefix = "log10(y)" if logy else "y"
    lines.append(f"{prefix} in [{y_lo:.3g}, {y_hi:.3g}]")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f" x in [{x_lo:.3g}, {x_hi:.3g}]")
    legend = "  ".join(f"{markers[i % len(markers)]}={name}"
                       for i, name in enumerate(series))
    lines.append(" " + legend)
    return "\n".join(lines)


def ascii_histogram(
    values: np.ndarray,
    bins: int = 30,
    width: int = 50,
    title: str = "",
    marker: str = "#",
) -> str:
    """Horizontal-bar histogram."""
    values = np.asarray(values, dtype=float)
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.size else 0
    lines = []
    if title:
        lines.append(title)
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = marker * (0 if peak == 0 else int(round(width * c / peak)))
        lines.append(f"{lo:11.4g} .. {hi:11.4g} | {bar} {c}")
    return "\n".join(lines)
