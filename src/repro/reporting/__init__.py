"""Reporting: paper-style tables, figure data series, ASCII plots.

The environment has no plotting stack, so "figures" are produced as data
series (exportable to CSV) plus ASCII renderings; tables are formatted to
mirror the paper's layout (e.g. the comma-separated
"one affected, all affected" cells of Tables 2-4).

:mod:`repro.reporting.experiments` hosts the runnable experiment registry
(one entry per table/figure of the paper), shared by the CLI and the
benchmark harness.
"""

from repro.reporting.tables import format_table, format_pct_pair
from repro.reporting.ascii_plot import ascii_line_plot, ascii_histogram
from repro.reporting.figures import FigureSeries, save_series_csv
from repro.reporting.experiments import EXPERIMENTS, run_experiment

__all__ = [
    "format_table",
    "format_pct_pair",
    "ascii_line_plot",
    "ascii_histogram",
    "FigureSeries",
    "save_series_csv",
    "EXPERIMENTS",
    "run_experiment",
]
