"""Figure data series: named (x, y) arrays with CSV export."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


@dataclass
class FigureSeries:
    """One plottable series of a reproduced figure.

    Attributes
    ----------
    name:
        Legend label (e.g. ``"VD = 0.5V"``).
    x, y:
        Data arrays.
    meta:
        Free-form annotations (units, axis labels, figure id).
    """

    name: str
    x: np.ndarray
    y: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.shape != self.y.shape:
            raise ValueError(
                f"series {self.name!r}: x{self.x.shape} vs y{self.y.shape}")


def save_series_csv(series: list[FigureSeries], path: str | Path) -> None:
    """Write series to a long-format CSV (series, x, y)."""
    path = Path(path)
    lines = ["series,x,y"]
    for s in series:
        for xi, yi in zip(s.x, s.y):
            lines.append(f"{s.name},{float(xi)!r},{float(yi)!r}")
    path.write_text("\n".join(lines) + "\n")
