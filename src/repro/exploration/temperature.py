"""Temperature dependence of GNRFET device and circuit metrics.

The paper simulates at room temperature; temperature is nonetheless a
first-order knob for a Schottky-barrier technology, because both the
thermionic contribution over the barriers and the ambipolar leakage
floor are activated processes (~exp(-E_b / kT)).  This study quantifies
the resulting leakage/performance temperature coefficients, giving the
paper's static-power story its thermal margin.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.circuit.inverter import (
    CircuitParameters,
    estimate_inverter_delay,
    inverter_static_power_w,
)
from repro.constants import ROOM_TEMPERATURE_K
from repro.device.geometry import GNRFETGeometry
from repro.device.tables import build_device_table
from repro.device.vt_extraction import extract_vt_linear


@dataclass
class TemperaturePoint:
    """Device + inverter metrics at one temperature."""

    temperature_k: float
    i_on_a: float
    i_min_a: float
    vt_v: float
    inverter_delay_s: float
    inverter_static_power_w: float


def temperature_study(
    base_geometry: GNRFETGeometry | None = None,
    temperatures_k: tuple[float, ...] = (
        250.0, ROOM_TEMPERATURE_K, 350.0, 400.0),
    params: CircuitParameters | None = None,
    vdd: float = 0.4,
    vt_target: float = 0.13,
) -> list[TemperaturePoint]:
    """Sweep lattice/contact temperature; device re-simulated per point.

    The gate work-function offset is re-derived at each temperature from
    that temperature's extracted V_T (a real design would fix the metal;
    both conventions give the same leakage activation, and re-extraction
    keeps the operating point comparable across T).
    """
    base_geometry = base_geometry or GNRFETGeometry()
    params = params or CircuitParameters()

    points = []
    for t_k in temperatures_k:
        geometry = replace(base_geometry, temperature_k=float(t_k))
        table = build_device_table(geometry)
        vgs = table.vg[(table.vg >= 0.0) & (table.vg <= 0.8)]
        j_low = 1  # lowest non-zero V_D column
        curve = np.array([table.current(float(v), float(table.vd[j_low]))
                          for v in vgs])
        vt0 = extract_vt_linear(vgs, curve, vd=float(table.vd[j_low]))

        array = table.scaled(params.n_ribbons).with_gate_offset(
            vt0 - vt_target)
        j_half = int(np.argmin(np.abs(table.vd - 0.5)))
        on = float(table.current(0.75, float(table.vd[j_half])))
        sweep = np.array([table.current(float(v), float(table.vd[j_half]))
                          for v in vgs])

        points.append(TemperaturePoint(
            temperature_k=float(t_k),
            i_on_a=on,
            i_min_a=float(sweep.min()),
            vt_v=float(vt0),
            inverter_delay_s=estimate_inverter_delay(array, array, vdd,
                                                     params),
            inverter_static_power_w=inverter_static_power_w(
                array, array, vdd, params)))
    return points


def leakage_activation_energy_ev(points: list[TemperaturePoint]) -> float:
    """Arrhenius fit of the ambipolar leakage floor.

    ``I_min ~ exp(-E_a / kT)``: returns ``E_a`` from a linear fit of
    ``ln I_min`` vs ``1/kT``.  For the N=12 SBFET the expectation is a
    sizeable fraction of the half-gap (~0.3 eV) reduced by tunneling.
    """
    from repro.constants import K_B_EV

    if len(points) < 2:
        raise ValueError("need at least two temperatures")
    inv_kt = np.array([1.0 / (K_B_EV * p.temperature_k) for p in points])
    ln_i = np.array([np.log(max(p.i_min_a, 1e-30)) for p in points])
    slope = float(np.polyfit(inv_kt, ln_i, 1)[0])
    return -slope
