"""Table 1: GNRFET operating points A/B/C vs scaled CMOS at 22/32/45 nm."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.inverter import inverter_snm
from repro.circuit.ring_oscillator import (
    estimate_ring_oscillator,
    simulate_ring_oscillator,
)
from repro.cmos.circuits import cmos_inverter_snm, estimate_cmos_ring_oscillator
from repro.cmos.ptm import ptm_node
from repro.exploration.operating_point import OperatingPoint
from repro.exploration.technology import GNRFETTechnology


@dataclass
class Table1Row:
    """One column of the paper's Table 1 (a technology at a bias)."""

    label: str
    frequency_ghz: float
    edp_fj_ps: float
    snm_v: float


def gnrfet_row(tech: GNRFETTechnology, label: str, vt: float, vdd: float,
               n_stages: int = 15, transient: bool = True) -> Table1Row:
    """Characterize the GNRFET ring oscillator at one operating point."""
    nt, pt = tech.inverter_tables(vt)
    if transient:
        metrics = simulate_ring_oscillator(nt, pt, vdd, n_stages, tech.params)
    else:
        metrics = estimate_ring_oscillator(nt, pt, vdd, n_stages, tech.params)
    snm = inverter_snm(nt, pt, vdd, tech.params)
    return Table1Row(label=label,
                     frequency_ghz=metrics.frequency_hz / 1e9,
                     edp_fj_ps=metrics.edp_j_s / 1e-27,
                     snm_v=snm)


def cmos_row(node_nm: int, vdd: float, n_stages: int = 15) -> Table1Row:
    """Characterize one CMOS node at one supply."""
    node = ptm_node(node_nm)
    metrics = estimate_cmos_ring_oscillator(node, vdd, n_stages)
    snm = cmos_inverter_snm(node, vdd)
    return Table1Row(label=f"{node_nm}nm@{vdd}V",
                     frequency_ghz=metrics.frequency_hz / 1e9,
                     edp_fj_ps=metrics.edp_j_s / 1e-27,
                     snm_v=snm)


def table1_comparison(
    tech: GNRFETTechnology,
    operating_points: dict[str, OperatingPoint] | dict[str, tuple[float, float]],
    cmos_nodes: tuple[int, ...] = (22, 32, 45),
    cmos_vdds: tuple[float, ...] = (0.8, 0.6, 0.4),
    transient: bool = True,
) -> tuple[list[Table1Row], list[Table1Row], float, float]:
    """Full Table 1: GNRFET rows, CMOS rows, and the EDP-gap range.

    ``operating_points`` maps labels (``"A"``, ``"B"``, ``"C"``) to either
    :class:`OperatingPoint` instances or plain ``(vt, vdd)`` tuples.

    Returns ``(gnrfet_rows, cmos_rows, min_ratio, max_ratio)`` where the
    ratios compare every CMOS EDP against the GNRFET point-B EDP (the
    paper: "the optimum EDP for scaled CMOS is 40-168X higher than the
    EDP for GNRFETs at operating point B").
    """
    gnr_rows = []
    for label, point in operating_points.items():
        if isinstance(point, OperatingPoint):
            vt, vdd = point.vt, point.vdd
        else:
            vt, vdd = point
        gnr_rows.append(gnrfet_row(tech, label, vt, vdd, transient=transient))

    cmos_rows = [cmos_row(n, v) for n in cmos_nodes for v in cmos_vdds]

    reference = next((r for r in gnr_rows if r.label == "B"), gnr_rows[0])
    ratios = [r.edp_fj_ps / reference.edp_fj_ps for r in cmos_rows]
    return gnr_rows, cmos_rows, min(ratios), max(ratios)
