"""Contour-guided adaptive refinement of the V_DD-V_T plane (Fig. 3b).

The dense exploration sweep solves every cell of a uniform grid, but the
figures of merit the paper extracts — the global EDP optimum, point A
(min EDP at 3 GHz) and point B (A plus an SNM floor) — depend only on
narrow regions: the EDP bowl and the crossings of the 3 GHz frequency
contour with the SNM floor.  This module reproduces those figures of
merit from a small fraction of the solves:

1. **Coarse pass** — solve a strided sub-lattice (both grid edges
   always included) and tile the plane with rectangular cells whose
   corners are solved points.
2. **Refinement waves** — score every splittable cell from its solved
   corners: ``+4`` when its corner-minimum ln EDP is within
   ``opt_window`` of the global solved minimum (the optimum may hide
   inside), ``+3`` when the cell straddles the ``f_min_hz`` frequency
   contour while staying EDP-competitive with the best point-A
   candidate, and ``+3`` when it straddles the SNM floor with the
   frequency floor met and EDP competitive with point B.  Cells are
   bisected in deterministic priority order (priority, then corner-mean
   ln EDP, then cell index) while the wave budget lasts; only the
   children of refined cells stay in play.
3. **Extremum polish** — the sampled argmin of each objective descends
   on the *dense* lattice: solve the unsolved 4-neighborhood of the
   incumbent, repeat until the optimum argmin stops moving (points A/B
   get ``ab_polish_rounds`` rounds — their golden allowances are
   looser).  This certifies the reported cells at dense resolution,
   which matters because frequency moves 10-40% per dense V_T step
   while the EDP bowl is flat.
4. **NaN-aware fill** — unsolved valid cells are interpolated
   separably (mean of the row- and column-bracket linear interpolants
   through the nearest solved neighbors), so every
   :class:`~repro.exploration.sweep.ExplorationGrid` consumer sees a
   full-rectangle grid.  Interpolation cannot undershoot the solved
   minimum along a bracket, so the argmin of every figure of merit
   lands on a *solved* cell, never an interpolated one.

Determinism: the refinement schedule is a pure function of solved cell
*values*, all point sets are dispatched in sorted order, and per-cell
physics runs through the scheduler seam with task-index-keyed fault
sites — so serial == parallel bitwise at any worker count, and a
killed run resumed through :class:`~repro.runtime.SweepCheckpoint`
replays the identical schedule, recomputing only cells the snapshot
does not hold.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro import obs
from repro.circuit.inverter import inverter_snm
from repro.circuit.ring_oscillator import estimate_ring_oscillator
from repro.device.engines import engine_version, resolve_engine
from repro.errors import AnalysisError, ConvergenceError
from repro.exploration.sweep import ExplorationGrid
from repro.exploration.technology import GNRFETTechnology
from repro.runtime import (
    TABLE_ENGINE_VERSION,
    FailureRecord,
    Scheduler,
    SweepCheckpoint,
    backend_name,
    checkpoint_interval,
    content_key,
    in_worker,
    quarantine,
    resolve_scheduler,
    resume_enabled,
    strict_default,
    warmstart_enabled,
)
from repro.runtime import faults

#: Environment variable: any non-empty value routes ``run fig3``/``run
#: fig6`` through the adaptive engines (CLI flag ``--adaptive``).
ADAPTIVE_ENV = "REPRO_ADAPTIVE"

#: Environment variable: override the refinement level count (CLI flag
#: ``--refine-levels``).
REFINE_LEVELS_ENV = "REPRO_REFINE_LEVELS"


def adaptive_enabled() -> bool:
    """True when ``REPRO_ADAPTIVE`` requests the adaptive engines."""
    return bool(os.environ.get(ADAPTIVE_ENV, "").strip())


def refine_levels_default() -> int | None:
    """``REPRO_REFINE_LEVELS`` as an int, or None for auto."""
    raw = os.environ.get(REFINE_LEVELS_ENV, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{REFINE_LEVELS_ENV} must be an integer, got {raw!r}"
        ) from None


def coarse_indices(n: int, stride: int) -> list[int]:
    """Strided index lattice over ``range(n)``, last index always kept."""
    idx = list(range(0, n, max(1, stride)))
    if idx[-1] != n - 1:
        idx.append(n - 1)
    return idx


def auto_levels(n_vt: int, n_vdd: int, cap: int = 3) -> int:
    """Deepest level whose coarse lattice keeps >= 3 points per axis."""
    level = 0
    while level < cap:
        stride = 2 ** (level + 1)
        if (len(coarse_indices(n_vt, stride)) >= 3
                and len(coarse_indices(n_vdd, stride)) >= 3):
            level += 1
        else:
            break
    return level


@dataclass(frozen=True)
class AdaptiveSweepResult:
    """Adaptive exploration output: a dense-looking grid plus accounting.

    ``grid`` is interchangeable with the dense sweep's
    :class:`~repro.exploration.sweep.ExplorationGrid` (unsolved valid
    cells are interpolated); ``solved`` marks cells whose values came
    from the physics, ``invalid`` the analytically skipped V_T >= V_DD
    region.  ``n_solves`` counts ring-oscillator cell evaluations — the
    quantity the dense sweep spends ``n_valid`` of.
    """

    grid: ExplorationGrid
    solved: np.ndarray
    invalid: np.ndarray
    n_solves: int
    n_coarse: int
    n_refined: int
    n_polish: int
    n_waves: int
    levels: int

    @property
    def n_valid(self) -> int:
        """Valid (V_T < V_DD) cells of the dense rectangle."""
        return int((~self.invalid).sum())

    @property
    def solves_saved(self) -> int:
        """Cells the dense sweep would have solved but this run skipped."""
        return self.n_valid - self.n_solves


def _solve_row_cells(tech: GNRFETTechnology, n_stages: int, with_snm: bool,
                     strict: bool,
                     task: tuple[int, float, tuple[int, ...],
                                 tuple[float, ...]]
                     ) -> tuple[np.ndarray, ...]:
    """Solve the requested V_DD cells of one V_T row (pickles for workers).

    ``task`` is ``(row_index, vt, col_indices, vdd_values)``; the row
    index keys the ``worker``/``scf`` fault sites and quarantine records
    exactly like the dense sweep, so a ``REPRO_FAULTS`` spec hits the
    same logical row in either engine.
    """
    i, vt, cols, vdds = task
    if faults.ACTIVE and in_worker():
        faults.inject("worker", i)
    n = len(cols)
    freq = np.full(n, np.nan)
    edp = np.full(n, np.nan)
    snm = np.full(n, np.nan)
    p_tot = np.full(n, np.nan)
    p_stat = np.full(n, np.nan)
    failures: list[FailureRecord] = []
    try:
        if faults.ACTIVE:
            faults.inject("scf", i, detail=f"VT={vt}")
        nt, pt = tech.inverter_tables(float(vt))
    except ConvergenceError as exc:
        if strict:
            raise exc.with_context(vt=float(vt), row_index=int(i))
        failures.append(quarantine(
            exc.with_context(vt=float(vt)), site="exploration", index=i,
            coords=(i,), bias={"vt": float(vt)}))
        return freq, edp, snm, p_tot, p_stat, failures
    for k, vdd in enumerate(vdds):
        vdd = float(vdd)
        try:
            m = estimate_ring_oscillator(nt, pt, vdd, n_stages, tech.params)
        except AnalysisError:
            continue
        freq[k] = m.frequency_hz
        edp[k] = m.edp_j_s
        p_tot[k] = m.total_power_w
        p_stat[k] = m.static_power_w
        if with_snm:
            snm[k] = inverter_snm(nt, pt, vdd, tech.params)
    return freq, edp, snm, p_tot, p_stat, failures


def _cell_children(cell: tuple[int, int, int, int]
                   ) -> tuple[set[tuple[int, int]],
                              list[tuple[int, int, int, int]]]:
    """Midpoint lattice points and child cells of one bisected cell."""
    i0, i1, j0, j1 = cell
    im, jm = (i0 + i1) // 2, (j0 + j1) // 2
    points: set[tuple[int, int]] = set()
    if im not in (i0, i1):
        points |= {(im, j0), (im, j1)}
    if jm not in (j0, j1):
        points |= {(i0, jm), (i1, jm)}
    if im not in (i0, i1) and jm not in (j0, j1):
        points.add((im, jm))
    i_spans = [(i0, im), (im, i1)] if im not in (i0, i1) else [(i0, i1)]
    j_spans = [(j0, jm), (jm, j1)] if jm not in (j0, j1) else [(j0, j1)]
    children = [(a, b, c, d) for a, b in i_spans for c, d in j_spans]
    return points, children


def _fill_separable(arr: np.ndarray, solved: np.ndarray,
                    invalid: np.ndarray) -> np.ndarray:
    """NaN-aware separable interpolation onto unsolved valid cells.

    Each unsolved cell takes the mean of the linear interpolants
    through its nearest solved row- and column-neighbors (whichever
    brackets exist); cells with no solved bracket stay NaN.  A solved
    NaN (quarantined physics) propagates — the fill never invents data
    in a region the solver could not reach.
    """
    n, m = arr.shape
    out = arr.copy()
    usable = solved & ~invalid
    for i in range(n):
        for j in range(m):
            if solved[i, j] or invalid[i, j]:
                continue
            cand = []
            il = next((a for a in range(i, -1, -1) if usable[a, j]), None)
            ih = next((a for a in range(i, n) if usable[a, j]), None)
            if il is not None and ih is not None and ih != il:
                t = (i - il) / (ih - il)
                cand.append((1 - t) * arr[il, j] + t * arr[ih, j])
            jl = next((b for b in range(j, -1, -1) if usable[i, b]), None)
            jh = next((b for b in range(j, m) if usable[i, b]), None)
            if jl is not None and jh is not None and jh != jl:
                t = (j - jl) / (jh - jl)
                cand.append((1 - t) * arr[i, jl] + t * arr[i, jh])
            out[i, j] = float(np.mean(cand)) if cand else np.nan
    return out


def refine_vdd_vt(
    tech: GNRFETTechnology,
    vt_grid: np.ndarray,
    vdd_grid: np.ndarray,
    n_stages: int = 15,
    with_snm: bool = True,
    refine_levels: int | None = None,
    wave_solve_budget: int | None = None,
    opt_window: float = 0.3,
    ab_window: float = 0.3,
    ab_polish_rounds: int = 2,
    f_min_hz: float = 3e9,
    workers: int | None = None,  # repro: nokey[RPA601] parallelism degree; the schedule is a pure function of solved values
    strict: bool | None = None,  # repro: nokey[RPA601] failure policy only; surviving cells agree either way
    scheduler: Scheduler | None = None,  # repro: nokey[RPA601] dispatch policy; schedulers must return [fn(t) for t in tasks]
    checkpoint: int | None = None,  # repro: nokey[RPA601] snapshot cadence only, not cell content
    resume: bool | None = None,  # repro: nokey[RPA601] whether to load the checkpoint this key names, not what it holds
) -> AdaptiveSweepResult:
    """Adaptive exploration of the (V_T, V_DD) plane at dense accuracy.

    Returns an :class:`AdaptiveSweepResult` whose ``grid`` reproduces
    the dense sweep's figures of merit (EDP optimum, points A/B) within
    the committed golden allowances from a fraction of the solves
    (``benchmarks/bench_adaptive.py`` measures the ratio).

    ``refine_levels`` (default: auto, env ``REPRO_REFINE_LEVELS``) sets
    the coarse stride to ``2**levels``; ``wave_solve_budget`` caps
    midpoint solves spent in refinement waves (default
    ``max(6, n_cells // 32)``); ``opt_window``/``ab_window`` are the
    ln-EDP competitiveness windows of the scoring rule and
    ``ab_polish_rounds`` the descent rounds granted to points A/B.

    ``checkpoint``/``resume`` (defaults from ``REPRO_CHECKPOINT`` /
    ``REPRO_RESUME``) snapshot the solved-cell memo after every
    dispatch wave: because the schedule is a pure function of solved
    values, a resumed run replays it bitwise, restoring snapshotted
    cells instead of recomputing them.
    """
    vt_grid = np.asarray(vt_grid, dtype=float)
    vdd_grid = np.asarray(vdd_grid, dtype=float)
    n_vt, n_vdd = vt_grid.size, vdd_grid.size
    strict = strict_default() if strict is None else strict
    interval = (checkpoint_interval() if checkpoint is None
                else max(0, int(checkpoint)))
    resume = resume_enabled() if resume is None else resume
    sched = resolve_scheduler(scheduler, workers=workers)
    if refine_levels is None:
        refine_levels = refine_levels_default()
    levels = (auto_levels(n_vt, n_vdd) if refine_levels is None
              else max(0, int(refine_levels)))
    stride = 2 ** levels
    n_cells = n_vt * n_vdd
    if wave_solve_budget is None:
        wave_solve_budget = max(6, n_cells // 32)

    invalid = vt_grid[:, None] >= vdd_grid[None, :]
    solved = np.zeros((n_vt, n_vdd), dtype=bool)
    metrics = {name: np.full((n_vt, n_vdd), np.nan)
               for name in ("frequency_hz", "edp_j_s", "snm_v",
                            "total_power_w", "static_power_w")}
    failures: list[FailureRecord] = []
    counters = {"solves": 0, "restored": 0}

    ckpt: SweepCheckpoint | None = None
    memo_done = np.zeros((n_vt, n_vdd), dtype=bool)
    memo: dict[str, np.ndarray] = {}
    if interval > 0 or resume:
        engine = resolve_engine(None)
        key = content_key("adaptive_vdd_vt", tech.geometry, tech.params,
                          tuple(float(v) for v in vt_grid),
                          tuple(float(v) for v in vdd_grid),
                          n_stages, with_snm, levels, wave_solve_budget,
                          opt_window, ab_window, ab_polish_rounds,
                          f_min_hz, TABLE_ENGINE_VERSION, engine,
                          engine_version(engine), backend_name(),
                          warmstart_enabled())
        ckpt = SweepCheckpoint(key, interval=interval)
        if resume:
            loaded = ckpt.load()
            if loaded is not None and loaded[0].shape == solved.shape:
                memo_done, memo, saved_failures = loaded
                memo = {k: np.asarray(v, dtype=float)
                        for k, v in memo.items()
                        if k in metrics}
                for record in saved_failures:
                    failures.append(record)
                    if obs.ACTIVE:
                        obs.incr("resilience.quarantined")
                        obs.record_failure(record.to_dict())

    fn = partial(_solve_row_cells, tech, n_stages, with_snm, strict)

    def ensure_solved(points) -> None:
        """Solve (or restore from the memo) the given lattice points."""
        todo: list[tuple[int, int]] = []
        for i, j in sorted(set(points)):
            if solved[i, j]:
                continue
            solved[i, j] = True
            if invalid[i, j]:
                continue
            if memo_done[i, j]:
                for name in metrics:
                    metrics[name][i, j] = memo[name][i, j]
                counters["solves"] += 1
                counters["restored"] += 1
                continue
            todo.append((i, j))
        if todo:
            rows: dict[int, list[int]] = {}
            for i, j in todo:
                rows.setdefault(i, []).append(j)
            tasks = [(i, float(vt_grid[i]), tuple(cols),
                      tuple(float(vdd_grid[j]) for j in cols))
                     for i, cols in sorted(rows.items())]
            results = sched.run(fn, tasks, strict=strict)
            order = ("frequency_hz", "edp_j_s", "snm_v",
                     "total_power_w", "static_power_w")
            for task, row in zip(tasks, results):
                i, _, cols, _ = task
                for name, values in zip(order, row):
                    for k, j in enumerate(cols):
                        metrics[name][i, j] = values[k]
                failures.extend(row[5])
            counters["solves"] += len(todo)
        if ckpt is not None and ckpt.due():
            ckpt.save(solved & ~invalid, metrics, failures)

    def log_edp() -> np.ndarray:
        e = metrics["edp_j_s"]
        return np.where(np.isfinite(e) & (e > 0),
                        np.log(np.where(np.isfinite(e) & (e > 0), e, 1.0)),
                        np.nan)

    with obs.span("exploration.refine_vdd_vt",
                  grid=f"{n_vt}x{n_vdd}", levels=levels):
        # 1. coarse lattice
        ci = coarse_indices(n_vt, stride)
        cj = coarse_indices(n_vdd, stride)
        ensure_solved([(i, j) for i in ci for j in cj])
        n_coarse = counters["solves"]
        cells = [(ci[a], ci[a + 1], cj[b], cj[b + 1])
                 for a in range(len(ci) - 1) for b in range(len(cj) - 1)]

        # 2. refinement waves
        freq_a = metrics["frequency_hz"]
        snm_a = metrics["snm_v"]
        n_waves = 0
        cap = n_coarse + wave_solve_budget
        while True:
            splittable = [c for c in cells
                          if c[1] - c[0] > 1 or c[3] - c[2] > 1]
            if not splittable or counters["solves"] >= cap:
                break
            ledp = log_edp()
            if not np.isfinite(ledp).any():
                break  # nothing solved successfully; no basis to refine
            snm_floor = (0.6 * np.nanmax(snm_a)
                         if np.isfinite(snm_a).any() else np.inf)
            with np.errstate(all="ignore"):
                gmin = np.nanmin(ledp)
                masked_a = np.where(freq_a >= f_min_hz, ledp, np.nan)
                best_a = (np.nanmin(masked_a)
                          if np.isfinite(masked_a).any() else np.inf)
                masked_b = np.where((freq_a >= f_min_hz)
                                    & (snm_a >= snm_floor), ledp, np.nan)
                best_b = (np.nanmin(masked_b)
                          if np.isfinite(masked_b).any() else np.inf)
            scored = []
            for cell in splittable:
                i0, i1, j0, j1 = cell
                corners = [(i0, j0), (i1, j0), (i0, j1), (i1, j1)]
                f = np.array([freq_a[c] for c in corners])
                le = np.array([ledp[c] for c in corners])
                s = np.array([snm_a[c] for c in corners])
                if not np.isfinite(le).any():
                    continue
                with np.errstate(all="ignore"):
                    corner_min = np.nanmin(le)
                    corner_mean = np.nanmean(le)
                priority = 0.0
                if corner_min <= gmin + opt_window:
                    priority += 4.0
                if (np.isfinite(f).sum() >= 2
                        and np.nanmin(f) < f_min_hz <= np.nanmax(f)
                        and corner_min <= best_a + ab_window):
                    priority += 3.0
                if (np.isfinite(s).sum() >= 2 and np.isfinite(f).any()
                        and np.nanmax(f) >= f_min_hz
                        and np.nanmin(s) < snm_floor <= np.nanmax(s)
                        and corner_min <= best_b + ab_window):
                    priority += 3.0
                if priority > 0:
                    scored.append((-priority, corner_mean, cell))
            if not scored:
                break
            scored.sort()
            chosen = []
            projected: set[tuple[int, int]] = set()
            for _, _, cell in scored:
                points, _ = _cell_children(cell)
                new = {p for p in points
                       if not solved[p] and not invalid[p]} - projected
                if counters["solves"] + len(projected) + len(new) > cap:
                    continue
                projected |= new
                chosen.append(cell)
            if not chosen:
                break
            n_waves += 1
            wave_points: set[tuple[int, int]] = set()
            next_cells: list[tuple[int, int, int, int]] = []
            for cell in chosen:
                points, children = _cell_children(cell)
                wave_points |= points
                next_cells.extend(children)
            ensure_solved(wave_points)
            if obs.ACTIVE:
                obs.incr("adaptive.cells_refined", len(chosen))
            cells = next_cells
        n_refined = counters["solves"] - n_coarse

        # 3. extremum polish on the dense lattice
        def argmin_where(mask: np.ndarray) -> tuple[int, int] | None:
            ledp = log_edp()
            v = np.where(mask & np.isfinite(ledp), ledp, np.inf)
            if not np.isfinite(v).any():
                return None
            i, j = np.unravel_index(int(np.argmin(v)), v.shape)
            return int(i), int(j)

        def unsolved_neighbors(point: tuple[int, int]
                               ) -> list[tuple[int, int]]:
            i, j = point
            out = []
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                a, b = i + di, j + dj
                if (0 <= a < n_vt and 0 <= b < n_vdd
                        and not solved[a, b] and not invalid[a, b]):
                    out.append((a, b))
            return out

        polish_start = counters["solves"]
        # the EDP optimum descends until its argmin is dense-certified
        for _ in range(n_cells):
            target = argmin_where(solved)
            if target is None:
                break
            todo = unsolved_neighbors(target)
            if not todo:
                break
            ensure_solved(todo)
        # points A and B get a bounded descent each
        def snm_mask() -> np.ndarray:
            if not np.isfinite(snm_a).any():
                return np.zeros_like(solved)
            return snm_a >= 0.6 * np.nanmax(snm_a)

        for condition in (
                lambda: solved & (freq_a >= f_min_hz),
                lambda: solved & (freq_a >= f_min_hz) & snm_mask()):
            for _ in range(max(0, ab_polish_rounds)):
                target = argmin_where(condition())
                if target is None:
                    break
                todo = unsolved_neighbors(target)
                if not todo:
                    break
                ensure_solved(todo)
        n_polish = counters["solves"] - polish_start

        # 4. fill for dense-grid consumers
        filled = {name: _fill_separable(arr, solved, invalid)
                  for name, arr in metrics.items()}

    if ckpt is not None:
        ckpt.clear()
    n_valid = int((~invalid).sum())
    if obs.ACTIVE:
        obs.incr("adaptive.waves", n_waves)
        obs.incr("adaptive.solves", counters["solves"])
        obs.incr("adaptive.solves_saved", n_valid - counters["solves"])
        if counters["restored"]:
            obs.incr("adaptive.cells_restored", counters["restored"])

    grid = ExplorationGrid(
        vt=vt_grid, vdd=vdd_grid,
        frequency_hz=filled["frequency_hz"],
        edp_j_s=filled["edp_j_s"],
        snm_v=filled["snm_v"],
        total_power_w=filled["total_power_w"],
        static_power_w=filled["static_power_w"],
        failures=tuple(failures))
    return AdaptiveSweepResult(
        grid=grid, solved=solved, invalid=invalid,
        n_solves=counters["solves"], n_coarse=n_coarse,
        n_refined=n_refined, n_polish=n_polish,
        n_waves=n_waves, levels=levels)
