"""Bundled GNRFET technology: nominal tables, V_T control, parasitics.

The paper's V_T knob is the gate metal work function: "the threshold
voltage of the FET can be tuned by engineering the gate metal material to
shift the I-V curves along the x-axis" and "V_T changes by an amount equal
to the off-set".  A :class:`GNRFETTechnology` therefore carries one
nominal per-ribbon device table plus its extracted zero-offset threshold
``vt0``; requesting a target ``V_T`` returns array tables with gate offset
``vt0 - V_T``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.inverter import CircuitParameters
from repro.device.geometry import GNRFETGeometry
from repro.device.tables import DeviceTable, build_device_table
from repro.device.vt_extraction import extract_vt_linear


@dataclass
class GNRFETTechnology:
    """Nominal GNRFET technology for circuit-level exploration.

    Attributes
    ----------
    ribbon_table:
        Intrinsic table of one nominal ribbon (zero gate offset).
    vt0:
        Threshold voltage of the zero-offset device, extracted at the
        lowest non-zero tabulated drain bias.
    params:
        Extrinsic parasitics and array configuration.
    geometry:
        The nominal device geometry the table came from.
    """

    ribbon_table: DeviceTable
    vt0: float
    params: CircuitParameters
    geometry: GNRFETGeometry

    @classmethod
    def build(cls, geometry: GNRFETGeometry | None = None,
              params: CircuitParameters | None = None,
              workers: int | None = None,
              engine: str | None = None) -> "GNRFETTechnology":
        """Simulate (or fetch cached) nominal device data.

        ``workers`` fans the table's bias sweep across processes when the
        table is not already cached (default from ``REPRO_WORKERS``).
        ``engine`` picks the transport engine behind the table sweep
        (argument > ``REPRO_ENGINE`` > ``semianalytic``); tables from
        different engines are cached under different keys.
        """
        geometry = geometry or GNRFETGeometry()
        params = params or CircuitParameters()
        table = build_device_table(geometry, workers=workers,
                                   engine=engine)
        vt0 = extract_vt_linear(table.vg, table.current_a[:, 1],
                                vd=float(table.vd[1]))
        return cls(ribbon_table=table, vt0=vt0, params=params,
                   geometry=geometry)

    def gate_offset_for_vt(self, vt: float) -> float:
        """Work-function offset that places the threshold at ``vt``."""
        return self.vt0 - vt

    def array_table(self, vt: float) -> DeviceTable:
        """Nominal 4-ribbon array table at target threshold ``vt``."""
        return (self.ribbon_table.scaled(self.params.n_ribbons)
                .with_gate_offset(self.gate_offset_for_vt(vt)))

    def inverter_tables(self, vt: float) -> tuple[DeviceTable, DeviceTable]:
        """(n, p) array tables at ``vt`` (symmetric ambipolar device)."""
        table = self.array_table(vt)
        return table, table
