"""Dense V_DD-V_T exploration sweep (the data behind Fig. 3b).

Every (V_T, V_DD) cell is an independent quasi-static analysis, so the
sweep fans V_T rows out across worker processes through
:func:`repro.runtime.parallel_map`; the per-cell computation is identical
either way, so parallel and serial grids are bit-for-bit equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro import obs
from repro.circuit.inverter import inverter_snm
from repro.circuit.ring_oscillator import estimate_ring_oscillator
from repro.errors import AnalysisError, ConvergenceError
from repro.exploration.technology import GNRFETTechnology
from repro.runtime import (
    FailureRecord,
    Scheduler,
    in_worker,
    quarantine,
    resolve_scheduler,
    strict_default,
)
from repro.runtime import faults


@dataclass
class ExplorationGrid:
    """Metrics of the 15-stage FO4 ring oscillator over the (V_T, V_DD) plane.

    All arrays have shape ``(len(vt), len(vdd))``; entries where the
    oscillator cannot run (no drive) are NaN.
    """

    vt: np.ndarray
    vdd: np.ndarray
    frequency_hz: np.ndarray
    edp_j_s: np.ndarray
    snm_v: np.ndarray
    total_power_w: np.ndarray
    static_power_w: np.ndarray
    failures: tuple[FailureRecord, ...] = ()

    def log_edp(self, floor: float = 1e-40) -> np.ndarray:
        """Natural log of the EDP in aJ-ps (the paper's Fig. 3b contour
        labels are ln(EDP) with EDP in aJ-ps)."""
        edp_aj_ps = self.edp_j_s / (1e-18 * 1e-12)
        return np.log(np.clip(edp_aj_ps, floor, None))


def _explore_vt_row(tech: GNRFETTechnology, vdd_grid: np.ndarray,
                    n_stages: int, with_snm: bool, strict: bool,
                    task: tuple[int, float]
                    ) -> tuple[np.ndarray, ...]:
    """All V_DD cells of one V_T row (module-level so it pickles).

    ``task`` is ``(row_index, vt)``; the row index keys the ``worker``
    fault-injection site and quarantine records.  A device-table build
    whose retry ladder exhausts (it surfaces here as a
    :class:`~repro.errors.ConvergenceError` when the underlying sweep is
    strict) NaN-masks the whole row and yields one
    :class:`~repro.runtime.resilience.FailureRecord` unless ``strict``.
    """
    i, vt = task
    if faults.ACTIVE and in_worker():
        faults.inject("worker", i)
    n_vdd = vdd_grid.size
    freq = np.full(n_vdd, np.nan)
    edp = np.full(n_vdd, np.nan)
    snm = np.full(n_vdd, np.nan)
    p_tot = np.full(n_vdd, np.nan)
    p_stat = np.full(n_vdd, np.nan)
    failures: list[FailureRecord] = []
    try:
        if faults.ACTIVE:
            faults.inject("scf", i, detail=f"VT={vt}")
        nt, pt = tech.inverter_tables(float(vt))
    except ConvergenceError as exc:
        if strict:
            raise exc.with_context(vt=float(vt), row_index=int(i))
        failures.append(quarantine(
            exc.with_context(vt=float(vt)), site="exploration", index=i,
            coords=(i,), bias={"vt": float(vt)}))
        return freq, edp, snm, p_tot, p_stat, failures
    n_skipped = 0
    for j, vdd in enumerate(vdd_grid):
        vdd = float(vdd)
        if vt >= vdd:
            # No gate overdrive anywhere in the swing: the oscillator
            # estimate cannot produce a usable operating point, so the
            # cell stays NaN without paying for the estimate.
            n_skipped += 1
            continue
        try:
            m = estimate_ring_oscillator(nt, pt, vdd, n_stages, tech.params)
        except AnalysisError:
            continue
        freq[j] = m.frequency_hz
        edp[j] = m.edp_j_s
        p_tot[j] = m.total_power_w
        p_stat[j] = m.static_power_w
        if with_snm:
            snm[j] = inverter_snm(nt, pt, vdd, tech.params)
    if obs.ACTIVE and n_skipped:
        obs.incr("exploration.invalid_cells_skipped", n_skipped)
    return freq, edp, snm, p_tot, p_stat, failures


def sweep_vdd_vt(
    tech: GNRFETTechnology,
    vt_grid: np.ndarray,
    vdd_grid: np.ndarray,
    n_stages: int = 15,
    with_snm: bool = True,
    snm_points: int = 41,
    workers: int | None = None,
    strict: bool | None = None,
    scheduler: Scheduler | None = None,
) -> ExplorationGrid:
    """Quasi-static sweep of RO metrics and inverter SNM.

    Invalid corners (V_T >= V_DD with no headroom, vanishing drive) are
    recorded as NaN rather than raised, so contour extraction can operate
    on the full rectangle.  ``workers`` > 1 distributes V_T rows across a
    process pool (default from ``REPRO_WORKERS``); the resulting grids
    are bit-for-bit identical to a serial sweep.

    ``strict`` (default from ``REPRO_STRICT``) re-raises the first
    exhausted device-table build; otherwise the affected V_T row is
    NaN-masked and recorded on ``failures``.  A crashed worker process
    costs only its undelivered rows, which are recomputed in-process
    by the scheduler (``scheduler`` defaults to a
    :class:`~repro.runtime.scheduler.LocalScheduler`; the seam exists
    so adaptive refinement and future distributed dispatch share this
    exact code path).
    """
    vt_grid = np.asarray(vt_grid, dtype=float)
    vdd_grid = np.asarray(vdd_grid, dtype=float)
    strict = strict_default() if strict is None else strict
    shape = (vt_grid.size, vdd_grid.size)
    freq = np.full(shape, np.nan)
    edp = np.full(shape, np.nan)
    snm = np.full(shape, np.nan)
    p_tot = np.full(shape, np.nan)
    p_stat = np.full(shape, np.nan)
    failures: list[FailureRecord] = []

    tasks = [(int(i), float(vt)) for i, vt in enumerate(vt_grid)]
    fn = partial(_explore_vt_row, tech, vdd_grid, n_stages, with_snm,
                 strict)
    sched = resolve_scheduler(scheduler, workers=workers)
    with obs.span("exploration.sweep_vdd_vt",
                  grid=f"{vt_grid.size}x{vdd_grid.size}"):
        rows = sched.run(fn, tasks, strict=strict)
    for i, (f_row, e_row, s_row, pt_row, ps_row, row_failures)             in enumerate(rows):
        freq[i] = f_row
        edp[i] = e_row
        snm[i] = s_row
        p_tot[i] = pt_row
        p_stat[i] = ps_row
        failures.extend(row_failures)

    return ExplorationGrid(vt=vt_grid, vdd=vdd_grid, frequency_hz=freq,
                           edp_j_s=edp, snm_v=snm, total_power_w=p_tot,
                           static_power_w=p_stat,
                           failures=tuple(failures))
