"""Dense V_DD-V_T exploration sweep (the data behind Fig. 3b)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.inverter import inverter_snm
from repro.circuit.ring_oscillator import estimate_ring_oscillator
from repro.errors import AnalysisError
from repro.exploration.technology import GNRFETTechnology


@dataclass
class ExplorationGrid:
    """Metrics of the 15-stage FO4 ring oscillator over the (V_T, V_DD) plane.

    All arrays have shape ``(len(vt), len(vdd))``; entries where the
    oscillator cannot run (no drive) are NaN.
    """

    vt: np.ndarray
    vdd: np.ndarray
    frequency_hz: np.ndarray
    edp_j_s: np.ndarray
    snm_v: np.ndarray
    total_power_w: np.ndarray
    static_power_w: np.ndarray

    def log_edp(self, floor: float = 1e-40) -> np.ndarray:
        """Natural log of the EDP in aJ-ps (the paper's Fig. 3b contour
        labels are ln(EDP) with EDP in aJ-ps)."""
        edp_aj_ps = self.edp_j_s / (1e-18 * 1e-12)
        return np.log(np.clip(edp_aj_ps, floor, None))


def sweep_vdd_vt(
    tech: GNRFETTechnology,
    vt_grid: np.ndarray,
    vdd_grid: np.ndarray,
    n_stages: int = 15,
    with_snm: bool = True,
    snm_points: int = 41,
) -> ExplorationGrid:
    """Quasi-static sweep of RO metrics and inverter SNM.

    Invalid corners (V_T >= V_DD with no headroom, vanishing drive) are
    recorded as NaN rather than raised, so contour extraction can operate
    on the full rectangle.
    """
    vt_grid = np.asarray(vt_grid, dtype=float)
    vdd_grid = np.asarray(vdd_grid, dtype=float)
    shape = (vt_grid.size, vdd_grid.size)
    freq = np.full(shape, np.nan)
    edp = np.full(shape, np.nan)
    snm = np.full(shape, np.nan)
    p_tot = np.full(shape, np.nan)
    p_stat = np.full(shape, np.nan)

    for i, vt in enumerate(vt_grid):
        nt, pt = tech.inverter_tables(float(vt))
        for j, vdd in enumerate(vdd_grid):
            vdd = float(vdd)
            try:
                m = estimate_ring_oscillator(nt, pt, vdd, n_stages,
                                             tech.params)
            except AnalysisError:
                continue
            freq[i, j] = m.frequency_hz
            edp[i, j] = m.edp_j_s
            p_tot[i, j] = m.total_power_w
            p_stat[i, j] = m.static_power_w
            if with_snm:
                snm[i, j] = inverter_snm(nt, pt, vdd, tech.params)

    return ExplorationGrid(vt=vt_grid, vdd=vdd_grid, frequency_hz=freq,
                           edp_j_s=edp, snm_v=snm, total_power_w=p_tot,
                           static_power_w=p_stat)
