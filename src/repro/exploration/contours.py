"""Contour extraction on rectilinear grids (marching squares).

Used to regenerate the EDP / frequency / SNM contour plot of the paper's
Fig. 3(b) without a plotting library: :func:`contour_lines` returns the
polyline segments of an iso-level, which the reporting layer renders as
ASCII or exports as data series.
"""

from __future__ import annotations

import numpy as np


def interpolate_on_grid(x: np.ndarray, y: np.ndarray, z: np.ndarray,
                        xq: float, yq: float) -> float:
    """Bilinear interpolation of ``z(x, y)`` (NaN-propagating)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    z = np.asarray(z, dtype=float)
    if z.shape != (x.size, y.size):
        raise ValueError("z must have shape (len(x), len(y))")
    i = int(np.clip(np.searchsorted(x, xq) - 1, 0, x.size - 2))
    j = int(np.clip(np.searchsorted(y, yq) - 1, 0, y.size - 2))
    tx = (xq - x[i]) / (x[i + 1] - x[i])
    ty = (yq - y[j]) / (y[j + 1] - y[j])
    tx = float(np.clip(tx, 0.0, 1.0))
    ty = float(np.clip(ty, 0.0, 1.0))
    return float(z[i, j] * (1 - tx) * (1 - ty) + z[i + 1, j] * tx * (1 - ty)
                 + z[i, j + 1] * (1 - tx) * ty + z[i + 1, j + 1] * tx * ty)


def _edge_point(p1, p2, v1, v2, level):
    t = (level - v1) / (v2 - v1)
    return (p1[0] + t * (p2[0] - p1[0]), p1[1] + t * (p2[1] - p1[1]))


def contour_lines(
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
    level: float,
) -> list[tuple[tuple[float, float], tuple[float, float]]]:
    """Marching-squares segments of the iso-contour ``z = level``.

    Returns a list of ``((x1, y1), (x2, y2))`` segments; cells containing
    NaN are skipped.  Segments are unordered (adequate for plotting and
    for locating contour intersections numerically).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    z = np.asarray(z, dtype=float)
    if z.shape != (x.size, y.size):
        raise ValueError("z must have shape (len(x), len(y))")

    segments = []
    for i in range(x.size - 1):
        for j in range(y.size - 1):
            corners = [
                ((x[i], y[j]), z[i, j]),
                ((x[i + 1], y[j]), z[i + 1, j]),
                ((x[i + 1], y[j + 1]), z[i + 1, j + 1]),
                ((x[i], y[j + 1]), z[i, j + 1]),
            ]
            values = np.array([c[1] for c in corners])
            if np.any(np.isnan(values)):
                continue
            above = values >= level
            if above.all() or (~above).all():
                continue
            # Find the crossing points on cell edges.
            points = []
            for k in range(4):
                k2 = (k + 1) % 4
                if above[k] != above[k2]:
                    points.append(_edge_point(
                        corners[k][0], corners[k2][0],
                        values[k], values[k2], level))
            # 2 crossings -> one segment; 4 -> saddle, connect pairwise in
            # edge order (ambiguity resolved arbitrarily but consistently).
            if len(points) == 2:
                segments.append((points[0], points[1]))
            elif len(points) == 4:
                segments.append((points[0], points[1]))
                segments.append((points[2], points[3]))
    return segments
