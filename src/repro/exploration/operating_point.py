"""Optimum operating points on the exploration grid (Fig. 3b, A / B / C).

The paper's procedure:

* the global EDP optimum is "conventionally the preferred operating
  point", but sits at a low frequency;
* **point A** — for a desired frequency, "the optimum EDP curve is
  tangential to the frequency curve": the minimum-EDP point on the
  iso-frequency contour;
* **point B** — add reliability: the minimum-EDP point that meets both
  the frequency and an SNM floor (the intersection of the two contours);
* **point C** — same EDP and SNM as B at higher V_T, demonstrating that
  raising V_T does not buy noise robustness in GNRFET circuits (the
  frequency is lower at C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.exploration.sweep import ExplorationGrid


@dataclass(frozen=True)
class OperatingPoint:
    """One (V_T, V_DD) choice and its metrics."""

    vt: float
    vdd: float
    frequency_hz: float
    edp_j_s: float
    snm_v: float


def _grid_points(grid: ExplorationGrid):
    for i, vt in enumerate(grid.vt):
        for j, vdd in enumerate(grid.vdd):
            yield i, j, float(vt), float(vdd)


def _point(grid: ExplorationGrid, i: int, j: int) -> OperatingPoint:
    return OperatingPoint(
        vt=float(grid.vt[i]), vdd=float(grid.vdd[j]),
        frequency_hz=float(grid.frequency_hz[i, j]),
        edp_j_s=float(grid.edp_j_s[i, j]),
        snm_v=float(grid.snm_v[i, j]))


def min_edp_point(grid: ExplorationGrid) -> OperatingPoint:
    """Global EDP optimum over the plane."""
    edp = np.where(np.isnan(grid.edp_j_s), np.inf, grid.edp_j_s)
    i, j = np.unravel_index(np.argmin(edp), edp.shape)
    if not np.isfinite(edp[i, j]):
        raise AnalysisError("no valid point in the exploration grid")
    return _point(grid, int(i), int(j))


def min_edp_at_frequency(
    grid: ExplorationGrid,
    min_frequency_hz: float,
) -> OperatingPoint:
    """Point A: minimum EDP subject to a frequency floor."""
    best = None
    for i, j, _, _ in _grid_points(grid):
        f = grid.frequency_hz[i, j]
        e = grid.edp_j_s[i, j]
        if np.isnan(f) or np.isnan(e) or f < min_frequency_hz:
            continue
        if best is None or e < grid.edp_j_s[best]:
            best = (i, j)
    if best is None:
        raise AnalysisError(
            f"no grid point reaches {min_frequency_hz / 1e9:.2f} GHz")
    return _point(grid, *best)


def min_edp_at_frequency_and_snm(
    grid: ExplorationGrid,
    min_frequency_hz: float,
    min_snm_v: float,
) -> OperatingPoint:
    """Point B: minimum EDP subject to frequency and SNM floors."""
    best = None
    for i, j, _, _ in _grid_points(grid):
        f = grid.frequency_hz[i, j]
        e = grid.edp_j_s[i, j]
        s = grid.snm_v[i, j]
        if np.isnan(f) or np.isnan(e) or np.isnan(s):
            continue
        if f < min_frequency_hz or s < min_snm_v:
            continue
        if best is None or e < grid.edp_j_s[best]:
            best = (i, j)
    if best is None:
        raise AnalysisError(
            f"no grid point reaches {min_frequency_hz / 1e9:.2f} GHz "
            f"with SNM >= {min_snm_v} V")
    return _point(grid, *best)


def matched_edp_snm_higher_vt(
    grid: ExplorationGrid,
    reference: OperatingPoint,
    edp_tolerance: float = 0.25,
    snm_tolerance: float = 0.25,
) -> OperatingPoint:
    """Point C: (approximately) the same EDP and SNM as ``reference`` at a
    strictly higher V_T; among candidates, the one with the highest V_T.

    The paper uses C to show that the higher-V_T twin of B runs ~40%
    slower: trading the work-function offset away from the
    minimum-leakage alignment costs performance without buying noise
    margin.
    """
    candidates = []
    for i, j, vt, _ in _grid_points(grid):
        if vt <= reference.vt:
            continue
        e = grid.edp_j_s[i, j]
        s = grid.snm_v[i, j]
        if np.isnan(e) or np.isnan(s):
            continue
        if (abs(e - reference.edp_j_s) <= edp_tolerance * reference.edp_j_s
                and abs(s - reference.snm_v) <= snm_tolerance
                * max(reference.snm_v, 1e-6)):
            candidates.append((vt, i, j))
    if not candidates:
        raise AnalysisError("no higher-V_T point matches the reference "
                            "EDP/SNM within tolerance")
    _, i, j = max(candidates)
    return _point(grid, i, j)
