"""Technology exploration: V_DD-V_T plane sweeps, contours, Table 1.

Implements Section 3.1 of the paper: the energy-delay-product /
frequency / SNM contours of the 15-stage FO4 ring oscillator over the
(V_T, V_DD) plane (Fig. 3b), the tangency-based optimum operating points
A / B / C, and the comparison against scaled CMOS (Table 1).
"""

from repro.exploration.technology import GNRFETTechnology
from repro.exploration.sweep import ExplorationGrid, sweep_vdd_vt
from repro.exploration.contours import contour_lines, interpolate_on_grid
from repro.exploration.operating_point import (
    OperatingPoint,
    min_edp_point,
    min_edp_at_frequency,
    min_edp_at_frequency_and_snm,
    matched_edp_snm_higher_vt,
)
from repro.exploration.compare_cmos import table1_comparison, Table1Row
from repro.exploration.temperature import (
    TemperaturePoint,
    temperature_study,
    leakage_activation_energy_ev,
)

__all__ = [
    "GNRFETTechnology",
    "ExplorationGrid",
    "sweep_vdd_vt",
    "contour_lines",
    "interpolate_on_grid",
    "OperatingPoint",
    "min_edp_point",
    "min_edp_at_frequency",
    "min_edp_at_frequency_and_snm",
    "matched_edp_snm_higher_vt",
    "table1_comparison",
    "Table1Row",
    "TemperaturePoint",
    "temperature_study",
    "leakage_activation_energy_ev",
]
