"""Discretized-normal sampling for the Monte Carlo study.

Paper, Section 5.3: "The width and charge impurities for the GNRFETs were
drawn from a normal distribution, with mean width N=12 and mean charge
equal to zero.  The widths N=9/15 and charge +q/-q were set to sigma for
the two distributions, which were discretized to reflect the nature of
occurrence of variations and defects in GNRFETs."

Discretization: a standard-normal draw is mapped to the nearest of the
three discrete levels {-sigma, 0, +sigma}, i.e. thresholds at +-sigma/2.
This yields P(center) ~ 0.383 and P(each tail) ~ 0.309.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def discretized_normal_choice(
    rng: np.random.Generator,
    levels: Sequence[T],
    size: int | None = None,
) -> T | list[T]:
    """Draw from a 3-level discretized standard normal.

    ``levels`` is ``(minus_sigma_value, mean_value, plus_sigma_value)``.
    Returns one element (``size=None``) or a list of ``size`` elements.
    """
    if len(levels) != 3:
        raise ValueError(f"need exactly 3 levels, got {len(levels)}")
    n = 1 if size is None else size
    draws = rng.standard_normal(n)
    indices = np.where(draws < -0.5, 0, np.where(draws > 0.5, 2, 1))
    picked = [levels[int(i)] for i in indices]
    return picked[0] if size is None else picked


def discretized_level_probabilities() -> tuple[float, float, float]:
    """Exact probabilities of the three levels under the +-sigma/2 rule."""
    from math import erf, sqrt

    p_center = erf(0.5 / sqrt(2.0))
    p_tail = (1.0 - p_center) / 2.0
    return p_tail, p_center, p_tail
