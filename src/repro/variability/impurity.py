"""Charge-impurity study: the paper's Table 3.

Independent impurities of charge -2q ... +2q in the n- and p-device
channels (Table 3 labels the *physical* charge near each device; the
electron-hole mirror for p-devices is handled by the variant layer).
"""

from __future__ import annotations

from repro.circuit.inverter import InverterMetrics, characterize_inverter
from repro.exploration.technology import GNRFETTechnology
from repro.variability.variants import DeviceVariant
from repro.variability.width import VariabilityEntry, sensitivity_entry


def charge_impurity_study(
    tech: GNRFETTechnology,
    vdd: float = 0.4,
    vt: float = 0.13,
    charges: tuple[float, ...] = (-2.0, -1.0, 0.0, 1.0, 2.0),
) -> tuple[InverterMetrics, dict[tuple[float, float], VariabilityEntry]]:
    """Full Table 3: entries keyed by ``(p_charge, n_charge)``.

    The paper's row order runs +2q down to -2q for the p-device; the
    reporting layer handles presentation, this returns the raw grid.
    """
    nominal = characterize_inverter(*tech.inverter_tables(vt), vdd,
                                    tech.params)
    entries: dict[tuple[float, float], VariabilityEntry] = {}
    for q_p in charges:
        for q_n in charges:
            if q_p == 0.0 and q_n == 0.0:
                continue
            entry = sensitivity_entry(
                tech,
                DeviceVariant(impurity_e=q_n),
                DeviceVariant(impurity_e=q_p),
                nominal, vdd, vt)
            entries[(q_p, q_n)] = entry
    return nominal, entries
