"""Variability and defect studies (paper Sections 4-5).

Implements the paper's two anomaly mechanisms — GNR width (index)
variation and gate-oxide charge impurities — under its two array
scenarios ("one out of four GNRs affected" / "all four affected"), and
the derived studies: inverter sensitivity tables (Tables 2-4), the ring
oscillator Monte Carlo (Fig. 6), and the latch butterfly study (Fig. 7).
"""

from repro.variability.variants import (
    DeviceVariant,
    NOMINAL_VARIANT,
    variant_ribbon_table,
    variant_array_table,
)
from repro.variability.sampling import discretized_normal_choice
from repro.variability.width import width_variation_study, VariabilityEntry
from repro.variability.impurity import charge_impurity_study
from repro.variability.combined import combined_variation_study
from repro.variability.montecarlo import (
    MonteCarloResult,
    run_ring_oscillator_monte_carlo,
)
from repro.variability.latch_study import latch_variability_study, LatchCase
from repro.variability.edge_roughness import (
    RoughnessStatistics,
    roughness_ensemble,
    roughness_width_study,
    localization_length_cells,
    effective_gap_widening_ev,
)
from repro.variability.oxide import (
    OxideEntry,
    oxide_thickness_study,
    oxide_variant_geometry,
)
from repro.variability.yield_model import (
    ECCAnalysis,
    cell_failure_probability,
    required_sec_words_per_data_word,
    sample_latch_snm,
)

__all__ = [
    "RoughnessStatistics",
    "roughness_ensemble",
    "roughness_width_study",
    "localization_length_cells",
    "effective_gap_widening_ev",
    "OxideEntry",
    "oxide_thickness_study",
    "oxide_variant_geometry",
    "ECCAnalysis",
    "cell_failure_probability",
    "required_sec_words_per_data_word",
    "sample_latch_snm",
    "DeviceVariant",
    "NOMINAL_VARIANT",
    "variant_ribbon_table",
    "variant_array_table",
    "discretized_normal_choice",
    "width_variation_study",
    "VariabilityEntry",
    "charge_impurity_study",
    "combined_variation_study",
    "MonteCarloResult",
    "run_ring_oscillator_monte_carlo",
    "latch_variability_study",
    "LatchCase",
]
