"""Monte Carlo over the 15-stage ring oscillator (paper Fig. 6).

Sampling granularity
--------------------
Every GNR ribbon of every device draws its own width and impurity from
the paper's discretized normal distributions ("Monte Carlo simulations
with independent variations in width (N=9/12/15) and charge impurities
(-q/0/+q) of all inverters").  Per-ribbon independence matters: the
4-ribbon array averages over draws, which is what keeps the mean
frequency shift at the paper's ~-10% instead of the several-times-larger
shift a whole-device draw would produce.  A ``granularity="device"``
mode (all four ribbons share the draw) is provided for the ablation
bench.

Per-sample evaluation uses a stage-delay surrogate rather than a full
transient: all per-ribbon electrical quantities (switched gate charge,
effective drive, Miller charge, off-leakage) compose *linearly* into
array quantities, so one cached evaluation per (variant, polarity) pair
serves every sample.  A single calibration factor — the ratio of the
full-transient nominal frequency to the surrogate nominal frequency —
maps surrogate frequencies onto the transient scale; distribution shapes
and mean shifts (the quantities Fig. 6 reports) are what the study
asserts.  The surrogate is validated against direct transients in
``benchmarks/bench_ablation_estimators.py``.

Parallel execution
------------------
Both expensive phases dispatch through :mod:`repro.runtime`: the variant
ribbon tables are prefetched across worker processes, and the sample
loop is batched across workers.  Every sample draws from its own
generator spawned (``np.random.SeedSequence.spawn``) from the root seed
by sample index, so a fixed seed gives bit-for-bit identical
distributions at any worker count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro import obs
from repro.circuit.ring_oscillator import simulate_ring_oscillator
from repro.device.engines import engine_version, resolve_engine
from repro.device.tables import DeviceTable
from repro.errors import ConvergenceError
from repro.exploration.technology import GNRFETTechnology
from repro.runtime import (
    TABLE_ENGINE_VERSION,
    FailureRecord,
    Scheduler,
    SweepCheckpoint,
    backend_name,
    batch_indices,
    checkpoint_interval,
    content_key,
    in_worker,
    quarantine,
    resolve_scheduler,
    resolve_workers,
    resume_enabled,
    spawn_seed_sequences,
    strict_default,
    warmstart_enabled,
)
from repro.runtime import faults
from repro.variability.sampling import discretized_normal_choice
from repro.variability.variants import DeviceVariant, variant_ribbon_table


@dataclass(frozen=True)
class MonteCarloResult:
    """Sampled oscillator metrics plus the nominal reference.

    Frequencies in Hz, powers in W; ``samples`` rows align across arrays.
    """

    frequencies_hz: np.ndarray
    dynamic_power_w: np.ndarray
    static_power_w: np.ndarray
    nominal_frequency_hz: float
    nominal_dynamic_power_w: float
    nominal_static_power_w: float
    n_stages: int
    vdd: float
    calibration_factor: float = 1.0
    variant_counts: dict = field(default_factory=dict)
    failures: tuple[FailureRecord, ...] = ()

    @property
    def mean_frequency_shift(self) -> float:
        """Relative shift of the mean frequency vs nominal (paper: ~ -10%).

        Quarantined samples are NaN rows and excluded from the mean
        (``failures`` lists them); with no failures this is a plain mean.
        """
        return float(np.nanmean(self.frequencies_hz)
                     / self.nominal_frequency_hz - 1.0)

    @property
    def mean_static_power_shift(self) -> float:
        """Relative shift of mean static power (paper: ~ +23%)."""
        return float(np.nanmean(self.static_power_w)
                     / self.nominal_static_power_w - 1.0)

    @property
    def mean_dynamic_power_shift(self) -> float:
        """Relative shift of mean dynamic power (paper: ~unchanged)."""
        return float(np.nanmean(self.dynamic_power_w)
                     / self.nominal_dynamic_power_w - 1.0)


def _ribbon_electricals(tech: GNRFETTechnology, offset: float, vdd: float,
                        variant: DeviceVariant, polarity: int) -> dict:
    """Electrical quantities of one ribbon (module-level so it pickles).

    Builds (or fetches from the device-table cache) the variant ribbon
    table and condenses it to the five linear-composable quantities the
    stage-delay surrogate needs.
    """
    table = variant_ribbon_table(
        variant, polarity, tech.geometry).with_gate_offset(offset)
    vs = np.linspace(0.0, vdd, 21)
    if polarity > 0:
        caps = [sum(table.capacitances(float(v), vdd - float(v)))
                for v in vs]
    else:
        caps = [sum(table.capacitances(vdd - float(v), float(v)))
                for v in vs]
    g_gate = float(np.trapezoid(caps, vs))
    cgd_ends = (table.capacitances(0.0, vdd)[1]
                + table.capacitances(vdd, 0.0)[1])
    return {
        "g_gate": g_gate,
        "q_self": cgd_ends * vdd,
        "i1": float(table.current(vdd, vdd)),
        "i2": float(table.current(vdd, vdd / 2.0)),
        "i_off": float(table.current(0.0, vdd)),
    }


def _ribbon_task(tech: GNRFETTechnology, offset: float, vdd: float,
                 key: tuple[DeviceVariant, int]
                 ) -> tuple[tuple[DeviceVariant, int], dict]:
    """Prefetch task: one (variant, polarity) pair -> its electricals."""
    variant, polarity = key
    return key, _ribbon_electricals(tech, offset, vdd, variant, polarity)


class _RibbonCache:
    """Per-(variant, polarity) electrical quantities of a single ribbon.

    Everything stored here composes linearly over the ribbons of an
    array (currents and charges add), so array- and pair-level values
    are cheap sums at sampling time.
    """

    def __init__(self, tech: GNRFETTechnology, vdd: float, vt: float,
                 data: dict[tuple[DeviceVariant, int], dict] | None = None):
        self.tech = tech
        self.vdd = vdd
        self.offset = tech.gate_offset_for_vt(vt)
        self._data: dict[tuple[DeviceVariant, int], dict] = dict(data or {})

    def ribbon(self, variant: DeviceVariant, polarity: int) -> dict:
        key = (variant, polarity)
        if key not in self._data:
            self._data[key] = _ribbon_electricals(
                self.tech, self.offset, self.vdd, variant, polarity)
        return self._data[key]

    def prefetch(self, variants: list[DeviceVariant],
                 workers: int | None = None,
                 scheduler: Scheduler | None = None) -> None:
        """Populate every (variant, polarity) entry, optionally fanning
        the expensive table builds across worker processes."""
        keys = [(v, pol) for v in dict.fromkeys(variants)
                for pol in (+1, -1) if (v, pol) not in self._data]
        sched = resolve_scheduler(scheduler, workers=workers)
        for key, data in sched.run(
                partial(_ribbon_task, self.tech, self.offset, self.vdd),
                keys):
            self._data[key] = data

    @property
    def data(self) -> dict[tuple[DeviceVariant, int], dict]:
        return self._data

    def device(self, ribbons: list[dict]) -> dict:
        """Linear composition of per-ribbon data into one device."""
        return {k: sum(r[k] for r in ribbons)
                for k in ("g_gate", "q_self", "i1", "i2", "i_off")}


def _drive_a(device: dict, vdd: float, r_contact: float) -> float:
    i_eff = 0.5 * (device["i1"] + device["i2"])
    r = 2.0 * r_contact
    return i_eff / (1.0 + r * i_eff / max(vdd, 1e-9))


def _surrogate_oscillator(stages: list[tuple[dict, dict]],
                          nominal: tuple[dict, dict],
                          vdd: float, params) -> tuple[float, float, float]:
    """(frequency, dynamic power, ring static power) of one sample.

    ``stages`` holds (n_device, p_device) composed dictionaries; replica
    loads are nominal.
    """
    n_stages = len(stages)
    nom_n, nom_p = nominal
    c_par4 = 4.0 * params.c_parasitic_f
    q_gate_nom = nom_n["g_gate"] + nom_p["g_gate"] + c_par4 * vdd
    p_stat_nom = vdd * (nom_n["i_off"] + nom_p["i_off"]) / 2.0

    total_delay = 0.0
    energy_per_cycle = 0.0
    p_stat = n_stages * (params.fanout - 1) * p_stat_nom
    for i, (dev_n, dev_p) in enumerate(stages):
        nxt_n, nxt_p = stages[(i + 1) % n_stages]
        q_gate_next = nxt_n["g_gate"] + nxt_p["g_gate"] + c_par4 * vdd
        q_load = (params.fanout - 1) * q_gate_nom + q_gate_next
        q_self = (dev_n["q_self"] + dev_p["q_self"]
                  + (2.0 * params.c_parasitic_f + params.c_wire_f) * vdd)
        q_total = q_load + q_self
        i_n = _drive_a(dev_n, vdd, params.contact_resistance_ohm)
        i_p = _drive_a(dev_p, vdd, params.contact_resistance_ohm)
        total_delay += 0.25 * q_total * (1.0 / i_n + 1.0 / i_p)
        energy_per_cycle += q_total * vdd
        p_stat += vdd * (dev_n["i_off"] + dev_p["i_off"]) / 2.0
    freq = 1.0 / (2.0 * total_delay)
    return freq, energy_per_cycle * freq, p_stat


def _draw_device(rng: np.random.Generator, cache: _RibbonCache,
                 granularity: str, n_ribbons: int,
                 width_levels, charge_levels,
                 counts: dict[str, int], polarity: int) -> dict:
    """Draw one device's ribbons and compose their electricals."""
    if granularity == "ribbon":
        ribbons = []
        for _ in range(n_ribbons):
            v = DeviceVariant(
                n_index=discretized_normal_choice(rng, width_levels),
                impurity_e=discretized_normal_choice(rng, charge_levels))
            counts[v.label()] = counts.get(v.label(), 0) + 1
            ribbons.append(cache.ribbon(v, polarity))
        return cache.device(ribbons)
    v = DeviceVariant(
        n_index=discretized_normal_choice(rng, width_levels),
        impurity_e=discretized_normal_choice(rng, charge_levels))
    counts[v.label()] = counts.get(v.label(), 0) + 1
    return cache.device([cache.ribbon(v, polarity)] * n_ribbons)


def _evaluate_batch(
    tech: GNRFETTechnology,
    vdd: float,
    vt: float,
    n_stages: int,
    width_levels,
    charge_levels,
    granularity: str,
    ribbon_data: dict,
    nominal: tuple[dict, dict],
    strict: bool,
    task: tuple[tuple[int, ...], list[np.random.SeedSequence]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, int],
           list[FailureRecord]]:
    """Evaluate one batch of samples (worker-side entry point).

    ``task`` is ``(sample_indices, seeds)`` — global sample indices plus
    the per-sample seed sequences spawned from the root seed by sample
    index, so results are independent of how samples are batched across
    workers — ``workers=1`` and ``workers=4`` are bit-for-bit identical,
    and a resumed run may re-batch the remaining samples freely.

    The ``scf`` fault-injection site fires per sample (keyed by the
    global sample index, before any draws, so variant counts stay
    exact); the ``worker`` site is keyed by the batch's first sample
    index.  A failed sample is NaN-masked and recorded unless
    ``strict``.
    """
    indices, seeds = task
    if faults.ACTIVE and in_worker():
        faults.inject("worker", indices[0] if indices else 0)
    cache = _RibbonCache(tech, vdd, vt, data=ribbon_data)
    n_ribbons = tech.params.n_ribbons
    n = len(seeds)
    freqs = np.full(n, np.nan)
    p_dyns = np.full(n, np.nan)
    p_stats = np.full(n, np.nan)
    counts: dict[str, int] = {}
    failures: list[FailureRecord] = []
    for k, seed_seq in enumerate(seeds):
        sample = int(indices[k])
        rng = np.random.default_rng(seed_seq)
        try:
            if faults.ACTIVE:
                faults.inject("scf", sample, detail=f"sample={sample}")
            stages = [
                (_draw_device(rng, cache, granularity, n_ribbons,
                              width_levels, charge_levels, counts, +1),
                 _draw_device(rng, cache, granularity, n_ribbons,
                              width_levels, charge_levels, counts, -1))
                for _ in range(n_stages)]
            f, p_dyn, p_stat = _surrogate_oscillator(stages, nominal, vdd,
                                                     tech.params)
        except ConvergenceError as exc:
            if strict:
                raise exc.with_context(sample_index=sample)
            failures.append(quarantine(
                exc, site="montecarlo", index=sample, coords=(sample,),
                bias={"vdd": float(vdd), "vt": float(vt)}))
            continue
        freqs[k] = f
        p_dyns[k] = p_dyn
        p_stats[k] = p_stat
    return freqs, p_dyns, p_stats, counts, failures


def run_ring_oscillator_monte_carlo(
    tech: GNRFETTechnology,
    n_samples: int = 1000,
    vdd: float = 0.4,
    vt: float = 0.13,
    n_stages: int = 15,
    width_levels: tuple[int, int, int] = (9, 12, 15),
    charge_levels: tuple[float, float, float] = (-1.0, 0.0, 1.0),
    seed: int = 2008,
    granularity: str = "ribbon",
    calibrate_against_transient: bool = False,  # repro: nokey[RPA601] rescales raw checkpointed frequencies at return time
    workers: int | None = None,  # repro: nokey[RPA601] parallelism degree; per-sample spawned RNG streams are worker-count independent
    strict: bool | None = None,  # repro: nokey[RPA601] failure policy only; surviving samples agree either way
    checkpoint: int | None = None,  # repro: nokey[RPA601] snapshot cadence only, not sample content
    resume: bool | None = None,  # repro: nokey[RPA601] whether to load the checkpoint this key names, not what it holds
    scheduler: Scheduler | None = None,  # repro: nokey[RPA601] dispatch policy; schedulers must return [fn(t) for t in tasks]
) -> MonteCarloResult:
    """Fig. 6: sample width/impurity variations of every inverter.

    ``granularity="ribbon"`` (default, the paper's physical situation)
    draws independently for each of the 4 ribbons of each device;
    ``"device"`` makes all ribbons of a device share one draw (the upper
    bound of Section 4's two scenarios - used by the ablation bench).

    ``calibrate_against_transient=True`` additionally runs one full
    nominal ring-oscillator transient and rescales all frequencies by the
    transient/surrogate ratio.

    ``workers`` (default from ``REPRO_WORKERS``) fans both the variant
    table builds and the sample batches across a process pool.  Every
    sample draws from its own generator spawned from ``seed`` by sample
    index, so the distributions are bit-for-bit identical at any worker
    count.

    ``strict`` (default from ``REPRO_STRICT``) re-raises the first
    failed sample; otherwise failed samples are NaN rows recorded on
    ``failures`` (the shift properties skip them).  ``checkpoint``
    (default from ``REPRO_CHECKPOINT``) is the interval in completed
    samples between atomic progress snapshots; ``resume`` (default from
    ``REPRO_RESUME``) reloads one and evaluates only the missing
    samples — bitwise-identical to an uninterrupted run because every
    sample is keyed by its global index.
    """
    if granularity not in ("ribbon", "device"):
        raise ValueError(f"granularity must be 'ribbon' or 'device', "
                         f"got {granularity!r}")
    strict = strict_default() if strict is None else strict
    interval = (checkpoint_interval() if checkpoint is None
                else max(0, int(checkpoint)))
    resume = resume_enabled() if resume is None else resume
    n_workers = resolve_workers(workers)
    sched = resolve_scheduler(scheduler, workers=workers)
    cache = _RibbonCache(tech, vdd, vt)
    n_ribbons = tech.params.n_ribbons

    # Prefetch every variant the discretized distributions can draw (the
    # expensive part when tables are cold: fans across workers).
    nominal_variant = DeviceVariant()
    reachable = [nominal_variant] + [
        DeviceVariant(n_index=n, impurity_e=q)
        for n in width_levels for q in charge_levels]
    cache.prefetch(reachable, workers=workers, scheduler=scheduler)

    nom_n = cache.device([cache.ribbon(nominal_variant, +1)] * n_ribbons)
    nom_p = cache.device([cache.ribbon(nominal_variant, -1)] * n_ribbons)
    nominal = (nom_n, nom_p)

    f_nom, p_dyn_nom, p_stat_nom = _surrogate_oscillator(
        [nominal] * n_stages, nominal, vdd, tech.params)

    calibration = 1.0
    if calibrate_against_transient:
        nt, pt = tech.inverter_tables(vt)
        metrics = simulate_ring_oscillator(nt, pt, vdd, n_stages,
                                           tech.params)
        calibration = metrics.frequency_hz / f_nom

    seeds = spawn_seed_sequences(seed, n_samples)
    eval_fn = partial(_evaluate_batch, tech, vdd, vt, n_stages,
                      width_levels, charge_levels, granularity, cache.data,
                      nominal, strict)

    freqs = np.full(n_samples, np.nan)
    p_dyns = np.full(n_samples, np.nan)
    p_stats = np.full(n_samples, np.nan)
    done = np.zeros(n_samples, dtype=bool)
    counts: dict[str, int] = {}
    failures: list[FailureRecord] = []

    ckpt: SweepCheckpoint | None = None
    if interval > 0 or resume:
        # The samples are functions of the variant device tables, so
        # everything that selects a table variant — the resolved
        # transport engine (REPRO_ENGINE), its version, the array
        # backend and the warm-start state — must be in the key, or a
        # checkpoint written under one engine could resume under
        # another.
        engine = resolve_engine(None)
        key = content_key("monte_carlo", tech.geometry, tech.params,
                          n_samples, vdd, vt, n_stages,
                          tuple(width_levels), tuple(charge_levels), seed,
                          granularity, TABLE_ENGINE_VERSION, engine,
                          engine_version(engine), backend_name(),
                          warmstart_enabled())
        ckpt = SweepCheckpoint(key, interval=interval)
        if resume:
            loaded = ckpt.load()
            if loaded is not None and loaded[0].shape == done.shape:
                done, arrays, saved_failures = loaded
                freqs = np.asarray(arrays["frequencies_hz"], dtype=float)
                p_dyns = np.asarray(arrays["dynamic_power_w"], dtype=float)
                p_stats = np.asarray(arrays["static_power_w"], dtype=float)
                counts = {str(k): int(v) for k, v in json.loads(
                    str(arrays["counts_json"])).items()}
                for record in saved_failures:
                    failures.append(record)
                    if obs.ACTIVE:
                        obs.incr("resilience.quarantined")
                        obs.record_failure(record.to_dict())

    def save_checkpoint() -> None:
        assert ckpt is not None
        ckpt.save(done, {
            "frequencies_hz": freqs, "dynamic_power_w": p_dyns,
            "static_power_w": p_stats,
            "counts_json": np.array(json.dumps(counts, sort_keys=True)),
        }, failures)

    def store(task, result) -> None:
        indices = task[0]
        b_freqs, b_dyns, b_stats, b_counts, b_failures = result
        for k, sample in enumerate(indices):
            freqs[sample] = b_freqs[k]
            p_dyns[sample] = b_dyns[k]
            p_stats[sample] = b_stats[k]
            done[sample] = True
        for label, c in b_counts.items():
            counts[label] = counts.get(label, 0) + c
        failures.extend(b_failures)

    remaining = [i for i in range(n_samples) if not done[i]]
    checkpointing = ckpt is not None and ckpt.enabled and interval > 0
    if checkpointing:
        # One batch per checkpoint interval, independent of the worker
        # count, so a killed run can resume under any parallelism.
        n_batches = max(1, -(-len(remaining) // max(1, interval)))
    elif n_workers <= 1:
        n_batches = 1
    else:
        n_batches = n_workers * 4
    tasks = []
    if remaining:
        for r in batch_indices(len(remaining), n_batches):
            idx = tuple(remaining[r.start:r.stop])
            tasks.append((idx, [seeds[i] for i in idx]))

    if not checkpointing or n_workers <= 1:
        if n_workers <= 1 and checkpointing:
            for task in tasks:
                store(task, eval_fn(task))
                save_checkpoint()
        else:
            results = sched.run(eval_fn, tasks, strict=strict,
                                chunk_size=1)
            for task, result in zip(tasks, results):
                store(task, result)
    else:
        # Parallel + checkpointing: dispatch one pool-width of batches
        # per wave so a snapshot lands between waves.
        wave_size = max(1, n_workers)
        for w in range(0, len(tasks), wave_size):
            wave = tasks[w:w + wave_size]
            results = sched.run(eval_fn, wave, strict=strict,
                                chunk_size=1)
            for task, result in zip(wave, results):
                store(task, result)
            save_checkpoint()
    if ckpt is not None:
        ckpt.clear()

    return MonteCarloResult(
        frequencies_hz=freqs * calibration,
        dynamic_power_w=p_dyns * calibration,
        static_power_w=p_stats,
        nominal_frequency_hz=f_nom * calibration,
        nominal_dynamic_power_w=p_dyn_nom * calibration,
        nominal_static_power_w=p_stat_nom,
        n_stages=n_stages, vdd=vdd,
        calibration_factor=calibration,
        variant_counts=counts,
        failures=tuple(failures))
