"""Latch variability study: butterfly curves and static power (Fig. 7).

The paper's three cases: nominal latch, single GNR affected, all GNRs
affected, with the worst-case anomaly combination "when the nGNRFET has
N=9 and a +q charge impurity, and the pGNRFET has N=18 and a -q charge
impurity".  Due to the n/p asymmetry one eye of the butterfly collapses
(near-zero SNM) and static power rises over 5x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.inverter import CircuitParameters, add_inverter, inverter_vtc
from repro.circuit.dc import solve_dc
from repro.circuit.netlist import Circuit
from repro.circuit.snm import ButterflyData, butterfly_curves, static_noise_margin
from repro.device.tables import DeviceTable
from repro.exploration.technology import GNRFETTechnology
from repro.variability.variants import DeviceVariant, variant_array_table

#: The paper's worst-case latch anomaly.
WORST_CASE_N = DeviceVariant(n_index=9, impurity_e=+1.0)
WORST_CASE_P = DeviceVariant(n_index=18, impurity_e=-1.0)


@dataclass
class LatchCase:
    """One latch configuration's butterfly and summary metrics."""

    label: str
    butterfly: ButterflyData
    snm_v: float
    static_power_w: float


def _latch_static_power(nt: DeviceTable, pt: DeviceTable, vdd: float,
                        params: CircuitParameters) -> float:
    circuit = Circuit("latch")
    q = circuit.node("q")
    qb = circuit.node("qb")
    vdd_node = circuit.node("vdd")
    circuit.fix(vdd_node, vdd)
    add_inverter(circuit, "inv1", q, qb, vdd_node, nt, pt, params)
    add_inverter(circuit, "inv2", qb, q, vdd_node, nt, pt, params)
    power = 0.0
    for q_val in (0.0, vdd):
        v0 = np.full(circuit.n_nodes, vdd / 2.0)
        v0[vdd_node] = vdd
        v0[q] = q_val
        v0[qb] = vdd - q_val
        result = solve_dc(circuit, v0=v0)
        power += vdd * abs(result.source_current(vdd_node))
    return power / 2.0


def latch_case(
    tech: GNRFETTechnology,
    label: str,
    n_variant: DeviceVariant,
    p_variant: DeviceVariant,
    n_affected: int,
    vdd: float,
    vt: float,
) -> LatchCase:
    """Evaluate one latch configuration (both inverters identical)."""
    offset = tech.gate_offset_for_vt(vt)
    nt = variant_array_table(n_variant, +1, n_affected, offset,
                             tech.params.n_ribbons, tech.geometry)
    pt = variant_array_table(p_variant, -1, n_affected, offset,
                             tech.params.n_ribbons, tech.geometry)
    vin, vout = inverter_vtc(nt, pt, vdd, tech.params)
    butterfly = butterfly_curves(vin, vout)
    return LatchCase(
        label=label,
        butterfly=butterfly,
        snm_v=static_noise_margin(butterfly),
        static_power_w=_latch_static_power(nt, pt, vdd, tech.params))


def latch_variability_study(
    tech: GNRFETTechnology,
    vdd: float = 0.4,
    vt: float = 0.13,
    n_variant: DeviceVariant = WORST_CASE_N,
    p_variant: DeviceVariant = WORST_CASE_P,
) -> list[LatchCase]:
    """The paper's three Fig. 7 cases in order: nominal / single / all."""
    nominal = DeviceVariant()
    return [
        latch_case(tech, "nominal", nominal, nominal, 0, vdd, vt),
        latch_case(tech, "single GNR affected", n_variant, p_variant,
                   1, vdd, vt),
        latch_case(tech, "all GNRs affected", n_variant, p_variant,
                   tech.params.n_ribbons, vdd, vt),
    ]
