"""Simultaneous width + impurity study: the paper's Table 4.

Worst-case combinations of width (N = 9 / 18) and charge impurity
(-q / +q) applied simultaneously to the n- and p-devices.  The paper's
headline: the combined worst case more than doubles delay, increases
static power over 7x, doubles dynamic power and drives the noise margin
to zero when all GNRs are affected.
"""

from __future__ import annotations

from repro.circuit.inverter import InverterMetrics, characterize_inverter
from repro.exploration.technology import GNRFETTechnology
from repro.variability.variants import DeviceVariant
from repro.variability.width import VariabilityEntry, sensitivity_entry

#: The paper's Table 4 axis: (index, impurity charge) combinations.
TABLE4_VARIANTS: tuple[tuple[int, float], ...] = (
    (9, -1.0), (9, +1.0), (18, -1.0), (18, +1.0),
)


def combined_variation_study(
    tech: GNRFETTechnology,
    vdd: float = 0.4,
    vt: float = 0.13,
    variants: tuple[tuple[int, float], ...] = TABLE4_VARIANTS,
) -> tuple[InverterMetrics,
           dict[tuple[tuple[int, float], tuple[int, float]], VariabilityEntry]]:
    """Full Table 4: entries keyed by ``((p_N, p_q), (n_N, n_q))``."""
    nominal = characterize_inverter(*tech.inverter_tables(vt), vdd,
                                    tech.params)
    entries = {}
    for p_spec in variants:
        for n_spec in variants:
            entry = sensitivity_entry(
                tech,
                DeviceVariant(n_index=n_spec[0], impurity_e=n_spec[1]),
                DeviceVariant(n_index=p_spec[0], impurity_e=p_spec[1]),
                nominal, vdd, vt)
            entries[(p_spec, n_spec)] = entry
    return nominal, entries
