"""Edge-roughness study: the defect mechanism the paper defers.

Section 4: "The charge impurity in the gate insulator, lattice vacancy,
or edge roughness [17] of GNR may be a defect which results in a large
performance variation ... Other defect and variability mechanisms exist
and should be explored in future studies ... by readily extending the
bottom-up simulation framework presented here."

This module is that extension, following the paper's reference [17]
(Yoon & Guo, APL 91, 073103, 2007): edge atoms are removed at random
with probability ``p`` and ballistic transport is solved in the full
real-space p_z basis (edge roughness mixes transverse modes, so mode
space does not apply).  Two statistics are produced:

* on-state transmission degradation vs roughness probability and ribbon
  width — narrow ribbons suffer more (their conducting states live
  closer to the edges), compounding the paper's width-variability story;
* transmission vs channel length at fixed roughness — the exponential
  decay whose length is the roughness-limited localization length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atomistic.bandstructure import band_gap_ev
from repro.atomistic.lattice import ArmchairGNR
from repro.device.negf_realspace import (
    RealSpaceGNRDevice,
    rough_edge_onsite,
)


@dataclass
class RoughnessStatistics:
    """Ensemble statistics of one (n_index, probability, length) point."""

    n_index: int
    vacancy_probability: float
    n_cells: int
    mean_transmission: float
    std_transmission: float
    mean_removed_atoms: float
    samples: np.ndarray

    @property
    def relative_degradation(self) -> float:
        """1 - <T>/T_ideal with T_ideal = 1 on the first plateau."""
        return 1.0 - self.mean_transmission


def _probe_energy_ev(n_index: int) -> float:
    """Energy on the first conduction plateau (mid-way to the 2nd edge)."""
    from repro.atomistic.bandstructure import subband_edges

    edges = subband_edges(n_index, n_subbands=2)
    return float(0.5 * (edges[0] + min(edges[1], edges[0] + 0.4)))


def roughness_ensemble(
    n_index: int,
    vacancy_probability: float,
    n_cells: int = 24,
    n_samples: int = 12,
    seed: int = 17,
    energy_ev: float | None = None,
    rng: np.random.Generator | None = None,
) -> RoughnessStatistics:
    """Ensemble-average first-plateau transmission under edge roughness.

    Pass an explicit ``rng`` to control the stream (e.g. from a
    spawned :class:`~numpy.random.SeedSequence`); ``seed`` is only
    used when ``rng`` is not given.
    """
    if n_samples < 1:
        raise ValueError("need at least one sample")
    if rng is None:
        rng = np.random.default_rng(seed)
    ribbon = ArmchairGNR(n_index, n_cells=n_cells)
    energy = _probe_energy_ev(n_index) if energy_ev is None else energy_ev

    samples = np.empty(n_samples)
    removed = np.empty(n_samples)
    for s in range(n_samples):
        onsite, n_removed = rough_edge_onsite(ribbon, vacancy_probability,
                                              rng)
        device = RealSpaceGNRDevice(n_index, n_cells, onsite)
        # Single probe energy per disorder sample: no energy grid to
        # batch over.
        samples[s] = device.transmission_at(energy)  # repro: noqa[RPA802]
        removed[s] = n_removed
    return RoughnessStatistics(
        n_index=n_index, vacancy_probability=vacancy_probability,
        n_cells=n_cells, mean_transmission=float(samples.mean()),
        std_transmission=float(samples.std()),
        mean_removed_atoms=float(removed.mean()), samples=samples)


def roughness_width_study(
    indices: tuple[int, ...] = (9, 12, 18),
    probabilities: tuple[float, ...] = (0.02, 0.05, 0.1),
    n_cells: int = 24,
    n_samples: int = 10,
    seed: int = 17,
) -> dict[tuple[int, float], RoughnessStatistics]:
    """Grid study: degradation vs (width, roughness probability)."""
    out = {}
    for n in indices:
        for p in probabilities:
            out[(n, p)] = roughness_ensemble(
                n, p, n_cells=n_cells, n_samples=n_samples, seed=seed)
    return out


def localization_length_cells(
    n_index: int,
    vacancy_probability: float,
    lengths_cells: tuple[int, ...] = (8, 16, 24, 32),
    n_samples: int = 10,
    seed: int = 23,
) -> tuple[float, dict[int, float]]:
    """Roughness-limited localization length from <ln T>(L).

    Fits ``<ln T> = -2 L / xi + const`` over the given channel lengths;
    returns ``(xi_in_cells, mean_lnT_by_length)``.  The ensemble average
    of ln T (not T) is the self-averaging quantity in 1-D localization.
    """
    means = {}
    for n_cells in lengths_cells:
        stats = roughness_ensemble(n_index, vacancy_probability,
                                   n_cells=n_cells, n_samples=n_samples,
                                   seed=seed)
        means[n_cells] = float(np.mean(np.log(
            np.clip(stats.samples, 1e-12, None))))
    x = np.array(list(means.keys()), dtype=float)
    y = np.array(list(means.values()))
    slope = float(np.polyfit(x, y, 1)[0])
    if slope >= 0.0:
        return np.inf, means
    return -2.0 / slope, means


def effective_gap_widening_ev(
    n_index: int,
    vacancy_probability: float,
    n_cells: int = 24,
    n_samples: int = 8,
    seed: int = 31,
    threshold: float = 0.5,
    rng: np.random.Generator | None = None,
) -> float:
    """Transport-gap widening caused by edge roughness.

    Scans energy upward from the ideal band edge until the ensemble-mean
    transmission exceeds ``threshold``; the offset from the ideal edge is
    the effective gap widening (Yoon & Guo report that roughness opens a
    transport gap beyond the structural one).
    """
    edge = band_gap_ev(n_index) / 2.0
    energies = edge + np.linspace(0.0, 0.5, 26)
    if rng is None:
        rng = np.random.default_rng(seed)
    ribbon = ArmchairGNR(n_index, n_cells=n_cells)
    trans = np.empty((n_samples, energies.size))
    for i in range(n_samples):
        onsite, _ = rough_edge_onsite(ribbon, vacancy_probability, rng)
        device = RealSpaceGNRDevice(n_index, n_cells, onsite)
        trans[i] = device.transport(energies).transmission
    mean_t = trans.mean(axis=0)
    above = np.nonzero(mean_t >= threshold)[0]
    if above.size:
        return float(energies[int(above[0])] - edge)
    return float(energies[-1] - edge)
