"""Device variants and array composition for the variability studies.

A :class:`DeviceVariant` names one anomaly configuration of a single
ribbon: its width index and the physical charge of an oxide impurity near
its source.  Array tables compose ``n_affected`` variant ribbons with
nominal ribbons ("The total current is given by the sum of the currents
in the GNRs, nominal or otherwise").

Polarity handling: circuit p-devices are evaluated through the
electron-hole mirror of an n-equivalent table, so the table built for a
p-device with *physical* impurity charge ``q`` is the n-device table with
charge ``-q`` ("a +q charge has the same effect on a pGNRFET device as a
-q charge has on an nGNRFET device").  Width is polarity-neutral.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.geometry import ChargeImpurity, GNRFETGeometry
from repro.device.tables import DeviceTable, build_device_table


@dataclass(frozen=True)
class DeviceVariant:
    """One ribbon's anomaly configuration.

    Attributes
    ----------
    n_index:
        A-GNR index (nominal 12).
    impurity_e:
        Physical oxide-impurity charge in units of e (0 = ideal oxide).
    """

    n_index: int = 12
    impurity_e: float = 0.0

    def label(self) -> str:
        if self.impurity_e:
            return f"N={self.n_index},{self.impurity_e:+g}q"
        return f"N={self.n_index}"


NOMINAL_VARIANT = DeviceVariant()


def variant_geometry(variant: DeviceVariant, polarity: int,
                     base: GNRFETGeometry | None = None) -> GNRFETGeometry:
    """Geometry of one variant ribbon as seen by its n-equivalent table."""
    base = base or GNRFETGeometry()
    charge = variant.impurity_e * (1 if polarity > 0 else -1)
    impurity = ChargeImpurity(charge_e=charge) if charge else None
    return base.with_index(variant.n_index).with_impurity(impurity)


def variant_ribbon_table(variant: DeviceVariant, polarity: int = +1,
                         base: GNRFETGeometry | None = None) -> DeviceTable:
    """Intrinsic table of one variant ribbon (cached by the device layer)."""
    return build_device_table(variant_geometry(variant, polarity, base))


def variant_array_table(
    variant: DeviceVariant,
    polarity: int,
    n_affected: int,
    gate_offset_v: float,
    n_ribbons: int = 4,
    base: GNRFETGeometry | None = None,
) -> DeviceTable:
    """Array table with ``n_affected`` variant ribbons, rest nominal.

    The common gate metal applies the same work-function offset to every
    ribbon; the offset is chosen for the *nominal* device, which is how a
    fixed design drifts when its devices vary (the mechanism behind the
    leakage explosion of small-gap variants).
    """
    if not 0 <= n_affected <= n_ribbons:
        raise ValueError(
            f"n_affected must be in [0, {n_ribbons}], got {n_affected}")
    var_tab = variant_ribbon_table(variant, polarity, base)
    nom_tab = variant_ribbon_table(NOMINAL_VARIANT, polarity, base)
    tables = [var_tab] * n_affected + [nom_tab] * (n_ribbons - n_affected)
    composed = DeviceTable.compose(
        tables, label=f"{variant.label()}x{n_affected}/{n_ribbons}")
    return composed.with_gate_offset(gate_offset_v)
