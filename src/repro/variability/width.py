"""Width-variation study: the paper's Table 2.

For every pair of n-/p-device width indices (N in {9, 12, 15, 18}) and
both array scenarios (one of four / all four GNRs affected), characterize
the FO4 inverter at the nominal operating point (V_DD = 0.4 V,
V_T = 0.13 V) and report percentage changes of delay, static power,
dynamic power and SNM relative to the nominal (N=12/N=12) inverter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.inverter import (
    InverterMetrics,
    characterize_inverter,
    inverter_snm,
    inverter_static_power_w,
)
from repro.errors import AnalysisError
from repro.exploration.technology import GNRFETTechnology
from repro.variability.variants import DeviceVariant, variant_array_table


@dataclass
class VariabilityEntry:
    """One (n-variant, p-variant) cell of a sensitivity table.

    Each metric holds ``(one_affected_pct, all_affected_pct)`` percentage
    changes relative to the nominal inverter, matching the paper's
    comma-separated table cells.
    """

    n_label: str
    p_label: str
    delay_pct: tuple[float, float]
    static_power_pct: tuple[float, float]
    dynamic_power_pct: tuple[float, float]
    snm_pct: tuple[float, float]
    metrics_one: InverterMetrics
    metrics_all: InverterMetrics


def _pct(value: float, nominal: float) -> float:
    if nominal == 0.0:
        return float("inf") if value else 0.0
    return 100.0 * (value - nominal) / nominal


def characterize_variant_inverter(
    tech: GNRFETTechnology,
    n_variant: DeviceVariant,
    p_variant: DeviceVariant,
    n_affected: int,
    vdd: float,
    vt: float,
    degenerate_ok: bool = False,
) -> InverterMetrics:
    """Characterize one variant inverter against a nominal FO4 load.

    With ``degenerate_ok=True``, a variant whose output never completes
    both logic transitions (an inverter broken by the anomaly - possible
    at the most asymmetric corners of Table 4) is reported with NaN
    delay/dynamic power instead of raising; its static power and SNM are
    still measured (the SNM of a collapsed cell is 0 by the bistability
    rule).
    """
    offset = tech.gate_offset_for_vt(vt)
    nt = variant_array_table(n_variant, +1, n_affected, offset,
                             tech.params.n_ribbons, tech.geometry)
    pt = variant_array_table(p_variant, -1, n_affected, offset,
                             tech.params.n_ribbons, tech.geometry)
    nominal = tech.inverter_tables(vt)
    try:
        return characterize_inverter(nt, pt, vdd, tech.params,
                                     load_tables=nominal)
    except AnalysisError:
        if not degenerate_ok:
            raise
        return InverterMetrics(
            delay_s=np.nan, t_plh_s=np.nan, t_phl_s=np.nan,
            static_power_w=inverter_static_power_w(nt, pt, vdd,
                                                   tech.params),
            dynamic_power_w=np.nan,
            snm_v=inverter_snm(nt, pt, vdd, tech.params),
            vdd=vdd)


def sensitivity_entry(
    tech: GNRFETTechnology,
    n_variant: DeviceVariant,
    p_variant: DeviceVariant,
    nominal: InverterMetrics,
    vdd: float,
    vt: float,
    scenarios: tuple[int, int] = (1, 4),
    degenerate_ok: bool = True,
) -> VariabilityEntry:
    """Both scenarios of one variant pair, as percentage deltas.

    Broken (swing-less) cells surface as NaN percentages (rendered as
    ``-`` by the reporting layer) rather than aborting the study.
    """
    m_one = characterize_variant_inverter(tech, n_variant, p_variant,
                                          scenarios[0], vdd, vt,
                                          degenerate_ok=degenerate_ok)
    m_all = characterize_variant_inverter(tech, n_variant, p_variant,
                                          scenarios[1], vdd, vt,
                                          degenerate_ok=degenerate_ok)
    return VariabilityEntry(
        n_label=n_variant.label(), p_label=p_variant.label(),
        delay_pct=(_pct(m_one.delay_s, nominal.delay_s),
                   _pct(m_all.delay_s, nominal.delay_s)),
        static_power_pct=(_pct(m_one.static_power_w, nominal.static_power_w),
                          _pct(m_all.static_power_w, nominal.static_power_w)),
        dynamic_power_pct=(
            _pct(m_one.dynamic_power_w, nominal.dynamic_power_w),
            _pct(m_all.dynamic_power_w, nominal.dynamic_power_w)),
        snm_pct=(_pct(m_one.snm_v, nominal.snm_v),
                 _pct(m_all.snm_v, nominal.snm_v)),
        metrics_one=m_one, metrics_all=m_all)


def width_variation_study(
    tech: GNRFETTechnology,
    vdd: float = 0.4,
    vt: float = 0.13,
    indices: tuple[int, ...] = (9, 12, 15, 18),
) -> tuple[InverterMetrics, dict[tuple[int, int], VariabilityEntry]]:
    """Full Table 2: nominal metrics plus every (N_p, N_n) cell.

    Returns ``(nominal_metrics, entries)`` with entries keyed by
    ``(p_index, n_index)`` to match the paper's row/column layout.
    """
    nominal = characterize_inverter(*tech.inverter_tables(vt), vdd,
                                    tech.params)
    entries: dict[tuple[int, int], VariabilityEntry] = {}
    for n_p in indices:
        for n_n in indices:
            if n_p == 12 and n_n == 12:
                continue
            entry = sensitivity_entry(
                tech, DeviceVariant(n_index=n_n), DeviceVariant(n_index=n_p),
                nominal, vdd, vt)
            entries[(n_p, n_n)] = entry
    return nominal, entries
