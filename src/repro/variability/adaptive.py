"""Variance-adaptive Monte Carlo for the Fig. 6 variability study.

The fixed-count study spends its whole sample budget even after every
reported statistic has converged.  This engine samples in batches and
stops as soon as a bootstrap confidence interval certifies each tracked
statistic — the mean frequency / dynamic-power / static-power shifts
and the frequency spread sigma that Fig. 6 reports — to a relative
half-width below ``target_ci``.

Prefix property (the determinism contract): the per-sample
``SeedSequence`` tree is spawned **up-front at n_max**, so stopping
after ``n`` samples yields bit-for-bit the first ``n`` samples of the
fixed-count run with the same seed — early stopping changes how *many*
samples exist, never what any sample *is*.  The convergence test uses
its own generator derived from ``(seed, n_done)``, so it never consumes
the sample stream and is independent of call history (a resumed run
makes the same stopping decision).

The sigma statistic dominates the stopping point: the bootstrap
half-width of a standard deviation shrinks as ``~1.96 / sqrt(2 n)``
regardless of the distribution, so ``target_ci=0.05`` certifies sigma
near ``n ~ 770`` — which is why the full-mode Fig. 6 study stops well
under half of its fixed 2000-sample budget, while the fast 200-sample
smoke grid (correctly) cannot certify sigma and runs to ``n_max``,
degenerating to the fixed study bit-for-bit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro import obs
from repro.device.engines import engine_version, resolve_engine
from repro.exploration.technology import GNRFETTechnology
from repro.runtime import (
    TABLE_ENGINE_VERSION,
    FailureRecord,
    Scheduler,
    SweepCheckpoint,
    backend_name,
    batch_indices,
    checkpoint_interval,
    content_key,
    resolve_scheduler,
    resolve_workers,
    resume_enabled,
    spawn_seed_sequences,
    strict_default,
    warmstart_enabled,
)
from repro.variability.montecarlo import (
    MonteCarloResult,
    _evaluate_batch,
    _RibbonCache,
    _surrogate_oscillator,
)
from repro.variability.variants import DeviceVariant

#: Environment variable: target relative CI half-width for the adaptive
#: Monte Carlo (CLI flag ``--mc-target-ci``).
MC_TARGET_CI_ENV = "REPRO_MC_TARGET_CI"

#: Bootstrap resamples per convergence check.
N_BOOTSTRAP = 256

#: Fixed entropy word mixed into the bootstrap generator's seed so it
#: can never collide with the sample tree spawned from the bare seed.
_BOOTSTRAP_STREAM = 0xB007


def mc_target_ci_default() -> float | None:
    """``REPRO_MC_TARGET_CI`` as a float, or None when unset."""
    raw = os.environ.get(MC_TARGET_CI_ENV, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"{MC_TARGET_CI_ENV} must be a float, got {raw!r}") from None


@dataclass(frozen=True)
class AdaptiveMonteCarloResult(MonteCarloResult):
    """Early-stopped Monte Carlo: a :class:`MonteCarloResult` prefix.

    The sample arrays hold exactly the ``n_used`` evaluated samples (a
    bitwise prefix of the ``n_max`` fixed-count stream).  ``converged``
    reports whether every tracked statistic met ``target_ci`` before
    the budget ran out; ``ci_halfwidths`` holds the final relative
    half-widths keyed by statistic name.
    """

    n_max: int = 0
    n_used: int = 0
    target_ci: float = 0.0
    converged: bool = False
    ci_halfwidths: dict = field(default_factory=dict)


def _bootstrap_halfwidths(freqs: np.ndarray, p_dyns: np.ndarray,
                          p_stats: np.ndarray, seed: int,
                          n_done: int) -> dict[str, float] | None:
    """Relative 95% bootstrap half-widths of the tracked statistics.

    Returns None when fewer than 8 valid samples exist (no meaningful
    resample).  The generator depends only on ``(seed, n_done)`` — not
    on how many checks ran before — so checkpoint/resume replays the
    same verdicts.
    """
    valid = np.isfinite(freqs)
    f = freqs[valid]
    pd = p_dyns[valid]
    ps = p_stats[valid]
    n = f.size
    if n < 8:
        return None
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, n_done, _BOOTSTRAP_STREAM]))
    idx = rng.integers(0, n, size=(N_BOOTSTRAP, n))
    stats = {
        "mean_frequency": (float(np.mean(f)), np.mean(f[idx], axis=1)),
        "mean_dynamic_power": (float(np.mean(pd)), np.mean(pd[idx], axis=1)),
        "mean_static_power": (float(np.mean(ps)), np.mean(ps[idx], axis=1)),
        "freq_sigma": (float(np.std(f)), np.std(f[idx], axis=1)),
    }
    out: dict[str, float] = {}
    for name, (value, resampled) in stats.items():
        half = 1.96 * float(np.std(resampled))
        scale = max(abs(value), 1e-30)
        out[name] = half / scale
    return out


def run_ring_oscillator_monte_carlo_adaptive(
    tech: GNRFETTechnology,
    n_max: int = 2000,
    target_ci: float = 0.05,
    batch: int | None = None,
    vdd: float = 0.4,
    vt: float = 0.13,
    n_stages: int = 15,
    width_levels: tuple[int, int, int] = (9, 12, 15),
    charge_levels: tuple[float, float, float] = (-1.0, 0.0, 1.0),
    seed: int = 2008,
    granularity: str = "ribbon",
    workers: int | None = None,  # repro: nokey[RPA601] parallelism degree; per-sample spawned RNG streams are worker-count independent
    strict: bool | None = None,  # repro: nokey[RPA601] failure policy only; surviving samples agree either way
    checkpoint: int | None = None,  # repro: nokey[RPA601] snapshot cadence only, not sample content
    resume: bool | None = None,  # repro: nokey[RPA601] whether to load the checkpoint this key names, not what it holds
    scheduler: Scheduler | None = None,  # repro: nokey[RPA601] dispatch policy; schedulers must return [fn(t) for t in tasks]
) -> AdaptiveMonteCarloResult:
    """Fig. 6 Monte Carlo with bootstrap-CI early stopping.

    Batches of ``batch`` samples (default ``max(25, n_max // 20)``) are
    dispatched through the scheduler seam; after each batch every
    tracked statistic's relative bootstrap half-width is compared to
    ``target_ci`` (default overridable via ``REPRO_MC_TARGET_CI``) and
    sampling stops when all pass.  The result arrays are the evaluated
    prefix of the fixed-count stream — see the module docstring for the
    exact prefix guarantee.

    ``checkpoint``/``resume`` snapshot after every batch (the interval
    counts batches on this path); a resumed run re-enters the batch
    loop at the recorded prefix and makes identical stopping decisions.
    """
    if granularity not in ("ribbon", "device"):
        raise ValueError(f"granularity must be 'ribbon' or 'device', "
                         f"got {granularity!r}")
    if not (0.0 < target_ci < 1.0):
        raise ValueError(f"target_ci must be in (0, 1), got {target_ci!r}")
    strict = strict_default() if strict is None else strict
    interval = (checkpoint_interval() if checkpoint is None
                else max(0, int(checkpoint)))
    resume = resume_enabled() if resume is None else resume
    n_workers = resolve_workers(workers)
    sched = resolve_scheduler(scheduler, workers=workers)
    batch_size = max(1, int(batch) if batch is not None
                     else max(25, n_max // 20))

    cache = _RibbonCache(tech, vdd, vt)
    n_ribbons = tech.params.n_ribbons
    nominal_variant = DeviceVariant()
    reachable = [nominal_variant] + [
        DeviceVariant(n_index=n, impurity_e=q)
        for n in width_levels for q in charge_levels]
    cache.prefetch(reachable, workers=workers, scheduler=scheduler)
    nom_n = cache.device([cache.ribbon(nominal_variant, +1)] * n_ribbons)
    nom_p = cache.device([cache.ribbon(nominal_variant, -1)] * n_ribbons)
    nominal = (nom_n, nom_p)
    f_nom, p_dyn_nom, p_stat_nom = _surrogate_oscillator(
        [nominal] * n_stages, nominal, vdd, tech.params)

    # The full seed tree exists before the first batch runs: stopping at
    # any n < n_max is a prefix of this exact stream.
    seeds = spawn_seed_sequences(seed, n_max)
    eval_fn = partial(_evaluate_batch, tech, vdd, vt, n_stages,
                      width_levels, charge_levels, granularity, cache.data,
                      nominal, strict)

    freqs = np.full(n_max, np.nan)
    p_dyns = np.full(n_max, np.nan)
    p_stats = np.full(n_max, np.nan)
    done = np.zeros(n_max, dtype=bool)
    counts: dict[str, int] = {}
    failures: list[FailureRecord] = []

    ckpt: SweepCheckpoint | None = None
    if interval > 0 or resume:
        engine = resolve_engine(None)
        key = content_key("adaptive_monte_carlo", tech.geometry,
                          tech.params, n_max, target_ci, batch_size, vdd,
                          vt, n_stages, tuple(width_levels),
                          tuple(charge_levels), seed, granularity,
                          TABLE_ENGINE_VERSION, engine,
                          engine_version(engine), backend_name(),
                          warmstart_enabled())
        ckpt = SweepCheckpoint(key, interval=interval)
        if resume:
            loaded = ckpt.load()
            if loaded is not None and loaded[0].shape == done.shape:
                done, arrays, saved_failures = loaded
                freqs = np.asarray(arrays["frequencies_hz"], dtype=float)
                p_dyns = np.asarray(arrays["dynamic_power_w"], dtype=float)
                p_stats = np.asarray(arrays["static_power_w"], dtype=float)
                counts = {str(k): int(v) for k, v in json.loads(
                    str(arrays["counts_json"])).items()}
                for record in saved_failures:
                    failures.append(record)
                    if obs.ACTIVE:
                        obs.incr("resilience.quarantined")
                        obs.record_failure(record.to_dict())

    def save_checkpoint() -> None:
        if ckpt is None or not ckpt.due():
            return
        ckpt.save(done, {
            "frequencies_hz": freqs, "dynamic_power_w": p_dyns,
            "static_power_w": p_stats,
            "counts_json": np.array(json.dumps(counts, sort_keys=True)),
        }, failures)

    n_done = int(done.sum())
    converged = False
    halfwidths: dict[str, float] = {}
    n_batches = 0
    with obs.span("variability.adaptive_monte_carlo", n_max=n_max,
                  target_ci=target_ci, batch=batch_size):
        while n_done < n_max:
            # Converged already at the resumed prefix?  Check before
            # sampling so resume cannot overshoot the fixed-run stop.
            if n_done >= 2 * batch_size:
                halfwidths = _bootstrap_halfwidths(
                    freqs[:n_done], p_dyns[:n_done], p_stats[:n_done],
                    seed, n_done) or {}
                if halfwidths and all(h <= target_ci
                                      for h in halfwidths.values()):
                    converged = True
                    break
            lo = n_done
            hi = min(n_max, n_done + batch_size)
            indices = list(range(lo, hi))
            # Sub-batch across the pool; the scheduler recovers crashed
            # workers so the batch always completes.
            n_sub = 1 if n_workers <= 1 else n_workers
            tasks = []
            for r in batch_indices(len(indices), n_sub):
                idx = tuple(indices[r.start:r.stop])
                tasks.append((idx, [seeds[i] for i in idx]))
            results = sched.run(eval_fn, tasks, strict=strict,
                                chunk_size=1)
            for task, result in zip(tasks, results):
                task_indices = task[0]
                b_freqs, b_dyns, b_stats, b_counts, b_failures = result
                for k, sample in enumerate(task_indices):
                    freqs[sample] = b_freqs[k]
                    p_dyns[sample] = b_dyns[k]
                    p_stats[sample] = b_stats[k]
                    done[sample] = True
                for label, c in b_counts.items():
                    counts[label] = counts.get(label, 0) + c
                failures.extend(b_failures)
            n_done = hi
            n_batches += 1
            save_checkpoint()
    if ckpt is not None:
        ckpt.clear()
    if not converged:
        # Report the budget-exhausted half-widths rather than stale ones.
        halfwidths = _bootstrap_halfwidths(
            freqs[:n_done], p_dyns[:n_done], p_stats[:n_done],
            seed, n_done) or {}

    if obs.ACTIVE:
        obs.incr("adaptive.mc_batches", n_batches)
        obs.incr("adaptive.mc_samples_used", n_done)
        obs.incr("adaptive.solves_saved", n_max - n_done)

    return AdaptiveMonteCarloResult(
        frequencies_hz=freqs[:n_done],
        dynamic_power_w=p_dyns[:n_done],
        static_power_w=p_stats[:n_done],
        nominal_frequency_hz=f_nom,
        nominal_dynamic_power_w=p_dyn_nom,
        nominal_static_power_w=p_stat_nom,
        n_stages=n_stages, vdd=vdd,
        calibration_factor=1.0,
        variant_counts=counts,
        failures=tuple(failures),
        n_max=n_max, n_used=n_done, target_ci=target_ci,
        converged=converged, ci_halfwidths=dict(halfwidths))
