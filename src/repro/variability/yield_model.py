"""Memory yield and ECC overhead under variability (paper Section 5.3).

The paper closes its latch study with: "Low noise margins may result in
higher error rates than scaled CMOS, though the redundancy required for
ECC as well as the high static power may be off-set by the advantages of
high density and low power that GNRFETs offer."  This module puts
numbers on that sentence:

* :func:`sample_latch_snm` — Monte Carlo over latch cells whose devices
  draw per-ribbon width/impurity variations (same distributions as the
  Fig. 6 study), with the *exact* butterfly SNM of every sampled cell;
* :func:`cell_failure_probability` — fraction of cells whose hold SNM
  falls below a noise budget;
* :class:`ECCAnalysis` — word-level failure rates of a raw word vs a
  single-error-correcting Hamming code, and the redundancy overhead at
  which the protected word meets a target failure rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from repro.circuit.inverter import inverter_vtc
from repro.circuit.snm import butterfly_curves, static_noise_margin
from repro.device.tables import DeviceTable
from repro.exploration.technology import GNRFETTechnology
from repro.variability.sampling import discretized_normal_choice
from repro.variability.variants import DeviceVariant, variant_ribbon_table


def _draw_array_table(rng, tech, polarity, offset, width_levels,
                      charge_levels) -> DeviceTable:
    ribbons = []
    for _ in range(tech.params.n_ribbons):
        variant = DeviceVariant(
            n_index=discretized_normal_choice(rng, width_levels),
            impurity_e=discretized_normal_choice(rng, charge_levels))
        ribbons.append(variant_ribbon_table(variant, polarity,
                                            tech.geometry))
    return DeviceTable.compose(ribbons).with_gate_offset(offset)


def sample_latch_snm(
    tech: GNRFETTechnology,
    n_cells: int = 200,
    vdd: float = 0.4,
    vt: float = 0.13,
    width_levels: tuple[int, int, int] = (9, 12, 15),
    charge_levels: tuple[float, float, float] = (-1.0, 0.0, 1.0),
    seed: int = 404,
    n_vtc_points: int = 31,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Hold-SNM samples of Monte Carlo latch cells (volts).

    Each cell's two inverters share their device draws (the paper's
    Fig. 7 setup: "Both inverters in the latch are assumed to have the
    same widths and impurities"), with per-ribbon sampling.  An
    explicit ``rng`` overrides ``seed``.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    offset = tech.gate_offset_for_vt(vt)
    snms = np.empty(n_cells)
    for c in range(n_cells):
        nt = _draw_array_table(rng, tech, +1, offset, width_levels,
                               charge_levels)
        pt = _draw_array_table(rng, tech, -1, offset, width_levels,
                               charge_levels)
        vin, vout = inverter_vtc(nt, pt, vdd, tech.params,
                                 n_points=n_vtc_points)
        snms[c] = static_noise_margin(butterfly_curves(vin, vout))
    return snms


def cell_failure_probability(snm_samples: np.ndarray,
                             noise_budget_v: float) -> float:
    """Fraction of cells that cannot hold data against the noise budget."""
    snm_samples = np.asarray(snm_samples, dtype=float)
    if snm_samples.size == 0:
        raise ValueError("need at least one SNM sample")
    return float(np.mean(snm_samples < noise_budget_v))


@dataclass
class ECCAnalysis:
    """Word-level reliability with and without single-error correction.

    Attributes
    ----------
    p_cell:
        Per-cell failure probability.
    data_bits:
        Word payload size (e.g. 64).
    parity_bits:
        Check bits of the SEC Hamming code for that payload
        (``r`` with ``2^r >= data + r + 1``).
    """

    p_cell: float
    data_bits: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_cell <= 1.0:
            raise ValueError("cell failure probability must be in [0, 1]")
        if self.data_bits < 1:
            raise ValueError("word needs at least one data bit")

    @property
    def parity_bits(self) -> int:
        r = 1
        while 2 ** r < self.data_bits + r + 1:
            r += 1
        return r

    @property
    def overhead(self) -> float:
        """Redundancy fraction ``parity / data``."""
        return self.parity_bits / self.data_bits

    def word_failure_raw(self) -> float:
        """P(any bit of an unprotected word fails)."""
        return 1.0 - (1.0 - self.p_cell) ** self.data_bits

    def word_failure_sec(self) -> float:
        """P(>= 2 failures in the SEC-protected word) - uncorrectable."""
        n = self.data_bits + self.parity_bits
        p = self.p_cell
        p0 = (1.0 - p) ** n
        p1 = n * p * (1.0 - p) ** (n - 1)
        return max(0.0, 1.0 - p0 - p1)

    def improvement_factor(self) -> float:
        """Raw/SEC word-failure ratio (inf when SEC eliminates failures)."""
        sec = self.word_failure_sec()
        raw = self.word_failure_raw()
        if sec == 0.0:
            return np.inf
        return raw / sec


def required_sec_words_per_data_word(p_cell: float,
                                     target_word_failure: float,
                                     data_bits: int = 64,
                                     max_interleave: int = 16) -> int:
    """Interleaving depth at which SEC meets a target failure rate.

    Splitting a data word over ``k`` interleaved SEC words shortens each
    codeword, suppressing double-error probability ~quadratically.
    Returns the smallest ``k`` that meets the target, or
    ``max_interleave + 1`` if even the deepest interleave fails.
    """
    if not 0.0 < target_word_failure < 1.0:
        raise ValueError("target failure must be in (0, 1)")
    for k in range(1, max_interleave + 1):
        bits = -(-data_bits // k)  # ceil division
        sub = ECCAnalysis(p_cell=p_cell, data_bits=bits)
        total = 1.0 - (1.0 - sub.word_failure_sec()) ** k
        if total <= target_word_failure:
            return k
    return max_interleave + 1
