"""Oxide-thickness variation study.

Section 4 names the second fabrication-control variability source:
"Variability, for example, can come from the difficulty of control of
the GNR width *or oxide thickness* in fabrication."  The paper studies
width; this module extends the same methodology to the gate-oxide
thickness.

A thicker oxide (i) reduces the insulator capacitance (weaker charge
control), and (ii) lengthens the double-gate natural length
``lambda ~ sqrt(t_ox)``, softening the Schottky-barrier band bending and
reducing the tunneling current.  Both are carried consistently: the
study scales the calibrated ``natural_length_nm`` by
``sqrt(t_ox / t_ox,nominal)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.circuit.inverter import InverterMetrics, characterize_inverter
from repro.device.geometry import GNRFETGeometry
from repro.device.tables import build_device_table
from repro.exploration.technology import GNRFETTechnology


def oxide_variant_geometry(base: GNRFETGeometry,
                           oxide_thickness_nm: float) -> GNRFETGeometry:
    """Geometry with a different oxide, natural length co-scaled."""
    if oxide_thickness_nm <= 0.0:
        raise ValueError("oxide thickness must be positive")
    scale = math.sqrt(oxide_thickness_nm / base.oxide_thickness_nm)
    return replace(base, oxide_thickness_nm=oxide_thickness_nm,
                   natural_length_nm=base.natural_length_nm * scale)


@dataclass
class OxideEntry:
    """Inverter metrics of one oxide-thickness variant (all ribbons)."""

    oxide_thickness_nm: float
    metrics: InverterMetrics
    delay_pct: float
    static_power_pct: float
    snm_pct: float


def oxide_thickness_study(
    tech: GNRFETTechnology,
    thicknesses_nm: tuple[float, ...] = (1.2, 1.5, 1.8, 2.1),
    vdd: float = 0.4,
    vt: float = 0.13,
) -> tuple[InverterMetrics, list[OxideEntry]]:
    """Inverter sensitivity to oxide thickness (both devices affected).

    The work-function offset stays at the *nominal* design value (a
    fixed gate metal), so thickness drift shifts the effective operating
    point exactly as width drift does in Table 2.
    """
    nominal = characterize_inverter(*tech.inverter_tables(vt), vdd,
                                    tech.params)
    offset = tech.gate_offset_for_vt(vt)

    def pct(value, ref):
        return 100.0 * (value - ref) / ref

    entries = []
    for t_ox in thicknesses_nm:
        geometry = oxide_variant_geometry(tech.geometry, t_ox)
        table = (build_device_table(geometry)
                 .scaled(tech.params.n_ribbons)
                 .with_gate_offset(offset))
        metrics = characterize_inverter(table, table, vdd, tech.params,
                                        load_tables=tech.inverter_tables(vt))
        entries.append(OxideEntry(
            oxide_thickness_nm=t_ox, metrics=metrics,
            delay_pct=pct(metrics.delay_s, nominal.delay_s),
            static_power_pct=pct(metrics.static_power_w,
                                 nominal.static_power_w),
            snm_pct=pct(metrics.snm_v, nominal.snm_v)))
    return nominal, entries
