"""Exception hierarchy for :mod:`repro`.

All library-specific failures derive from :class:`ReproError` so callers can
catch simulation problems without masking programming errors.
"""

from __future__ import annotations

from typing import Mapping, Sequence


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConvergenceError(ReproError):
    """An iterative solver (SCF loop, Newton, transient step) failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual norm, if known.
    context:
        Structured facts about where the solver gave up — bias point,
        geometry id, solver name, mixing configuration, retry-ladder
        rungs already tried.  Populated by the raising solver so that
        quarantine records (:mod:`repro.runtime.resilience`) and logs
        carry actionable detail instead of a bare message string.  Keys
        and values must be JSON-serializable scalars.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None,
                 context: Mapping[str, object] | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.context: dict[str, object] = dict(context) if context else {}

    def with_context(self, **facts: object) -> "ConvergenceError":
        """Merge additional facts into :attr:`context` (returns self).

        Existing keys are kept: the innermost solver knows the most
        precise value, outer layers only fill in what is still missing.
        """
        for key, value in facts.items():
            self.context.setdefault(key, value)
        return self


class DeadlineExceeded(ConvergenceError):
    """A solve (or retry-ladder rung) ran past its wall-clock deadline.

    Subclasses :class:`ConvergenceError` deliberately: a solve that
    cannot finish inside its time budget is treated exactly like a
    solve that cannot converge — retry ladders escalate past it and
    sweep quarantine NaN-masks the cell — so no wave can hang forever
    on one wedged solve.  Raised by
    :func:`repro.runtime.resilience.run_with_deadline` (the primitive
    under per-rung ladder deadlines and the distributed scheduler's
    lease enforcement).

    Attributes
    ----------
    site:
        Where the deadline was armed (``"scf"``, ``"lease"``, ...).
    rung:
        Ladder rung name when armed inside :func:`run_ladder`, else ``""``.
    deadline_s:
        The wall-clock budget that was exceeded.
    elapsed_s:
        Time actually spent before the deadline fired, if known.
    """

    def __init__(self, message: str, site: str = "", rung: str = "",
                 deadline_s: float | None = None,
                 elapsed_s: float | None = None,
                 context: Mapping[str, object] | None = None):
        merged: dict[str, object] = {"deadline_site": site}
        if rung:
            merged["deadline_rung"] = rung
        if deadline_s is not None:
            merged["deadline_s"] = float(deadline_s)
        if context:
            merged.update(context)
        super().__init__(message, context=merged)
        self.site = site
        self.rung = rung
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s


class TableRangeError(ReproError):
    """A lookup-table evaluation was requested outside the tabulated range."""


class InvalidDeviceError(ReproError):
    """A device specification is physically or structurally invalid."""


class CircuitError(ReproError):
    """A netlist is malformed (dangling nodes, missing ground, ...)."""


class AnalysisError(ReproError):
    """A post-processing step could not extract the requested quantity
    (e.g. no oscillation detected when measuring ring-oscillator frequency)."""


class GoldenError(ReproError):
    """A golden characterization file is malformed or cannot be blessed
    (wrong schema, unknown experiment, missing ``--reason``)."""


class ParallelMapError(ReproError):
    """A :func:`repro.runtime.parallel_map` worker chunk failed.

    Raised *instead of* the bare worker exception so that work already
    finished by other chunks is salvaged rather than thrown away: the
    completed chunk results (and their chunk indices) ride along on the
    wrapper, and the original worker exception is chained as
    ``__cause__``.

    Attributes
    ----------
    completed:
        Mapping of chunk index to that chunk's result list, for every
        chunk that finished successfully before the failure surfaced.
    failed:
        Mapping of chunk index to the repr of its exception.
    n_chunks:
        Total chunks dispatched.
    n_cancelled:
        Chunks cancelled before they ran (their items were never
        computed).
    chunk_size:
        Items per chunk (the last chunk may be shorter), so callers can
        map chunk indices back to item indices.  Only meaningful for
        uniform chunking; see ``chunk_offsets``.
    chunk_offsets:
        Start item index of each chunk, or ``None`` for uniform
        chunking.  Set when the dispatch used an explicit per-chunk
        size plan (work-stealing-style decreasing chunks), in which
        case ``chunk_offsets[k]`` — not ``k * chunk_size`` — maps chunk
        ``k`` back to its first item.
    """

    def __init__(self, message: str,
                 completed: Mapping[int, list] | None = None,
                 failed: Mapping[int, str] | None = None,
                 n_chunks: int = 0, n_cancelled: int = 0,
                 chunk_size: int = 1,
                 chunk_offsets: Sequence[int] | None = None):
        super().__init__(message)
        self.completed: dict[int, list] = dict(completed or {})
        self.failed: dict[int, str] = dict(failed or {})
        self.n_chunks = n_chunks
        self.n_cancelled = n_cancelled
        self.chunk_size = chunk_size
        self.chunk_offsets: tuple[int, ...] | None = (
            None if chunk_offsets is None else tuple(chunk_offsets))


class FrameError(ReproError):
    """A distributed-scheduler protocol frame is malformed.

    Raised by :mod:`repro.runtime.protocol` when a newline-delimited
    JSON frame cannot be decoded (invalid JSON, missing/unknown type,
    wrong protocol version, corrupt payload).  The scheduler treats a
    frame error from an agent as an agent failure — the agent is
    killed and its lease reassigned — never as a fatal error of the
    wave.
    """


class CheckpointError(ReproError):
    """A sweep checkpoint could not be written or read back.

    Also the vehicle of the ``checkpoint`` fault-injection site
    (:mod:`repro.runtime.faults`), which interrupts a checkpoint write
    at a chosen index to prove that resume survives torn writes.
    """


class SanitizerError(ReproError):
    """A numerical invariant was violated in an instrumented hot path.

    Raised only when the opt-in sanitizer (:mod:`repro.sanitize`) is
    active.  The attributes identify exactly where physics went wrong so
    a poisoned sweep can be traced to one operator at one energy point of
    one bias point.

    Attributes
    ----------
    operator:
        Name of the instrumented kernel (e.g. ``"recursive_greens_function"``).
    quantity:
        The checked quantity (e.g. ``"G^r diagonal block 3"``).
    energy_ev:
        Energy point at which the invariant failed, if applicable.
    bias:
        Human-readable bias description (e.g. ``"VG=0.4 V, VD=0.5 V"``).
    """

    def __init__(self, message: str, operator: str | None = None,
                 quantity: str | None = None, energy_ev: float | None = None,
                 bias: str | None = None):
        super().__init__(message)
        self.operator = operator
        self.quantity = quantity
        self.energy_ev = energy_ev
        self.bias = bias
