"""Exception hierarchy for :mod:`repro`.

All library-specific failures derive from :class:`ReproError` so callers can
catch simulation problems without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConvergenceError(ReproError):
    """An iterative solver (SCF loop, Newton, transient step) failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual norm, if known.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class TableRangeError(ReproError):
    """A lookup-table evaluation was requested outside the tabulated range."""


class InvalidDeviceError(ReproError):
    """A device specification is physically or structurally invalid."""


class CircuitError(ReproError):
    """A netlist is malformed (dangling nodes, missing ground, ...)."""


class AnalysisError(ReproError):
    """A post-processing step could not extract the requested quantity
    (e.g. no oscillation detected when measuring ring-oscillator frequency)."""
