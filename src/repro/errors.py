"""Exception hierarchy for :mod:`repro`.

All library-specific failures derive from :class:`ReproError` so callers can
catch simulation problems without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConvergenceError(ReproError):
    """An iterative solver (SCF loop, Newton, transient step) failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual norm, if known.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class TableRangeError(ReproError):
    """A lookup-table evaluation was requested outside the tabulated range."""


class InvalidDeviceError(ReproError):
    """A device specification is physically or structurally invalid."""


class CircuitError(ReproError):
    """A netlist is malformed (dangling nodes, missing ground, ...)."""


class AnalysisError(ReproError):
    """A post-processing step could not extract the requested quantity
    (e.g. no oscillation detected when measuring ring-oscillator frequency)."""


class SanitizerError(ReproError):
    """A numerical invariant was violated in an instrumented hot path.

    Raised only when the opt-in sanitizer (:mod:`repro.sanitize`) is
    active.  The attributes identify exactly where physics went wrong so
    a poisoned sweep can be traced to one operator at one energy point of
    one bias point.

    Attributes
    ----------
    operator:
        Name of the instrumented kernel (e.g. ``"recursive_greens_function"``).
    quantity:
        The checked quantity (e.g. ``"G^r diagonal block 3"``).
    energy_ev:
        Energy point at which the invariant failed, if applicable.
    bias:
        Human-readable bias description (e.g. ``"VG=0.4 V, VD=0.5 V"``).
    """

    def __init__(self, message: str, operator: str | None = None,
                 quantity: str | None = None, energy_ev: float | None = None,
                 bias: str | None = None):
        super().__init__(message)
        self.operator = operator
        self.quantity = quantity
        self.energy_ev = energy_ev
        self.bias = bias
