"""Butterfly curves and static noise margins.

The SNM of a cross-coupled pair (or of an inverter against its own mirror)
is the side of the largest square that fits inside each lobe of the
butterfly plot; the reported SNM is the *smaller* of the two lobes'
squares (the weakest eye is what noise exploits).  Computed in the
45-degree-rotated frame where the maximal square side becomes a simple
maximum vertical gap divided by sqrt(2) (Seevinck's construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ButterflyData:
    """The two transfer curves of a butterfly plot.

    ``v_in`` is the common sweep axis; ``forward`` is inverter 1's output
    (y vs x) and ``mirrored`` is inverter 2's curve reflected about the
    45-degree line (x = f2(y) plotted as y vs x).
    """

    v_in: np.ndarray
    forward: np.ndarray
    mirrored_x: np.ndarray
    mirrored_y: np.ndarray


def butterfly_curves(
    vin: np.ndarray,
    vtc_forward: np.ndarray,
    vtc_backward: np.ndarray | None = None,
) -> ButterflyData:
    """Assemble butterfly data from one or two VTCs.

    ``vtc_forward`` is ``V_R = f1(V_L)``; ``vtc_backward`` (defaults to
    the forward curve, i.e. a symmetric latch) is ``V_L = f2(V_R)`` and is
    plotted mirrored: points ``(f2(v), v)``.
    """
    vin = np.asarray(vin, dtype=float)
    fwd = np.asarray(vtc_forward, dtype=float)
    bwd = fwd if vtc_backward is None else np.asarray(vtc_backward, dtype=float)
    if fwd.shape != vin.shape or bwd.shape != vin.shape:
        raise ValueError("VTC arrays must match the input grid")
    return ButterflyData(v_in=vin, forward=fwd,
                         mirrored_x=bwd, mirrored_y=vin)


def static_noise_margin(butterfly: ButterflyData) -> float:
    """Largest-square SNM of a butterfly plot (volts).

    Both curves are rotated by 45 degrees; on a common grid of the rotated
    abscissa ``u = (x - y)/sqrt(2)``, the rotated ordinate gap
    ``v_fwd(u) - v_mir(u)`` is positive inside one lobe and negative
    inside the other.  The maximal square side in each lobe equals the
    maximal |gap| ... / sqrt(2); the SNM is the smaller lobe's value.  A
    collapsed lobe (no sign change) yields SNM 0, exactly the "one eye of
    the butterfly curve collapses" failure mode of the paper's Fig. 7.
    """
    sq2 = np.sqrt(2.0)
    # Rotate forward curve (x = vin, y = forward).
    u1 = (butterfly.v_in - butterfly.forward) / sq2
    w1 = (butterfly.v_in + butterfly.forward) / sq2
    # Rotate mirrored curve (x = mirrored_x, y = mirrored_y).
    u2 = (butterfly.mirrored_x - butterfly.mirrored_y) / sq2
    w2 = (butterfly.mirrored_x + butterfly.mirrored_y) / sq2

    # Interpolate both onto the overlapping u range.  The curves are
    # monotone in u for monotone VTCs; sort defensively.
    o1 = np.argsort(u1)
    o2 = np.argsort(u2)
    u_lo = max(u1.min(), u2.min())
    u_hi = min(u1.max(), u2.max())
    if u_hi <= u_lo:
        return 0.0
    u = np.linspace(u_lo, u_hi, 801)
    w1_u = np.interp(u, u1[o1], w1[o1])
    w2_u = np.interp(u, u2[o2], w2[o2])
    gap = w1_u - w2_u

    # Bistability check: iterate the loop map g(x) = f2(f1(x)) from both
    # corners of the sweep.  A working latch has two distinct attractors
    # (its hold states); if both corners relax to the same point the
    # cell is monostable and its hold SNM is zero by definition (the
    # paper's collapsed-eye case in Fig. 7), even though the graphical
    # construction could still wedge a square against the lone crossing.
    x_grid = butterfly.v_in

    def loop_map(x: float) -> float:
        y = float(np.interp(x, x_grid, butterfly.forward))
        return float(np.interp(y, butterfly.mirrored_y,
                               butterfly.mirrored_x))

    lo, hi = float(x_grid[0]), float(x_grid[-1])
    for _ in range(60):
        lo = loop_map(lo)
        hi = loop_map(hi)
    if abs(hi - lo) < 0.02 * (x_grid[-1] - x_grid[0]):
        return 0.0

    positive = float(np.max(gap, initial=0.0))
    negative = float(np.max(-gap, initial=0.0))
    if positive <= 0.0 or negative <= 0.0:
        return 0.0
    return min(positive, negative) / sq2
