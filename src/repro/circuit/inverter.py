"""Inverter builder and characterization (delay, power, SNM).

The extrinsic GNRFET of the paper's Fig. 3(a) is assembled here: intrinsic
table device, contact resistances ``R_S = R_D`` on both terminals, and the
parasitic junction capacitances folded into the FET element.  The
characterized configuration matches Section 5: "an inverter with a
fanout-of-4 load", the load being four replica inverter inputs.

Two characterization paths:

* :func:`characterize_inverter` — full transient + DC: the reference path
  used for the paper's Tables 2-4 and the headline operating points.
* :func:`estimate_inverter_delay` / :func:`estimate_inverter_energy` —
  quasi-static estimators (effective-current / total-switched-charge),
  two orders of magnitude faster, used for the dense V_DD-V_T exploration
  sweeps of Fig. 3(b) and validated against the transient path in an
  ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.dc import solve_dc
from repro.circuit.elements import Capacitor, Resistor, TableFET
from repro.circuit.metrics import propagation_delays
from repro.circuit.netlist import Circuit
from repro.circuit.snm import butterfly_curves, static_noise_margin
from repro.circuit.transient import simulate_transient
from repro.circuit.vtc import compute_vtc
from repro.device.tables import DeviceTable


@dataclass(frozen=True)
class CircuitParameters:
    """Extrinsic parasitics and array configuration (paper Fig. 3a).

    Attributes
    ----------
    contact_resistance_ohm:
        ``R_S = R_D`` per device; paper range 1-100 kOhm, nominal 10 kOhm.
    c_parasitic_af_per_nm:
        Junction capacitance per unit contact width; paper range
        0.01-0.1 aF/nm.
    contact_width_nm:
        Total array contact width (4 GNRs x 10 nm pitch = 40 nm).
    n_ribbons:
        Ribbons per GNRFET channel.
    fanout:
        Load inverters per driving inverter.
    c_wire_f:
        Fixed load on every driven (non-replica) inverter output: local
        interconnect plus contact-pad capacitance.  The paper's absolute
        per-stage switched energy (its inverter dynamic power and ring
        EDP) implies an effective output load well above the stated
        device parasitics alone; this knob is calibrated once so the
        nominal 15-stage ring oscillator lands at the paper's point-B
        frequency (~3.3 GHz), after which delay, dynamic power and EDP
        all fall onto the paper's scale (see EXPERIMENTS.md).
    """

    contact_resistance_ohm: float = 10e3
    c_parasitic_af_per_nm: float = 0.05
    contact_width_nm: float = 40.0
    n_ribbons: int = 4
    fanout: int = 4
    c_wire_f: float = 45e-18

    @property
    def c_parasitic_f(self) -> float:
        """``C_GS,e = C_GD,e`` in farads."""
        return self.c_parasitic_af_per_nm * 1e-18 * self.contact_width_nm


@dataclass(frozen=True)
class InverterMetrics:
    """Characterization output of one inverter configuration."""

    delay_s: float
    t_plh_s: float
    t_phl_s: float
    static_power_w: float
    dynamic_power_w: float
    snm_v: float
    vdd: float


def add_inverter(
    circuit: Circuit,
    prefix: str,
    input_node: int,
    output_node: int,
    vdd_node: int,
    n_table: DeviceTable,
    p_table: DeviceTable,
    params: CircuitParameters,
    with_contact_resistors: bool = True,
) -> tuple[TableFET, TableFET]:
    """Wire one inverter; returns its (n, p) FET elements.

    ``with_contact_resistors=False`` builds the lightweight variant used
    for replica loads in large ring oscillators (FETs sit directly on the
    rails; parasitic caps retained).
    """
    cp = params.c_parasitic_f
    gnd = circuit.node("0")
    if with_contact_resistors:
        if params.c_wire_f > 0.0:
            circuit.add(Capacitor(output_node, gnd, params.c_wire_f))
        r = params.contact_resistance_ohm
        nd = circuit.node(f"{prefix}.nd")
        ns = circuit.node(f"{prefix}.ns")
        pd = circuit.node(f"{prefix}.pd")
        ps = circuit.node(f"{prefix}.ps")
        circuit.add(Resistor(output_node, nd, r))
        circuit.add(Resistor(ns, gnd, r))
        circuit.add(Resistor(output_node, pd, r))
        circuit.add(Resistor(ps, vdd_node, r))
        nfet = TableFET(nd, input_node, ns, n_table, polarity=+1,
                        c_par_gs_f=cp, c_par_gd_f=cp)
        pfet = TableFET(pd, input_node, ps, p_table, polarity=-1,
                        c_par_gs_f=cp, c_par_gd_f=cp)
    else:
        nfet = TableFET(output_node, input_node, gnd, n_table, polarity=+1,
                        c_par_gs_f=cp, c_par_gd_f=cp)
        pfet = TableFET(output_node, input_node, vdd_node, p_table,
                        polarity=-1, c_par_gs_f=cp, c_par_gd_f=cp)
    circuit.add(nfet)
    circuit.add(pfet)
    return nfet, pfet


def build_inverter_chain(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    params: CircuitParameters | None = None,
    load_tables: tuple[DeviceTable, DeviceTable] | None = None,
) -> Circuit:
    """DUT inverter with a fanout-of-``params.fanout`` replica load.

    Nodes: ``in`` (fixed input), ``out`` (DUT output), ``vdd``.  The load
    inverters' inputs hang on ``out``; their own outputs are simulated but
    unloaded.  ``load_tables`` lets the load be a different (e.g. nominal)
    device than the DUT, which is how the variability studies keep the
    load fixed while varying the driver.
    """
    params = params or CircuitParameters()
    load_tables = load_tables or (n_table, p_table)
    circuit = Circuit("inverter-fo4")
    vin = circuit.node("in")
    vout = circuit.node("out")
    vdd_node = circuit.node("vdd")
    circuit.fix(vdd_node, vdd)
    circuit.fix(vin, 0.0)

    add_inverter(circuit, "dut", vin, vout, vdd_node,
                 n_table, p_table, params)
    for k in range(params.fanout):
        load_out = circuit.node(f"load{k}.out")
        add_inverter(circuit, f"load{k}", vout, load_out, vdd_node,
                     load_tables[0], load_tables[1], params,
                     with_contact_resistors=False)
    return circuit


def inverter_static_power_w(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    params: CircuitParameters | None = None,
) -> float:
    """Average leakage power over the two input states.

    ``P_stat = V_DD (I_leak(in=0) + I_leak(in=V_DD)) / 2`` from DC solves
    of a single (unloaded) inverter.
    """
    params = params or CircuitParameters()
    circuit = Circuit("inverter-dc")
    vin = circuit.node("in")
    vout = circuit.node("out")
    vdd_node = circuit.node("vdd")
    circuit.fix(vdd_node, vdd)
    circuit.fix(vin, 0.0)
    add_inverter(circuit, "dut", vin, vout, vdd_node,
                 n_table, p_table, params)

    leak = 0.0
    for vin_val in (0.0, vdd):
        circuit.fixed[vin] = vin_val
        result = solve_dc(circuit)
        leak += abs(result.source_current(vdd_node))
    return vdd * leak / 2.0


def inverter_vtc(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    params: CircuitParameters | None = None,
    n_points: int = 61,
) -> tuple[np.ndarray, np.ndarray]:
    """Voltage transfer curve of a single inverter."""
    params = params or CircuitParameters()
    circuit = Circuit("inverter-vtc")
    vin = circuit.node("in")
    vout = circuit.node("out")
    vdd_node = circuit.node("vdd")
    circuit.fix(vdd_node, vdd)
    circuit.fix(vin, 0.0)
    add_inverter(circuit, "dut", vin, vout, vdd_node,
                 n_table, p_table, params)
    grid = np.linspace(0.0, vdd, n_points)
    return grid, compute_vtc(circuit, vin, vout, grid)


def inverter_snm(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    params: CircuitParameters | None = None,
) -> float:
    """SNM of an inverter pair (both inverters identical)."""
    vin, vout = inverter_vtc(n_table, p_table, vdd, params)
    return static_noise_margin(butterfly_curves(vin, vout))


def characterize_inverter(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    params: CircuitParameters | None = None,
    load_tables: tuple[DeviceTable, DeviceTable] | None = None,
    dt_s: float = 0.25e-12,
    cycle_s: float | None = None,
) -> InverterMetrics:
    """Full characterization: FO4 transient delay, powers, SNM.

    Dynamic power is the supply energy of one full output cycle (one fall
    + one rise of the DUT output) in excess of the static leakage energy,
    divided by the cycle period.  The period defaults to 16x a
    quasi-static delay estimate so that every variant is compared at the
    same activity (the paper compares variants at a fixed operating
    point).
    """
    params = params or CircuitParameters()
    est = estimate_inverter_delay(n_table, p_table, vdd, params)
    if cycle_s is None:
        cycle_s = max(16.0 * est, 40e-12)
    ramp = max(2.0 * est, 2e-12)
    half = cycle_s / 2.0

    def vin_waveform(t: float) -> float:
        # Low for the first half-cycle (output falls after the initial
        # rise edge), then high.  Start low->high at t=ramp.
        t_mod = t % cycle_s
        if t_mod < ramp:
            return vdd * (t_mod / ramp)
        if t_mod < half:
            return vdd
        if t_mod < half + ramp:
            return vdd * (1.0 - (t_mod - half) / ramp)
        return 0.0

    circuit = build_inverter_chain(n_table, p_table, vdd, params,
                                   load_tables)
    vin = circuit.node("in")
    vout = circuit.node("out")
    vdd_node = circuit.node("vdd")

    # Initial condition: DC with input low; also record the two static
    # output levels so delays can be measured at the *actual* mid-swing
    # (degraded variants may not reach the rails).
    circuit.fixed[vin] = 0.0
    dc0 = solve_dc(circuit)
    v_out_high = dc0.voltage(vout)
    circuit.fixed[vin] = vdd
    v_out_low = solve_dc(circuit, v0=dc0.voltages).voltage(vout)
    out_threshold = 0.5 * (v_out_high + v_out_low)
    circuit.fixed[vin] = 0.0
    circuit.fixed[vin] = vin_waveform

    # Simulate two full cycles; measure on the second (settled) cycle.
    # Heavily degraded variants can settle slower than the quasi-static
    # estimate suggests; retry with a doubled cycle if an edge is missed.
    from repro.errors import AnalysisError

    for _attempt in range(3):
        result = simulate_transient(circuit, 2.0 * cycle_s, dt_s,
                                    dc0.voltages,
                                    monitor_supplies=(vdd_node,))
        t = result.time_s
        second = t >= cycle_s
        try:
            t_plh, t_phl = propagation_delays(
                t[second], result.v(vin)[second], result.v(vout)[second],
                vdd, out_threshold_v=out_threshold)
            break
        except AnalysisError:
            cycle_s *= 2.0
            half = cycle_s / 2.0
            dt_s *= 1.5
    else:
        raise AnalysisError(
            "inverter output never completed both transitions; the "
            "variant may have lost its logic swing")
    delay = 0.5 * (t_plh + t_phl)

    p_stat = inverter_static_power_w(n_table, p_table, vdd, params)
    # Energy of the second cycle from the DUT supply (includes the loads;
    # they switch with the DUT, which is the realistic FO4 context).
    i_vdd = result.supply_currents[circuit.node("vdd")]
    e_cycle = float(np.trapezoid(i_vdd[second] * vdd, t[second]))
    # Subtract leakage of the whole circuit: the DUT leaks at its own
    # rate; the replicas leak at the (possibly different) load-device
    # rate.
    lt = load_tables or (n_table, p_table)
    p_stat_load = (p_stat if lt[0] is n_table and lt[1] is p_table
                   else inverter_static_power_w(lt[0], lt[1], vdd, params))
    leak_total = p_stat + params.fanout * p_stat_load
    p_dyn = max(e_cycle / cycle_s - leak_total, 0.0)

    snm = inverter_snm(n_table, p_table, vdd, params)
    return InverterMetrics(delay_s=delay, t_plh_s=t_plh, t_phl_s=t_phl,
                           static_power_w=p_stat, dynamic_power_w=p_dyn,
                           snm_v=snm, vdd=vdd)


# --------------------------------------------------------------------- #
# Quasi-static estimators (for dense sweeps)
# --------------------------------------------------------------------- #
def switched_gate_charge_c(
    n_table: DeviceTable, p_table: DeviceTable, vdd: float,
    params: CircuitParameters,
) -> float:
    """Total gate charge switched at an inverter input over a full swing.

    Integrates ``C_G(V) = C_GS + C_GD`` of both devices (intrinsic +
    parasitic) along the input transition; used as the per-fanout load
    charge of the quasi-static delay estimator.
    """
    vs = np.linspace(0.0, vdd, 21)
    c_tot = np.zeros_like(vs)
    for k, v in enumerate(vs):
        cgs_n, cgd_n = n_table.capacitances(v, vdd - v)
        cgs_p, cgd_p = p_table.capacitances(vdd - v, v)
        c_tot[k] = (float(cgs_n) + float(cgd_n) + float(cgs_p)
                    + float(cgd_p) + 4.0 * params.c_parasitic_f)
    return float(np.trapezoid(c_tot, vs))


def estimate_inverter_delay(
    n_table: DeviceTable, p_table: DeviceTable, vdd: float,
    params: CircuitParameters | None = None,
) -> float:
    """Quasi-static FO4 delay estimate.

    ``t_p ~ Q_sw / (2 I_eff)`` with the switched charge of the
    fanout-of-4 load plus the driver's own output charge, and the
    standard effective drive current
    ``I_eff = (I(V_DD, V_DD) + I(V_DD, V_DD/2)) / 2`` averaged over the
    n- and p-type devices (contact resistance degrades the drive through
    the IR drop at ``I_eff``).
    """
    params = params or CircuitParameters()
    q_load = params.fanout * switched_gate_charge_c(
        n_table, p_table, vdd, params)
    # Driver self-loading: drain-side charge of both devices plus the
    # output wire/pad load.
    q_self = params.c_wire_f * vdd
    for v in (0.0, vdd):
        _, cgd_n = n_table.capacitances(v, vdd - v)
        _, cgd_p = p_table.capacitances(vdd - v, v)
        q_self += (float(cgd_n) + float(cgd_p)
                   + 2.0 * params.c_parasitic_f) * vdd

    def drive(table: DeviceTable) -> float:
        i1 = float(table.current(vdd, vdd))
        i2 = float(table.current(vdd, vdd / 2.0))
        i_eff = 0.5 * (i1 + i2)
        # First-order contact-resistance degradation: the source IR drop
        # reduces V_GS.
        r = 2.0 * params.contact_resistance_ohm
        return i_eff / (1.0 + r * i_eff / max(vdd, 1e-9))

    i_n = drive(n_table)
    i_p = drive(p_table)
    if i_n <= 0.0 or i_p <= 0.0:
        return np.inf
    # 50% output swing: half the full-swing charge, delivered at I_eff.
    q_total = q_load + q_self
    t_fall = 0.5 * q_total / i_n
    t_rise = 0.5 * q_total / i_p
    return 0.5 * (t_fall + t_rise)


def estimate_inverter_energy(
    n_table: DeviceTable, p_table: DeviceTable, vdd: float,
    params: CircuitParameters | None = None,
) -> float:
    """Quasi-static switching energy per full cycle, ``Q_sw V_DD``."""
    params = params or CircuitParameters()
    q_load = params.fanout * switched_gate_charge_c(
        n_table, p_table, vdd, params)
    q_out = (4.0 * params.c_parasitic_f + params.c_wire_f) * vdd
    return (q_load + q_out) * vdd
