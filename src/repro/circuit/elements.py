"""Circuit elements: linear R/C, table-lookup FETs, compact-model MOSFETs.

The table FET implements the paper's extrinsic GNRFET of Fig. 3(a): the
intrinsic lookup-table device plus parasitic junction capacitances.  The
contact resistances of the figure are separate :class:`Resistor` elements
added by the circuit builders (they need their own internal nodes).

The :class:`CompactMOSFET` hosts the scaled-CMOS baseline: any object with
``ids(vgs, vds) -> (i, di_dvgs, di_dvds)`` and
``capacitances(vgs, vds) -> (cgs, cgd)`` works, which is how the
PTM-calibrated alpha-power model of :mod:`repro.cmos` plugs into the same
engine.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import GROUND, voltage_at
from repro.device.tables import DeviceTable


def _add_current(f: np.ndarray, node: int, value: float) -> None:
    if node != GROUND:
        f[node] += value


def _add_jac(jac: np.ndarray | None, row: int, col: int, value: float) -> None:
    if jac is not None and row != GROUND and col != GROUND:
        jac[row, col] += value


class Resistor:
    """Linear resistor between two nodes."""

    def __init__(self, n1: int, n2: int, resistance_ohm: float):
        if resistance_ohm <= 0.0:
            raise ValueError(f"resistance must be positive, got {resistance_ohm}")
        self.nodes = (n1, n2)
        self.resistance_ohm = float(resistance_ohm)

    def stamp_static(self, v: np.ndarray, f: np.ndarray,
                     jac: np.ndarray | None) -> None:
        n1, n2 = self.nodes
        g = 1.0 / self.resistance_ohm
        i = g * (voltage_at(v, n1) - voltage_at(v, n2))
        _add_current(f, n1, i)
        _add_current(f, n2, -i)
        _add_jac(jac, n1, n1, g)
        _add_jac(jac, n1, n2, -g)
        _add_jac(jac, n2, n1, -g)
        _add_jac(jac, n2, n2, g)

    def capacitor_stamps(self, v: np.ndarray) -> list[tuple[int, int, float]]:
        return []


class Capacitor:
    """Linear capacitor between two nodes."""

    def __init__(self, n1: int, n2: int, capacitance_f: float):
        if capacitance_f < 0.0:
            raise ValueError(f"capacitance must be >= 0, got {capacitance_f}")
        self.nodes = (n1, n2)
        self.capacitance_f = float(capacitance_f)

    def stamp_static(self, v: np.ndarray, f: np.ndarray,
                     jac: np.ndarray | None) -> None:
        return None

    def capacitor_stamps(self, v: np.ndarray) -> list[tuple[int, int, float]]:
        return [(self.nodes[0], self.nodes[1], self.capacitance_f)]


class CurrentSource:
    """Constant current injected from ``n_from`` into ``n_to``."""

    def __init__(self, n_from: int, n_to: int, current_a: float):
        self.nodes = (n_from, n_to)
        self.current_a = float(current_a)

    def stamp_static(self, v: np.ndarray, f: np.ndarray,
                     jac: np.ndarray | None) -> None:
        _add_current(f, self.nodes[0], self.current_a)
        _add_current(f, self.nodes[1], -self.current_a)

    def capacitor_stamps(self, v: np.ndarray) -> list[tuple[int, int, float]]:
        return []


class TableFET:
    """Extrinsic GNRFET: lookup-table intrinsic device + parasitic caps.

    Parameters
    ----------
    drain, gate, source:
        Node indices (the builders put the contact resistors outside, so
        these are the *intrinsic* terminals).
    table:
        The intrinsic :class:`DeviceTable` (already composed over the GNR
        array and carrying the gate work-function offset).
    polarity:
        ``+1`` for n-type, ``-1`` for p-type.  A p-device is the
        electron-hole mirror of its table:
        ``I_p(v_gs, v_ds) = -I_table(-v_gs, -v_ds)``.
    c_par_gs_f, c_par_gd_f:
        Extrinsic junction capacitances (``C_GS,e``, ``C_GD,e``).
    """

    def __init__(self, drain: int, gate: int, source: int,
                 table: DeviceTable, polarity: int = +1,
                 c_par_gs_f: float = 0.0, c_par_gd_f: float = 0.0):
        if polarity not in (+1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {polarity}")
        self.nodes = (drain, gate, source)
        self.table = table
        self.polarity = polarity
        self.c_par_gs_f = float(c_par_gs_f)
        self.c_par_gd_f = float(c_par_gd_f)

    def _bias(self, v) -> tuple[float, float]:
        d, g, s = self.nodes
        vgs = voltage_at(v, g) - voltage_at(v, s)
        vds = voltage_at(v, d) - voltage_at(v, s)
        return vgs, vds

    def stamp_static(self, v: np.ndarray, f: np.ndarray,
                     jac: np.ndarray | None) -> None:
        d, g, s = self.nodes
        vgs, vds = self._bias(v)
        p = self.polarity
        i, di_dvgs, di_dvds = self.table.current_and_derivatives(
            p * vgs, p * vds)
        i = p * float(i)
        di_dvgs = float(di_dvgs)
        di_dvds = float(di_dvds)
        # Current flows drain -> source inside the device for i > 0.
        _add_current(f, d, i)
        _add_current(f, s, -i)
        # dI/dVd = di_dvds ; dI/dVg = di_dvgs ; dI/dVs = -(both).
        _add_jac(jac, d, d, di_dvds)
        _add_jac(jac, d, g, di_dvgs)
        _add_jac(jac, d, s, -(di_dvds + di_dvgs))
        _add_jac(jac, s, d, -di_dvds)
        _add_jac(jac, s, g, -di_dvgs)
        _add_jac(jac, s, s, di_dvds + di_dvgs)

    def capacitor_stamps(self, v: np.ndarray) -> list[tuple[int, int, float]]:
        d, g, s = self.nodes
        vgs, vds = self._bias(v)
        p = self.polarity
        cgs_i, cgd_i = self.table.capacitances(p * vgs, p * vds)
        return [
            (g, s, float(cgs_i) + self.c_par_gs_f),
            (g, d, float(cgd_i) + self.c_par_gd_f),
        ]

    def current(self, v: np.ndarray) -> float:
        """Drain-to-source channel current at node voltages ``v``."""
        vgs, vds = self._bias(v)
        p = self.polarity
        return p * float(self.table.current(p * vgs, p * vds))


class CompactMOSFET:
    """FET driven by a compact model (the scaled-CMOS baseline).

    ``model`` must provide ``ids(vgs, vds)`` returning
    ``(i, di_dvgs, di_dvds)`` for an n-type device in its first quadrant,
    and ``capacitances(vgs, vds)`` returning ``(cgs, cgd)`` in farads.
    p-type devices mirror the model exactly like :class:`TableFET`.
    """

    def __init__(self, drain: int, gate: int, source: int, model,
                 polarity: int = +1):
        if polarity not in (+1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {polarity}")
        self.nodes = (drain, gate, source)
        self.model = model
        self.polarity = polarity

    def _bias(self, v) -> tuple[float, float]:
        d, g, s = self.nodes
        vgs = voltage_at(v, g) - voltage_at(v, s)
        vds = voltage_at(v, d) - voltage_at(v, s)
        return vgs, vds

    def stamp_static(self, v: np.ndarray, f: np.ndarray,
                     jac: np.ndarray | None) -> None:
        d, g, s = self.nodes
        vgs, vds = self._bias(v)
        p = self.polarity
        i, di_dvgs, di_dvds = self.model.ids(p * vgs, p * vds)
        i = p * float(i)
        di_dvgs = float(di_dvgs)
        di_dvds = float(di_dvds)
        _add_current(f, d, i)
        _add_current(f, s, -i)
        _add_jac(jac, d, d, di_dvds)
        _add_jac(jac, d, g, di_dvgs)
        _add_jac(jac, d, s, -(di_dvds + di_dvgs))
        _add_jac(jac, s, d, -di_dvds)
        _add_jac(jac, s, g, -di_dvgs)
        _add_jac(jac, s, s, di_dvds + di_dvgs)

    def capacitor_stamps(self, v: np.ndarray) -> list[tuple[int, int, float]]:
        d, g, s = self.nodes
        vgs, vds = self._bias(v)
        p = self.polarity
        cgs, cgd = self.model.capacitances(p * vgs, p * vds)
        return [(g, s, float(cgs)), (g, d, float(cgd))]

    def current(self, v: np.ndarray) -> float:
        vgs, vds = self._bias(v)
        p = self.polarity
        i, _, _ = self.model.ids(p * vgs, p * vds)
        return p * float(i)
