"""DC operating point: damped Newton with source stepping.

The residual at each free node is the sum of element currents flowing out
of it (KCL); fixed nodes (supplies, inputs) contribute known voltages.  A
small ``gmin`` conductance to ground conditions the Jacobian in cut-off
regions where table derivatives vanish.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs, sanitize
from repro.circuit.netlist import Circuit, GROUND
from repro.errors import ConvergenceError


@dataclass(frozen=True)
class DCResult:
    """Converged DC solution.

    ``voltages`` is the full node-voltage vector (fixed nodes included);
    use :func:`node_current` / :meth:`source_current` for source currents.
    """

    circuit: Circuit
    voltages: np.ndarray
    iterations: int

    def voltage(self, node: int | str) -> float:
        idx = self.circuit.node(node) if isinstance(node, str) else node
        return 0.0 if idx == GROUND else float(self.voltages[idx])

    def source_current(self, node: int | str) -> float:
        """Current delivered *by* the source pinning ``node`` (A).

        Positive when the source pushes current into the circuit.
        """
        idx = self.circuit.node(node) if isinstance(node, str) else node
        f = np.zeros(self.circuit.n_nodes)
        for el in self.circuit.elements:
            el.stamp_static(self.voltages, f, None)
        # f[idx] is the net element current flowing out of the node into
        # the elements; the source supplies exactly that.
        return float(f[idx])


def _assemble(circuit: Circuit, v: np.ndarray, gmin: float
              ) -> tuple[np.ndarray, np.ndarray]:
    n = circuit.n_nodes
    f = np.zeros(n)
    jac = np.zeros((n, n))
    for el in circuit.elements:
        el.stamp_static(v, f, jac)
    if gmin > 0.0:
        f += gmin * v
        jac[np.diag_indices(n)] += gmin
    return f, jac


def _newton(circuit: Circuit, v: np.ndarray, free: np.ndarray,
            gmin: float, tol_a: float, max_iter: int, damping_v: float
            ) -> tuple[np.ndarray, int, bool]:
    for iteration in range(1, max_iter + 1):
        f, jac = _assemble(circuit, v, gmin)
        residual = f[free]
        if np.max(np.abs(residual)) < tol_a:
            return v, iteration, True
        j_ff = jac[np.ix_(free, free)]
        try:
            dv = np.linalg.solve(j_ff, -residual)
        except np.linalg.LinAlgError:
            return v, iteration, False
        if not np.all(np.isfinite(dv)):
            return v, iteration, False
        # Voltage-step damping keeps table FETs in a sane region.
        max_step = np.max(np.abs(dv))
        if max_step > damping_v:
            dv *= damping_v / max_step
        v = v.copy()
        v[free] += dv
    return v, max_iter, False


def solve_dc(
    circuit: Circuit,
    v0: np.ndarray | None = None,
    t: float = 0.0,
    gmin: float = 1e-12,
    tol_a: float = 1e-14,
    max_iter: int = 200,
    damping_v: float = 0.2,
    source_steps: int = 8,
) -> DCResult:
    """Solve the DC operating point.

    Strategy: plain damped Newton from ``v0`` (or from all fixed voltages
    applied, free nodes at the average rail voltage); on failure, source
    stepping — ramp every fixed voltage from 0 to its target over
    ``source_steps`` stages, re-converging at each stage.

    ``v0`` also selects the basin for bistable circuits (latches).
    """
    circuit.validate()
    fixed = circuit.fixed_voltages(t)
    free = circuit.free_nodes()
    n = circuit.n_nodes

    if v0 is not None:
        v = np.asarray(v0, dtype=float).copy()
        if v.shape != (n,):
            raise ValueError(f"v0 must have shape ({n},), got {v.shape}")
    else:
        v = np.zeros(n)
        if fixed:
            v[free] = 0.5 * float(np.mean(list(fixed.values())))
    for node, value in fixed.items():
        v[node] = value

    v_sol, iters, ok = _newton(circuit, v, free, gmin, tol_a,
                               max_iter, damping_v)
    if ok:
        if sanitize.ACTIVE:
            sanitize.check_finite(v_sol, "solve_dc", "node voltages")
        if obs.ACTIVE:
            obs.incr("circuit.dc_solves")
            obs.incr("circuit.newton_iterations", iters)
            obs.observe("circuit.dc_newton_iterations", iters)
        return DCResult(circuit=circuit, voltages=v_sol, iterations=iters)

    # Source stepping from zero bias.
    v = np.zeros(n)
    total_iters = iters
    for step in range(1, source_steps + 1):
        frac = step / source_steps
        for node, value in fixed.items():
            v[node] = frac * value
        v, it, ok = _newton(circuit, v, free, gmin, tol_a,
                            max_iter, damping_v)
        total_iters += it
        if not ok:
            # Retry this stage with a larger gmin before giving up.
            v, it, ok = _newton(circuit, v, free, gmin * 1e3, tol_a * 10,
                                max_iter, damping_v)
            total_iters += it
            if not ok:
                raise ConvergenceError(
                    f"DC source stepping failed at {frac:.0%} of supply",
                    iterations=total_iters)
    if sanitize.ACTIVE:
        sanitize.check_finite(v, "solve_dc", "node voltages")
    if obs.ACTIVE:
        obs.incr("circuit.dc_solves")
        obs.incr("circuit.dc_source_stepped")
        obs.incr("circuit.newton_iterations", total_iters)
        obs.observe("circuit.dc_newton_iterations", total_iters)
    return DCResult(circuit=circuit, voltages=v, iterations=total_iters)
