"""Latch (cross-coupled inverter pair): butterfly curves and static power.

Paper Section 5.3: "Figure 7 shows butterfly curves for three cases:
nominal, single GNR affected, and all GNRs affected.  Both inverters in
the latch are assumed to have the same widths and impurities."  The SNM is
read from the butterfly of the two inverters' VTCs; the static power comes
from the DC hold states.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.dc import solve_dc
from repro.circuit.inverter import CircuitParameters, add_inverter, inverter_vtc
from repro.circuit.netlist import Circuit
from repro.circuit.snm import ButterflyData, butterfly_curves, static_noise_margin
from repro.device.tables import DeviceTable


def build_latch(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    params: CircuitParameters | None = None,
) -> Circuit:
    """Closed-loop latch with nodes ``q`` and ``qb``."""
    params = params or CircuitParameters()
    circuit = Circuit("latch")
    q = circuit.node("q")
    qb = circuit.node("qb")
    vdd_node = circuit.node("vdd")
    circuit.fix(vdd_node, vdd)
    add_inverter(circuit, "inv1", q, qb, vdd_node, n_table, p_table, params)
    add_inverter(circuit, "inv2", qb, q, vdd_node, n_table, p_table, params)
    return circuit


def latch_butterfly(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    params: CircuitParameters | None = None,
    n_points: int = 61,
) -> ButterflyData:
    """Butterfly data of the latch (loop broken, both VTCs swept).

    With both inverters identical the two curves coincide; the function
    still sweeps one VTC and mirrors it, matching the paper's setup where
    the latch's two inverters carry the same variations.
    """
    vin, vout = inverter_vtc(n_table, p_table, vdd, params,
                             n_points=n_points)
    return butterfly_curves(vin, vout)


def latch_snm(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    params: CircuitParameters | None = None,
) -> float:
    """Hold static noise margin of the latch."""
    return static_noise_margin(latch_butterfly(n_table, p_table, vdd, params))


def latch_static_power(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    params: CircuitParameters | None = None,
) -> float:
    """Leakage power of the latch holding a bit (average of both states).

    Each hold state is found by a DC solve seeded in the corresponding
    basin; if the latch has lost bistability (collapsed butterfly) both
    solves land on the same point, which is then also the honest leakage
    of the degenerate cell.
    """
    params = params or CircuitParameters()
    circuit = build_latch(n_table, p_table, vdd, params)
    vdd_node = circuit.node("vdd")
    q = circuit.node("q")
    qb = circuit.node("qb")

    power = 0.0
    for q_val in (0.0, vdd):
        v0 = np.full(circuit.n_nodes, vdd / 2.0)
        v0[vdd_node] = vdd
        v0[q] = q_val
        v0[qb] = vdd - q_val
        result = solve_dc(circuit, v0=v0)
        power += vdd * abs(result.source_current(vdd_node))
    return power / 2.0
