"""15-stage fanout-of-4 ring oscillator: build, simulate, estimate.

The paper's representative circuit for technology exploration: "a 15-stage
ring oscillator where each inverter drives a fanout-of-four load".  In the
ring, each stage's load is the next stage plus ``fanout - 1`` replica
inverters.

Two paths again:

* :func:`simulate_ring_oscillator` — full transient; frequency from the
  settled oscillation, power from the supply-current trace.  Used at the
  headline operating points (Table 1 and the Fig. 6 nominal).
* :func:`estimate_ring_oscillator` — quasi-static: frequency from the
  per-stage delay estimate, powers from the charge/leakage estimators.
  Used for the dense V_DD-V_T contour sweep of Fig. 3(b); validated
  against the transient path in ``benchmarks/bench_ablation_estimators.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.circuit.dc import solve_dc
from repro.circuit.inverter import (
    CircuitParameters,
    add_inverter,
    estimate_inverter_delay,
    estimate_inverter_energy,
    inverter_static_power_w,
    inverter_snm,
)
from repro.circuit.metrics import average_power_w, oscillation_frequency
from repro.circuit.netlist import Circuit
from repro.circuit.transient import simulate_transient
from repro.device.tables import DeviceTable
from repro.errors import AnalysisError


@dataclass(frozen=True)
class RingOscillatorMetrics:
    """Measured (or estimated) oscillator figures of merit.

    ``edp_j_s`` is the paper's EDP: total supply energy per oscillation
    cycle times the per-stage delay.
    """

    frequency_hz: float
    stage_delay_s: float
    total_power_w: float
    static_power_w: float
    dynamic_power_w: float
    edp_j_s: float
    vdd: float
    n_stages: int


def build_ring_oscillator(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    n_stages: int = 15,
    params: CircuitParameters | None = None,
    per_stage_tables: list[tuple[DeviceTable, DeviceTable]] | None = None,
) -> Circuit:
    """Assemble the ring.

    ``per_stage_tables`` overrides the (n, p) tables stage by stage — the
    hook used by the Monte Carlo study.  Replica loads always use the
    nominal tables (they represent surrounding logic).
    """
    if n_stages < 3 or n_stages % 2 == 0:
        raise ValueError("ring needs an odd number of stages >= 3")
    params = params or CircuitParameters()
    circuit = Circuit(f"ro-{n_stages}")
    vdd_node = circuit.node("vdd")
    circuit.fix(vdd_node, vdd)

    stage_nodes = [circuit.node(f"s{i}") for i in range(n_stages)]
    for i in range(n_stages):
        vin = stage_nodes[i]
        vout = stage_nodes[(i + 1) % n_stages]
        nt, pt = (per_stage_tables[i] if per_stage_tables is not None
                  else (n_table, p_table))
        add_inverter(circuit, f"inv{i}", vin, vout, vdd_node, nt, pt, params)
        # fanout - 1 replica loads on each stage output (lightweight: no
        # contact resistors, to bound the node count of the 60-inverter
        # system; the replica gate capacitance is what loads the ring).
        for k in range(params.fanout - 1):
            load_out = circuit.node(f"inv{i}.load{k}")
            add_inverter(circuit, f"inv{i}.l{k}", vout, load_out, vdd_node,
                         n_table, p_table, params,
                         with_contact_resistors=False)
    return circuit


def simulate_ring_oscillator(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    n_stages: int = 15,
    params: CircuitParameters | None = None,
    per_stage_tables: list[tuple[DeviceTable, DeviceTable]] | None = None,
    n_periods: float = 4.0,
    dt_s: float | None = None,
) -> RingOscillatorMetrics:
    """Transient simulation of the ring oscillator.

    The ring is started from an alternating initial condition (a DC
    solution cannot exist for an odd ring away from the metastable point;
    the alternating start kicks it onto the oscillation immediately).
    """
    params = params or CircuitParameters()
    circuit = build_ring_oscillator(n_table, p_table, vdd, n_stages,
                                    params, per_stage_tables)
    vdd_node = circuit.node("vdd")

    est_stage = estimate_inverter_delay(n_table, p_table, vdd, params)
    if not np.isfinite(est_stage):
        raise AnalysisError("drive current is zero; ring cannot oscillate")
    # The quasi-static estimator neglects slew and short-circuit overlap
    # and underestimates the transient stage delay by ~2-2.5x; budget the
    # simulation window accordingly so enough settled periods land in it.
    period_est = 2.0 * n_stages * est_stage * 2.5
    t_end = n_periods * period_est
    dt = dt_s if dt_s is not None else max(period_est / 480.0, 0.05e-12)

    # Alternating initial state (last stage mid-rail to break the tie).
    v0 = np.zeros(circuit.n_nodes)
    v0[circuit.node("vdd")] = vdd
    for i in range(n_stages):
        v0[circuit.node(f"s{i}")] = vdd if i % 2 == 0 else 0.0
    v0[circuit.node(f"s{n_stages - 1}")] = vdd / 2.0
    for i in range(n_stages):
        for k in range(params.fanout - 1):
            drive = v0[circuit.node(f"s{(i + 1) % n_stages}")]
            v0[circuit.node(f"inv{i}.load{k}")] = vdd - drive

    # The window is budgeted from the quasi-static estimate; if the real
    # oscillation turns out slower, extend and retry rather than fail.
    freq = None
    with obs.span("circuit.ring_oscillator", vdd=vdd, n_stages=n_stages):
        for _attempt in range(3):
            result = simulate_transient(circuit, t_end, dt, v0,
                                        monitor_supplies=(vdd_node,))
            try:
                freq = oscillation_frequency(result.time_s, result.v("s0"),
                                             vdd, settle_fraction=0.35)
                break
            except AnalysisError:
                t_end *= 2.0
                if obs.ACTIVE:
                    obs.incr("circuit.ring_window_retries")
    if freq is None:
        raise AnalysisError(
            "no sustained oscillation detected even after extending the "
            "simulation window 4x; the ring may be overdamped")
    p_total = average_power_w(result.time_s,
                              result.supply_currents[vdd_node], vdd,
                              settle_fraction=0.35)
    # Static floor: every inverter (ring + replicas) leaking at DC.
    p_stat = _ring_static_power(n_table, p_table, vdd, n_stages, params,
                                per_stage_tables)
    p_dyn = max(p_total - p_stat, 0.0)
    stage_delay = 1.0 / (2.0 * n_stages * freq)
    edp = (p_total / freq) * stage_delay
    return RingOscillatorMetrics(
        frequency_hz=freq, stage_delay_s=stage_delay, total_power_w=p_total,
        static_power_w=p_stat, dynamic_power_w=p_dyn, edp_j_s=edp,
        vdd=vdd, n_stages=n_stages)


def _ring_static_power(n_table, p_table, vdd, n_stages, params,
                       per_stage_tables) -> float:
    """Leakage of all ring + replica inverters at their DC states."""
    p_nominal = inverter_static_power_w(n_table, p_table, vdd, params)
    total = n_stages * (params.fanout - 1) * p_nominal
    if per_stage_tables is None:
        total += n_stages * p_nominal
    else:
        for nt, pt in per_stage_tables:
            total += inverter_static_power_w(nt, pt, vdd, params)
    return total


#: Transient/quasi-static stage-delay ratio at the nominal operating
#: point (slew and short-circuit overlap that the charge/current estimate
#: neglects).  Measured once against the full transient and validated in
#: ``benchmarks/bench_ablation_estimators.py``.
ESTIMATOR_DELAY_CALIBRATION = 2.28


def estimate_ring_oscillator(
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    n_stages: int = 15,
    params: CircuitParameters | None = None,
    delay_calibration: float = ESTIMATOR_DELAY_CALIBRATION,
) -> RingOscillatorMetrics:
    """Quasi-static oscillator estimate for dense parameter sweeps."""
    if obs.ACTIVE:
        obs.incr("circuit.ring_estimates")
    params = params or CircuitParameters()
    stage_delay = estimate_inverter_delay(n_table, p_table, vdd, params)
    stage_delay *= delay_calibration
    if not np.isfinite(stage_delay) or stage_delay <= 0.0:
        raise AnalysisError("drive current is zero; ring cannot oscillate")
    freq = 1.0 / (2.0 * n_stages * stage_delay)
    e_cycle_stage = estimate_inverter_energy(n_table, p_table, vdd, params)
    p_dyn = n_stages * e_cycle_stage * freq
    p_stat = n_stages * params.fanout * inverter_static_power_w(
        n_table, p_table, vdd, params)
    p_total = p_dyn + p_stat
    edp = (p_total / freq) * stage_delay
    return RingOscillatorMetrics(
        frequency_hz=freq, stage_delay_s=stage_delay, total_power_w=p_total,
        static_power_w=p_stat, dynamic_power_w=p_dyn, edp_j_s=edp,
        vdd=vdd, n_stages=n_stages)
