"""Static CMOS-style logic gates built from GNRFET tables.

The paper characterizes inverters, ring oscillators and latches; real
technology exploration also needs multi-input gates, so NAND2 and NOR2
builders are provided on the same extrinsic-device template (contact
resistors + parasitic capacitances per device, Fig. 3a).  Series devices
share the internal stack node; each device keeps its own contact
resistors.

The gate characterization mirrors the inverter's: worst-case propagation
delay over the input patterns, average leakage over all static input
states, and the DC transfer curve of the switching input.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.circuit.dc import solve_dc
from repro.circuit.elements import Capacitor, Resistor, TableFET
from repro.circuit.inverter import CircuitParameters, add_inverter
from repro.circuit.metrics import propagation_delays
from repro.circuit.netlist import Circuit
from repro.circuit.transient import simulate_transient
from repro.device.tables import DeviceTable
from repro.errors import AnalysisError


@dataclass(frozen=True)
class GateMetrics:
    """Characterization of one two-input gate."""

    name: str
    worst_delay_s: float
    delays_s: dict
    static_power_w: float
    vdd: float


def _stacked_pair(circuit: Circuit, prefix: str, out: int, rail: int,
                  gates: tuple[int, int], table: DeviceTable,
                  polarity: int, params: CircuitParameters) -> None:
    """Two series FETs from ``out`` to ``rail`` gated by ``gates``."""
    r = params.contact_resistance_ohm
    cp = params.c_parasitic_f
    d_top = circuit.node(f"{prefix}.d_top")
    stack = circuit.node(f"{prefix}.stack")
    s_bot = circuit.node(f"{prefix}.s_bot")
    circuit.add(Resistor(out, d_top, r))
    circuit.add(TableFET(d_top, gates[0], stack, table, polarity,
                         c_par_gs_f=cp, c_par_gd_f=cp))
    circuit.add(TableFET(stack, gates[1], s_bot, table, polarity,
                         c_par_gs_f=cp, c_par_gd_f=cp))
    circuit.add(Resistor(s_bot, rail, r))


def _parallel_pair(circuit: Circuit, prefix: str, out: int, rail: int,
                   gates: tuple[int, int], table: DeviceTable,
                   polarity: int, params: CircuitParameters) -> None:
    """Two parallel FETs from ``out`` to ``rail``."""
    r = params.contact_resistance_ohm
    cp = params.c_parasitic_f
    for k, gate in enumerate(gates):
        d = circuit.node(f"{prefix}.d{k}")
        s = circuit.node(f"{prefix}.s{k}")
        circuit.add(Resistor(out, d, r))
        circuit.add(TableFET(d, gate, s, table, polarity,
                             c_par_gs_f=cp, c_par_gd_f=cp))
        circuit.add(Resistor(s, rail, r))


def build_nand2(n_table: DeviceTable, p_table: DeviceTable, vdd: float,
                params: CircuitParameters | None = None) -> Circuit:
    """NAND2: series n-stack to ground, parallel p-devices to V_DD.

    Nodes: ``a``, ``b`` (fixed inputs), ``out``, ``vdd``; the output
    carries the wire load and a fanout-of-``params.fanout`` replica
    inverter load.
    """
    params = params or CircuitParameters()
    circuit = Circuit("nand2")
    a, b = circuit.node("a"), circuit.node("b")
    out = circuit.node("out")
    vdd_node = circuit.node("vdd")
    gnd = circuit.node("0")
    circuit.fix(vdd_node, vdd)
    circuit.fix(a, 0.0)
    circuit.fix(b, 0.0)

    _stacked_pair(circuit, "ndn", out, gnd, (a, b), n_table, +1, params)
    _parallel_pair(circuit, "pup", out, vdd_node, (a, b), p_table, -1,
                   params)
    if params.c_wire_f > 0.0:
        circuit.add(Capacitor(out, gnd, params.c_wire_f))
    for k in range(params.fanout):
        load_out = circuit.node(f"load{k}.out")
        add_inverter(circuit, f"load{k}", out, load_out, vdd_node,
                     n_table, p_table, params,
                     with_contact_resistors=False)
    return circuit


def build_nor2(n_table: DeviceTable, p_table: DeviceTable, vdd: float,
               params: CircuitParameters | None = None) -> Circuit:
    """NOR2: parallel n-devices to ground, series p-stack to V_DD."""
    params = params or CircuitParameters()
    circuit = Circuit("nor2")
    a, b = circuit.node("a"), circuit.node("b")
    out = circuit.node("out")
    vdd_node = circuit.node("vdd")
    gnd = circuit.node("0")
    circuit.fix(vdd_node, vdd)
    circuit.fix(a, 0.0)
    circuit.fix(b, 0.0)

    _parallel_pair(circuit, "ndn", out, gnd, (a, b), n_table, +1, params)
    _stacked_pair(circuit, "pup", out, vdd_node, (a, b), p_table, -1,
                  params)
    if params.c_wire_f > 0.0:
        circuit.add(Capacitor(out, gnd, params.c_wire_f))
    for k in range(params.fanout):
        load_out = circuit.node(f"load{k}.out")
        add_inverter(circuit, f"load{k}", out, load_out, vdd_node,
                     n_table, p_table, params,
                     with_contact_resistors=False)
    return circuit


def gate_truth_table(circuit: Circuit, vdd: float) -> dict:
    """DC output level for each input combination (volts)."""
    a = circuit.node("a")
    b = circuit.node("b")
    out = circuit.node("out")
    levels = {}
    v_prev = None
    for va, vb in product((0.0, vdd), repeat=2):
        circuit.fixed[a] = va
        circuit.fixed[b] = vb
        result = solve_dc(circuit, v0=v_prev)
        v_prev = result.voltages
        levels[(va > 0, vb > 0)] = result.voltage(out)
    return levels


def gate_static_power_w(circuit: Circuit, vdd: float) -> float:
    """Average leakage over the four static input states."""
    a, b = circuit.node("a"), circuit.node("b")
    vdd_node = circuit.node("vdd")
    total = 0.0
    v_prev = None
    for va, vb in product((0.0, vdd), repeat=2):
        circuit.fixed[a] = va
        circuit.fixed[b] = vb
        result = solve_dc(circuit, v0=v_prev)
        v_prev = result.voltages
        total += abs(result.source_current(vdd_node))
    return vdd * total / 4.0


def characterize_gate(
    kind: str,
    n_table: DeviceTable,
    p_table: DeviceTable,
    vdd: float,
    params: CircuitParameters | None = None,
    dt_s: float = 0.25e-12,
) -> GateMetrics:
    """Transient characterization of a NAND2 / NOR2.

    For each input pin, the other pin is held at its non-controlling
    value and the switching pin toggles; the reported delay is the worst
    pin's average of rise/fall propagation delays.
    """
    params = params or CircuitParameters()
    if kind == "nand2":
        circuit = build_nand2(n_table, p_table, vdd, params)
        noncontrolling = vdd
    elif kind == "nor2":
        circuit = build_nor2(n_table, p_table, vdd, params)
        noncontrolling = 0.0
    else:
        raise ValueError(f"kind must be 'nand2' or 'nor2', got {kind!r}")

    a, b = circuit.node("a"), circuit.node("b")
    out = circuit.node("out")
    vdd_node = circuit.node("vdd")

    from repro.circuit.inverter import estimate_inverter_delay

    est = estimate_inverter_delay(n_table, p_table, vdd, params)
    cycle = max(20.0 * est, 60e-12)
    ramp = max(2.0 * est, 2e-12)
    half = cycle / 2.0

    delays = {}
    for switching, held in ((a, b), (b, a)):
        circuit.fixed[held] = noncontrolling
        circuit.fixed[switching] = 0.0
        dc0 = solve_dc(circuit)

        def waveform(t: float) -> float:
            t_mod = t % cycle
            if t_mod < ramp:
                return vdd * t_mod / ramp
            if t_mod < half:
                return vdd
            if t_mod < half + ramp:
                return vdd * (1.0 - (t_mod - half) / ramp)
            return 0.0

        circuit.fixed[switching] = waveform
        result = simulate_transient(circuit, 2.0 * cycle, dt_s,
                                    dc0.voltages,
                                    monitor_supplies=(vdd_node,))
        second = result.time_s >= cycle
        try:
            t_plh, t_phl = propagation_delays(
                result.time_s[second],
                result.voltages[second][:, switching],
                result.voltages[second][:, out], vdd)
        except AnalysisError:
            delays[circuit.node_name(switching)] = np.nan
            continue
        delays[circuit.node_name(switching)] = 0.5 * (t_plh + t_phl)
        circuit.fixed[switching] = 0.0

    worst = max(delays.values())
    return GateMetrics(name=kind, worst_delay_s=float(worst),
                       delays_s=delays,
                       static_power_w=gate_static_power_w(circuit, vdd),
                       vdd=vdd)
