"""Netlists: named nodes, elements, fixed (source-driven) nodes.

The engine uses nodal analysis with *fixed nodes* instead of explicit
voltage-source branches: every voltage source in the paper's circuits
(supply rails, input drivers) is ground-referenced, so pinning node
voltages is equivalent to full MNA and keeps the Jacobian square in the
free node voltages.  The current delivered by a source is recovered after
the solve by evaluating the KCL residual at its node.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.errors import CircuitError

GROUND = -1
"""Node index of the reference node (0 V)."""


class Element(Protocol):
    """Anything that can stamp currents and capacitances into the solver.

    ``stamp_static`` adds each terminal's *outflowing* static current to
    the residual ``f`` and its voltage derivatives to the Jacobian ``jac``
    (full-size arrays indexed by node; ground rows are dropped later).
    ``capacitor_stamps`` returns the element's bias-dependent two-terminal
    capacitances as ``(node_a, node_b, farads)`` triples; the transient
    engine turns them into companion currents.
    """

    nodes: tuple[int, ...]

    def stamp_static(self, v: np.ndarray, f: np.ndarray,
                     jac: np.ndarray | None) -> None: ...

    def capacitor_stamps(
        self, v: np.ndarray) -> list[tuple[int, int, float]]: ...


def voltage_at(v: np.ndarray, node: int) -> float:
    """Voltage of ``node`` with ground folded in."""
    return 0.0 if node == GROUND else float(v[node])


class Circuit:
    """A flat netlist of elements over named nodes."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._node_ids: dict[str, int] = {}
        self.elements: list = []
        #: Fixed node voltages: node index -> value or callable(t) -> value.
        self.fixed: dict[int, float | Callable[[float], float]] = {}

    # --- nodes ----------------------------------------------------------------
    def node(self, name: str) -> int:
        """Return (creating if needed) the index of a named node.

        The names ``"0"``, ``"gnd"`` and ``"ground"`` refer to the
        reference node.
        """
        if name in ("0", "gnd", "ground"):
            return GROUND
        if name not in self._node_ids:
            self._node_ids[name] = len(self._node_ids)
        return self._node_ids[name]

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_ids)

    def node_name(self, index: int) -> str:
        """Inverse lookup (for diagnostics)."""
        if index == GROUND:
            return "gnd"
        for name, idx in self._node_ids.items():
            if idx == index:
                return name
        raise CircuitError(f"unknown node index {index}")

    # --- construction -----------------------------------------------------------
    def add(self, element: Element) -> None:
        """Add an element (anything satisfying the Element protocol)."""
        self.elements.append(element)

    def fix(self, node: int | str,
            value: float | Callable[[float], float]) -> None:
        """Pin a node to a voltage (number) or waveform (callable of time)."""
        idx = self.node(node) if isinstance(node, str) else node
        if idx == GROUND:
            raise CircuitError("cannot fix the ground node")
        self.fixed[idx] = value

    # --- solver support -----------------------------------------------------------
    def fixed_voltages(self, t: float = 0.0) -> dict[int, float]:
        """Evaluate all fixed nodes at time ``t``."""
        out = {}
        for node, value in self.fixed.items():
            out[node] = float(value(t)) if callable(value) else float(value)
        return out

    def free_nodes(self) -> np.ndarray:
        """Indices of nodes solved for (not ground, not fixed)."""
        return np.array([i for i in range(self.n_nodes) if i not in self.fixed],
                        dtype=int)

    def validate(self) -> None:
        """Sanity-check the netlist before solving."""
        if self.n_nodes == 0:
            raise CircuitError("circuit has no nodes")
        if not self.elements:
            raise CircuitError("circuit has no elements")
        touched = np.zeros(self.n_nodes, dtype=bool)
        for el in self.elements:
            for n in el.nodes:
                if n != GROUND:
                    if n >= self.n_nodes or n < 0:
                        raise CircuitError(
                            f"element {el!r} references unknown node {n}")
                    touched[n] = True
        untouched = [self.node_name(i) for i in range(self.n_nodes)
                     if not touched[i] and i not in self.fixed]
        if untouched:
            raise CircuitError(f"dangling nodes with no elements: {untouched}")
