"""Table-lookup circuit simulator for GNRFET (and CMOS baseline) circuits.

Implements the paper's Section 3 simulator: a nodal-analysis engine whose
transistors are lookup tables of intrinsic ``I_D(V_GS, V_DS)`` and channel
charge (differentiated into ``C_GS,i`` / ``C_GD,i``), wrapped in the
extrinsic parasitics of Fig. 3(a): contact resistances ``R_S = R_D``
(1-100 kOhm, nominal 10 kOhm) and parasitic junction capacitances
``C_GS,e = C_GD,e`` (0.01-0.1 aF/nm x 40 nm contact width).

Engines: DC operating point (damped Newton with source stepping), transient
(trapezoidal with per-step Newton), voltage transfer curves, butterfly /
static-noise-margin extraction, and metric extraction (delay, static and
dynamic power, energy, frequency, EDP).

Circuit builders for the paper's three representative circuits: inverter
(fanout-of-4), 15-stage ring oscillator, and latch.
"""

from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.elements import (
    Resistor,
    Capacitor,
    TableFET,
    CompactMOSFET,
)
from repro.circuit.dc import solve_dc, DCResult
from repro.circuit.transient import simulate_transient, TransientResult
from repro.circuit.vtc import compute_vtc
from repro.circuit.snm import butterfly_curves, static_noise_margin
from repro.circuit.metrics import (
    crossing_times,
    propagation_delays,
    oscillation_frequency,
    average_power_w,
)
from repro.circuit.inverter import (
    CircuitParameters,
    add_inverter,
    build_inverter_chain,
    characterize_inverter,
    estimate_inverter_delay,
    estimate_inverter_energy,
    inverter_snm,
    inverter_static_power_w,
    inverter_vtc,
    InverterMetrics,
)
from repro.circuit.ring_oscillator import (
    build_ring_oscillator,
    simulate_ring_oscillator,
    RingOscillatorMetrics,
    estimate_ring_oscillator,
)
from repro.circuit.latch import build_latch, latch_butterfly, latch_snm, latch_static_power
from repro.circuit.gates import (
    GateMetrics,
    build_nand2,
    build_nor2,
    characterize_gate,
    gate_static_power_w,
    gate_truth_table,
)

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "TableFET",
    "CompactMOSFET",
    "solve_dc",
    "DCResult",
    "simulate_transient",
    "TransientResult",
    "compute_vtc",
    "butterfly_curves",
    "static_noise_margin",
    "crossing_times",
    "propagation_delays",
    "oscillation_frequency",
    "average_power_w",
    "CircuitParameters",
    "add_inverter",
    "estimate_inverter_delay",
    "estimate_inverter_energy",
    "inverter_snm",
    "inverter_static_power_w",
    "inverter_vtc",
    "build_inverter_chain",
    "characterize_inverter",
    "InverterMetrics",
    "build_ring_oscillator",
    "simulate_ring_oscillator",
    "RingOscillatorMetrics",
    "estimate_ring_oscillator",
    "GateMetrics",
    "build_nand2",
    "build_nor2",
    "characterize_gate",
    "gate_static_power_w",
    "gate_truth_table",
    "build_latch",
    "latch_snm",
    "latch_butterfly",
    "latch_static_power",
]
