"""Transient analysis: trapezoidal integration with per-step Newton.

Every dynamic element reduces to bias-dependent two-terminal capacitances
(see :class:`repro.circuit.netlist.Element`), so the integrator builds
trapezoidal companion models generically:

``i_C^{n+1} = (2C/h) (v^{n+1} - v^n) - i_C^n``

with ``C`` evaluated at the previous converged solution (semi-implicit in
the bias dependence — standard practice for table-based simulators and
accurate for the smooth Q-V characteristics here).  The per-capacitor
companion current is part of the integrator state.

Non-converging steps are retried with halved step size; the supply current
is recorded every step so energy and power integrate directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs, sanitize
from repro.circuit.netlist import Circuit, GROUND, voltage_at
from repro.errors import ConvergenceError


@dataclass(frozen=True)
class TransientResult:
    """Waveforms of a transient run.

    Attributes
    ----------
    time_s:
        Time points (first entry is ``t0`` with the initial condition).
    voltages:
        Node voltages, shape ``(n_steps, n_nodes)``.
    supply_currents:
        For each monitored source node: current delivered by the source at
        each time point, keyed by node index.
    """

    circuit: Circuit
    time_s: np.ndarray
    voltages: np.ndarray
    supply_currents: dict[int, np.ndarray] = field(default_factory=dict)

    def v(self, node: int | str) -> np.ndarray:
        idx = self.circuit.node(node) if isinstance(node, str) else node
        if idx == GROUND:
            return np.zeros_like(self.time_s)
        return self.voltages[:, idx]

    def supply_energy_j(self, node: int | str) -> float:
        """Energy delivered by the source at ``node`` over the whole run."""
        idx = self.circuit.node(node) if isinstance(node, str) else node
        if idx not in self.supply_currents:
            raise KeyError(f"node {idx} was not monitored; pass it in "
                           "monitor_supplies when simulating")
        volt = self.v(idx)
        return float(np.trapezoid(self.supply_currents[idx] * volt,
                                  self.time_s))


def _collect_caps(circuit: Circuit, v: np.ndarray
                  ) -> list[tuple[int, int, float]]:
    stamps: list[tuple[int, int, float]] = []
    for el in circuit.elements:
        stamps.extend(el.capacitor_stamps(v))
    return stamps


def _step_newton(circuit: Circuit, v_guess: np.ndarray, free: np.ndarray,
                 caps: list[tuple[int, int, float]],
                 i_cap_prev: np.ndarray, v_prev: np.ndarray, h: float,
                 gmin: float, tol_a: float, max_iter: int,
                 damping_v: float, backward_euler: bool = False
                 ) -> tuple[np.ndarray, np.ndarray, bool]:
    """One integration step; returns (v, new companion currents, ok).

    Trapezoidal by default; ``backward_euler=True`` is used for the very
    first step (and could be used after discontinuities), where the
    trapezoidal companion current is not yet known - the classic SPICE
    startup rule.
    """
    n = circuit.n_nodes
    v = v_guess.copy()
    for _ in range(max_iter):
        f = np.zeros(n)
        jac = np.zeros((n, n))
        for el in circuit.elements:
            el.stamp_static(v, f, jac)
        i_cap_new = np.empty(len(caps))
        for k, (a, b, c) in enumerate(caps):
            dv_now = voltage_at(v, a) - voltage_at(v, b)
            dv_old = voltage_at(v_prev, a) - voltage_at(v_prev, b)
            if backward_euler:
                geq = c / h
                i_k = geq * (dv_now - dv_old)
            else:
                geq = 2.0 * c / h
                i_k = geq * (dv_now - dv_old) - i_cap_prev[k]
            i_cap_new[k] = i_k
            if a != GROUND:
                f[a] += i_k
                jac[a, a] += geq
                if b != GROUND:
                    jac[a, b] -= geq
            if b != GROUND:
                f[b] -= i_k
                jac[b, b] += geq
                if a != GROUND:
                    jac[b, a] -= geq
        f += gmin * v
        jac[np.diag_indices(n)] += gmin

        residual = f[free]
        if np.max(np.abs(residual)) < tol_a:
            return v, i_cap_new, True
        try:
            dv = np.linalg.solve(jac[np.ix_(free, free)], -residual)
        except np.linalg.LinAlgError:
            return v, i_cap_new, False
        if not np.all(np.isfinite(dv)):
            return v, i_cap_new, False
        max_step = np.max(np.abs(dv))
        if max_step > damping_v:
            dv *= damping_v / max_step
        v[free] += dv
    return v, i_cap_prev, False


def simulate_transient(
    circuit: Circuit,
    t_end_s: float,
    dt_s: float,
    v0: np.ndarray,
    monitor_supplies: tuple[int | str, ...] = (),
    gmin: float = 1e-12,
    tol_a: float = 1e-13,
    max_iter: int = 40,
    damping_v: float = 0.3,
    max_step_halvings: int = 8,
) -> TransientResult:
    """Integrate the circuit from the initial state ``v0``.

    Parameters
    ----------
    v0:
        Initial node voltages (use :func:`repro.circuit.dc.solve_dc` for a
        consistent start).  Fixed-node waveforms are re-evaluated every
        step, so time-varying inputs are just callables registered with
        :meth:`Circuit.fix`.
    monitor_supplies:
        Fixed nodes whose delivered current should be recorded (e.g. the
        VDD rail, for power metrics).
    """
    circuit.validate()
    if dt_s <= 0.0 or t_end_s <= 0.0:
        raise ValueError("time step and end time must be positive")
    free = circuit.free_nodes()
    n = circuit.n_nodes

    monitor = [circuit.node(m) if isinstance(m, str) else m
               for m in monitor_supplies]

    v = np.asarray(v0, dtype=float).copy()
    if v.shape != (n,):
        raise ValueError(f"v0 must have shape ({n},), got {v.shape}")
    for node, value in circuit.fixed_voltages(0.0).items():
        v[node] = value

    times = [0.0]
    traj = [v.copy()]
    supply_traces: dict[int, list[float]] = {m: [] for m in monitor}

    def record_supplies(v_now: np.ndarray) -> None:
        if not monitor:
            return
        f = np.zeros(n)
        for el in circuit.elements:
            el.stamp_static(v_now, f, None)
        # Static current only; capacitive displacement currents integrate
        # to ~zero over a cycle and the builders put decoupling caps on
        # rails anyway.  The dynamic supply charge is added by the caller
        # from the waveforms when needed.
        for m in monitor:
            supply_traces[m].append(float(f[m]))

    # Initial capacitor state: zero companion current (consistent DC start).
    caps = _collect_caps(circuit, v)
    i_cap = np.zeros(len(caps))
    record_supplies(v)

    t = 0.0
    first_step = True
    # Counters accumulate in locals and flush to obs once at the end:
    # the step loop is the hot path of every delay/power figure.
    n_steps = 0
    n_halvings = 0
    with obs.span("circuit.transient", t_end_s=t_end_s, dt_s=dt_s):
        while t < t_end_s - 1e-21:
            h = min(dt_s, t_end_s - t)
            ok = False
            for attempt in range(max_step_halvings + 1):
                v_try = v.copy()
                for node, value in circuit.fixed_voltages(t + h).items():
                    v_try[node] = value
                caps = _collect_caps(circuit, v)
                if len(caps) != i_cap.size:
                    raise ConvergenceError(
                        "element capacitor count changed during simulation")
                v_new, i_cap_new, ok = _step_newton(
                    circuit, v_try, free, caps, i_cap, v, h,
                    gmin, tol_a, max_iter, damping_v,
                    backward_euler=first_step)
                if ok:
                    n_halvings += attempt
                    break
                h *= 0.5
            if not ok:
                raise ConvergenceError(
                    f"transient step failed to converge at t = {t:.3e} s "
                    f"even after {max_step_halvings} step halvings")
            t += h
            v = v_new
            i_cap = i_cap_new
            if sanitize.ACTIVE:
                sanitize.check_finite(v, "simulate_transient",
                                      f"node voltages at t={t:.6g} s")
            first_step = False
            n_steps += 1
            times.append(t)
            traj.append(v.copy())
            record_supplies(v)
    if obs.ACTIVE:
        obs.incr("circuit.transient_runs")
        obs.incr("circuit.transient_steps", n_steps)
        obs.incr("circuit.step_halvings", n_halvings)

    return TransientResult(
        circuit=circuit,
        time_s=np.array(times),
        voltages=np.array(traj),
        supply_currents={m: np.array(tr) for m, tr in supply_traces.items()},
    )
