"""Waveform post-processing: delays, oscillation frequency, power/energy."""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


def crossing_times(
    time_s: np.ndarray,
    signal_v: np.ndarray,
    threshold_v: float,
    direction: str = "both",
) -> np.ndarray:
    """Linearly interpolated times where a waveform crosses a threshold.

    ``direction`` selects ``"rising"``, ``"falling"`` or ``"both"`` edges.
    """
    t = np.asarray(time_s, dtype=float)
    x = np.asarray(signal_v, dtype=float) - threshold_v
    if t.shape != x.shape:
        raise ValueError("time and signal must have the same shape")
    s0, s1 = x[:-1], x[1:]
    rising = (s0 < 0.0) & (s1 >= 0.0)
    falling = (s0 > 0.0) & (s1 <= 0.0)
    if direction == "rising":
        mask = rising
    elif direction == "falling":
        mask = falling
    elif direction == "both":
        mask = rising | falling
    else:
        raise ValueError(f"direction must be rising/falling/both, got {direction!r}")
    idx = np.where(mask)[0]
    if idx.size == 0:
        return np.empty(0)
    frac = s0[idx] / (s0[idx] - s1[idx])
    return t[idx] + frac * (t[idx + 1] - t[idx])


def propagation_delays(
    time_s: np.ndarray,
    v_in: np.ndarray,
    v_out: np.ndarray,
    vdd: float,
    out_threshold_v: float | None = None,
) -> tuple[float, float]:
    """``(t_pLH, t_pHL)`` between 50% crossings of input and output.

    ``t_pLH`` is measured from a falling input edge to the subsequent
    rising output edge (output going Low-to-High), and vice versa.  The
    first matching edge pair after each input transition is used and the
    results averaged over all transitions found.

    ``out_threshold_v`` overrides the output crossing level (default
    ``vdd / 2``); pass the mid-swing level for degraded cells whose
    output no longer reaches the rails.
    """
    half = 0.5 * vdd
    half_out = half if out_threshold_v is None else float(out_threshold_v)
    in_fall = crossing_times(time_s, v_in, half, "falling")
    in_rise = crossing_times(time_s, v_in, half, "rising")
    out_rise = crossing_times(time_s, v_out, half_out, "rising")
    out_fall = crossing_times(time_s, v_out, half_out, "falling")

    def pair(starts: np.ndarray, ends: np.ndarray) -> float:
        delays = []
        for t0 in starts:
            later = ends[ends > t0]
            if later.size:
                delays.append(later[0] - t0)
        if not delays:
            raise AnalysisError("no matching output edge for an input edge")
        return float(np.mean(delays))

    return pair(in_fall, out_rise), pair(in_rise, out_fall)


def oscillation_frequency(
    time_s: np.ndarray,
    signal_v: np.ndarray,
    vdd: float,
    settle_fraction: float = 0.4,
    min_periods: int = 2,
) -> float:
    """Frequency of a settled oscillation from mean rising-edge spacing.

    The first ``settle_fraction`` of the record is discarded (start-up);
    at least ``min_periods + 1`` rising edges must remain.
    """
    t = np.asarray(time_s, dtype=float)
    start = t[0] + settle_fraction * (t[-1] - t[0])
    mask = t >= start
    edges = crossing_times(t[mask], np.asarray(signal_v)[mask],
                           0.5 * vdd, "rising")
    if edges.size < min_periods + 1:
        raise AnalysisError(
            f"only {edges.size} rising edges after settling; "
            "no sustained oscillation detected")
    periods = np.diff(edges)
    return float(1.0 / np.mean(periods))


def average_power_w(
    time_s: np.ndarray,
    supply_current_a: np.ndarray,
    vdd: float,
    settle_fraction: float = 0.0,
) -> float:
    """Mean power delivered by a constant-voltage supply."""
    t = np.asarray(time_s, dtype=float)
    i = np.asarray(supply_current_a, dtype=float)
    if t.shape != i.shape:
        raise ValueError("time and current must have the same shape")
    start = t[0] + settle_fraction * (t[-1] - t[0])
    mask = t >= start
    if mask.sum() < 2:
        raise AnalysisError("not enough samples after settling")
    energy = np.trapezoid(i[mask], t[mask])
    return float(vdd * energy / (t[mask][-1] - t[mask][0]))
