"""Voltage transfer curves by swept DC solves."""

from __future__ import annotations

import numpy as np

from repro.circuit.dc import solve_dc
from repro.circuit.netlist import Circuit


def compute_vtc(
    circuit: Circuit,
    input_node: int | str,
    output_node: int | str,
    vin_grid: np.ndarray,
) -> np.ndarray:
    """Output voltage for each input voltage.

    The input node must already be a fixed node of the circuit; its value
    is overwritten point by point.  Continuation (warm-starting each solve
    from the previous point) makes the sweep fast and keeps the solver on
    one branch of the curve.
    """
    vin_grid = np.asarray(vin_grid, dtype=float)
    in_idx = circuit.node(input_node) if isinstance(input_node, str) else input_node
    out_idx = circuit.node(output_node) if isinstance(output_node, str) else output_node
    if in_idx not in circuit.fixed:
        raise ValueError("input node must be fixed (driven) in the circuit")

    vout = np.empty_like(vin_grid)
    v_prev = None
    for i, vin in enumerate(vin_grid):
        circuit.fixed[in_idx] = float(vin)
        result = solve_dc(circuit, v0=v_prev)
        v_prev = result.voltages
        vout[i] = result.voltage(out_idx)
    return vout
