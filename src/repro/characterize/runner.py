"""Characterization runner: execute experiments, extract, diff.

Experiments run through the
:func:`~repro.runtime.scheduler.resolve_scheduler` seam — a
:class:`~repro.runtime.scheduler.LocalScheduler` by default (which
keeps deterministic ordering, drains worker observability payloads,
falls back to a serial loop when ``workers <= 1``, and recomputes the
tasks of a crashed worker serially in the parent), or a
:class:`~repro.runtime.distributed.DistributedScheduler` when selected
via ``REPRO_SCHEDULER=distributed`` / ``--scheduler distributed`` —
then each data dictionary is reduced to figures of merit by its spec's
extractor and diffed against the committed golden.  When tracing is
active (:func:`repro.obs.enable` / ``REPRO_TRACE=1``) a per-run
manifest is assembled via :func:`repro.obs.build_manifest` so a
characterization run leaves the same audit trail as ``repro run``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.characterize.diffing import ExperimentDiff, diff_experiment
from repro.characterize.goldens import load_goldens
from repro.characterize.specs import SPECS
from repro.errors import GoldenError
from repro.runtime import Scheduler, resolve_scheduler


@dataclass(frozen=True)
class CharacterizationRun:
    """One characterization pass: measurements, diffs and timings."""

    mode: str
    measured: dict[str, dict[str, float]]
    diffs: dict[str, ExperimentDiff]
    timings_s: dict[str, float]
    wall_s: float

    @property
    def ok(self) -> bool:
        """True when every requested experiment passed its golden."""
        return all(diff.ok for diff in self.diffs.values())

    def failing_ids(self) -> list[str]:
        """Experiments that drifted or are unblessed, in spec order."""
        return [eid for eid, diff in self.diffs.items() if not diff.ok]


def resolve_ids(only: str | None) -> list[str]:
    """Expand a ``--only a,b,c`` selector into validated experiment ids."""
    if not only:
        return list(SPECS)
    ids = [token.strip() for token in only.split(",") if token.strip()]
    unknown = [eid for eid in ids if eid not in SPECS]
    if unknown:
        raise GoldenError(
            f"unknown experiment id(s) {unknown}; known: {list(SPECS)}")
    return ids


def _measure_one(item: tuple[str, bool]
                 ) -> tuple[str, dict[str, float], float]:
    """Run one experiment and extract its figures of merit.

    Top-level so it pickles into worker processes; it only reads the
    spec registry and returns plain data (no module state is mutated).
    """
    experiment_id, fast = item
    spec = SPECS[experiment_id]
    start = time.perf_counter()
    with obs.span(f"characterize.{experiment_id}", fast=fast):
        # Import the runner lazily through the registry, matching the
        # ids pinned by tests against repro.reporting.experiments.
        from repro.reporting.experiments import run_experiment
        _, data = run_experiment(experiment_id, fast=fast)
        metrics = spec.extract(data)
    elapsed = time.perf_counter() - start
    return experiment_id, {k: float(v) for k, v in metrics.items()}, elapsed


def measure(ids: list[str], fast: bool = False,
            workers: int | None = None,
            scheduler: Scheduler | None = None,
            ) -> tuple[dict[str, dict[str, float]], dict[str, float]]:
    """Run experiments and return ``(measured, timings_s)`` by id."""
    items = [(eid, fast) for eid in ids]
    sched = resolve_scheduler(scheduler, workers=workers)
    results = sched.run(_measure_one, items)
    measured = {eid: metrics for eid, metrics, _ in results}
    timings = {eid: elapsed for eid, _, elapsed in results}
    return measured, timings


def characterize(ids: list[str] | None = None, fast: bool = False,
                 workers: int | None = None,
                 golden_root: Path | None = None,
                 scheduler: Scheduler | None = None) -> CharacterizationRun:
    """Run experiments and diff them against the committed goldens."""
    selected = list(SPECS) if ids is None else ids
    wall_start = time.perf_counter()
    measured, timings = measure(selected, fast=fast, workers=workers,
                                scheduler=scheduler)
    mode = "fast" if fast else "full"
    goldens = load_goldens(selected, root=golden_root)
    diffs = {
        eid: diff_experiment(SPECS[eid], measured[eid],
                             goldens.get(eid), mode)
        for eid in selected
    }
    return CharacterizationRun(mode=mode, measured=measured, diffs=diffs,
                               timings_s=timings,
                               wall_s=time.perf_counter() - wall_start)


def run_manifest(run: CharacterizationRun, ids: list[str]) -> dict:
    """Assemble an observability manifest for a characterization run."""
    return obs.build_manifest(
        label="repro characterize " + " ".join(ids),
        config={"experiments": ids, "mode": run.mode},
        wall_s=run.wall_s)
