"""Golden JSON files: the committed reference values under ``goldens/``.

One file per experiment, schema ``repro-golden/1``::

    {
      "schema": "repro-golden/1",
      "experiment": "fig2",
      "reason": "initial blessing after NEGF refactor",
      "modes": {
        "fast": {"vt_zero_offset_v": 0.295, "leak_ratio_050_025": null},
        "full": {...}
      }
    }

Fast and full runs use different grids, so each mode gets its own metric
block; a metric unavailable in a mode is stored as JSON ``null`` and
round-trips as NaN.  Goldens deliberately carry **no** timings or
timestamps — re-blessing with unchanged physics must be bitwise stable —
and no tolerances: the drift allowance is owned by the
:class:`~repro.characterize.specs.MetricSpec` in code, so loosening a
tolerance is a reviewed source change, not a data edit.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

from repro.characterize.specs import SPECS
from repro.errors import GoldenError

#: Schema tag written to and required from every golden file.
GOLDEN_SCHEMA = "repro-golden/1"

#: Repository-relative directory holding the golden files.
GOLDEN_DIR = Path("goldens")

_MODES = ("fast", "full")


def golden_path(experiment_id: str, root: Path | None = None) -> Path:
    """Path of the golden file for one experiment."""
    base = GOLDEN_DIR if root is None else Path(root)
    return base / f"{experiment_id}.json"


def _decode_metrics(block: dict, experiment_id: str) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for name, value in block.items():
        if value is None:
            metrics[name] = float("nan")
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[name] = float(value)
        else:
            raise GoldenError(
                f"golden for {experiment_id!r}: metric {name!r} is "
                f"{value!r}, expected a number or null")
    return metrics


def load_golden(experiment_id: str, root: Path | None = None) -> dict:
    """Load and validate one golden file.

    Returns ``{"experiment", "reason", "modes": {mode: {name: float}}}``
    with NaN restored from ``null``.  Raises :class:`GoldenError` on a
    missing file, wrong schema, or malformed metric values.
    """
    path = golden_path(experiment_id, root)
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise GoldenError(
            f"no golden for {experiment_id!r} at {path}; bless one with "
            "'repro characterize --update --reason ...'") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise GoldenError(f"cannot read golden {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("schema") != GOLDEN_SCHEMA:
        raise GoldenError(
            f"golden {path} has schema {raw.get('schema')!r}, "
            f"expected {GOLDEN_SCHEMA!r}")
    if raw.get("experiment") != experiment_id:
        raise GoldenError(
            f"golden {path} claims experiment {raw.get('experiment')!r}, "
            f"expected {experiment_id!r}")
    modes = raw.get("modes")
    if not isinstance(modes, dict) or not modes:
        raise GoldenError(f"golden {path} has no 'modes' blocks")
    decoded: dict[str, dict[str, float]] = {}
    for mode, block in modes.items():
        if mode not in _MODES:
            raise GoldenError(
                f"golden {path} has unknown mode {mode!r} "
                f"(expected one of {_MODES})")
        if not isinstance(block, dict):
            raise GoldenError(f"golden {path} mode {mode!r} is not a dict")
        decoded[mode] = _decode_metrics(block, experiment_id)
    return {
        "experiment": experiment_id,
        "reason": str(raw.get("reason", "")),
        "modes": decoded,
    }


def load_goldens(ids: list[str] | None = None,
                 root: Path | None = None) -> dict[str, dict]:
    """Load goldens for the given experiments; missing files are skipped."""
    result: dict[str, dict] = {}
    for experiment_id in (ids if ids is not None else list(SPECS)):
        try:
            result[experiment_id] = load_golden(experiment_id, root)
        except GoldenError:
            continue
    return result


def _encode_metrics(metrics: dict[str, float]) -> dict[str, object]:
    encoded: dict[str, object] = {}
    for name in sorted(metrics):
        value = float(metrics[name])
        encoded[name] = None if math.isnan(value) else value
    return encoded


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def bless_golden(experiment_id: str, mode: str, metrics: dict[str, float],
                 reason: str, root: Path | None = None) -> Path:
    """Write (or update one mode block of) an experiment's golden file.

    Only the targeted ``mode`` block is replaced; the other mode's
    values survive, so blessing a fast run never invalidates a full
    blessing.  The write is atomic (temp file + ``os.replace``) and the
    serialization is canonical — sorted keys, fixed indent, trailing
    newline — so re-blessing identical metrics is bitwise stable.
    """
    if experiment_id not in SPECS:
        raise GoldenError(f"unknown experiment {experiment_id!r}")
    if mode not in _MODES:
        raise GoldenError(f"unknown mode {mode!r} (expected one of {_MODES})")
    if not reason or not reason.strip():
        raise GoldenError(
            "blessing a golden requires a non-empty --reason")
    spec = SPECS[experiment_id]
    unknown = sorted(set(metrics) - set(spec.metric_names()))
    if unknown:
        raise GoldenError(
            f"cannot bless {experiment_id!r}: metrics {unknown} are not "
            "declared in its ExperimentSpec")

    modes: dict[str, dict[str, object]] = {}
    try:
        existing = load_golden(experiment_id, root)
    except GoldenError:
        existing = None
    if existing is not None:
        for other, block in existing["modes"].items():
            modes[other] = _encode_metrics(block)
    modes[mode] = _encode_metrics(metrics)

    payload = {
        "schema": GOLDEN_SCHEMA,
        "experiment": experiment_id,
        "reason": reason.strip(),
        "modes": {m: modes[m] for m in _MODES if m in modes},
    }
    path = golden_path(experiment_id, root)
    _atomic_write(path, json.dumps(payload, indent=2, sort_keys=False)
                  + "\n")
    return path
