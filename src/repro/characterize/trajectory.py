"""Benchmark trajectory log: append-only run history in JSONL.

Layer: inside :mod:`repro.characterize` (imports stdlib only).
Responsibility: record one compact line per harness run — who ran
(``repro characterize`` or a ``benchmarks/`` script), in which mode,
whether it passed, and its headline numbers — so regressions are
visible as a *time series* across commits, not just as the latest
``BENCH_*.json`` snapshot.

Format (one JSON object per line, schema ``repro-bench-trajectory/1``):

``{"schema": "repro-bench-trajectory/1", "ts": "2026-08-08T12:00:00Z",
"source": "characterize", "mode": "fast", "ok": true, "wall_s": 12.3,
"metrics": {...}}``

The file lives at the repository root (cwd-relative, like
``goldens/``) and is pruned to the most recent
:data:`MAX_ENTRIES` lines on every append, so it stays reviewable in
diffs.  Lines whose schema is unknown are preserved verbatim during
pruning — newer writers must not destroy older history.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Mapping

TRAJECTORY_SCHEMA = "repro-bench-trajectory/1"

#: cwd-relative, like ``goldens/`` — run tools from the repo root.
TRAJECTORY_PATH = Path("BENCH_trajectory.jsonl")

#: Pruning bound: the log keeps the most recent entries only.
MAX_ENTRIES = 200


def trajectory_entry(source: str, mode: str, ok: bool, wall_s: float,
                     metrics: Mapping[str, float | int | str | bool],
                     ) -> dict:
    """One schema-stamped trajectory record (not yet written)."""
    ts = datetime.now(timezone.utc)  # repro: noqa[RPA103] log timestamp
    return {
        "schema": TRAJECTORY_SCHEMA,
        "ts": ts.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "source": source,
        "mode": mode,
        "ok": bool(ok),
        "wall_s": round(float(wall_s), 3),
        "metrics": dict(metrics),
    }


def append_trajectory(entry: Mapping[str, object],
                      path: Path | None = None) -> Path:
    """Append ``entry`` to the JSONL log and prune to ``MAX_ENTRIES``.

    Returns the path written.  The read-modify-write is wholesale (the
    file is bounded at ``MAX_ENTRIES`` small lines, so rewriting is
    cheap) and tolerant of a corrupt line: unparseable lines are kept
    as-is rather than silently dropped.
    """
    target = TRAJECTORY_PATH if path is None else path
    lines: list[str] = []
    if target.exists():
        lines = [ln for ln in
                 target.read_text(encoding="utf-8").splitlines()
                 if ln.strip()]
    lines.append(json.dumps(entry, sort_keys=True))
    lines = lines[-MAX_ENTRIES:]
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return target


def read_trajectory(path: Path | None = None) -> list[dict]:
    """Parse the log; unparseable lines are skipped, not fatal."""
    target = TRAJECTORY_PATH if path is None else path
    if not target.exists():
        return []
    entries: list[dict] = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(parsed, dict):
            entries.append(parsed)
    return entries


__all__ = [
    "MAX_ENTRIES",
    "TRAJECTORY_PATH",
    "TRAJECTORY_SCHEMA",
    "append_trajectory",
    "read_trajectory",
    "trajectory_entry",
]
