"""Module entry point: ``python -m repro.characterize``."""

from __future__ import annotations

import sys

from repro.characterize.cli import main

sys.exit(main())
