"""Characterization specs: one entry per paper experiment.

Each :class:`ExperimentSpec` names the figures of merit a paper artifact
must reproduce (on/off ratio, V_T, ring-oscillator frequency vs the
2.7 GHz calibration datum, EDP minima, SNM, Monte Carlo spread, ...),
the paper's reference value for each, and a per-metric drift tolerance
used when diffing a fresh run against the committed golden.

The ``extract_*`` functions are the **single implementation** of
figure-of-merit extraction: the benchmark suite (``benchmarks/bench_*``)
and the ``repro characterize`` harness both call them on the ``data``
dictionary returned by the experiment runners in
:mod:`repro.reporting.experiments`, so a bench assertion and a golden
diff can never disagree about how a number was computed.

Fast-mode runs shrink some grids, so metrics whose source cell is not
computed in fast mode come back as NaN; the diff engine treats
NaN-vs-NaN as agreement (the cell is quarantined in both the golden and
the run) and NaN-vs-value as a failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.variability.yield_model import cell_failure_probability

NAN = float("nan")


@dataclass(frozen=True)
class MetricSpec:
    """One figure of merit: paper reference plus drift tolerance.

    ``paper`` is the paper's reference value in ``unit`` (None when the
    paper only states a direction or class); ``paper_note`` carries the
    qualitative claim.  The golden-diff allowance for a blessed value
    ``g`` is ``abs_tol + rel_tol * |g|``.
    """

    name: str
    description: str
    unit: str
    paper: float | None = None
    paper_note: str = ""
    rel_tol: float = 0.05
    abs_tol: float = 0.0

    def allowance(self, golden: float) -> float:
        """Permitted |measured - golden| drift around a blessed value."""
        return self.abs_tol + self.rel_tol * abs(golden)


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper experiment: runner id, benchmark, metrics, extractor."""

    id: str
    title: str
    benchmark: str
    runner: str
    metrics: tuple[MetricSpec, ...]
    extract: Callable[[dict], dict[str, float]]

    def metric(self, name: str) -> MetricSpec:
        """Look up one metric spec by name."""
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise KeyError(f"experiment {self.id!r} has no metric {name!r}")

    def metric_names(self) -> tuple[str, ...]:
        """Metric names in declaration order."""
        return tuple(m.name for m in self.metrics)


# --------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------- #
def _series_by_name(data: Mapping, key: str) -> dict:
    return {s.name: s for s in data[key]}


def _pct_cell(entries: Mapping, key: object, attr: str, index: int) -> float:
    """One (one-affected, all-affected) percentage cell, NaN if absent.

    Fast-mode studies shrink the variant grid, so a missing cell is the
    quarantined-NaN case, not an error.
    """
    entry = entries.get(key)
    if entry is None:
        return NAN
    return float(getattr(entry, attr)[index])


# --------------------------------------------------------------------- #
# device level
# --------------------------------------------------------------------- #
def extract_fig2(data: dict) -> dict[str, float]:
    """Fig. 2: V_T anchors, ambipolar minimum, leakage growth, I_on."""
    by_name = _series_by_name(data, "series")
    s05 = by_name["VD=0.50V"]
    mins = {name: float(np.min(s.y)) for name, s in by_name.items()}
    return {
        "vt_zero_offset_v": float(data["vt"][0.0]),
        "vt_offset02_v": float(data["vt"][0.2]),
        "delta_vt_v": float(data["vt"][0.0] - data["vt"][0.2]),
        "ambipolar_min_vg_v": float(s05.x[int(np.argmin(s05.y))]),
        "leak_ratio_050_025": mins["VD=0.50V"] / mins["VD=0.25V"],
        "leak_ratio_075_050": mins["VD=0.75V"] / mins["VD=0.50V"],
        "i_on_vd05_ua": float(s05.y[-1]) * 1e6,
    }


def extract_fig4(data: dict) -> dict[str, float]:
    """Fig. 4: on/off ratios per width family, leakage and drive spans."""
    ratios = data["on_off_ratios"]
    by_name = _series_by_name(data, "series")
    i_on = {n: float(by_name[f"N={n}"].y[-1]) for n in (9, 18)}
    i_min = {n: float(np.min(by_name[f"N={n}"].y)) for n in (9, 18)}
    return {
        "on_off_n9": float(ratios[9]),
        "on_off_n12": float(ratios[12]),
        "on_off_n15": float(ratios.get(15, NAN)),
        "on_off_n18": float(ratios[18]),
        "leak_ratio_n18_n9": i_min[18] / i_min[9],
        "i_on_ratio_n18_n9": i_on[18] / i_on[9],
    }


def extract_fig5(data: dict) -> dict[str, float]:
    """Fig. 5: impurity barrier shifts, I_on drop, n-branch asymmetry."""
    profiles = {p.name: p for p in data["profiles"]}
    peak = {name: float(p.y.max()) for name, p in profiles.items()}
    iv = _series_by_name(data, "iv")
    ion_ideal = float(iv["no impurity"].y[-1])
    dev_pos = abs(math.log(float(iv["+2q"].y[-1]) / ion_ideal))
    dev_neg = abs(math.log(float(iv["-2q"].y[-1]) / ion_ideal))
    return {
        "barrier_shift_minus2q_ev": peak["-2q"] - peak["no impurity"],
        "barrier_shift_plus2q_ev": peak["+2q"] - peak["no impurity"],
        "ion_drop_minus2q": float(data["ion_drop_minus2q"]),
        "asymmetry_logdev_ratio": dev_neg / max(dev_pos, 1e-12),
    }


# --------------------------------------------------------------------- #
# circuit level
# --------------------------------------------------------------------- #
def extract_fig3(data: dict) -> dict[str, float]:
    """Fig. 3(b): exploration-plane optimum and design points A/B."""
    opt, a, b = data["optimum"], data["A"], data["B"]
    return {
        "opt_vdd_v": float(opt.vdd),
        "opt_vt_v": float(opt.vt),
        "opt_frequency_ghz": float(opt.frequency_hz) / 1e9,
        "a_edp_fj_ps": float(a.edp_j_s) * 1e27,
        "a_snm_v": float(a.snm_v),
        "b_edp_fj_ps": float(b.edp_j_s) * 1e27,
        "b_snm_v": float(b.snm_v),
        "edp_b_over_a": float(b.edp_j_s) / float(a.edp_j_s),
    }


def extract_table1(data: dict) -> dict[str, float]:
    """Table 1: GNRFET A/B/C operating points vs the scaled-CMOS gap."""
    gnr = {r.label: r for r in data["gnrfet"]}
    r_min, r_max = data["edp_ratio_range"]
    return {
        "a_frequency_ghz": float(gnr["A"].frequency_ghz),
        "b_frequency_ghz": float(gnr["B"].frequency_ghz),
        "c_frequency_ghz": float(gnr["C"].frequency_ghz),
        "b_edp_fj_ps": float(gnr["B"].edp_fj_ps),
        "b_snm_v": float(gnr["B"].snm_v),
        "edp_ratio_min": float(r_min),
        "edp_ratio_max": float(r_max),
        "b_over_c_frequency": (float(gnr["B"].frequency_ghz)
                               / float(gnr["C"].frequency_ghz)),
    }


def extract_table2(data: dict) -> dict[str, float]:
    """Table 2: width-variation corners of the inverter sensitivity grid."""
    entries = data["entries"]
    mismatch = min(_pct_cell(entries, (9, 18), "snm_pct", 1),
                   _pct_cell(entries, (18, 9), "snm_pct", 1))
    return {
        "delay_slow_one_pct": _pct_cell(entries, (9, 9), "delay_pct", 0),
        "delay_slow_all_pct": _pct_cell(entries, (9, 9), "delay_pct", 1),
        "delay_fast_all_pct": _pct_cell(entries, (18, 18), "delay_pct", 1),
        "pstat_leaky_one_pct": _pct_cell(entries, (18, 18),
                                         "static_power_pct", 0),
        "pstat_leaky_all_pct": _pct_cell(entries, (18, 18),
                                         "static_power_pct", 1),
        "snm_mismatch_worst_pct": mismatch,
        "snm_matched_narrow_all_pct": _pct_cell(entries, (9, 9),
                                                "snm_pct", 1),
    }


def extract_table3(data: dict) -> dict[str, float]:
    """Table 3: charge-impurity corners plus the degradation asymmetry."""
    entries = data["entries"]
    degradations = [float(e.delay_pct[1]) for e in entries.values()]
    best_improvement = -min(degradations)
    worst_degradation = max(degradations)
    return {
        "delay_worst_one_pct": _pct_cell(entries, (2.0, -2.0),
                                         "delay_pct", 0),
        "delay_worst_all_pct": _pct_cell(entries, (2.0, -2.0),
                                         "delay_pct", 1),
        "asymmetry_ratio": worst_degradation / max(best_improvement, 1.0),
        "snm_pq_all_pct": _pct_cell(entries, (-1.0, 1.0), "snm_pct", 1),
        "pstat_max_abs_pct": max(abs(float(e.static_power_pct[1]))
                                 for e in entries.values()),
    }


def extract_table4(data: dict) -> dict[str, float]:
    """Table 4: combined width+impurity corners and the SNM collapse."""
    entries = data["entries"]
    return {
        "pstat_leaky_all_pct": _pct_cell(entries, ((18, 1.0), (18, -1.0)),
                                         "static_power_pct", 1),
        "pstat_double18_all_pct": _pct_cell(entries,
                                            ((18, -1.0), (18, -1.0)),
                                            "static_power_pct", 1),
        "delay_slow_combined_all_pct": _pct_cell(
            entries, ((9, 1.0), (9, -1.0)), "delay_pct", 1),
        "snm_asym_all_pct": _pct_cell(entries, ((18, -1.0), (9, 1.0)),
                                      "snm_pct", 1),
    }


def extract_fig6(data: dict) -> dict[str, float]:
    """Fig. 6: Monte Carlo mean shifts, spread, and the nominal datum."""
    result = data["result"]
    freqs = np.asarray(result.frequencies_hz, dtype=float)
    return {
        "mean_frequency_shift_pct": 100.0 * float(
            result.mean_frequency_shift),
        "mean_static_power_shift_pct": 100.0 * float(
            result.mean_static_power_shift),
        "mean_dynamic_power_shift_pct": 100.0 * float(
            result.mean_dynamic_power_shift),
        "nominal_frequency_ghz": float(result.nominal_frequency_hz) / 1e9,
        "freq_spread_rel": (float(np.nanstd(freqs))
                            / float(result.nominal_frequency_hz)),
    }


def extract_fig7(data: dict) -> dict[str, float]:
    """Fig. 7: latch SNM degradation ladder and static-power blow-up."""
    nominal, single, worst = data["cases"]
    return {
        "nominal_snm_mv": float(nominal.snm_v) * 1e3,
        "single_snm_mv": float(single.snm_v) * 1e3,
        "worst_snm_mv": float(worst.snm_v) * 1e3,
        "worst_pstat_ratio": (float(worst.static_power_w)
                              / float(nominal.static_power_w)),
    }


# --------------------------------------------------------------------- #
# extensions
# --------------------------------------------------------------------- #
def extract_ext_roughness(data: dict) -> dict[str, float]:
    """Edge roughness: mean first-plateau transmission per (N, p) cell."""
    study = data["study"]

    def mean_t(n: int, p: float) -> float:
        stats = study.get((n, p))
        return NAN if stats is None else float(stats.mean_transmission)

    return {
        "t_n9_p005": mean_t(9, 0.05),
        "t_n18_p005": mean_t(18, 0.05),
        "t_n9_p01": mean_t(9, 0.1),
        "t_n12_p01": mean_t(12, 0.1),
        "t_n18_p01": mean_t(18, 0.1),
    }


def extract_ext_oxide(data: dict) -> dict[str, float]:
    """Oxide thickness: delay/leakage spans across the swept range."""
    entries = data["entries"]
    delays = [float(e.metrics.delay_s) for e in entries]
    leaks = [float(e.metrics.static_power_w) for e in entries]
    return {
        "delay_ratio_span": delays[-1] / delays[0],
        "leak_ratio_span": leaks[0] / leaks[-1],
        "snm_shift_thick_pct": float(entries[-1].snm_pct),
    }


def extract_ext_temperature(data: dict) -> dict[str, float]:
    """Temperature: activation energy and leakage-vs-drive fragility."""
    points = data["points"]
    return {
        "activation_energy_ev": float(data["activation_energy_ev"]),
        "leak_ratio_span": (float(points[-1].i_min_a)
                            / float(points[0].i_min_a)),
        "on_ratio_span": (float(points[-1].i_on_a)
                          / float(points[0].i_on_a)),
        "pstat_ratio_span": (float(points[-1].inverter_static_power_w)
                             / float(points[0].inverter_static_power_w)),
    }


def extract_ext_yield(data: dict) -> dict[str, float]:
    """Memory yield: latch-SNM distribution and failure probabilities."""
    snm = np.asarray(data["snm_samples"], dtype=float)
    return {
        "snm_mean_mv": float(np.mean(snm)) * 1e3,
        "snm_std_mv": float(np.std(snm)) * 1e3,
        "snm_min_mv": float(np.min(snm)) * 1e3,
        "p_cell_20mv": float(cell_failure_probability(snm, 0.02)),
        "p_cell_35mv": float(cell_failure_probability(snm, 0.035)),
        "p_cell_50mv": float(cell_failure_probability(snm, 0.05)),
    }


# --------------------------------------------------------------------- #
# the spec registry
# --------------------------------------------------------------------- #
def _spec(id: str, title: str, benchmark: str, runner: str,
          extract: Callable[[dict], dict[str, float]],
          *metrics: MetricSpec) -> ExperimentSpec:
    return ExperimentSpec(id=id, title=title, benchmark=benchmark,
                          runner=runner, metrics=tuple(metrics),
                          extract=extract)


#: id -> ExperimentSpec for all 14 experiments (same ids and order as
#: repro.reporting.experiments.EXPERIMENTS; pinned by a test).
SPECS: dict[str, ExperimentSpec] = {s.id: s for s in (
    _spec(
        "fig2", "Fig 2: intrinsic N=12 I-V and VT extraction",
        "benchmarks/bench_fig2_iv.py", "run_fig2", extract_fig2,
        MetricSpec("vt_zero_offset_v", "extracted V_T, no gate offset",
                   "V", paper=0.30, paper_note="~0.3 V",
                   rel_tol=0.02, abs_tol=0.005),
        MetricSpec("vt_offset02_v", "extracted V_T at 0.2 V gate offset",
                   "V", paper=0.10, paper_note="~0.1 V",
                   rel_tol=0.02, abs_tol=0.005),
        MetricSpec("delta_vt_v", "V_T shift per 0.2 V of work-function "
                   "offset", "V", paper=0.20, paper_note="exact tracking",
                   rel_tol=0.02, abs_tol=0.005),
        MetricSpec("ambipolar_min_vg_v", "V_G of the leakage minimum at "
                   "V_D = 0.5 V", "V", paper=0.25,
                   paper_note="V_G = V_D/2", rel_tol=0.0, abs_tol=0.051),
        MetricSpec("leak_ratio_050_025", "leakage-floor growth from "
                   "V_D = 0.25 to 0.5 V", "x", paper=None,
                   paper_note="exponential in V_D", rel_tol=0.10),
        MetricSpec("leak_ratio_075_050", "leakage-floor growth from "
                   "V_D = 0.5 to 0.75 V", "x", paper=None,
                   paper_note="exponential in V_D", rel_tol=0.10),
        MetricSpec("i_on_vd05_ua", "on-current at V_G = 0.75, "
                   "V_D = 0.5 V", "uA", paper=6.3,
                   paper_note="~6.3 uA scale", rel_tol=0.05),
    ),
    _spec(
        "fig3", "Fig 3(b): EDP/frequency/SNM contours and points A/B",
        "benchmarks/bench_fig3_contours.py", "run_fig3", extract_fig3,
        MetricSpec("opt_vdd_v", "V_DD of the global EDP optimum", "V",
                   paper=0.15, paper_note="interior, low-frequency",
                   rel_tol=0.0, abs_tol=0.051),
        MetricSpec("opt_vt_v", "V_T of the global EDP optimum", "V",
                   paper=0.08, paper_note="interior, low-frequency",
                   rel_tol=0.0, abs_tol=0.021),
        MetricSpec("opt_frequency_ghz", "frequency at the global EDP "
                   "optimum", "GHz", paper=None,
                   paper_note="slower than points A/B", rel_tol=0.05),
        MetricSpec("a_edp_fj_ps", "EDP of point A (min EDP at 3 GHz)",
                   "fJ*ps", paper=None, paper_note="lowest at 3 GHz",
                   rel_tol=0.08),
        MetricSpec("a_snm_v", "SNM at point A", "V", paper=0.1,
                   paper_note="~0.1 V, low", rel_tol=0.05,
                   abs_tol=0.002),
        MetricSpec("b_edp_fj_ps", "EDP of point B (adds the SNM floor)",
                   "fJ*ps", paper=None, paper_note="EDP(B) > EDP(A)",
                   rel_tol=0.08),
        MetricSpec("b_snm_v", "SNM at point B", "V", paper=0.13,
                   paper_note="meets the SNM floor", rel_tol=0.05,
                   abs_tol=0.002),
        MetricSpec("edp_b_over_a", "price of noise margin: EDP(B)/EDP(A)",
                   "x", paper=None, paper_note="> 1", rel_tol=0.10),
    ),
    _spec(
        "table1", "Table 1: GNRFET vs scaled CMOS",
        "benchmarks/bench_table1_cmos.py", "run_table1", extract_table1,
        MetricSpec("a_frequency_ghz", "ring-oscillator frequency at "
                   "point A", "GHz", paper=3.3, rel_tol=0.05),
        MetricSpec("b_frequency_ghz", "ring-oscillator frequency at "
                   "point B", "GHz", paper=3.4,
                   paper_note="vs the 2.7 GHz calibration datum",
                   rel_tol=0.05),
        MetricSpec("c_frequency_ghz", "ring-oscillator frequency at "
                   "point C", "GHz", paper=2.5, rel_tol=0.05),
        MetricSpec("b_edp_fj_ps", "EDP at point B", "fJ*ps", paper=27.6,
                   rel_tol=0.08),
        MetricSpec("b_snm_v", "SNM at point B", "V", paper=0.14,
                   paper_note="known ~2x scale deviation", rel_tol=0.05,
                   abs_tol=0.002),
        MetricSpec("edp_ratio_min", "smallest CMOS/GNRFET-B EDP ratio",
                   "x", paper=40.0, paper_note="GNRFET wins everywhere",
                   rel_tol=0.10),
        MetricSpec("edp_ratio_max", "largest CMOS/GNRFET-B EDP ratio",
                   "x", paper=168.0, paper_note="GNRFET wins everywhere",
                   rel_tol=0.10),
        MetricSpec("b_over_c_frequency", "speed advantage of B over C",
                   "x", paper=1.4, paper_note="B is ~40% faster",
                   rel_tol=0.05),
    ),
    _spec(
        "fig4", "Fig 4: I-V vs GNR width",
        "benchmarks/bench_fig4_width.py", "run_fig4", extract_fig4,
        MetricSpec("on_off_n9", "I_on/I_off of the N=9 ribbon", "x",
                   paper=1000.0, paper_note='"as high as 1000x"',
                   rel_tol=0.10),
        MetricSpec("on_off_n12", "I_on/I_off of the N=12 ribbon", "x",
                   paper=None, paper_note="strictly below N=9",
                   rel_tol=0.10),
        MetricSpec("on_off_n15", "I_on/I_off of the N=15 ribbon", "x",
                   paper=None, paper_note="strictly below N=12",
                   rel_tol=0.10),
        MetricSpec("on_off_n18", "I_on/I_off of the N=18 ribbon", "x",
                   paper=None, paper_note='gap "too small for small '
                   'leakage"', rel_tol=0.10),
        MetricSpec("leak_ratio_n18_n9", "leakage-floor ratio N=18 vs N=9",
                   "x", paper=None,
                   paper_note="orders of magnitude per couple of "
                   "Angstrom", rel_tol=0.15),
        MetricSpec("i_on_ratio_n18_n9", "on-current ratio N=18 vs N=9",
                   "x", paper=1.5, paper_note="~1.5x more drive",
                   rel_tol=0.05),
    ),
    _spec(
        "fig5", "Fig 5: charge-impurity band profiles and I-V",
        "benchmarks/bench_fig5_impurity.py", "run_fig5", extract_fig5,
        MetricSpec("barrier_shift_minus2q_ev", "peak-barrier raise by a "
                   "-2q impurity (NEGF+Poisson)", "eV", paper=None,
                   paper_note="raises barrier height and thickness",
                   rel_tol=0.05, abs_tol=0.01),
        MetricSpec("barrier_shift_plus2q_ev", "peak-barrier shift by a "
                   "+2q impurity", "eV", paper=None,
                   paper_note="lowers the barrier", rel_tol=0.05,
                   abs_tol=0.01),
        MetricSpec("ion_drop_minus2q", "I_on degradation factor at -2q",
                   "x", paper=6.0, paper_note="~6x", rel_tol=0.08),
        MetricSpec("asymmetry_logdev_ratio", "n-branch log-deviation "
                   "ratio -2q vs +2q", "x", paper=None,
                   paper_note="+2q perturbs far less", rel_tol=0.15),
    ),
    _spec(
        "table2", "Table 2: width-variation sensitivity",
        "benchmarks/bench_table2_width.py", "run_table2", extract_table2,
        MetricSpec("delay_slow_one_pct", "delay, slow corner (9/9), one "
                   "affected", "%", paper=6.0, rel_tol=0.10, abs_tol=2.0),
        MetricSpec("delay_slow_all_pct", "delay, slow corner (9/9), all "
                   "affected", "%", paper=77.0,
                   paper_note="direction reproduced, harsher",
                   rel_tol=0.10, abs_tol=2.0),
        MetricSpec("delay_fast_all_pct", "delay, fast corner (18/18), "
                   "all affected", "%", paper=-30.0, rel_tol=0.10,
                   abs_tol=2.0),
        MetricSpec("pstat_leaky_one_pct", "static power, leaky corner "
                   "(18/18), one affected", "%", paper=313.0,
                   rel_tol=0.10, abs_tol=2.0),
        MetricSpec("pstat_leaky_all_pct", "static power, leaky corner "
                   "(18/18), all affected", "%", paper=643.0,
                   rel_tol=0.10, abs_tol=2.0),
        MetricSpec("snm_mismatch_worst_pct", "worst SNM loss at maximum "
                   "width mismatch", "%", paper=-80.0, rel_tol=0.10,
                   abs_tol=2.0),
        MetricSpec("snm_matched_narrow_all_pct", "SNM gain with matched "
                   "narrow ribbons", "%", paper=13.0,
                   paper_note="0.15 -> 0.17 V", rel_tol=0.10,
                   abs_tol=2.0),
    ),
    _spec(
        "table3", "Table 3: charge-impurity sensitivity",
        "benchmarks/bench_table3_impurity.py", "run_table3",
        extract_table3,
        MetricSpec("delay_worst_one_pct", "delay, worst cell (n:-2q, "
                   "p:+2q), one affected", "%", paper=8.0, rel_tol=0.10,
                   abs_tol=2.0),
        MetricSpec("delay_worst_all_pct", "delay, worst cell (n:-2q, "
                   "p:+2q), all affected", "%", paper=92.0,
                   paper_note="direction reproduced, harsher",
                   rel_tol=0.10, abs_tol=2.0),
        MetricSpec("asymmetry_ratio", "worst degradation over best "
                   "improvement", "x", paper=None,
                   paper_note="highly asymmetric", rel_tol=0.15),
        MetricSpec("snm_pq_all_pct", "SNM change for (n:+q, p:-q), all "
                   "affected", "%", paper=-40.0,
                   paper_note="direction reproduced, milder",
                   rel_tol=0.10, abs_tol=2.0),
        MetricSpec("pstat_max_abs_pct", "largest |static power| move in "
                   "the grid", "%", paper=None,
                   paper_note="smaller than width variation",
                   rel_tol=0.10, abs_tol=2.0),
    ),
    _spec(
        "table4", "Table 4: simultaneous variations",
        "benchmarks/bench_table4_combined.py", "run_table4",
        extract_table4,
        MetricSpec("pstat_leaky_all_pct", "static power, (p:18/+q, "
                   "n:18/-q), all affected", "%", paper=684.0,
                   paper_note="> 7x", rel_tol=0.10, abs_tol=2.0),
        MetricSpec("pstat_double18_all_pct", "static power, both devices "
                   "N=18/-q, all affected", "%", paper=None,
                   paper_note="width-class blow-up", rel_tol=0.10,
                   abs_tol=2.0),
        MetricSpec("delay_slow_combined_all_pct", "delay, combined slow "
                   "corner (9/+-q), all affected", "%", paper=100.0,
                   paper_note="> 2x, beyond width-only", rel_tol=0.10,
                   abs_tol=2.0),
        MetricSpec("snm_asym_all_pct", "SNM at maximum n/p asymmetry "
                   "(n:9/+q, p:18/-q)", "%", paper=-100.0,
                   paper_note="eye collapse", rel_tol=0.10, abs_tol=2.0),
    ),
    _spec(
        "fig6", "Fig 6: ring-oscillator Monte Carlo",
        "benchmarks/bench_fig6_montecarlo.py", "run_fig6", extract_fig6,
        MetricSpec("mean_frequency_shift_pct", "mean frequency shift vs "
                   "nominal", "%", paper=-10.0, rel_tol=0.05,
                   abs_tol=1.0),
        MetricSpec("mean_static_power_shift_pct", "mean static-power "
                   "shift vs nominal", "%", paper=23.0, rel_tol=0.05,
                   abs_tol=1.0),
        MetricSpec("mean_dynamic_power_shift_pct", "mean dynamic-power "
                   "shift vs nominal", "%", paper=0.0,
                   paper_note="~0", rel_tol=0.05, abs_tol=1.0),
        # repro: noqa[RPA201] -- 2.7 is the paper's nominal clock in
        # GHz (Fig 6 datum), not the hopping energy.
        MetricSpec("nominal_frequency_ghz", "nominal ring-oscillator "
                   "frequency", "GHz", paper=2.7,  # repro: noqa[RPA201]
                   paper_note="the calibration datum", rel_tol=0.03),
        MetricSpec("freq_spread_rel", "frequency spread (std/nominal)",
                   "ratio", paper=None, paper_note="finite, unimodal",
                   rel_tol=0.08),
    ),
    _spec(
        "fig7", "Fig 7: latch butterfly study",
        "benchmarks/bench_fig7_latch.py", "run_fig7", extract_fig7,
        MetricSpec("nominal_snm_mv", "nominal latch SNM", "mV",
                   paper=150.0, paper_note="known ~2x scale deviation",
                   rel_tol=0.05, abs_tol=1.0),
        MetricSpec("single_snm_mv", "SNM with a single affected GNR",
                   "mV", paper=None, paper_note="between nominal and "
                   "worst", rel_tol=0.05, abs_tol=1.0),
        MetricSpec("worst_snm_mv", "SNM with all GNRs affected", "mV",
                   paper=0.0, paper_note="degrades to near-zero",
                   rel_tol=0.08, abs_tol=1.0),
        MetricSpec("worst_pstat_ratio", "worst-case static power vs "
                   "nominal", "x", paper=5.0,
                   paper_note="> 5x; ours milder", rel_tol=0.08),
    ),
    _spec(
        "ext-roughness", "Extension: edge-roughness defects",
        "benchmarks/bench_ext_edge_roughness.py", "run_ext_roughness",
        extract_ext_roughness,
        MetricSpec("t_n9_p005", "mean first-plateau transmission, N=9 at "
                   "p=0.05", "T", paper=None,
                   paper_note="monotone degradation", rel_tol=0.10),
        MetricSpec("t_n18_p005", "mean first-plateau transmission, N=18 "
                   "at p=0.05", "T", paper=None,
                   paper_note="wider ribbons degrade less",
                   rel_tol=0.10),
        MetricSpec("t_n9_p01", "mean first-plateau transmission, N=9 at "
                   "p=0.1", "T", paper=None,
                   paper_note="worst cell", rel_tol=0.10),
        MetricSpec("t_n12_p01", "mean first-plateau transmission, N=12 "
                   "at p=0.1", "T", paper=None, paper_note="",
                   rel_tol=0.10),
        MetricSpec("t_n18_p01", "mean first-plateau transmission, N=18 "
                   "at p=0.1", "T", paper=None, paper_note="",
                   rel_tol=0.10),
    ),
    _spec(
        "ext-oxide", "Extension: oxide-thickness variation",
        "benchmarks/bench_ext_oxide_temperature.py", "run_ext_oxide",
        extract_ext_oxide,
        MetricSpec("delay_ratio_span", "delay ratio across the swept "
                   "t_ox range", "x", paper=None,
                   paper_note="thicker oxide is slower", rel_tol=0.05),
        MetricSpec("leak_ratio_span", "leakage ratio thin vs thick "
                   "oxide", "x", paper=None,
                   paper_note="thinner oxide leaks more", rel_tol=0.05),
        MetricSpec("snm_shift_thick_pct", "SNM shift at the thickest "
                   "oxide", "%", paper=None, paper_note="secondary knob",
                   rel_tol=0.10, abs_tol=1.0),
    ),
    _spec(
        "ext-temperature", "Extension: temperature dependence",
        "benchmarks/bench_ext_oxide_temperature.py",
        "run_ext_temperature", extract_ext_temperature,
        MetricSpec("activation_energy_ev", "leakage activation energy",
                   "eV", paper=None,
                   paper_note="sizeable fraction of the 0.304 eV "
                   "half-gap", rel_tol=0.05, abs_tol=0.005),
        MetricSpec("leak_ratio_span", "leakage growth across the "
                   "temperature span", "x", paper=None,
                   paper_note="Arrhenius-activated", rel_tol=0.08),
        MetricSpec("on_ratio_span", "on-current growth across the span",
                   "x", paper=None, paper_note="weak", rel_tol=0.05),
        MetricSpec("pstat_ratio_span", "static-power growth across the "
                   "span", "x", paper=None,
                   paper_note="the thermally fragile metric",
                   rel_tol=0.08),
    ),
    _spec(
        "ext-yield", "Extension: memory yield and ECC overhead",
        "benchmarks/bench_ext_memory_yield.py", "run_ext_yield",
        extract_ext_yield,
        MetricSpec("snm_mean_mv", "mean sampled latch SNM", "mV",
                   paper=None, paper_note="below nominal", rel_tol=0.05,
                   abs_tol=1.0),
        MetricSpec("snm_std_mv", "latch-SNM spread", "mV", paper=None,
                   paper_note="finite degraded tail", rel_tol=0.08,
                   abs_tol=1.0),
        MetricSpec("snm_min_mv", "worst sampled latch SNM", "mV",
                   paper=None, paper_note="toward zero", rel_tol=0.15,
                   abs_tol=2.0),
        MetricSpec("p_cell_20mv", "cell failure probability at a 20 mV "
                   "noise budget", "prob", paper=None, paper_note="",
                   rel_tol=0.10, abs_tol=0.005),
        MetricSpec("p_cell_35mv", "cell failure probability at a 35 mV "
                   "noise budget", "prob", paper=None, paper_note="",
                   rel_tol=0.10, abs_tol=0.005),
        MetricSpec("p_cell_50mv", "cell failure probability at a 50 mV "
                   "noise budget", "prob", paper=None,
                   paper_note="monotone in the budget", rel_tol=0.10,
                   abs_tol=0.005),
    ),
)}
