"""Command-line front end: ``repro characterize`` / ``python -m ...``.

Modes (composable, mirroring ``repro lint`` conventions — exit codes:
0 clean, 1 drift/failures found, 2 usage error):

* default / ``--check`` — run the selected experiments, diff against the
  committed goldens, print a per-metric report;
* ``--update --reason TEXT`` — run, re-bless the goldens with the reason
  recorded in the file, and regenerate the docs pages so goldens and
  docs can never disagree;
* ``--docs`` — regenerate ``docs/experiments/`` from the committed
  goldens without running anything;
* ``--docs --check`` — drift check only: fail if a committed page
  differs from its regeneration.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

from repro import obs
from repro.characterize.goldens import bless_golden
from repro.characterize.markdown import docs_drift, write_docs
from repro.characterize.runner import (
    CharacterizationRun,
    characterize,
    resolve_ids,
    run_manifest,
)
from repro.characterize.specs import SPECS
from repro.characterize.trajectory import append_trajectory, trajectory_entry
from repro.errors import GoldenError

_GLYPH = {"pass": "ok", "fail": "FAIL", "nan-mismatch": "NAN-MISMATCH",
          "missing-metric": "MISSING", "new-metric": "NEW"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro characterize",
        description="Golden-regression harness: run the paper "
                    "experiments, extract figures of merit, and diff "
                    "them against the committed goldens/ files")
    parser.add_argument("--check", action="store_true",
                        help="diff against goldens (default action; "
                             "with --docs: check docs drift only)")
    parser.add_argument("--update", action="store_true",
                        help="re-bless goldens from this run and "
                             "regenerate docs (requires --reason)")
    parser.add_argument("--docs", action="store_true",
                        help="regenerate docs/experiments/ from the "
                             "committed goldens (no experiments run)")
    parser.add_argument("--reason", metavar="TEXT", default=None,
                        help="why the goldens move; recorded in the "
                             "golden files (required with --update)")
    parser.add_argument("--only", metavar="IDS", default=None,
                        help="comma-separated experiment ids "
                             "(default: all 14)")
    parser.add_argument("--fast", action="store_true",
                        help="use the reduced experiment grids and the "
                             "goldens' 'fast' mode block")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel experiment workers "
                             "(default: serial)")
    parser.add_argument("--scheduler", choices=("local", "distributed"),
                        default=None,
                        help="dispatch seam for the experiment wave "
                             "(equivalent to REPRO_SCHEDULER=NAME; "
                             "default local)")
    parser.add_argument("--hosts", default=None, metavar="SPEC",
                        help="agent host spec for --scheduler "
                             "distributed, e.g. 'local*3' "
                             "(equivalent to REPRO_HOSTS=SPEC)")
    return parser


def _fmt(value: float) -> str:
    return "nan" if math.isnan(value) else f"{value:.6g}"


def render_text(run: CharacterizationRun) -> str:
    """Human-readable per-metric report."""
    lines: list[str] = []
    for eid, diff in run.diffs.items():
        spec = SPECS[eid]
        verdict = diff.status.upper() if not diff.ok else "ok"
        lines.append(f"{eid}: {verdict} ({spec.title}, mode={run.mode}, "
                     f"{run.timings_s.get(eid, 0.0):.1f} s)")
        if diff.status == "unblessed":
            lines.append("  no golden block for this mode; bless with "
                         "--update --reason ...")
            continue
        for metric in diff.metrics:
            if metric.ok and diff.ok:
                continue  # quiet rows for passing experiments
            mark = _GLYPH.get(metric.status, metric.status)
            detail = (f"  [{mark}] {metric.name}: measured "
                      f"{_fmt(metric.measured)} vs golden "
                      f"{_fmt(metric.golden)}")
            if not math.isnan(metric.allowance):
                detail += (f" (drift {_fmt(metric.drift)}, allowance "
                           f"{_fmt(metric.allowance)}, margin "
                           f"{_fmt(metric.margin)})")
            lines.append(detail)
    n_fail = len(run.failing_ids())
    lines.append(f"{len(run.diffs) - n_fail}/{len(run.diffs)} "
                 f"experiment(s) pass in {run.wall_s:.1f} s")
    return "\n".join(lines)


def _metric_json(metric) -> dict:
    def opt(value: float) -> float | None:
        return None if math.isnan(value) else value
    return {"name": metric.name, "status": metric.status,
            "measured": opt(metric.measured),
            "golden": opt(metric.golden),
            "allowance": opt(metric.allowance),
            "drift": opt(metric.drift), "margin": opt(metric.margin)}


def render_json(run: CharacterizationRun) -> str:
    """Machine-readable report (schema ``repro-characterize-report/1``)."""
    diffs: dict[str, dict] = {}
    for eid, diff in run.diffs.items():
        diffs[eid] = {
            "status": diff.status,
            "metrics": [_metric_json(m) for m in diff.metrics],
            "wall_s": run.timings_s.get(eid),
        }
    return json.dumps({
        "schema": "repro-characterize-report/1",
        "mode": run.mode,
        "ok": run.ok,
        "experiments": diffs,
        "wall_s": run.wall_s,
    }, indent=2)


def _docs_only(args: argparse.Namespace) -> int:
    if args.check:
        drifted = docs_drift()
        if not drifted:
            print("docs/experiments/ is in sync with goldens/")
            return 0
        for path in drifted:
            print(f"drift: {path}")
        print(f"{len(drifted)} page(s) differ from regeneration; run "
              "'repro characterize --docs' and commit")
        return 1
    for path in write_docs():
        print(f"wrote {path}")
    return 0


def _check_or_update(args: argparse.Namespace) -> int:
    try:
        ids = resolve_ids(args.only)
    except GoldenError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "scheduler", None):
        from repro.runtime import SCHEDULER_ENV
        os.environ[SCHEDULER_ENV] = str(args.scheduler)
    if getattr(args, "hosts", None):
        from repro.runtime import HOSTS_ENV
        os.environ[HOSTS_ENV] = str(args.hosts)
    if obs.ACTIVE:
        obs.reset()
    run = characterize(ids, fast=args.fast, workers=args.workers)

    if args.update:
        mode = "fast" if args.fast else "full"
        for eid in ids:
            path = bless_golden(eid, mode, run.measured[eid],
                                reason=args.reason)
            print(f"blessed {path} [{mode}]")
        for path in write_docs():
            print(f"wrote {path}")
        return 0

    renderer = render_text if args.format == "text" else render_json
    print(renderer(run))
    failing = run.failing_ids()
    append_trajectory(trajectory_entry(
        "characterize", run.mode, run.ok, run.wall_s,
        {"n_experiments": len(run.diffs), "n_fail": len(failing),
         "failing": ",".join(failing)}))
    if obs.ACTIVE:
        manifest = run_manifest(run, ids)
        path = obs.write_manifest(manifest,
                                  "repro-characterize.manifest.json")
        print(f"wrote {path}", file=sys.stderr)
    return 0 if run.ok else 1


def main(argv: list[str] | None = None,
         args: argparse.Namespace | None = None) -> int:
    """Entry point; ``args`` lets ``repro characterize`` pass a namespace."""
    if args is None:
        args = build_parser().parse_args(argv)
    if args.update and (args.docs or not (args.reason or "").strip()):
        reason = ("--update cannot be combined with --docs"
                  if args.docs else "--update requires --reason TEXT")
        print(f"error: {reason}", file=sys.stderr)
        return 2
    if args.docs:
        return _docs_only(args)
    try:
        return _check_or_update(args)
    except GoldenError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
