"""Diff engine: measured metrics vs a golden block, per-metric tolerance.

The allowance for each metric is ``abs_tol + rel_tol * |golden|`` from
its :class:`~repro.characterize.specs.MetricSpec` — tolerance authority
lives in code, not in the golden file.  NaN means "this cell is
quarantined in this mode" (fast grids skip it, or the solver's retry
ladder gave up): NaN on **both** sides agrees, NaN on one side only is a
failure, because a metric silently appearing or vanishing is exactly the
regression this gate exists to catch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.characterize.specs import ExperimentSpec, MetricSpec

#: Metric diff statuses, in decreasing severity.
FAIL_STATUSES = ("fail", "nan-mismatch", "missing-metric", "new-metric")


@dataclass(frozen=True)
class MetricDiff:
    """Outcome of comparing one measured metric against its golden value.

    ``status`` is one of ``"pass"``, ``"fail"`` (drift beyond the
    allowance), ``"nan-mismatch"`` (NaN on exactly one side),
    ``"missing-metric"`` (golden has it, run does not) or
    ``"new-metric"`` (run has it, golden does not).
    """

    name: str
    status: str
    measured: float
    golden: float
    allowance: float
    drift: float

    @property
    def ok(self) -> bool:
        """True when this metric agrees with its golden value."""
        return self.status == "pass"

    @property
    def margin(self) -> float:
        """Headroom left inside the allowance (negative when violated)."""
        if math.isnan(self.drift) or math.isnan(self.allowance):
            return float("nan")
        return self.allowance - self.drift


@dataclass(frozen=True)
class ExperimentDiff:
    """All metric diffs for one experiment in one mode."""

    experiment_id: str
    mode: str
    status: str  # "pass", "fail" or "unblessed"
    metrics: tuple[MetricDiff, ...]

    @property
    def ok(self) -> bool:
        """True when every metric agrees with the golden block."""
        return self.status == "pass"

    def failures(self) -> tuple[MetricDiff, ...]:
        """The metric diffs that did not pass."""
        return tuple(m for m in self.metrics if not m.ok)


def diff_metric(spec: MetricSpec, measured: float,
                golden: float) -> MetricDiff:
    """Compare one measured value against its golden counterpart."""
    measured = float(measured)
    golden = float(golden)
    m_nan, g_nan = math.isnan(measured), math.isnan(golden)
    if m_nan and g_nan:
        # Quarantined in both the golden and this run: agreement.
        return MetricDiff(name=spec.name, status="pass", measured=measured,
                          golden=golden, allowance=float("nan"),
                          drift=float("nan"))
    if m_nan or g_nan:
        return MetricDiff(name=spec.name, status="nan-mismatch",
                          measured=measured, golden=golden,
                          allowance=float("nan"), drift=float("nan"))
    allowance = spec.allowance(golden)
    drift = abs(measured - golden)
    status = "pass" if drift <= allowance else "fail"
    return MetricDiff(name=spec.name, status=status, measured=measured,
                      golden=golden, allowance=allowance, drift=drift)


def diff_experiment(spec: ExperimentSpec, measured: dict[str, float],
                    golden: dict | None, mode: str) -> ExperimentDiff:
    """Diff one experiment's measured metrics against its golden block.

    ``golden`` is the decoded golden record from
    :func:`~repro.characterize.goldens.load_golden`, or ``None`` /
    missing the mode block, in which case the experiment is reported as
    ``"unblessed"`` (a failure: every experiment must carry a golden).
    """
    block = None if golden is None else golden["modes"].get(mode)
    if block is None:
        return ExperimentDiff(experiment_id=spec.id, mode=mode,
                              status="unblessed", metrics=())

    diffs: list[MetricDiff] = []
    for metric in spec.metrics:
        if metric.name not in block:
            if metric.name in measured:
                diffs.append(MetricDiff(
                    name=metric.name, status="new-metric",
                    measured=float(measured[metric.name]),
                    golden=float("nan"), allowance=float("nan"),
                    drift=float("nan")))
            continue
        if metric.name not in measured:
            diffs.append(MetricDiff(
                name=metric.name, status="missing-metric",
                measured=float("nan"), golden=float(block[metric.name]),
                allowance=float("nan"), drift=float("nan")))
            continue
        diffs.append(diff_metric(metric, measured[metric.name],
                                 block[metric.name]))
    # Golden keys not declared in the spec anymore: stale golden.
    for name in sorted(set(block) - set(spec.metric_names())):
        diffs.append(MetricDiff(
            name=name, status="missing-metric", measured=float("nan"),
            golden=float(block[name]), allowance=float("nan"),
            drift=float("nan")))

    status = "pass" if all(d.ok for d in diffs) else "fail"
    return ExperimentDiff(experiment_id=spec.id, mode=mode, status=status,
                          metrics=tuple(diffs))
