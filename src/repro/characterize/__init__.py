"""Golden-regression characterization harness.

Declares every paper experiment as an :class:`ExperimentSpec` (runner,
figures of merit, paper reference values, per-metric tolerances), runs
them through the resilient :func:`repro.runtime.parallel_map` substrate,
diffs the extracted metrics against committed golden JSONs under
``goldens/`` (schema ``repro-golden/1``), and renders the
``docs/experiments/`` pages from the same source of truth so the
documentation can never drift from the measurements.

Entry points: ``repro characterize`` (see :mod:`repro.characterize.cli`)
or ``python -m repro.characterize``.
"""

from __future__ import annotations

from repro.characterize.diffing import (
    ExperimentDiff,
    MetricDiff,
    diff_experiment,
)
from repro.characterize.goldens import (
    GOLDEN_DIR,
    GOLDEN_SCHEMA,
    bless_golden,
    golden_path,
    load_golden,
    load_goldens,
)
from repro.characterize.runner import CharacterizationRun, characterize
from repro.characterize.specs import SPECS, ExperimentSpec, MetricSpec

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_SCHEMA",
    "CharacterizationRun",
    "ExperimentDiff",
    "ExperimentSpec",
    "MetricDiff",
    "MetricSpec",
    "SPECS",
    "bless_golden",
    "characterize",
    "diff_experiment",
    "golden_path",
    "load_golden",
    "load_goldens",
]
