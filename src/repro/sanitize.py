"""Opt-in numerical sanitizer for the NEGF / SCF / transient hot paths.

PR 1 made sweeps parallel and cached, which means a single silent NaN in
a Green's-function block can poison a cached device table — and every
Monte Carlo distribution derived from it — without any test failing.
This module provides cheap runtime guards for the physical invariants
coherent transport must satisfy:

* **Hermiticity** — Hamiltonian blocks fed to the Green's-function
  kernels must be Hermitian (a non-Hermitian ``H`` silently breaks the
  analytic structure of ``G^r``).
* **Finiteness** — Green's functions, spectral densities, charge
  densities and node voltages must be free of NaN/Inf.
* **Transmission bounds** — coherent transmission satisfies
  ``0 <= T(E) <= M`` with ``M`` the number of conducting channels.
* **Current conservation** — the source and drain see the same current;
  for coherent transport this is the left/right transmission reciprocity
  ``Tr[Gamma_L G Gamma_R G^dag] = Tr[Gamma_R G Gamma_L G^dag]``.

Activation
----------
The sanitizer is **off by default** and compiled out of the hot paths
behind the module-level :data:`ACTIVE` flag — call sites guard with
``if sanitize.ACTIVE:``, so the disabled cost is one global load and a
jump (asserted by ``benchmarks/bench_sanitizer_overhead.py``).  Enable it
with the environment variable ``REPRO_SANITIZE=1`` (inherited by
``runtime.parallel_map`` worker processes) or the CLI flag
``repro run --sanitize``, or programmatically via :func:`enable`.

Failures raise :class:`repro.errors.SanitizerError` naming the operator,
the offending quantity, the energy point and the bias.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import SanitizerError

#: Environment variable that switches the sanitizer on for a process
#: tree (worker processes spawned by ``runtime.parallel_map`` inherit it).
SANITIZE_ENV = "REPRO_SANITIZE"

_FALSEY = ("", "0", "false", "off", "no")


def _env_active() -> bool:
    return os.environ.get(SANITIZE_ENV, "").strip().lower() not in _FALSEY


#: Module-level guard flag read by every instrumented call site
#: (``if sanitize.ACTIVE:``).  Mutate only through :func:`enable` /
#: :func:`disable` so the environment stays in sync for worker processes.
ACTIVE: bool = _env_active()


def enable() -> None:
    """Switch the sanitizer on for this process and future workers."""
    global ACTIVE
    ACTIVE = True
    os.environ[SANITIZE_ENV] = "1"


def disable() -> None:
    """Switch the sanitizer off (and stop exporting it to workers)."""
    global ACTIVE
    ACTIVE = False
    os.environ.pop(SANITIZE_ENV, None)


def active() -> bool:
    """Current sanitizer state (prefer reading :data:`ACTIVE` in hot paths)."""
    return ACTIVE


def format_bias(vg: float | None = None, vd: float | None = None) -> str:
    """Canonical bias string used in sanitizer reports."""
    parts = []
    if vg is not None:
        parts.append(f"VG={vg:.4g} V")
    if vd is not None:
        parts.append(f"VD={vd:.4g} V")
    return ", ".join(parts)


def _raise(problem: str, operator: str, quantity: str,
           energy_ev: float | None, bias: str | None) -> None:
    where = f"sanitizer: {problem} in {quantity!r} of operator {operator!r}"
    if energy_ev is not None:
        where += f" at E={energy_ev:.6g} eV"
    if bias:
        where += f" ({bias})"
    raise SanitizerError(where, operator=operator, quantity=quantity,
                         energy_ev=energy_ev, bias=bias)


def _first_bad_energy(bad_mask: np.ndarray,
                      energies_ev: np.ndarray | None) -> float | None:
    """Energy of the first offending entry along axis 0, if known."""
    if energies_ev is None:
        return None
    axis0 = np.any(np.asarray(bad_mask).reshape(bad_mask.shape[0], -1), axis=1)
    index = int(np.argmax(axis0))
    return float(np.asarray(energies_ev).ravel()[index])


def check_finite(array: np.ndarray, operator: str, quantity: str,
                 energy_ev: float | None = None,
                 energies_ev: np.ndarray | None = None,
                 bias: str | None = None) -> None:
    """Assert ``array`` contains no NaN/Inf.

    ``energies_ev`` (aligned with axis 0 of ``array``) lets vectorized
    kernels name the exact energy point of the first bad entry;
    ``energy_ev`` is for scalar-energy call sites.
    """
    arr = np.asarray(array)
    finite = np.isfinite(arr)
    if finite.all():
        return
    bad = ~finite
    n_bad = int(np.count_nonzero(bad))
    if energy_ev is None:
        energy_ev = _first_bad_energy(bad, energies_ev)
    _raise(f"non-finite values ({n_bad} of {arr.size} entries)",
           operator, quantity, energy_ev, bias)


def check_hermitian(matrix: np.ndarray, operator: str, quantity: str,
                    tol: float = 1e-9, energy_ev: float | None = None,
                    bias: str | None = None) -> None:
    """Assert a Hamiltonian block is Hermitian within ``tol`` (absolute)."""
    m = np.asarray(matrix)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        _raise(f"non-square matrix of shape {m.shape}", operator, quantity,
               energy_ev, bias)
    deviation = float(np.max(np.abs(m - m.conj().T))) if m.size else 0.0
    if deviation > tol:
        _raise(f"hermiticity violation (max |H - H^dag| = {deviation:.3e} "
               f"> tol {tol:.1e})", operator, quantity, energy_ev, bias)


def check_transmission(transmission: np.ndarray, max_channels: float,
                       operator: str, quantity: str = "T(E)",
                       tol: float = 1e-6,
                       energy_ev: float | None = None,
                       energies_ev: np.ndarray | None = None,
                       bias: str | None = None) -> None:
    """Assert ``-tol <= T(E) <= max_channels + tol`` everywhere.

    ``max_channels`` is the number of conducting channels ``M`` (the
    contact-block dimension for matrix kernels, the mode count for
    mode-space chains); coherent transmission can never exceed it.
    """
    t = np.asarray(transmission, dtype=float)
    check_finite(t, operator, quantity, energy_ev=energy_ev,
                 energies_ev=energies_ev, bias=bias)
    bad = (t < -tol) | (t > max_channels + tol)
    if not bad.any():
        return
    worst = float(t.ravel()[int(np.argmax(np.abs(np.where(bad.ravel(),
                                                          t.ravel(), 0.0))))])
    if energy_ev is None:
        energy_ev = _first_bad_energy(np.atleast_1d(bad), energies_ev)
    _raise(f"transmission out of bounds [0, {max_channels:g}] "
           f"(worst offender T = {worst:.6g})",
           operator, quantity, energy_ev, bias)


def check_current_conservation(i_source: float, i_drain: float,
                               operator: str,
                               quantity: str = "terminal current",
                               rtol: float = 1e-6, atol: float = 1e-18,
                               energy_ev: float | None = None,
                               bias: str | None = None) -> None:
    """Assert the source and drain carry the same current.

    For the coherent kernels this is applied to the left/right
    transmission reciprocity (the energy-resolved statement of terminal
    current conservation); for circuit solvers to the KCL residual.
    """
    i_s = float(i_source)
    i_d = float(i_drain)
    scale = max(abs(i_s), abs(i_d))
    if abs(i_s - i_d) <= atol + rtol * scale:
        return
    _raise(f"current-conservation violation (source {i_s:.9g} vs drain "
           f"{i_d:.9g}, mismatch {abs(i_s - i_d):.3e})",
           operator, quantity, energy_ev, bias)
