"""repro: reproduction of "Technology exploration for graphene nanoribbon
FETs" (Choudhury, Yoon, Guo, Mohanram - DAC 2008).

A bottom-up multi-scale simulation stack for GNRFET circuits:

* :mod:`repro.atomistic` - p_z tight-binding bands of armchair GNRs;
* :mod:`repro.negf` - NEGF transport kernels (Green's functions,
  self-energies, Landauer current, SCF machinery);
* :mod:`repro.poisson` - FD (1/2/3-D) and FEM (2-D) Poisson solvers;
* :mod:`repro.device` - GNRFET device engines (fast semi-analytic SBFET
  and reference NEGF+Poisson) and lookup tables;
* :mod:`repro.circuit` - table-lookup circuit simulator (DC, transient,
  VTC, SNM) with inverter / ring-oscillator / latch builders;
* :mod:`repro.cmos` - calibrated scaled-CMOS baseline (22/32/45 nm);
* :mod:`repro.exploration` - V_DD-V_T technology exploration (Fig. 3b,
  Table 1);
* :mod:`repro.variability` - width/impurity variability studies
  (Tables 2-4, Figs. 6-7);
* :mod:`repro.reporting` - paper-style reports and the experiment
  registry driving the CLI and benchmarks.

Quick start::

    from repro import GNRFETGeometry, SBFETModel

    model = SBFETModel(GNRFETGeometry(n_index=12))
    print(model.current_at(vg=0.5, vd=0.5))

or regenerate a paper artifact::

    from repro.reporting import run_experiment
    report, data = run_experiment("fig4")
    print(report)
"""

from repro.constants import (
    gnr_width_nm,
    thermal_energy_ev,
)
from repro.device.geometry import ChargeImpurity, GNRFETGeometry
from repro.device.sbfet import SBFETModel
from repro.device.negf_device import NEGFDevice
from repro.device.tables import DeviceTable, build_device_table
from repro.exploration.technology import GNRFETTechnology
from repro.circuit.inverter import CircuitParameters

__version__ = "1.0.0"

__all__ = [
    "gnr_width_nm",
    "thermal_energy_ev",
    "ChargeImpurity",
    "GNRFETGeometry",
    "SBFETModel",
    "NEGFDevice",
    "DeviceTable",
    "build_device_table",
    "GNRFETTechnology",
    "CircuitParameters",
    "__version__",
]
