"""Non-equilibrium Green's function (NEGF) transport engine.

Implements the quantum-transport machinery of the paper's Section 2:
retarded Green's functions (Eq. 1), contact self-energies, transmission and
Landauer current, spectral charge density, adaptive energy grids and the
mixing schemes used by the self-consistent NEGF-Poisson loop.

The kernels are basis-agnostic: they operate on (block-)tridiagonal
Hamiltonians, so the same code serves the full real-space p_z basis (small
ribbons, used in tests) and the per-subband mode-space chains used by the
production device simulator.
"""

from repro.negf.energy_grid import adaptive_energy_grid, uniform_energy_grid
from repro.negf.self_energy import (
    lead_self_energy_1d,
    resilient_surface_gf,
    resilient_surface_gf_batched,
    sancho_rubio_surface_gf,
    self_energy_from_surface_gf,
    wide_band_self_energy,
    broadening_from_self_energy,
)
from repro.negf.greens import (
    dense_retarded_gf,
    RGFResult,
    recursive_greens_function,
)
from repro.negf.transmission import (
    transmission_dense,
    landauer_current,
    landauer_conductance,
)
from repro.negf.charge import carrier_density_from_spectral
from repro.negf.mixing import LinearMixer, AndersonMixer
from repro.negf.scf import (
    SCFOptions,
    SCFResult,
    resilient_scf_loop,
    scf_escalation,
    self_consistent_loop,
)

__all__ = [
    "adaptive_energy_grid",
    "uniform_energy_grid",
    "lead_self_energy_1d",
    "resilient_surface_gf",
    "resilient_surface_gf_batched",
    "sancho_rubio_surface_gf",
    "self_energy_from_surface_gf",
    "wide_band_self_energy",
    "broadening_from_self_energy",
    "dense_retarded_gf",
    "RGFResult",
    "recursive_greens_function",
    "transmission_dense",
    "landauer_current",
    "landauer_conductance",
    "carrier_density_from_spectral",
    "LinearMixer",
    "AndersonMixer",
    "SCFOptions",
    "SCFResult",
    "resilient_scf_loop",
    "scf_escalation",
    "self_consistent_loop",
]
