"""Carrier density from NEGF spectral functions.

The contact-resolved spectral functions

``A_S(E) = G Gamma_S G^dagger``,  ``A_D(E) = G Gamma_D G^dagger``

partition the local density of states by the reservoir that fills it, so
the non-equilibrium electron density on site/block ``i`` is

``n_i = (1/2 pi) \\int dE [A_S,ii f_S + A_D,ii f_D] * 2_spin``.

Hole densities follow by integrating the empty states ``(1 - f)`` below
midgap; the device layer decides which window is "electron-like" and which
"hole-like".
"""

from __future__ import annotations

import numpy as np

from repro.constants import KT_ROOM_EV, fermi_dirac


def spectral_diagonal(column_block: np.ndarray, gamma: np.ndarray) -> np.ndarray:
    """Site-diagonal of ``G_col Gamma G_col^dagger`` for one block.

    ``column_block`` is ``G_{i,c}`` (device block i, contact block c) and
    ``gamma`` the contact broadening; the result is the diagonal of the
    contact-resolved spectral function on block ``i``.
    """
    m = column_block @ gamma @ column_block.conj().T
    return np.real(np.diag(m)).copy()


def carrier_density_from_spectral(
    energies_ev: np.ndarray,
    spectral_source: np.ndarray,
    spectral_drain: np.ndarray,
    mu_source_ev: float,
    mu_drain_ev: float,
    kt_ev: float = KT_ROOM_EV,
    occupation: str = "electron",
) -> np.ndarray:
    """Integrate spectral densities into a carrier density per site.

    Parameters
    ----------
    spectral_source, spectral_drain:
        Arrays of shape ``(n_energy, n_sites)`` holding the diagonals of
        ``A_S`` and ``A_D``.
    occupation:
        ``"electron"`` weighs states by ``f``; ``"hole"`` by ``1 - f``.

    Returns
    -------
    Density per site (dimensionless occupation numbers, spin included),
    shape ``(n_sites,)``.
    """
    energies_ev = np.asarray(energies_ev, dtype=float)
    a_s = np.asarray(spectral_source, dtype=float)
    a_d = np.asarray(spectral_drain, dtype=float)
    if a_s.shape != a_d.shape or a_s.shape[0] != energies_ev.size:
        raise ValueError("spectral arrays must be (n_energy, n_sites)")

    f_s = fermi_dirac(energies_ev, mu_source_ev, kt_ev)
    f_d = fermi_dirac(energies_ev, mu_drain_ev, kt_ev)
    if occupation == "electron":
        w_s, w_d = f_s, f_d
    elif occupation == "hole":
        w_s, w_d = 1.0 - f_s, 1.0 - f_d
    else:
        raise ValueError(f"occupation must be 'electron' or 'hole', got {occupation!r}")

    integrand = a_s * w_s[:, None] + a_d * w_d[:, None]
    # Factor 2 for spin, 1/2pi from the spectral-function normalization.
    return (2.0 / (2.0 * np.pi)) * np.trapezoid(integrand, energies_ev, axis=0)
