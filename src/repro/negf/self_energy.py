"""Contact self-energies for open-boundary NEGF.

The self-energy matrices "describe how the channel couples to the source
contact, the drain contact, and the dissipative processes" (paper, Sec. 2).
Transport here is ballistic, so only contact self-energies are needed:

* :func:`lead_self_energy_1d` — analytic surface Green's function of a
  semi-infinite nearest-neighbour chain (the leads of the mode-space
  device model);
* :func:`sancho_rubio_surface_gf` — the Lopez-Sancho/Rubio decimation
  iteration for arbitrary periodic leads (the full p_z-basis GNR leads);
* :func:`sancho_rubio_surface_gf_batched` — the same decimation carried
  over a leading energy axis (one stacked LAPACK call per doubling step);
* :func:`wide_band_self_energy` — energy-independent metal contact in the
  wide-band limit, used for Schottky metal source/drain electrodes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.runtime import backend as array_backend
from repro.runtime.accel import stacked_identity


def lead_self_energy_1d(
    energy_ev: complex | np.ndarray,
    onsite_ev: float,
    hopping_ev: float,
    eta_ev: float = 1e-6,
) -> complex | np.ndarray:
    """Retarded self-energy of a semi-infinite 1-D tight-binding lead.

    The lead has dispersion ``E(k) = onsite + 2 t cos(k a)`` with hopping
    matrix element ``t = -hopping_ev`` on the off-diagonal (the sign of the
    hopping does not affect the self-energy of a 1-D chain).  The surface
    Green's function is

    ``g(E) = (z - sqrt(z^2 - 4 t^2)) / (2 t^2)``, ``z = E + i eta - onsite``

    with the branch chosen so that ``Im g <= 0`` (retarded).  The
    self-energy on the channel site attached to the lead is
    ``sigma = t^2 g``.

    ``energy_ev`` may be a scalar (returns a scalar) or an ndarray
    (returns an elementwise ndarray); the vectorized path is what the
    device layer's per-energy solves dispatch through.
    """
    scalar_input = np.ndim(energy_ev) == 0
    t = float(hopping_ev)
    if t == 0.0:
        if scalar_input:
            return 0.0 + 0.0j
        return np.zeros(np.shape(energy_ev), dtype=complex)
    z = np.asarray(energy_ev, dtype=complex) + 1j * eta_ev - onsite_ev
    root = np.sqrt(z * z - 4.0 * t * t + 0j)
    g_plus = (z + root) / (2.0 * t * t)
    g_minus = (z - root) / (2.0 * t * t)
    # Inside the band exactly one branch has Im(g) < 0 (retarded); outside
    # the band both are almost real and the physical branch is the bounded
    # one (|g| <= 1/|t|).  Selecting the candidate with the more negative
    # imaginary part, breaking near-ties by magnitude, covers both cases.
    pick_minus = np.where(np.abs(g_plus.imag - g_minus.imag) > 1e-14,
                          g_minus.imag < g_plus.imag,
                          np.abs(g_minus) <= np.abs(g_plus))
    g = np.where(pick_minus, g_minus, g_plus)
    sigma = t * t * g
    if scalar_input:
        return complex(sigma)
    return sigma


def sancho_rubio_surface_gf(
    energy_ev: float,
    h00: np.ndarray,
    h01: np.ndarray,
    eta_ev: float = 1e-6,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> np.ndarray:
    """Surface Green's function of a semi-infinite periodic lead.

    Implements the decimation algorithm of M. P. Lopez Sancho, J. M. Lopez
    Sancho and J. Rubio (J. Phys. F 15, 851, 1985), which doubles the
    effective lead length per iteration and therefore converges in
    O(log) steps.

    Parameters
    ----------
    h00, h01:
        Principal-layer Hamiltonian and coupling from one layer to the
        next (``h01`` rows index the layer closer to the device).
    eta_ev:
        Positive imaginary part regularizing the retarded GF.  Exactly at
        a band center the decimation converges slowly in ``eta``; use
        ``eta_ev >= 1e-6`` (the default) or offset the energy, as the
        device layer's energy grids naturally do.

    Returns
    -------
    ``g_s`` such that the lead self-energy on the device surface is
    ``h01 @ g_s @ h01.conj().T`` (for a lead extending away through h01).
    """
    n = h00.shape[0]
    z = (energy_ev + 1j * eta_ev) * np.eye(n)
    eps_s = h00.astype(complex).copy()
    eps = h00.astype(complex).copy()
    alpha = h01.astype(complex).copy()
    beta = h01.conj().T.copy()

    for _ in range(max_iter):
        g_bulk = np.linalg.solve(z - eps, np.eye(n, dtype=complex))
        agb = alpha @ g_bulk @ beta
        bga = beta @ g_bulk @ alpha
        eps_s = eps_s + agb
        eps = eps + agb + bga
        alpha = alpha @ g_bulk @ alpha
        beta = beta @ g_bulk @ beta
        if np.max(np.abs(alpha)) < tol and np.max(np.abs(beta)) < tol:
            return np.linalg.solve(z - eps_s, np.eye(n, dtype=complex))
    raise ConvergenceError(
        f"Sancho-Rubio iteration did not converge at E = {energy_ev} eV",
        iterations=max_iter,
        residual=float(np.max(np.abs(alpha)) + np.max(np.abs(beta))),
        context={"solver": "sancho_rubio_surface_gf",
                 "energy_ev": float(energy_ev), "eta_ev": float(eta_ev),
                 "tol": float(tol), "max_iter": int(max_iter)})


def sancho_rubio_surface_gf_batched(
    energies_ev: np.ndarray,
    h00: np.ndarray,
    h01: np.ndarray,
    eta_ev: float = 1e-6,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> np.ndarray:
    """Surface GF of a periodic lead at many energies simultaneously.

    Energy-batched form of :func:`sancho_rubio_surface_gf`: every
    decimation update is carried over a leading energy axis (broadcast
    ``np.linalg.solve``/``@``), replacing the per-energy Python loop with
    a handful of stacked LAPACK calls per doubling step.  Because the
    iteration count varies strongly across the band (band-edge energies
    decimate slowly, interior ones fast), the kernel shrinks its active
    set each step: an energy whose couplings have decayed below ``tol``
    is finalized at exactly the iteration where the scalar kernel would
    stop, and drops out of subsequent stacked updates.  Total work is
    therefore the *sum* of per-energy iteration counts (as in the
    loop), not ``n_energy x max``.

    Returns the ``(n_energy, n, n)`` stack of surface Green's functions;
    matches the scalar kernel to numerical round-off.

    When a non-default array backend provides a fused decimation kernel
    (``REPRO_BACKEND``, see :mod:`repro.runtime.backend`), the whole
    iteration is delegated to it; the numpy default always takes the
    inline path below.
    """
    backend = array_backend.active_backend()
    if backend.sancho_rubio is not None:
        array_backend.record_kernel("sancho_rubio", backend)
        return backend.sancho_rubio(energies_ev, h00, h01, eta_ev=eta_ev,
                                    tol=tol, max_iter=max_iter)
    array_backend.record_fallback("sancho_rubio", backend)
    energies = np.atleast_1d(np.asarray(energies_ev, dtype=float))
    n = h00.shape[0]
    n_e = energies.size
    z = (energies[:, None, None] + 1j * eta_ev) * np.eye(n, dtype=complex)
    eps_s = np.broadcast_to(h00.astype(complex), (n_e, n, n)).copy()
    eps = eps_s.copy()
    alpha = np.broadcast_to(h01.astype(complex), (n_e, n, n)).copy()
    beta = np.broadcast_to(h01.conj().T.astype(complex), (n_e, n, n)).copy()

    out = np.empty((n_e, n, n), dtype=complex)
    idx = np.arange(n_e)  # original positions of the active members
    # Hoisted identity stack: the active set only shrinks, so a view of
    # the first idx.size (or conv.sum()) members serves every solve.
    ident = stacked_identity(n_e, n)
    for _ in range(max_iter):
        g_bulk = np.linalg.solve(z - eps, ident[:idx.size])
        # Cache alpha @ g and beta @ g: the four decimation products all
        # left-associate through them, so this reproduces the scalar
        # kernel's arithmetic exactly while dropping two matmuls per step.
        ag = alpha @ g_bulk
        bg = beta @ g_bulk
        agb = ag @ beta
        bga = bg @ alpha
        eps_s = eps_s + agb
        eps = eps + agb + bga
        alpha = ag @ alpha
        beta = bg @ beta
        conv = ((np.max(np.abs(alpha), axis=(-2, -1)) < tol)
                & (np.max(np.abs(beta), axis=(-2, -1)) < tol))
        if conv.any():
            out[idx[conv]] = np.linalg.solve(
                z[conv] - eps_s[conv], ident[:int(conv.sum())])
            if conv.all():
                return out
            keep = ~conv
            idx = idx[keep]
            z = z[keep]
            eps = eps[keep]
            eps_s = eps_s[keep]
            alpha = alpha[keep]
            beta = beta[keep]
    worst = int(idx[np.argmax(np.max(np.abs(alpha), axis=(-2, -1))
                              + np.max(np.abs(beta), axis=(-2, -1)))])
    raise ConvergenceError(
        f"batched Sancho-Rubio iteration did not converge "
        f"(slowest energy E = {energies[worst]} eV)",
        iterations=max_iter,
        context={"solver": "sancho_rubio_surface_gf_batched",
                 "energy_ev": float(energies[worst]),
                 "eta_ev": float(eta_ev), "tol": float(tol),
                 "max_iter": int(max_iter),
                 "n_unconverged": int(idx.size)})


def _sr_rungs(eta_ev: float, max_iter: int) -> list[tuple[str, float, int]]:
    """Escalation settings shared by the resilient SR wrappers.

    A decimation that stalls at ``max_iter`` is almost always sitting on
    a band edge where the couplings decay slowly: more doubling steps
    usually finish the job, and a 10x eta bump (still well below any
    physical broadening scale) regularizes the truly singular points at
    the cost of a slightly smoothed spectral density.
    """
    return [("base", eta_ev, max_iter),
            ("more-iter", eta_ev, 4 * max_iter),
            ("eta-bump", 10.0 * eta_ev, 4 * max_iter)]


def resilient_surface_gf(
    energy_ev: float,
    h00: np.ndarray,
    h01: np.ndarray,
    eta_ev: float = 1e-6,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> np.ndarray:
    """:func:`sancho_rubio_surface_gf` behind a retry ladder.

    Escalates through :func:`_sr_rungs` (raised ``max_iter``, then a
    small eta bump) via :func:`repro.runtime.resilience.run_ladder`;
    retries count under ``negf.sr_retries``.  Drop-in replacement: the
    return value is the surface Green's function of the first rung that
    converges, and exhaustion re-raises the last
    :class:`~repro.errors.ConvergenceError` with the rungs tried in its
    context.
    """
    from repro.runtime.resilience import run_ladder

    rungs = [(name, (lambda e, m: lambda: sancho_rubio_surface_gf(
        energy_ev, h00, h01, eta_ev=e, tol=tol, max_iter=m))(eta, iters))
        for name, eta, iters in _sr_rungs(eta_ev, max_iter)]
    result, _ = run_ladder(rungs, site="sr", counter="negf.sr_retries")
    return result


def resilient_surface_gf_batched(
    energies_ev: np.ndarray,
    h00: np.ndarray,
    h01: np.ndarray,
    eta_ev: float = 1e-6,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> np.ndarray:
    """:func:`sancho_rubio_surface_gf_batched` behind the same ladder as
    :func:`resilient_surface_gf` (``negf.sr_retries`` counts retries)."""
    from repro.runtime.resilience import run_ladder

    rungs = [(name, (lambda e, m: lambda: sancho_rubio_surface_gf_batched(
        energies_ev, h00, h01, eta_ev=e, tol=tol, max_iter=m))(eta, iters))
        for name, eta, iters in _sr_rungs(eta_ev, max_iter)]
    result, _ = run_ladder(rungs, site="sr", counter="negf.sr_retries")
    return result


def self_energy_from_surface_gf(g_surface: np.ndarray, coupling: np.ndarray) -> np.ndarray:
    """Self-energy ``tau g_s tau^dagger`` projected on the device surface.

    ``coupling`` is the hopping block from the device surface layer to the
    first lead layer.  ``g_surface`` may be a single matrix or an
    ``(..., n, n)`` stack (the batched kernel's output); the matmuls
    broadcast over the leading axes either way.
    """
    return coupling @ g_surface @ coupling.conj().T


def wide_band_self_energy(gamma_ev: float, n: int = 1) -> np.ndarray:
    """Energy-independent wide-band-limit contact self-energy ``-i Gamma/2``.

    A standard idealization of a metal contact whose density of states is
    flat over the energy window of interest; used for the Schottky-barrier
    metal source/drain of the GNRFET.
    """
    if gamma_ev < 0.0:
        raise ValueError(f"broadening must be non-negative, got {gamma_ev}")
    return -0.5j * gamma_ev * np.eye(n, dtype=complex)


def broadening_from_self_energy(sigma: np.ndarray) -> np.ndarray:
    """Broadening matrix ``Gamma = i (Sigma - Sigma^dagger)``."""
    sigma = np.atleast_2d(np.asarray(sigma, dtype=complex))
    return 1j * (sigma - sigma.conj().T)
