"""Transmission and Landauer current.

Once the retarded Green's function and contact broadenings are known, the
ballistic (coherent) current follows from the Landauer expression

``I = (2e/h) \\int T(E) [f_S(E) - f_D(E)] dE``

with spin degeneracy folded into the prefactor.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    G_QUANTUM,
    KT_ROOM_EV,
    LANDAUER_PREFACTOR_A_PER_EV,
    fermi_dirac,
)


def transmission_dense(
    greens_function: np.ndarray,
    gamma_left: np.ndarray,
    gamma_right: np.ndarray,
) -> float:
    """Caroli transmission ``Tr[Gamma_L G Gamma_R G^dagger]``.

    ``greens_function`` is the full retarded GF; the broadening matrices
    must be full-size (zero-padded outside their contact block).
    """
    g = np.asarray(greens_function, dtype=complex)
    t = gamma_left @ g @ gamma_right @ g.conj().T
    return float(np.real(np.trace(t)))


def landauer_current(
    energies_ev: np.ndarray,
    transmission: np.ndarray,
    mu_source_ev: float,
    mu_drain_ev: float,
    kt_ev: float = KT_ROOM_EV,
) -> float:
    """Spin-degenerate Landauer current in amperes.

    Parameters
    ----------
    energies_ev, transmission:
        Transmission sampled on an energy grid (need not be uniform; the
        integral uses the trapezoidal rule).
    mu_source_ev, mu_drain_ev:
        Contact chemical potentials.  Positive current flows from source
        to drain when ``mu_source > mu_drain``.
    """
    energies_ev = np.asarray(energies_ev, dtype=float)
    transmission = np.asarray(transmission, dtype=float)
    if energies_ev.shape != transmission.shape:
        raise ValueError("energy grid and transmission must have equal shape")
    f_s = fermi_dirac(energies_ev, mu_source_ev, kt_ev)
    f_d = fermi_dirac(energies_ev, mu_drain_ev, kt_ev)
    integrand = transmission * (f_s - f_d)
    return LANDAUER_PREFACTOR_A_PER_EV * float(np.trapezoid(integrand, energies_ev))


def landauer_conductance(
    energies_ev: np.ndarray,
    transmission: np.ndarray,
    mu_ev: float,
    kt_ev: float = KT_ROOM_EV,
) -> float:
    """Linear-response conductance in siemens.

    ``G = (2e^2/h) \\int T(E) (-df/dE) dE``.
    """
    energies_ev = np.asarray(energies_ev, dtype=float)
    transmission = np.asarray(transmission, dtype=float)
    f = fermi_dirac(energies_ev, mu_ev, kt_ev)
    # -df/dE = f(1-f)/kT, analytic and free of differencing noise.
    weight = f * (1.0 - f) / kt_ev
    return G_QUANTUM * float(np.trapezoid(transmission * weight, energies_ev))
