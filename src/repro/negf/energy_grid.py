"""Energy grids for NEGF integrals.

NEGF observables are energy integrals whose integrands vary rapidly near
band edges (van Hove singularities of 1-D subbands) and near the contact
chemical potentials (Fermi-function edges).  A uniform grid fine enough for
those features everywhere is wastefully large, so the device layer uses a
piecewise grid that is fine within a window around each *feature energy*
and coarse elsewhere.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro import obs
from repro.constants import KT_ROOM_EV


def uniform_energy_grid(e_min_ev: float, e_max_ev: float, step_ev: float) -> np.ndarray:
    """A uniform grid from ``e_min`` to ``e_max`` with spacing <= ``step``."""
    if e_max_ev <= e_min_ev:
        raise ValueError(f"empty energy window [{e_min_ev}, {e_max_ev}]")
    if step_ev <= 0.0:
        raise ValueError(f"step must be positive, got {step_ev}")
    n = max(2, int(np.ceil((e_max_ev - e_min_ev) / step_ev)) + 1)
    return np.linspace(e_min_ev, e_max_ev, n)


def adaptive_energy_grid(
    e_min_ev: float,
    e_max_ev: float,
    feature_energies_ev: Iterable[float] = (),
    coarse_step_ev: float = 0.01,
    fine_step_ev: float = 0.001,
    feature_halfwidth_ev: float = 4.0 * KT_ROOM_EV,
) -> np.ndarray:
    """Grid refined around band edges and chemical potentials.

    Parameters
    ----------
    feature_energies_ev:
        Energies around which the integrand varies quickly (subband edges,
        contact chemical potentials, barrier tops).  A window of
        ``+- feature_halfwidth_ev`` around each receives ``fine_step_ev``
        spacing; the rest of the window uses ``coarse_step_ev``.

    Returns
    -------
    Sorted, de-duplicated array of energies including both endpoints.
    """
    if e_max_ev <= e_min_ev:
        raise ValueError(f"empty energy window [{e_min_ev}, {e_max_ev}]")
    if fine_step_ev <= 0.0 or coarse_step_ev <= 0.0:
        raise ValueError("grid steps must be positive")
    if fine_step_ev > coarse_step_ev:
        raise ValueError("fine step must not exceed coarse step")

    pieces = [uniform_energy_grid(e_min_ev, e_max_ev, coarse_step_ev)]
    for feature in feature_energies_ev:
        lo = max(e_min_ev, feature - feature_halfwidth_ev)
        hi = min(e_max_ev, feature + feature_halfwidth_ev)
        if hi > lo:
            pieces.append(uniform_energy_grid(lo, hi, fine_step_ev))

    grid = np.unique(np.concatenate(pieces))
    # Collapse near-duplicates that would produce zero-width trapezoids.
    keep = np.concatenate(([True], np.diff(grid) > fine_step_ev * 1e-6))
    final = grid[keep]
    if obs.ACTIVE:
        obs.incr("negf.energy_grids")
        obs.incr("negf.energy_grid_points", final.size)
    return final
