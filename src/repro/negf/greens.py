"""Retarded Green's functions: dense reference and recursive (RGF) kernels.

Equation (1) of the paper,

``G^r(E) = [(E + i0+) I - H - U - Sigma_1 - Sigma_2 - Sigma_S]^{-1}``,

is implemented twice:

* :func:`dense_retarded_gf` — direct inversion.  O(n^3) in the full device
  size; the reference implementation used by unit tests and for small
  real-space ribbons.
* :func:`recursive_greens_function` — the standard RGF algorithm for
  block-tridiagonal Hamiltonians.  It computes exactly the pieces the
  device layer needs — diagonal blocks of ``G^r``, the first and last
  block columns (for contact-resolved spectral functions), and the corner
  block ``G_{N1}`` (for transmission) — at O(N_blocks) block inversions.
  This is one of the "efficient computational algorithms ... to make
  routine device simulation and design possible on a personal computer"
  the paper refers to.
* :func:`rgf_transmission_batched` — the transmission piece of the RGF
  recurrences carried over a leading energy axis (broadcast
  ``np.linalg.solve``), so a dense energy grid costs O(N_blocks) stacked
  LAPACK calls instead of O(N_blocks x N_energy) Python-looped ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs, sanitize
from repro.runtime import backend as array_backend
from repro.runtime.accel import stacked_identity


def dense_retarded_gf(
    energy_ev: float,
    hamiltonian: np.ndarray,
    sigma_left: np.ndarray | None = None,
    sigma_right: np.ndarray | None = None,
    eta_ev: float = 1e-6,
) -> np.ndarray:
    """Retarded Green's function by direct inversion.

    ``sigma_left`` / ``sigma_right`` are full-size matrices (usually zero
    except on the first / last block); pass ``None`` for a closed boundary.
    """
    h = np.asarray(hamiltonian, dtype=complex)
    if sanitize.ACTIVE:
        sanitize.check_hermitian(h, "dense_retarded_gf", "H",
                                 energy_ev=energy_ev)
    n = h.shape[0]
    a = (energy_ev + 1j * eta_ev) * np.eye(n, dtype=complex) - h
    if sigma_left is not None:
        a = a - sigma_left
    if sigma_right is not None:
        a = a - sigma_right
    gf = np.linalg.solve(a, np.eye(n, dtype=complex))
    if sanitize.ACTIVE:
        sanitize.check_finite(gf, "dense_retarded_gf", "G^r",
                              energy_ev=energy_ev)
    if obs.ACTIVE:
        obs.incr("negf.dense_gf_solves")
    return gf


@dataclass(frozen=True)
class RGFResult:
    """Output of one RGF pass at a single energy.

    Attributes
    ----------
    diagonal:
        ``G^r_{ii}`` blocks, one per layer.
    first_column:
        ``G^r_{i1}`` blocks (layer i to layer 1); used to build the
        source-injected spectral function ``A_1 = G gamma_1 G^dagger``.
    last_column:
        ``G^r_{iN}`` blocks; used for the drain-injected spectral function.
    transmission:
        Landauer transmission ``Tr[Gamma_1 G_{1N} Gamma_N G_{1N}^dagger]``.
    """

    diagonal: list[np.ndarray]
    first_column: list[np.ndarray]
    last_column: list[np.ndarray]
    transmission: float


def recursive_greens_function(
    energy_ev: float,
    diagonal_blocks: list[np.ndarray],
    coupling_blocks: list[np.ndarray],
    sigma_left: np.ndarray,
    sigma_right: np.ndarray,
    eta_ev: float = 1e-6,
) -> RGFResult:
    """Recursive Green's function for a block-tridiagonal device.

    Parameters
    ----------
    diagonal_blocks:
        ``H_ii`` (with any on-site potential already folded in), length N.
    coupling_blocks:
        ``H_{i,i+1}``, length N - 1.
    sigma_left:
        Contact self-energy added to block 0 (source).
    sigma_right:
        Contact self-energy added to block N-1 (drain).

    Notes
    -----
    Left-connected Green's functions ``gL_i`` are accumulated in a forward
    sweep; the full diagonal and the first/last block columns follow from
    the standard backward recurrences:

    ``G_NN = [A_N - T_{N-1}^dag gL_{N-1} T_{N-1}]^{-1}``
    ``G_ii = gL_i + gL_i T_i G_{i+1,i+1} T_i^dag gL_i``
    ``G_{i,1} = -gL_i T_{i-1}^dag G_{i-1,1}`` ... (built forward), and
    ``G_{i,N} = -gL_i T_i G_{i+1,N}`` (built backward).
    """
    n_blocks = len(diagonal_blocks)
    if n_blocks == 0:
        raise ValueError("device must contain at least one block")
    if len(coupling_blocks) != n_blocks - 1:
        raise ValueError(
            f"expected {n_blocks - 1} coupling blocks, got {len(coupling_blocks)}")

    if sanitize.ACTIVE:
        for i, block in enumerate(diagonal_blocks):
            sanitize.check_hermitian(
                np.asarray(block), "recursive_greens_function", f"H_{i}{i}",
                energy_ev=energy_ev)

    z = energy_ev + 1j * eta_ev

    def a_block(i: int) -> np.ndarray:
        d = np.asarray(diagonal_blocks[i], dtype=complex)
        a = z * np.eye(d.shape[0], dtype=complex) - d
        if i == 0:
            a = a - sigma_left
        if i == n_blocks - 1:
            a = a - sigma_right
        return a

    # Forward sweep: left-connected Green's functions.
    g_left: list[np.ndarray] = []
    for i in range(n_blocks):
        a = a_block(i)
        if i > 0:
            t_prev = np.asarray(coupling_blocks[i - 1], dtype=complex)
            a = a - t_prev.conj().T @ g_left[i - 1] @ t_prev
        g_left.append(np.linalg.solve(a, np.eye(a.shape[0], dtype=complex)))

    # Backward sweep: full diagonal blocks.
    diag: list[np.ndarray | None] = [None] * n_blocks
    diag[n_blocks - 1] = g_left[n_blocks - 1]
    for i in range(n_blocks - 2, -1, -1):
        t_i = np.asarray(coupling_blocks[i], dtype=complex)
        diag[i] = (g_left[i]
                   + g_left[i] @ t_i @ diag[i + 1] @ t_i.conj().T @ g_left[i])

    # Right-connected Green's functions, needed for the first block column.
    g_right: list[np.ndarray | None] = [None] * n_blocks
    for i in range(n_blocks - 1, -1, -1):
        a = a_block(i)
        if i < n_blocks - 1:
            t_i = np.asarray(coupling_blocks[i], dtype=complex)
            a = a - t_i @ g_right[i + 1] @ t_i.conj().T
        g_right[i] = np.linalg.solve(a, np.eye(a.shape[0], dtype=complex))

    # First block column: G_{i,1} = -gR_i A_{i,i-1} G_{i-1,1} with
    # A_{i,i-1} = -T_{i-1}^dag, hence a plus sign in terms of the hopping.
    first_col: list[np.ndarray | None] = [None] * n_blocks
    first_col[0] = diag[0]
    for i in range(1, n_blocks):
        t_prev = np.asarray(coupling_blocks[i - 1], dtype=complex)
        first_col[i] = g_right[i] @ t_prev.conj().T @ first_col[i - 1]

    # Last block column: G_{i,N} = -gL_i A_{i,i+1} G_{i+1,N} = +gL_i T_i G_{i+1,N}.
    last_col: list[np.ndarray | None] = [None] * n_blocks
    last_col[n_blocks - 1] = diag[n_blocks - 1]
    for i in range(n_blocks - 2, -1, -1):
        t_i = np.asarray(coupling_blocks[i], dtype=complex)
        last_col[i] = g_left[i] @ t_i @ last_col[i + 1]

    # Transmission through the corner block.
    gamma_left = 1j * (sigma_left - sigma_left.conj().T)
    gamma_right = 1j * (sigma_right - sigma_right.conj().T)
    g_1n = last_col[0]
    t_matrix = gamma_left @ g_1n @ gamma_right @ g_1n.conj().T
    transmission = float(np.real(np.trace(t_matrix)))

    if sanitize.ACTIVE:
        op = "recursive_greens_function"
        for i in range(n_blocks):
            sanitize.check_finite(diag[i], op, f"G^r_{i}{i}",
                                  energy_ev=energy_ev)
        sanitize.check_finite(first_col[n_blocks - 1], op, "G^r_N1",
                              energy_ev=energy_ev)
        sanitize.check_finite(g_1n, op, "G^r_1N", energy_ev=energy_ev)
        max_channels = min(sigma_left.shape[0], sigma_right.shape[0])
        sanitize.check_transmission(transmission, max_channels, op,
                                    energy_ev=energy_ev)
        # Reciprocity Tr[G_L G G_R G^dag] = Tr[G_R G G_L G^dag] is the
        # energy-resolved statement of terminal current conservation.
        g_n1 = first_col[n_blocks - 1]
        t_reverse = float(np.real(np.trace(
            gamma_right @ g_n1 @ gamma_left @ g_n1.conj().T)))
        sanitize.check_current_conservation(
            transmission, t_reverse, op,
            quantity="left/right transmission reciprocity",
            rtol=1e-6, atol=1e-10, energy_ev=energy_ev)

    if obs.ACTIVE:
        obs.incr("negf.rgf_passes")
        # One np.linalg.solve per block in each of the forward (gL) and
        # right-connected (gR) sweeps.
        obs.incr("negf.rgf_block_solves", 2 * n_blocks)

    return RGFResult(
        diagonal=[np.asarray(d) for d in diag],
        first_column=[np.asarray(c) for c in first_col],
        last_column=[np.asarray(c) for c in last_col],
        transmission=transmission,
    )


def rgf_transmission_batched(
    energies_ev: np.ndarray,
    diagonal_blocks: list[np.ndarray],
    coupling_blocks: list[np.ndarray],
    sigma_left: np.ndarray,
    sigma_right: np.ndarray,
    eta_ev: float = 1e-6,
) -> np.ndarray:
    """Landauer transmission at many energies in one stacked RGF pass.

    Energy-batched form of the transmission piece of
    :func:`recursive_greens_function`: the forward (left-connected) sweep
    and the backward last-column recurrence are carried over a leading
    energy axis via broadcast ``np.linalg.solve``/``@``, so the Python
    loop runs over the O(N_blocks) recurrence — not over energies.  This
    is the hot kernel under every edge-roughness / width-variation
    ensemble, where the same device is probed on dense energy grids.

    Parameters
    ----------
    energies_ev:
        Energy grid, shape ``(n_energy,)``.
    diagonal_blocks, coupling_blocks:
        Energy-independent block-tridiagonal Hamiltonian, as for
        :func:`recursive_greens_function`.
    sigma_left, sigma_right:
        Contact self-energies *per energy*, shape ``(n_energy, b, b)``
        (e.g. from
        :func:`repro.negf.self_energy.sancho_rubio_surface_gf_batched`).

    Returns
    -------
    Transmission array of shape ``(n_energy,)``; matches the per-energy
    kernel to numerical round-off.  The sanitizer hooks (hermiticity,
    finiteness, transmission bounds, left/right reciprocity) run on the
    whole batch when ``REPRO_SANITIZE`` is active; the reciprocity check
    adds the right-connected sweep only in that case.
    """
    energies = np.atleast_1d(np.asarray(energies_ev, dtype=float))
    n_blocks = len(diagonal_blocks)
    if n_blocks == 0:
        raise ValueError("device must contain at least one block")
    if len(coupling_blocks) != n_blocks - 1:
        raise ValueError(
            f"expected {n_blocks - 1} coupling blocks, "
            f"got {len(coupling_blocks)}")
    n_e = energies.size
    sigma_left = np.asarray(sigma_left, dtype=complex)
    sigma_right = np.asarray(sigma_right, dtype=complex)
    for name, sig in (("sigma_left", sigma_left),
                      ("sigma_right", sigma_right)):
        if sig.ndim != 3 or sig.shape[0] != n_e:
            raise ValueError(
                f"{name} must have shape (n_energy, b, b) = "
                f"({n_e}, b, b), got {sig.shape}")

    backend = array_backend.active_backend()
    if backend.rgf_transmission is not None:
        # Fused backends take the recurrence whole, so they only apply
        # when the sanitizer is off (its checks need the recurrence
        # internals) and the block sizes are uniform (stackable).
        b0 = np.asarray(diagonal_blocks[0]).shape[0]
        uniform = all(np.asarray(d).shape == (b0, b0)
                      for d in diagonal_blocks)
        if uniform and not sanitize.ACTIVE:
            array_backend.record_kernel("rgf_transmission", backend)
            diag_stack = np.stack(
                [np.asarray(d, dtype=complex) for d in diagonal_blocks])
            coup_stack = (np.stack(
                [np.asarray(t, dtype=complex) for t in coupling_blocks])
                if coupling_blocks
                else np.zeros((0, b0, b0), dtype=complex))
            transmission = backend.rgf_transmission(
                energies, diag_stack, coup_stack, sigma_left, sigma_right,
                eta_ev=eta_ev)
            if obs.ACTIVE:
                obs.incr("negf.rgf_batched_passes")
                obs.incr("negf.batched_energy_points", n_e)
                obs.incr("negf.rgf_block_solves", n_blocks)
            return transmission
    array_backend.record_fallback("rgf_transmission", backend)

    if sanitize.ACTIVE:
        for i, block in enumerate(diagonal_blocks):
            sanitize.check_hermitian(
                np.asarray(block), "rgf_transmission_batched", f"H_{i}{i}")

    z = energies + 1j * eta_ev  # (n_e,)

    def a_stack(i: int) -> np.ndarray:
        d = np.asarray(diagonal_blocks[i], dtype=complex)
        b = d.shape[0]
        a = z[:, None, None] * np.eye(b, dtype=complex) - d
        if i == 0:
            a = a - sigma_left
        if i == n_blocks - 1:
            a = a - sigma_right
        return a

    # Forward sweep.  Only G_{1N} = gL_0 T_0 gL_1 T_1 ... gL_{N-1} is
    # needed for transmission, so instead of materializing each gL_i
    # (solve against the identity) the kernel solves directly against the
    # coupling block: X_i = gL_i T_i in one stacked LAPACK call.  The
    # left-connected correction for the next block is then a single
    # matmul (T_i^dag X_i), and the running product P = X_0 ... X_{N-2}
    # absorbs the backward column recurrence.  Half the matmuls of the
    # materialized form; identical results to round-off.
    m = a_stack(0)
    prod = None
    for i in range(n_blocks - 1):
        t_i = np.asarray(coupling_blocks[i], dtype=complex)
        x = np.linalg.solve(m, t_i)  # broadcasts t_i over energies
        m = a_stack(i + 1) - t_i.conj().T @ x
        prod = x if prod is None else prod @ x
    if prod is None:
        g_1n = np.linalg.solve(m, stacked_identity(n_e, m.shape[-1]))
    else:
        # G_{1N} = P gL_{N-1} = P M^{-1}, evaluated as solve(M^T, P^T)^T
        # (plain transpose: (M^{-1})^T = (M^T)^{-1}).
        g_1n = np.swapaxes(
            np.linalg.solve(np.swapaxes(m, -2, -1),
                            np.swapaxes(prod, -2, -1)),
            -2, -1)

    gamma_left = 1j * (sigma_left - np.conj(np.swapaxes(sigma_left, -2, -1)))
    gamma_right = 1j * (sigma_right
                        - np.conj(np.swapaxes(sigma_right, -2, -1)))
    # Tr[A B] = sum_ij A_ij B_ji: one fewer stacked matmul than forming
    # the full transmission matrix.
    left_part = gamma_left @ g_1n
    right_part = gamma_right @ np.conj(np.swapaxes(g_1n, -2, -1))
    transmission = np.real(np.sum(
        left_part * np.swapaxes(right_part, -2, -1), axis=(-2, -1)))

    if sanitize.ACTIVE:
        op = "rgf_transmission_batched"
        sanitize.check_finite(g_1n, op, "G^r_1N", energies_ev=energies)
        max_channels = min(sigma_left.shape[-1], sigma_right.shape[-1])
        sanitize.check_transmission(transmission, max_channels, op,
                                    energies_ev=energies)
        # Reciprocity needs G_N1, i.e. the right-connected sweep; run it
        # only under the sanitizer (it doubles the kernel's solves).
        g_right: list[np.ndarray | None] = [None] * n_blocks
        for i in range(n_blocks - 1, -1, -1):
            a = a_stack(i)
            if i < n_blocks - 1:
                t_i = np.asarray(coupling_blocks[i], dtype=complex)
                a = a - t_i @ g_right[i + 1] @ np.conj(t_i).T
            # Block sizes differ along the chain, so there is no single
            # identity stack to hoist out of this sanitizer-only sweep.
            g_right[i] = np.linalg.solve(
                a, stacked_identity(n_e, a.shape[-1]))  # repro: noqa[RPA803]
        g_to_first = g_right[0]
        for i in range(1, n_blocks):
            t_prev = np.asarray(coupling_blocks[i - 1], dtype=complex)
            g_to_first = g_right[i] @ t_prev.conj().T @ g_to_first
        g_n1 = g_to_first
        t_reverse = np.real(np.trace(
            gamma_right @ g_n1 @ gamma_left @ np.conj(
                np.swapaxes(g_n1, -2, -1)),
            axis1=-2, axis2=-1))
        for k in range(n_e):
            sanitize.check_current_conservation(
                float(transmission[k]), float(t_reverse[k]), op,
                quantity="left/right transmission reciprocity",
                rtol=1e-6, atol=1e-10, energy_ev=float(energies[k]))

    if obs.ACTIVE:
        obs.incr("negf.rgf_batched_passes")
        obs.incr("negf.batched_energy_points", n_e)
        obs.incr("negf.rgf_block_solves", n_blocks)

    return transmission
