"""Retarded Green's functions: dense reference and recursive (RGF) kernels.

Equation (1) of the paper,

``G^r(E) = [(E + i0+) I - H - U - Sigma_1 - Sigma_2 - Sigma_S]^{-1}``,

is implemented twice:

* :func:`dense_retarded_gf` — direct inversion.  O(n^3) in the full device
  size; the reference implementation used by unit tests and for small
  real-space ribbons.
* :func:`recursive_greens_function` — the standard RGF algorithm for
  block-tridiagonal Hamiltonians.  It computes exactly the pieces the
  device layer needs — diagonal blocks of ``G^r``, the first and last
  block columns (for contact-resolved spectral functions), and the corner
  block ``G_{N1}`` (for transmission) — at O(N_blocks) block inversions.
  This is one of the "efficient computational algorithms ... to make
  routine device simulation and design possible on a personal computer"
  the paper refers to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs, sanitize


def dense_retarded_gf(
    energy_ev: float,
    hamiltonian: np.ndarray,
    sigma_left: np.ndarray | None = None,
    sigma_right: np.ndarray | None = None,
    eta_ev: float = 1e-6,
) -> np.ndarray:
    """Retarded Green's function by direct inversion.

    ``sigma_left`` / ``sigma_right`` are full-size matrices (usually zero
    except on the first / last block); pass ``None`` for a closed boundary.
    """
    h = np.asarray(hamiltonian, dtype=complex)
    if sanitize.ACTIVE:
        sanitize.check_hermitian(h, "dense_retarded_gf", "H",
                                 energy_ev=energy_ev)
    n = h.shape[0]
    a = (energy_ev + 1j * eta_ev) * np.eye(n, dtype=complex) - h
    if sigma_left is not None:
        a = a - sigma_left
    if sigma_right is not None:
        a = a - sigma_right
    gf = np.linalg.solve(a, np.eye(n, dtype=complex))
    if sanitize.ACTIVE:
        sanitize.check_finite(gf, "dense_retarded_gf", "G^r",
                              energy_ev=energy_ev)
    if obs.ACTIVE:
        obs.incr("negf.dense_gf_solves")
    return gf


@dataclass(frozen=True)
class RGFResult:
    """Output of one RGF pass at a single energy.

    Attributes
    ----------
    diagonal:
        ``G^r_{ii}`` blocks, one per layer.
    first_column:
        ``G^r_{i1}`` blocks (layer i to layer 1); used to build the
        source-injected spectral function ``A_1 = G gamma_1 G^dagger``.
    last_column:
        ``G^r_{iN}`` blocks; used for the drain-injected spectral function.
    transmission:
        Landauer transmission ``Tr[Gamma_1 G_{1N} Gamma_N G_{1N}^dagger]``.
    """

    diagonal: list[np.ndarray]
    first_column: list[np.ndarray]
    last_column: list[np.ndarray]
    transmission: float


def recursive_greens_function(
    energy_ev: float,
    diagonal_blocks: list[np.ndarray],
    coupling_blocks: list[np.ndarray],
    sigma_left: np.ndarray,
    sigma_right: np.ndarray,
    eta_ev: float = 1e-6,
) -> RGFResult:
    """Recursive Green's function for a block-tridiagonal device.

    Parameters
    ----------
    diagonal_blocks:
        ``H_ii`` (with any on-site potential already folded in), length N.
    coupling_blocks:
        ``H_{i,i+1}``, length N - 1.
    sigma_left:
        Contact self-energy added to block 0 (source).
    sigma_right:
        Contact self-energy added to block N-1 (drain).

    Notes
    -----
    Left-connected Green's functions ``gL_i`` are accumulated in a forward
    sweep; the full diagonal and the first/last block columns follow from
    the standard backward recurrences:

    ``G_NN = [A_N - T_{N-1}^dag gL_{N-1} T_{N-1}]^{-1}``
    ``G_ii = gL_i + gL_i T_i G_{i+1,i+1} T_i^dag gL_i``
    ``G_{i,1} = -gL_i T_{i-1}^dag G_{i-1,1}`` ... (built forward), and
    ``G_{i,N} = -gL_i T_i G_{i+1,N}`` (built backward).
    """
    n_blocks = len(diagonal_blocks)
    if n_blocks == 0:
        raise ValueError("device must contain at least one block")
    if len(coupling_blocks) != n_blocks - 1:
        raise ValueError(
            f"expected {n_blocks - 1} coupling blocks, got {len(coupling_blocks)}")

    if sanitize.ACTIVE:
        for i, block in enumerate(diagonal_blocks):
            sanitize.check_hermitian(
                np.asarray(block), "recursive_greens_function", f"H_{i}{i}",
                energy_ev=energy_ev)

    z = energy_ev + 1j * eta_ev

    def a_block(i: int) -> np.ndarray:
        d = np.asarray(diagonal_blocks[i], dtype=complex)
        a = z * np.eye(d.shape[0], dtype=complex) - d
        if i == 0:
            a = a - sigma_left
        if i == n_blocks - 1:
            a = a - sigma_right
        return a

    # Forward sweep: left-connected Green's functions.
    g_left: list[np.ndarray] = []
    for i in range(n_blocks):
        a = a_block(i)
        if i > 0:
            t_prev = np.asarray(coupling_blocks[i - 1], dtype=complex)
            a = a - t_prev.conj().T @ g_left[i - 1] @ t_prev
        g_left.append(np.linalg.solve(a, np.eye(a.shape[0], dtype=complex)))

    # Backward sweep: full diagonal blocks.
    diag: list[np.ndarray | None] = [None] * n_blocks
    diag[n_blocks - 1] = g_left[n_blocks - 1]
    for i in range(n_blocks - 2, -1, -1):
        t_i = np.asarray(coupling_blocks[i], dtype=complex)
        diag[i] = (g_left[i]
                   + g_left[i] @ t_i @ diag[i + 1] @ t_i.conj().T @ g_left[i])

    # Right-connected Green's functions, needed for the first block column.
    g_right: list[np.ndarray | None] = [None] * n_blocks
    for i in range(n_blocks - 1, -1, -1):
        a = a_block(i)
        if i < n_blocks - 1:
            t_i = np.asarray(coupling_blocks[i], dtype=complex)
            a = a - t_i @ g_right[i + 1] @ t_i.conj().T
        g_right[i] = np.linalg.solve(a, np.eye(a.shape[0], dtype=complex))

    # First block column: G_{i,1} = -gR_i A_{i,i-1} G_{i-1,1} with
    # A_{i,i-1} = -T_{i-1}^dag, hence a plus sign in terms of the hopping.
    first_col: list[np.ndarray | None] = [None] * n_blocks
    first_col[0] = diag[0]
    for i in range(1, n_blocks):
        t_prev = np.asarray(coupling_blocks[i - 1], dtype=complex)
        first_col[i] = g_right[i] @ t_prev.conj().T @ first_col[i - 1]

    # Last block column: G_{i,N} = -gL_i A_{i,i+1} G_{i+1,N} = +gL_i T_i G_{i+1,N}.
    last_col: list[np.ndarray | None] = [None] * n_blocks
    last_col[n_blocks - 1] = diag[n_blocks - 1]
    for i in range(n_blocks - 2, -1, -1):
        t_i = np.asarray(coupling_blocks[i], dtype=complex)
        last_col[i] = g_left[i] @ t_i @ last_col[i + 1]

    # Transmission through the corner block.
    gamma_left = 1j * (sigma_left - sigma_left.conj().T)
    gamma_right = 1j * (sigma_right - sigma_right.conj().T)
    g_1n = last_col[0]
    t_matrix = gamma_left @ g_1n @ gamma_right @ g_1n.conj().T
    transmission = float(np.real(np.trace(t_matrix)))

    if sanitize.ACTIVE:
        op = "recursive_greens_function"
        for i in range(n_blocks):
            sanitize.check_finite(diag[i], op, f"G^r_{i}{i}",
                                  energy_ev=energy_ev)
        sanitize.check_finite(first_col[n_blocks - 1], op, "G^r_N1",
                              energy_ev=energy_ev)
        sanitize.check_finite(g_1n, op, "G^r_1N", energy_ev=energy_ev)
        max_channels = min(sigma_left.shape[0], sigma_right.shape[0])
        sanitize.check_transmission(transmission, max_channels, op,
                                    energy_ev=energy_ev)
        # Reciprocity Tr[G_L G G_R G^dag] = Tr[G_R G G_L G^dag] is the
        # energy-resolved statement of terminal current conservation.
        g_n1 = first_col[n_blocks - 1]
        t_reverse = float(np.real(np.trace(
            gamma_right @ g_n1 @ gamma_left @ g_n1.conj().T)))
        sanitize.check_current_conservation(
            transmission, t_reverse, op,
            quantity="left/right transmission reciprocity",
            rtol=1e-6, atol=1e-10, energy_ev=energy_ev)

    if obs.ACTIVE:
        obs.incr("negf.rgf_passes")
        # One np.linalg.solve per block in each of the forward (gL) and
        # right-connected (gR) sweeps.
        obs.incr("negf.rgf_block_solves", 2 * n_blocks)

    return RGFResult(
        diagonal=[np.asarray(d) for d in diag],
        first_column=[np.asarray(c) for c in first_col],
        last_column=[np.asarray(c) for c in last_col],
        transmission=transmission,
    )
