"""Mixing schemes for the self-consistent NEGF-Poisson iteration.

A naive fixed-point iteration ``U_{k+1} = P(U_k)`` between the transport and
Poisson solvers diverges for well-coupled devices; damped (linear) mixing is
robust but slow, and Anderson acceleration recovers most of the speed while
keeping the robustness.  Both are provided; the SCF loop defaults to
Anderson with a linear warm-up.
"""

from __future__ import annotations

import numpy as np


class LinearMixer:
    """Damped fixed-point mixing ``x <- x + beta (f(x) - x)``."""

    def __init__(self, beta: float = 0.1):
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"mixing factor must be in (0, 1], got {beta}")
        self.beta = beta

    def reset(self) -> None:
        """No internal history to clear; present for interface symmetry."""

    def update(self, x_in: np.ndarray, x_out: np.ndarray) -> np.ndarray:
        """Return the next iterate from the current input/output pair."""
        x_in = np.asarray(x_in, dtype=float)
        x_out = np.asarray(x_out, dtype=float)
        return x_in + self.beta * (x_out - x_in)


class AndersonMixer:
    """Anderson (Pulay/DIIS-type) acceleration with bounded history.

    Solves the least-squares problem over the last ``history`` residuals to
    extrapolate the next iterate; falls back to damped linear mixing while
    the history is still shallow or when the LS system is ill-conditioned.
    """

    def __init__(self, beta: float = 0.3, history: int = 5,
                 regularization: float = 1e-10):
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"mixing factor must be in (0, 1], got {beta}")
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.beta = beta
        self.history = history
        self.regularization = regularization
        self._xs: list[np.ndarray] = []
        self._fs: list[np.ndarray] = []

    def reset(self) -> None:
        """Drop accumulated iterates (e.g. when the bias point changes)."""
        self._xs.clear()
        self._fs.clear()

    def update(self, x_in: np.ndarray, x_out: np.ndarray) -> np.ndarray:
        x_in = np.asarray(x_in, dtype=float).ravel()
        x_out = np.asarray(x_out, dtype=float).ravel()
        residual = x_out - x_in

        self._xs.append(x_in.copy())
        self._fs.append(residual.copy())
        if len(self._xs) > self.history:
            self._xs.pop(0)
            self._fs.pop(0)

        m = len(self._xs)
        if m == 1:
            return x_in + self.beta * residual

        # Differences of residuals and iterates.
        df = np.column_stack([self._fs[i + 1] - self._fs[i] for i in range(m - 1)])
        dx = np.column_stack([self._xs[i + 1] - self._xs[i] for i in range(m - 1)])

        # Solve min || f_k - df theta ||^2 with Tikhonov regularization.
        a = df.T @ df + self.regularization * np.eye(m - 1)
        b = df.T @ residual
        try:
            theta = np.linalg.solve(a, b)
        except np.linalg.LinAlgError:
            return x_in + self.beta * residual

        x_bar = x_in - dx @ theta
        f_bar = residual - df @ theta
        return x_bar + self.beta * f_bar
