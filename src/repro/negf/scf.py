"""Generic self-consistent field (SCF) loop.

The paper's device simulation solves the NEGF transport equation
"self-consistently with Poisson's equation".  This module provides the
outer loop as a reusable component: given

* ``solve_charge(potential) -> charge`` — the transport step, and
* ``solve_potential(charge) -> potential`` — the electrostatics step,

it iterates with a pluggable mixer until the potential update falls below
tolerance.  The device layer wires in the actual NEGF and Poisson solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs, sanitize
from repro.errors import ConvergenceError
from repro.negf.mixing import AndersonMixer, LinearMixer


@dataclass
class SCFOptions:
    """Tuning knobs of the self-consistent loop."""

    tolerance_ev: float = 1e-4
    max_iterations: int = 150
    mixer: LinearMixer | AndersonMixer | None = None
    raise_on_failure: bool = True

    def make_mixer(self) -> LinearMixer | AndersonMixer:
        """Return the configured mixer, defaulting to Anderson."""
        if self.mixer is not None:
            self.mixer.reset()
            return self.mixer
        return AndersonMixer(beta=0.3, history=5)


@dataclass(frozen=True)
class SCFResult:
    """Converged (or best-effort) state of the SCF loop.

    ``charge`` is always the output of ``solve_charge(potential)`` for
    the returned ``potential`` — on convergence it is recomputed from the
    final potential, and on a best-effort return it is the last charge
    evaluated, which by construction used the returned potential.
    """

    potential: np.ndarray
    charge: np.ndarray
    converged: bool
    iterations: int
    residual_history: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else np.inf


def self_consistent_loop(
    solve_charge: Callable[[np.ndarray], np.ndarray],
    solve_potential: Callable[[np.ndarray], np.ndarray],
    initial_potential: np.ndarray,
    options: SCFOptions | None = None,
) -> SCFResult:
    """Iterate transport and electrostatics to self-consistency.

    Convergence is measured on the max-norm of the potential update
    (``max |U_out - U_in|`` in eV), the criterion used by atomistic device
    simulators because the terminal current is exponentially sensitive to
    barrier-region potential errors.
    """
    options = options or SCFOptions()
    mixer = options.make_mixer()

    potential = np.asarray(initial_potential, dtype=float).copy()
    shape = potential.shape
    charge = solve_charge(potential)
    if sanitize.ACTIVE:
        sanitize.check_finite(charge, "self_consistent_loop",
                              "charge density (initial)")
    residuals: list[float] = []

    for iteration in range(1, options.max_iterations + 1):
        new_potential = np.asarray(solve_potential(charge), dtype=float)
        if new_potential.shape != shape:
            raise ValueError(
                f"potential solver changed shape {shape} -> {new_potential.shape}")
        residual = float(np.max(np.abs(new_potential - potential)))
        residuals.append(residual)
        if residual < options.tolerance_ev:
            # Recompute the charge from the returned potential: the loop
            # variable still holds the charge of the *previous* potential,
            # and SCFResult guarantees that ``potential`` and ``charge``
            # describe the same self-consistent state.
            charge = solve_charge(new_potential)
            if obs.ACTIVE:
                obs.incr("scf.solves")
                obs.incr("scf.converged")
                obs.incr("scf.iterations", iteration)
                obs.observe("scf.iterations_to_converge", iteration)
            return SCFResult(potential=new_potential, charge=charge,
                             converged=True, iterations=iteration,
                             residual_history=residuals)
        potential = mixer.update(potential.ravel(),
                                 new_potential.ravel()).reshape(shape)
        charge = solve_charge(potential)
        if sanitize.ACTIVE:
            op = "self_consistent_loop"
            sanitize.check_finite(
                potential, op, f"potential (iteration {iteration})")
            sanitize.check_finite(
                charge, op, f"charge density (iteration {iteration})")

    if obs.ACTIVE:
        obs.incr("scf.solves")
        obs.incr("scf.diverged")
        obs.incr("scf.iterations", options.max_iterations)
        obs.observe("scf.iterations_to_converge", options.max_iterations)
    if options.raise_on_failure:
        raise ConvergenceError(
            "SCF loop failed to converge: residual "
            f"{residuals[-1]:.3e} eV after {options.max_iterations} iterations",
            iterations=options.max_iterations, residual=residuals[-1],
            context={"solver": "self_consistent_loop",
                     "mixer": type(mixer).__name__,
                     "mixer_beta": getattr(mixer, "beta", None),
                     "tolerance_ev": options.tolerance_ev,
                     "max_iterations": options.max_iterations})
    return SCFResult(potential=potential, charge=charge, converged=False,
                     iterations=options.max_iterations,
                     residual_history=residuals)


def scf_escalation(options: SCFOptions) -> list[tuple[str, SCFOptions]]:
    """Escalation rungs for :func:`resilient_scf_loop`.

    The sequence trades speed for robustness, mirroring gmin/source
    stepping practice in SPICE-class simulators:

    1. ``base`` — the configured options, unchanged.
    2. ``half-beta`` — same mixer family with the mixing factor halved
       (over-aggressive mixing is the dominant divergence mode).
    3. ``picard`` — damped Picard (:class:`LinearMixer`, beta=0.1) with
       doubled iteration budget: slow but monotone for well-posed cells.
    4. ``picard-long`` — beta=0.05 with a 4x budget, the last resort.
    """
    base_mixer = options.mixer
    beta = getattr(base_mixer, "beta", 0.3)
    if isinstance(base_mixer, LinearMixer):
        half: LinearMixer | AndersonMixer = LinearMixer(beta=beta / 2)
    else:
        history = getattr(base_mixer, "history", 5)
        half = AndersonMixer(beta=beta / 2, history=history)
    tol, iters = options.tolerance_ev, options.max_iterations
    return [
        ("base", options),
        ("half-beta", SCFOptions(tolerance_ev=tol, max_iterations=iters,
                                 mixer=half, raise_on_failure=True)),
        ("picard", SCFOptions(tolerance_ev=tol, max_iterations=2 * iters,
                              mixer=LinearMixer(beta=0.1),
                              raise_on_failure=True)),
        ("picard-long", SCFOptions(tolerance_ev=tol,
                                   max_iterations=4 * iters,
                                   mixer=LinearMixer(beta=0.05),
                                   raise_on_failure=True)),
    ]


def resilient_scf_loop(
    solve_charge: Callable[[np.ndarray], np.ndarray],
    solve_potential: Callable[[np.ndarray], np.ndarray],
    initial_potential: np.ndarray,
    options: SCFOptions | None = None,
    cold_potential: np.ndarray | None = None,
) -> tuple[SCFResult, list[str]]:
    """:func:`self_consistent_loop` behind a retry/escalation ladder.

    Runs the :func:`scf_escalation` rungs through
    :func:`repro.runtime.resilience.run_ladder`; if ``cold_potential``
    is given (the unseeded initial guess of a warm-started solve), a
    final ``cold`` rung discards the warm-start seed and re-runs the
    most conservative settings from it.  Returns the converged
    :class:`SCFResult` plus the rung names tried; exhaustion re-raises
    the last :class:`~repro.errors.ConvergenceError` with the ladder
    context attached.  Escalations count under ``scf.retries``.
    """
    # Function-level import: negf -> runtime is a sanctioned DAG edge,
    # but scf.py is imported by runtime-free unit tests of the mixers,
    # so the dependency stays lazy.
    from repro.runtime.resilience import run_ladder

    options = options or SCFOptions()
    rungs: list[tuple[str, Callable[[], SCFResult]]] = []

    def make_attempt(opts: SCFOptions,
                     start: np.ndarray) -> Callable[[], SCFResult]:
        raising = SCFOptions(tolerance_ev=opts.tolerance_ev,
                             max_iterations=opts.max_iterations,
                             mixer=opts.mixer, raise_on_failure=True)
        return lambda: self_consistent_loop(
            solve_charge, solve_potential, start, raising)

    for name, opts in scf_escalation(options):
        rungs.append((name, make_attempt(opts, initial_potential)))
    if cold_potential is not None:
        cold_opts = SCFOptions(tolerance_ev=options.tolerance_ev,
                               max_iterations=4 * options.max_iterations,
                               mixer=LinearMixer(beta=0.05),
                               raise_on_failure=True)
        rungs.append(("cold", make_attempt(cold_opts, cold_potential)))
    return run_ladder(rungs, site="scf", counter="scf.retries")
