"""Geometry of armchair-edge graphene nanoribbons (A-GNRs).

An A-GNR is indexed by the number ``N`` of dimer lines across its width,
following Nakada et al. (PRB 54, 17954, 1996), which the paper cites for its
GNR index convention.  The translational unit cell along the transport
direction has period ``3 a_cc`` (0.426 nm) and contains ``2 N`` atoms.

Coordinate convention
---------------------
Transport along ``x``, width along ``y``.  Dimer line ``j`` (0-based) sits at
``y_j = j * sqrt(3)/2 * a_cc``.  Within one unit cell, even dimer lines carry
atoms at ``x in (0, a_cc)`` and odd dimer lines at ``x in (1.5 a_cc,
2.5 a_cc)``, which reproduces the honeycomb connectivity with every bond of
length ``a_cc``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.constants import A_CC_NM, ARMCHAIR_PERIOD_NM, gnr_width_nm
from repro.errors import InvalidDeviceError

#: x offsets (units of a_cc) of the two atoms of a dimer line within a cell.
_EVEN_ROW_OFFSETS = (0.0, 1.0)
_ODD_ROW_OFFSETS = (1.5, 2.5)


def gnr_family(n_index: int) -> int:
    """Return the A-GNR family ``p`` where ``N = 3q + p`` with ``p in {0,1,2}``.

    Families 0 (``N = 3q``) and 1 (``N = 3q+1``) are semiconducting with a
    sizeable gap; family 2 (``N = 3q+2``) has only a small edge-relaxation
    induced gap and is excluded from the paper's width-variation study.
    """
    if n_index < 2:
        raise InvalidDeviceError(f"A-GNR index must be >= 2, got {n_index}")
    return n_index % 3


def is_semiconducting_index(n_index: int) -> bool:
    """True for the ``N = 3q`` and ``N = 3q+1`` families used as FET channels."""
    return gnr_family(n_index) in (0, 1)


@dataclass(frozen=True)
class ArmchairGNR:
    """An armchair-edge graphene nanoribbon segment.

    Parameters
    ----------
    n_index:
        Number of dimer lines across the ribbon width (the GNR index ``N``).
    n_cells:
        Number of translational unit cells along transport.  ``n_cells = 1``
        describes the periodic unit cell used for band structure; larger
        values describe finite segments for real-space NEGF.
    """

    n_index: int
    n_cells: int = 1

    def __post_init__(self) -> None:
        if self.n_index < 2:
            raise InvalidDeviceError(
                f"A-GNR index must be >= 2, got {self.n_index}")
        if self.n_cells < 1:
            raise InvalidDeviceError(
                f"number of unit cells must be >= 1, got {self.n_cells}")

    # --- scalar geometry ---------------------------------------------------
    @property
    def width_nm(self) -> float:
        """Physical ribbon width (distance between outermost dimer lines)."""
        return gnr_width_nm(self.n_index)

    @property
    def period_nm(self) -> float:
        """Unit-cell period along transport (3 a_cc)."""
        return ARMCHAIR_PERIOD_NM

    @property
    def length_nm(self) -> float:
        """Length of the segment along transport."""
        return self.n_cells * ARMCHAIR_PERIOD_NM

    @property
    def atoms_per_cell(self) -> int:
        """Number of carbon atoms in one unit cell (2 N)."""
        return 2 * self.n_index

    @property
    def n_atoms(self) -> int:
        """Total number of atoms in the segment."""
        return self.atoms_per_cell * self.n_cells

    @property
    def family(self) -> int:
        """GNR family ``N mod 3``."""
        return gnr_family(self.n_index)

    # --- atom indexing -------------------------------------------------------
    def atom_index(self, cell: int, row: int, slot: int) -> int:
        """Flat index of the atom at (cell, dimer line ``row``, slot 0/1)."""
        if not 0 <= cell < self.n_cells:
            raise IndexError(f"cell {cell} out of range 0..{self.n_cells - 1}")
        if not 0 <= row < self.n_index:
            raise IndexError(f"row {row} out of range 0..{self.n_index - 1}")
        if slot not in (0, 1):
            raise IndexError(f"slot must be 0 or 1, got {slot}")
        return cell * self.atoms_per_cell + 2 * row + slot

    def positions(self) -> np.ndarray:
        """Cartesian coordinates of every atom, shape ``(n_atoms, 2)`` in nm.

        Column 0 is the transport coordinate ``x``, column 1 the transverse
        coordinate ``y``.
        """
        coords = np.empty((self.n_atoms, 2), dtype=float)
        row_y = np.arange(self.n_index) * (math.sqrt(3.0) / 2.0 * A_CC_NM)
        for cell in range(self.n_cells):
            x0 = cell * ARMCHAIR_PERIOD_NM
            for row in range(self.n_index):
                offsets = _EVEN_ROW_OFFSETS if row % 2 == 0 else _ODD_ROW_OFFSETS
                for slot, off in enumerate(offsets):
                    idx = self.atom_index(cell, row, slot)
                    coords[idx, 0] = x0 + off * A_CC_NM
                    coords[idx, 1] = row_y[row]
        return coords

    # --- bonds ---------------------------------------------------------------
    def intra_cell_bonds(self) -> list[tuple[int, int, bool]]:
        """Nearest-neighbour bonds inside one unit cell.

        Returns a list of ``(i, j, is_edge_dimer)`` index pairs with
        ``i < j``, where indices refer to atoms of cell 0 and
        ``is_edge_dimer`` marks the edge-parallel dimer bonds that receive
        the Son-Cohen-Louie hopping correction.
        """
        bonds: list[tuple[int, int, bool]] = []
        n = self.n_index
        for row in range(n):
            is_edge = row in (0, n - 1)
            a0 = 2 * row
            a1 = 2 * row + 1
            # Dimer bond along the ribbon axis within the row.
            bonds.append((a0, a1, is_edge))
            # Inter-row bonds within the same cell.
            if row + 1 < n:
                b0 = 2 * (row + 1)
                b1 = 2 * (row + 1) + 1
                if row % 2 == 0:
                    # even row atoms at x = (0, 1) a_cc; odd row at (1.5, 2.5)
                    # bond: (row, slot1 @ x=1) -- (row+1, slot0 @ x=1.5)
                    bonds.append((a1, b0, False))
                else:
                    # odd row at (1.5, 2.5); even row above at (0, 1)
                    # bonds: (row, slot0 @1.5)--(row+1, slot1 @1)
                    bonds.append((min(a0, b1), max(a0, b1), False))
        return bonds

    def inter_cell_bonds(self) -> list[tuple[int, int]]:
        """Nearest-neighbour bonds from cell ``c`` to cell ``c + 1``.

        Returns ``(i, j)`` pairs where ``i`` indexes an atom in the left
        cell and ``j`` an atom in the right cell (both 0-based within their
        own cell).
        """
        bonds: list[tuple[int, int]] = []
        n = self.n_index
        for row in range(n):
            if row % 2 == 1:
                # odd row atom at x = 2.5 a_cc bonds to even neighbours at
                # x = 3 a_cc (slot 0 of rows row-1 and row+1 in next cell).
                a1 = 2 * row + 1
                for other in (row - 1, row + 1):
                    if 0 <= other < n:
                        bonds.append((a1, 2 * other))
        return bonds

    def neighbor_pairs_by_distance(self, tol_nm: float = 1e-6) -> set[tuple[int, int]]:
        """All nearest-neighbour pairs of the segment found geometrically.

        This is an O(n^2) reference implementation used to validate the
        rule-based bond constructors in the test suite.
        """
        pos = self.positions()
        diff = pos[:, None, :] - pos[None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=2))
        ii, jj = np.where(np.abs(dist - A_CC_NM) < tol_nm)
        return {(int(i), int(j)) for i, j in zip(ii, jj) if i < j}


@dataclass(frozen=True)
class GNRArraySpec:
    """Specification of the multi-ribbon channel of an extrinsic GNRFET.

    The paper's device uses ``n_ribbons = 4`` equidistant GNRs at a pitch of
    10 nm; the contact width per ribbon equals the pitch, for a total
    contact width of 40 nm.
    """

    n_ribbons: int = 4
    pitch_nm: float = 10.0

    def __post_init__(self) -> None:
        if self.n_ribbons < 1:
            raise InvalidDeviceError(
                f"array must contain at least one ribbon, got {self.n_ribbons}")
        if self.pitch_nm <= 0.0:
            raise InvalidDeviceError(
                f"pitch must be positive, got {self.pitch_nm}")

    @property
    def contact_width_nm(self) -> float:
        """Total contact width of the array (n_ribbons * pitch)."""
        return self.n_ribbons * self.pitch_nm
