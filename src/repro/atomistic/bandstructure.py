"""Band structure of armchair GNRs from the tight-binding model.

Provides the quantities the device layer consumes:

* full ``E(k)`` bands on a k-grid,
* band gap and band edges (``E_g(N)`` drives everything in the paper:
  Schottky-barrier heights are ``E_g/2`` and the width-variation study is a
  band-gap study in disguise),
* subband edges and effective masses for the mode-space NEGF reduction,
* density of states per unit length.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.constants import (
    ARMCHAIR_PERIOD_NM,
    EDGE_RELAXATION,
    HBAR_EV_S,
    T_HOPPING_EV,
)
from repro.atomistic.hamiltonian import bloch_hamiltonian, build_unit_cell_hamiltonian
from repro.atomistic.lattice import ArmchairGNR


@dataclass(frozen=True)
class BandStructure:
    """Tight-binding bands of an A-GNR on a uniform k-grid.

    Attributes
    ----------
    n_index:
        GNR index the bands belong to.
    k_per_nm:
        Wave vectors in rad/nm covering ``[0, pi/L]`` (the bands are even in
        ``k`` by time-reversal symmetry, so only half the Brillouin zone is
        stored).
    energies_ev:
        Array of shape ``(n_k, 2N)``; column ``b`` is band ``b`` sorted
        ascending at each k-point.
    """

    n_index: int
    k_per_nm: np.ndarray
    energies_ev: np.ndarray

    @property
    def n_bands(self) -> int:
        return self.energies_ev.shape[1]

    def conduction_bands(self) -> np.ndarray:
        """Bands with positive energy (electron subbands), shape (n_k, N)."""
        return self.energies_ev[:, self.n_bands // 2:]

    def valence_bands(self) -> np.ndarray:
        """Bands with negative energy (hole subbands), shape (n_k, N)."""
        return self.energies_ev[:, :self.n_bands // 2]


def compute_bands(
    n_index: int,
    n_k: int = 201,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> BandStructure:
    """Diagonalize the Bloch Hamiltonian of an ``N = n_index`` A-GNR.

    The k-grid spans half the one-dimensional Brillouin zone,
    ``k in [0, pi / (3 a_cc)]``.
    """
    if n_k < 2:
        raise ValueError(f"need at least 2 k-points, got {n_k}")
    ribbon = ArmchairGNR(n_index)
    h00, h01 = build_unit_cell_hamiltonian(ribbon, hopping_ev, edge_relaxation)
    period = ribbon.period_nm
    ks = np.linspace(0.0, np.pi / period, n_k)
    energies = np.empty((n_k, ribbon.atoms_per_cell), dtype=float)
    for i, k in enumerate(ks):
        hk = bloch_hamiltonian(h00, h01, k, period)
        energies[i] = np.linalg.eigvalsh(hk)
    return BandStructure(n_index=n_index, k_per_nm=ks, energies_ev=energies)


@lru_cache(maxsize=64)
def _cached_bands(n_index: int, n_k: int, hopping_ev: float,
                  edge_relaxation: float) -> BandStructure:
    return compute_bands(n_index, n_k, hopping_ev, edge_relaxation)


def band_edges_ev(
    n_index: int,
    n_k: int = 201,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> tuple[float, float]:
    """Return ``(E_V, E_C)``: valence-band maximum and conduction-band minimum."""
    bands = _cached_bands(n_index, n_k, hopping_ev, edge_relaxation)
    e_c = float(bands.conduction_bands()[:, 0].min())
    e_v = float(bands.valence_bands()[:, -1].max())
    return e_v, e_c


def band_gap_ev(
    n_index: int,
    n_k: int = 201,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> float:
    """Band gap of an ``N = n_index`` A-GNR in eV.

    With edge relaxation all three families are semiconducting (the paper
    cites the experiment of Li et al. showing all sub-10 nm GNRs are
    semiconducting); the gap of the ``3q+2`` family is small, which is why
    the paper excludes it from the device study.
    """
    e_v, e_c = band_edges_ev(n_index, n_k, hopping_ev, edge_relaxation)
    return e_c - e_v


def subband_edges(
    n_index: int,
    n_subbands: int | None = None,
    n_k: int = 201,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> np.ndarray:
    """Conduction subband minima in ascending order, shape (n_subbands,).

    By particle-hole symmetry the valence subband maxima are the negatives
    of these values.
    """
    bands = _cached_bands(n_index, n_k, hopping_ev, edge_relaxation)
    cond = bands.conduction_bands()
    minima = np.sort(cond.min(axis=0))
    if n_subbands is not None:
        minima = minima[:n_subbands]
    return minima


def effective_masses(
    n_index: int,
    n_subbands: int | None = None,
    n_k: int = 401,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> np.ndarray:
    """Effective masses of the conduction subbands in kg.

    The mass of subband ``n`` is obtained from a parabolic fit
    ``E(k) = E_n + hbar^2 k^2 / (2 m*)`` around the subband minimum.  For
    A-GNRs every subband minimum sits at the zone centre, so the fit uses
    the first few k-points.
    """
    from repro.constants import Q_E

    bands = _cached_bands(n_index, n_k, hopping_ev, edge_relaxation)
    cond = bands.conduction_bands()
    ks = bands.k_per_nm
    order = np.argsort(cond.min(axis=0))
    if n_subbands is not None:
        order = order[:n_subbands]

    masses = []
    n_fit = max(4, n_k // 50)
    for band_idx in order:
        band = cond[:, band_idx]
        i_min = int(np.argmin(band))
        lo = max(0, i_min - n_fit)
        hi = min(len(ks), i_min + n_fit + 1)
        dk = ks[lo:hi] - ks[i_min]
        de = band[lo:hi] - band[i_min]
        # Least-squares fit E = c * k^2; curvature c in eV nm^2.
        denom = float(np.sum(dk ** 4))
        if denom == 0.0:
            raise ValueError("k-grid too coarse to fit an effective mass")
        c = float(np.sum(de * dk ** 2) / denom)
        if c <= 0.0:
            raise ValueError(
                f"non-positive band curvature for subband {band_idx}")
        # E[J] = (hbar^2 / 2m) k^2 with k in 1/m:  c[eV nm^2] * Q_E * 1e-18
        c_si = c * Q_E * 1e-18
        from repro.constants import HBAR_SI

        masses.append(HBAR_SI ** 2 / (2.0 * c_si))
    return np.array(masses)


def band_velocity_m_per_s(gap_half_ev: float, mass_kg: float) -> float:
    """Band-structure velocity of the two-band (Flietner) dispersion.

    In the two-band model ``(E - E_mid)^2 = (E_g/2)^2 + (hbar v k)^2`` the
    curvature at the band edge gives ``m* = (E_g/2) / v^2``, hence
    ``v = sqrt(E_g / (2 m*))`` (with the gap converted to joules).  This
    velocity sets the evanescent decay rate used for Schottky-barrier
    tunneling in the fast device engine.
    """
    from repro.constants import Q_E

    if gap_half_ev <= 0.0:
        raise ValueError(f"half-gap must be positive, got {gap_half_ev}")
    if mass_kg <= 0.0:
        raise ValueError(f"mass must be positive, got {mass_kg}")
    return float(np.sqrt(gap_half_ev * Q_E / mass_kg))


def density_of_states(
    bands: BandStructure,
    energies_ev: np.ndarray,
    broadening_ev: float = 2e-3,
) -> np.ndarray:
    """Density of states per unit length (states / (eV nm), spin included).

    Computed by summing Gaussian-broadened contributions
    ``(2 / pi) |dk/dE|`` of every band over the stored half Brillouin zone
    (the factor 2 accounts for spin; the +k/-k symmetry is folded into the
    normalization of the k-integral).
    """
    if broadening_ev <= 0.0:
        raise ValueError("broadening must be positive")
    energies_ev = np.asarray(energies_ev, dtype=float)
    dos = np.zeros_like(energies_ev)
    ks = bands.k_per_nm
    dk = np.gradient(ks)
    # DOS(E) = (2_spin * 2_{±k} / 2π) Σ_b ∫ dk δ(E - E_b(k))
    norm = 2.0 * 2.0 / (2.0 * np.pi)
    for b in range(bands.n_bands):
        e_b = bands.energies_ev[:, b]
        w = norm * dk / (np.sqrt(2.0 * np.pi) * broadening_ev)
        diff = energies_ev[:, None] - e_b[None, :]
        dos += (w[None, :] * np.exp(-0.5 * (diff / broadening_ev) ** 2)).sum(axis=1)
    return dos
