"""Tight-binding Hamiltonians for armchair graphene nanoribbons.

The paper simulates GNRFETs "in the atomistic p_z orbital basis set" with a
coupling parameter of 2.7 eV and edge-bond relaxation following ab initio
results (Son, Cohen, Louie, PRL 97, 216803).  This module builds:

* ``H00`` — the Hamiltonian of one translational unit cell,
* ``H01`` — the coupling from one cell to the next,
* Bloch Hamiltonians ``H(k) = H00 + H01 e^{ikL} + H01^T e^{-ikL}``,
* full real-space Hamiltonians of finite segments with an arbitrary on-site
  potential (used by the real-space NEGF kernel and its tests).

Energies are in eV; the midgap of the ideal ribbon is at 0 eV because the
nearest-neighbour model on the bipartite honeycomb lattice is particle-hole
symmetric.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.constants import EDGE_RELAXATION, T_HOPPING_EV
from repro.atomistic.lattice import ArmchairGNR


def build_unit_cell_hamiltonian(
    ribbon: ArmchairGNR,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(H00, H01)`` for one unit cell of an A-GNR.

    Parameters
    ----------
    ribbon:
        Ribbon geometry; only ``n_index`` matters here.
    hopping_ev:
        Nearest-neighbour hopping ``t`` (positive; matrix elements are
        ``-t``).
    edge_relaxation:
        Relative strengthening of the edge dimer bonds (`delta` such that
        the edge hopping is ``t (1 + delta)``).

    Returns
    -------
    H00 : (2N, 2N) symmetric ndarray
        Intra-cell Hamiltonian.
    H01 : (2N, 2N) ndarray
        Coupling of cell ``c`` to cell ``c + 1``; row index lives in the
        left cell, column index in the right cell.
    """
    n_orb = ribbon.atoms_per_cell
    h00 = np.zeros((n_orb, n_orb), dtype=float)
    h01 = np.zeros((n_orb, n_orb), dtype=float)

    for i, j, is_edge in ribbon.intra_cell_bonds():
        t_bond = hopping_ev * (1.0 + edge_relaxation) if is_edge else hopping_ev
        h00[i, j] = -t_bond
        h00[j, i] = -t_bond
    for i, j in ribbon.inter_cell_bonds():
        h01[i, j] = -hopping_ev
    return h00, h01


@lru_cache(maxsize=64)
def cached_unit_cell_hamiltonian(
    n_index: int,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> tuple[np.ndarray, np.ndarray]:
    """Memoized ``(H00, H01)`` of the ``N = n_index`` A-GNR unit cell.

    Sweep drivers re-instantiate transport engines per bias point, and
    each instantiation used to re-walk the bond lists.  The blocks
    depend only on ``(n_index, hopping, edge_relaxation)``, so they are
    derived once and shared; the returned arrays are marked read-only —
    callers that fold in an on-site potential must ``.copy()`` first.
    """
    h00, h01 = build_unit_cell_hamiltonian(
        ArmchairGNR(n_index), hopping_ev=hopping_ev,
        edge_relaxation=edge_relaxation)
    h00.setflags(write=False)
    h01.setflags(write=False)
    return h00, h01


def bloch_hamiltonian(
    h00: np.ndarray,
    h01: np.ndarray,
    k_per_nm: float,
    period_nm: float,
) -> np.ndarray:
    """Bloch Hamiltonian ``H(k)`` for wave vector ``k`` (rad/nm)."""
    phase = np.exp(1j * k_per_nm * period_nm)
    return h00.astype(complex) + h01 * phase + h01.T.conj() * np.conj(phase)


def build_real_space_hamiltonian(
    ribbon: ArmchairGNR,
    onsite_ev: np.ndarray | float = 0.0,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> np.ndarray:
    """Full Hamiltonian of a finite ribbon segment.

    Parameters
    ----------
    ribbon:
        Segment geometry (``n_cells`` unit cells).
    onsite_ev:
        Either a scalar applied to every atom or an array of per-atom
        on-site energies of length ``ribbon.n_atoms`` (e.g. the
        electrostatic potential energy from a Poisson solution sampled at
        the atom positions).

    Returns
    -------
    (n_atoms, n_atoms) symmetric ndarray.
    """
    n = ribbon.n_atoms
    per_cell = ribbon.atoms_per_cell
    h00, h01 = build_unit_cell_hamiltonian(ribbon, hopping_ev, edge_relaxation)

    h = np.zeros((n, n), dtype=float)
    for cell in range(ribbon.n_cells):
        lo = cell * per_cell
        hi = lo + per_cell
        h[lo:hi, lo:hi] = h00
        if cell + 1 < ribbon.n_cells:
            h[lo:hi, hi:hi + per_cell] = h01
            h[hi:hi + per_cell, lo:hi] = h01.T

    onsite = np.asarray(onsite_ev, dtype=float)
    if onsite.ndim == 0:
        np.fill_diagonal(h, h.diagonal() + float(onsite))
    else:
        if onsite.shape != (n,):
            raise ValueError(
                f"onsite array has shape {onsite.shape}, expected ({n},)")
        np.fill_diagonal(h, h.diagonal() + onsite)
    return h


def block_tridiagonal_blocks(
    ribbon: ArmchairGNR,
    onsite_ev: np.ndarray | float = 0.0,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Diagonal and off-diagonal blocks of a segment Hamiltonian.

    This is the natural input format of the recursive Green's function
    algorithm: one diagonal block per unit cell (cell Hamiltonian plus that
    cell's slice of the on-site potential) and the constant inter-cell
    coupling repeated between consecutive cells.

    Returns
    -------
    diagonal : list of ``n_cells`` arrays of shape (2N, 2N)
    coupling : list of ``n_cells - 1`` arrays (block ``i`` couples cell
        ``i`` to cell ``i + 1``)
    """
    per_cell = ribbon.atoms_per_cell
    h00, h01 = build_unit_cell_hamiltonian(ribbon, hopping_ev, edge_relaxation)

    onsite = np.asarray(onsite_ev, dtype=float)
    if onsite.ndim == 0:
        onsite = np.full(ribbon.n_atoms, float(onsite))
    elif onsite.shape != (ribbon.n_atoms,):
        raise ValueError(
            f"onsite array has shape {onsite.shape}, expected ({ribbon.n_atoms},)")

    diagonal = []
    for cell in range(ribbon.n_cells):
        block = h00.copy()
        sl = onsite[cell * per_cell:(cell + 1) * per_cell]
        np.fill_diagonal(block, block.diagonal() + sl)
        diagonal.append(block)
    coupling = [h01.copy() for _ in range(ribbon.n_cells - 1)]
    return diagonal, coupling
