"""Mode-space (subband) reduction of the A-GNR transport problem.

For an ideal armchair GNR with a potential that is smooth across the ribbon
width, the transverse modes decouple and transport separates into
independent one-dimensional problems, one per subband.  This is the
standard reduction behind mode-space NEGF simulators (nanoMOS / ViDES
lineage) and is what makes routine device simulation "possible on a
personal computer", as the paper puts it.

Each :class:`TransverseMode` carries everything a 1-D transport kernel
needs: the subband edge, the effective mass near the edge, and the two-band
velocity that controls evanescent (under-barrier) decay inside the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.constants import EDGE_RELAXATION, HBAR_SI, Q_E, T_HOPPING_EV
from repro.atomistic.bandstructure import (
    band_velocity_m_per_s,
    effective_masses,
    subband_edges,
)
from repro.atomistic.hamiltonian import cached_unit_cell_hamiltonian


@dataclass(frozen=True)
class TransverseMode:
    """One conduction/valence subband pair of an A-GNR.

    Attributes
    ----------
    index:
        Subband ordinal, 0 for the lowest conduction subband.
    edge_ev:
        Conduction subband minimum measured from midgap; by particle-hole
        symmetry the corresponding valence maximum is ``-edge_ev``.
    mass_kg:
        Parabolic effective mass at the subband edge.
    velocity_m_per_s:
        Two-band model velocity ``sqrt(2 edge_ev q / m)``... specifically
        ``v = sqrt(E_n / m*)`` with ``E_n = edge_ev`` the *half*-gap of this
        subband, such that ``m* = E_n / v^2``.
    """

    index: int
    edge_ev: float
    mass_kg: float
    velocity_m_per_s: float

    def kappa_per_nm(self, energy_ev: np.ndarray | float) -> np.ndarray | float:
        """Evanescent decay constant inside this subband's gap (1/nm).

        From the two-band dispersion ``(E)^2 = E_n^2 + (hbar v k)^2``
        (energies from midgap), the decay constant for ``|E| < E_n`` is
        ``kappa = sqrt(E_n^2 - E^2) / (hbar v)``; outside the gap it is 0.
        """
        e = np.asarray(energy_ev, dtype=float)
        hv_ev_nm = HBAR_SI * self.velocity_m_per_s / Q_E * 1e9  # eV nm
        arg = np.clip(self.edge_ev ** 2 - e ** 2, 0.0, None)
        kappa = np.sqrt(arg) / hv_ev_nm
        if np.isscalar(energy_ev):
            return float(kappa)
        return kappa

    def wavevector_per_nm(self, energy_ev: np.ndarray | float) -> np.ndarray | float:
        """Propagating wave vector for ``|E| > E_n`` (1/nm), 0 inside the gap."""
        e = np.asarray(energy_ev, dtype=float)
        hv_ev_nm = HBAR_SI * self.velocity_m_per_s / Q_E * 1e9
        arg = np.clip(e ** 2 - self.edge_ev ** 2, 0.0, None)
        k = np.sqrt(arg) / hv_ev_nm
        if np.isscalar(energy_ev):
            return float(k)
        return k


@lru_cache(maxsize=64)
def transverse_modes(
    n_index: int,
    n_modes: int = 3,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> tuple[TransverseMode, ...]:
    """Extract the lowest ``n_modes`` subbands of an ``N = n_index`` A-GNR.

    The subband edges and masses come from the exact tight-binding bands;
    the two-band velocity is derived from them.  Results are cached because
    the device layer requests the same ribbons repeatedly.
    """
    if n_modes < 1:
        raise ValueError(f"need at least one mode, got {n_modes}")
    edges = subband_edges(n_index, n_subbands=n_modes,
                          hopping_ev=hopping_ev,
                          edge_relaxation=edge_relaxation)
    masses = effective_masses(n_index, n_subbands=n_modes,
                              hopping_ev=hopping_ev,
                              edge_relaxation=edge_relaxation)
    modes = []
    for i, (edge, mass) in enumerate(zip(edges, masses)):
        vel = band_velocity_m_per_s(float(edge), float(mass))
        modes.append(TransverseMode(index=i, edge_ev=float(edge),
                                    mass_kg=float(mass),
                                    velocity_m_per_s=vel))
    return tuple(modes)


@dataclass(frozen=True)
class ModeBasis:
    """Orthonormal transverse-mode basis that block-diagonalizes the lead.

    The columns of :attr:`vectors` are grouped into invariant subspaces
    of the *uniform-hopping* unit-cell pair ``(H00, H01)``: every block
    simultaneously block-diagonalizes both matrices, so the reduction is
    exact at every longitudinal wave vector (it commutes with the Bloch
    phase).  Blocks are ordered by their conduction-subband edge, lowest
    first; a block of size ``s`` carries ``s // 2`` conduction/valence
    subband pairs (the two-atom basis rows double each transverse
    channel).

    Keeping the first ``k`` blocks is the coupled mode-space
    approximation of Zhao-Guo (arXiv:0902.4621): edge-bond relaxation
    and any transversely non-uniform potential acquire a (small)
    truncated coupling to the discarded blocks, while a transversely
    *uniform* potential projects exactly (``U^T (H + u I) U =
    U^T H U + u I``).  Retaining all blocks reproduces real-space
    transport to round-off.
    """

    n_index: int
    block_edges_ev: tuple[float, ...]
    block_sizes: tuple[int, ...]
    vectors: np.ndarray  # (2N, 2N) read-only, columns grouped per block

    @property
    def n_orbitals(self) -> int:
        return self.vectors.shape[0]

    @property
    def n_blocks(self) -> int:
        return len(self.block_sizes)

    @property
    def subbands_per_block(self) -> tuple[int, ...]:
        return tuple(s // 2 for s in self.block_sizes)

    def blocks_for_modes(self, n_modes: int) -> int:
        """Smallest leading block count covering ``n_modes`` subbands."""
        if n_modes < 1:
            raise ValueError(f"need at least one mode, got {n_modes}")
        covered = 0
        for k, per in enumerate(self.subbands_per_block):
            covered += per
            if covered >= n_modes:
                return k + 1
        return self.n_blocks

    def projector(self, n_modes: int | None = None) -> np.ndarray:
        """Column basis ``U`` spanning enough blocks for ``n_modes``.

        ``None`` keeps every block (full rank: exact transport).  The
        returned view is read-only; shape ``(2N, m)`` with ``m`` the sum
        of the retained block sizes (``m >= 2 n_modes`` — blocks are
        kept whole so the reduction stays exactly invariant).
        """
        if n_modes is None:
            return self.vectors
        kept = self.blocks_for_modes(n_modes)
        m = int(sum(self.block_sizes[:kept]))
        return self.vectors[:, :m]


@lru_cache(maxsize=32)
def transverse_mode_basis(  # repro: noqa[RPA104] — fixed-seed construction detail, not sampling; an injectable rng would break the cached basis' determinism
    n_index: int,
    hopping_ev: float = T_HOPPING_EV,
) -> ModeBasis:
    """Build the invariant-subspace mode basis of an ``N = n_index`` lead.

    The basis must commute with *both* uniform unit-cell matrices
    ``H00`` and ``H01`` so that the block structure survives at every
    wave vector.  It is found through the commutant: symmetric matrices
    ``M`` with ``[M, H00] = [M, H01] = 0`` form a small linear space
    (the nullspace of the stacked Kronecker commutator operators,
    restricted to symmetric matrices); the eigenspaces of one generic
    (deterministically seeded) commutant element are the common
    invariant subspaces.  Eigenvalues are clustered with a fixed gap
    tolerance, each cluster's eigenvectors form one orthonormal block,
    and blocks are sorted by the conduction edge of their reduced Bloch
    Hamiltonian, sampled over the Brillouin zone.

    Edge relaxation is deliberately *not* a parameter: the basis comes
    from the uniform-hopping lead (where the block structure is exact),
    and the edge-bond correction is projected approximately by the
    transport engine.  Results are cached per ``(n_index, hopping)``.
    """
    h00, h01 = cached_unit_cell_hamiltonian(
        n_index, hopping_ev=hopping_ev, edge_relaxation=0.0)
    n = h00.shape[0]

    # Commutant of {H00, H01} within symmetric matrices: vec([M, H]) =
    # (I (x) H - H^T (x) I) vec(M), so stack both commutator operators
    # and restrict to the symmetric-matrix basis.
    def commutator_operator(h: np.ndarray) -> np.ndarray:
        return np.kron(np.eye(n), h) - np.kron(h.T, np.eye(n))

    stacked = np.vstack([commutator_operator(h00), commutator_operator(h01)])
    pairs = [(i, j) for i in range(n) for j in range(i, n)]
    sym_basis = np.zeros((n * n, len(pairs)))
    for col, (i, j) in enumerate(pairs):
        m_ij = np.zeros((n, n))
        m_ij[i, j] = 1.0
        m_ij[j, i] = 1.0
        sym_basis[:, col] = m_ij.ravel()
    _, singular, vt = np.linalg.svd(stacked @ sym_basis)
    null_dim = int(np.sum(singular < singular[0] * 1e-10))
    if null_dim == 0:
        raise RuntimeError(
            f"empty commutant for N={n_index} A-GNR lead; "
            "cannot build a mode basis")

    # A generic element of the commutant separates the invariant
    # subspaces; the seed is fixed so the basis is deterministic.
    rng = np.random.default_rng(20260808)
    coeffs = vt[-null_dim:].T @ rng.normal(size=null_dim)
    generic = (sym_basis @ coeffs).reshape(n, n)
    generic = 0.5 * (generic + generic.T)
    generic /= np.max(np.abs(generic))
    eigvals, eigvecs = np.linalg.eigh(generic)

    clusters: list[list[int]] = [[0]]
    for i in range(1, n):
        if eigvals[i] - eigvals[i - 1] < 1e-6:
            clusters[-1].append(i)
        else:
            clusters.append([i])

    # Order blocks by the conduction edge of their reduced band
    # structure min_k |eig(H00_b + H01_b e^{ik} + H01_b^T e^{-ik})|.
    k_grid = np.linspace(0.0, np.pi, 129)
    blocks: list[tuple[float, np.ndarray]] = []
    for cluster in clusters:
        u = eigvecs[:, cluster]
        b00 = u.T @ h00 @ u
        b01 = u.T @ h01 @ u
        edge = np.inf
        for k in k_grid:
            h_k = b00 + b01 * np.exp(1j * k) + b01.T * np.exp(-1j * k)
            edge = min(edge, float(np.min(np.abs(np.linalg.eigvalsh(h_k)))))
        blocks.append((edge, u))
    blocks.sort(key=lambda item: item[0])

    vectors = np.hstack([u for _, u in blocks])
    vectors.setflags(write=False)
    return ModeBasis(
        n_index=n_index,
        block_edges_ev=tuple(edge for edge, _ in blocks),
        block_sizes=tuple(u.shape[1] for _, u in blocks),
        vectors=vectors,
    )
