"""Mode-space (subband) reduction of the A-GNR transport problem.

For an ideal armchair GNR with a potential that is smooth across the ribbon
width, the transverse modes decouple and transport separates into
independent one-dimensional problems, one per subband.  This is the
standard reduction behind mode-space NEGF simulators (nanoMOS / ViDES
lineage) and is what makes routine device simulation "possible on a
personal computer", as the paper puts it.

Each :class:`TransverseMode` carries everything a 1-D transport kernel
needs: the subband edge, the effective mass near the edge, and the two-band
velocity that controls evanescent (under-barrier) decay inside the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.constants import EDGE_RELAXATION, HBAR_SI, Q_E, T_HOPPING_EV
from repro.atomistic.bandstructure import (
    band_velocity_m_per_s,
    effective_masses,
    subband_edges,
)


@dataclass(frozen=True)
class TransverseMode:
    """One conduction/valence subband pair of an A-GNR.

    Attributes
    ----------
    index:
        Subband ordinal, 0 for the lowest conduction subband.
    edge_ev:
        Conduction subband minimum measured from midgap; by particle-hole
        symmetry the corresponding valence maximum is ``-edge_ev``.
    mass_kg:
        Parabolic effective mass at the subband edge.
    velocity_m_per_s:
        Two-band model velocity ``sqrt(2 edge_ev q / m)``... specifically
        ``v = sqrt(E_n / m*)`` with ``E_n = edge_ev`` the *half*-gap of this
        subband, such that ``m* = E_n / v^2``.
    """

    index: int
    edge_ev: float
    mass_kg: float
    velocity_m_per_s: float

    def kappa_per_nm(self, energy_ev: np.ndarray | float) -> np.ndarray | float:
        """Evanescent decay constant inside this subband's gap (1/nm).

        From the two-band dispersion ``(E)^2 = E_n^2 + (hbar v k)^2``
        (energies from midgap), the decay constant for ``|E| < E_n`` is
        ``kappa = sqrt(E_n^2 - E^2) / (hbar v)``; outside the gap it is 0.
        """
        e = np.asarray(energy_ev, dtype=float)
        hv_ev_nm = HBAR_SI * self.velocity_m_per_s / Q_E * 1e9  # eV nm
        arg = np.clip(self.edge_ev ** 2 - e ** 2, 0.0, None)
        kappa = np.sqrt(arg) / hv_ev_nm
        if np.isscalar(energy_ev):
            return float(kappa)
        return kappa

    def wavevector_per_nm(self, energy_ev: np.ndarray | float) -> np.ndarray | float:
        """Propagating wave vector for ``|E| > E_n`` (1/nm), 0 inside the gap."""
        e = np.asarray(energy_ev, dtype=float)
        hv_ev_nm = HBAR_SI * self.velocity_m_per_s / Q_E * 1e9
        arg = np.clip(e ** 2 - self.edge_ev ** 2, 0.0, None)
        k = np.sqrt(arg) / hv_ev_nm
        if np.isscalar(energy_ev):
            return float(k)
        return k


@lru_cache(maxsize=64)
def transverse_modes(
    n_index: int,
    n_modes: int = 3,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> tuple[TransverseMode, ...]:
    """Extract the lowest ``n_modes`` subbands of an ``N = n_index`` A-GNR.

    The subband edges and masses come from the exact tight-binding bands;
    the two-band velocity is derived from them.  Results are cached because
    the device layer requests the same ribbons repeatedly.
    """
    if n_modes < 1:
        raise ValueError(f"need at least one mode, got {n_modes}")
    edges = subband_edges(n_index, n_subbands=n_modes,
                          hopping_ev=hopping_ev,
                          edge_relaxation=edge_relaxation)
    masses = effective_masses(n_index, n_subbands=n_modes,
                              hopping_ev=hopping_ev,
                              edge_relaxation=edge_relaxation)
    modes = []
    for i, (edge, mass) in enumerate(zip(edges, masses)):
        vel = band_velocity_m_per_s(float(edge), float(mass))
        modes.append(TransverseMode(index=i, edge_ev=float(edge),
                                    mass_kg=float(mass),
                                    velocity_m_per_s=vel))
    return tuple(modes)
