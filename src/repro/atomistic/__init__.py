"""Atomistic substrate: graphene / armchair-GNR geometry, tight binding, bands.

This package provides the bottom layer of the paper's "bottom-up" simulation
stack: the p_z-orbital tight-binding description of armchair-edge graphene
nanoribbons (A-GNRs), from which every higher layer (NEGF transport, the fast
SBFET device engine, the circuit lookup tables) derives its band gaps,
effective masses and mode structure.
"""

from repro.atomistic.lattice import (
    ArmchairGNR,
    gnr_family,
    is_semiconducting_index,
)
from repro.atomistic.hamiltonian import (
    build_unit_cell_hamiltonian,
    build_real_space_hamiltonian,
    bloch_hamiltonian,
)
from repro.atomistic.bandstructure import (
    BandStructure,
    compute_bands,
    band_gap_ev,
    band_edges_ev,
    subband_edges,
    effective_masses,
    density_of_states,
)
from repro.atomistic.modespace import (
    TransverseMode,
    transverse_modes,
)

__all__ = [
    "ArmchairGNR",
    "gnr_family",
    "is_semiconducting_index",
    "build_unit_cell_hamiltonian",
    "build_real_space_hamiltonian",
    "bloch_hamiltonian",
    "BandStructure",
    "compute_bands",
    "band_gap_ev",
    "band_edges_ev",
    "subband_edges",
    "effective_masses",
    "density_of_states",
    "TransverseMode",
    "transverse_modes",
]
