"""Real-space atomistic p_z-basis NEGF transport through a GNR segment.

This is the paper's own basis choice — "the DC characteristics of
ballistic GNRFETs are simulated by solving the Schrodinger equation using
the NEGF formalism in the atomistic p_z orbital basis set" — implemented
without the mode-space reduction: the device is an explicit honeycomb
segment whose Hamiltonian blocks feed the generic recursive Green's
function, with semi-infinite pristine-GNR leads closed by Sancho-Rubio
self-energies.

Two uses:

* **validation of the mode-space substitution** (DESIGN.md §5): for an
  ideal ribbon with a longitudinal potential profile, the real-space
  transmission must reproduce the subband staircase and barrier
  tunneling that the per-mode 1-D chains model;
* **atomistic defects beyond mode space**: edge roughness (the paper's
  reference [17], Yoon & Guo APL 2007, flagged in Section 4 as a defect
  mechanism "to be explored by readily extending the bottom-up simulation
  framework") breaks the transverse-mode decoupling and *requires* the
  real-space basis.  :func:`rough_edge_onsite` implements vacancy-style
  edge roughness via the standard large-on-site-energy device.

Cost: O(n_cells) inversions of (2N x 2N) blocks per energy — fine for the
15 nm / N<=18 devices studied here, which is exactly the "routine device
simulation ... on a personal computer" regime the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    EDGE_RELAXATION,
    KT_ROOM_EV,
    LANDAUER_PREFACTOR_A_PER_EV,
    T_HOPPING_EV,
    fermi_dirac,
)
from repro.atomistic.hamiltonian import (
    block_tridiagonal_blocks,
    build_unit_cell_hamiltonian,
)
from repro.atomistic.lattice import ArmchairGNR
from repro.errors import InvalidDeviceError
from repro.negf.greens import recursive_greens_function, rgf_transmission_batched
from repro.negf.self_energy import (
    resilient_surface_gf,
    resilient_surface_gf_batched,
    self_energy_from_surface_gf,
)

#: On-site energy used to expel the p_z orbital of a removed edge atom.
#: The standard vacancy treatment: a site energy far outside the band
#: (|E| >> 3t) decouples the atom without changing the matrix size.
VACANCY_ONSITE_EV = 1e3


@dataclass
class RealSpaceTransport:
    """Transmission (and optionally current) of one device configuration.

    Attributes
    ----------
    energies_ev:
        Energy grid (midgap of the leads at 0).
    transmission:
        Landauer transmission summed over all transverse channels.
    """

    energies_ev: np.ndarray
    transmission: np.ndarray

    def current_a(self, mu_source_ev: float, mu_drain_ev: float,
                  kt_ev: float = KT_ROOM_EV) -> float:
        """Spin-degenerate Landauer current over the stored grid."""
        f_s = fermi_dirac(self.energies_ev, mu_source_ev, kt_ev)
        f_d = fermi_dirac(self.energies_ev, mu_drain_ev, kt_ev)
        return LANDAUER_PREFACTOR_A_PER_EV * float(
            np.trapezoid(self.transmission * (f_s - f_d),
                         self.energies_ev))


class RealSpaceGNRDevice:
    """Atomistic p_z NEGF device: GNR segment + pristine GNR leads.

    Parameters
    ----------
    n_index:
        A-GNR index of channel and leads.
    n_cells:
        Device length in unit cells (one cell = 0.426 nm).
    onsite_ev:
        Per-atom on-site energies (potential profile, impurities, edge
        vacancies), length ``2 * n_index * n_cells``; scalar broadcast.
    lead_onsite_ev:
        Rigid potential shifts ``(source, drain)`` applied to the two
        semi-infinite leads (e.g. the endpoints of a device profile);
        the default ``(0, 0)`` leaves the legacy midgap-at-zero leads
        bitwise unchanged.
    """

    def __init__(self, n_index: int, n_cells: int,
                 onsite_ev: np.ndarray | float = 0.0,
                 hopping_ev: float = T_HOPPING_EV,
                 edge_relaxation: float = EDGE_RELAXATION,
                 lead_onsite_ev: tuple[float, float] = (0.0, 0.0)):
        if n_cells < 1:
            raise InvalidDeviceError("device needs at least one cell")
        self.ribbon = ArmchairGNR(n_index, n_cells=n_cells)
        self.hopping_ev = hopping_ev
        self.edge_relaxation = edge_relaxation
        self.lead_onsite_ev = (float(lead_onsite_ev[0]),
                               float(lead_onsite_ev[1]))
        self.diagonal, self.coupling = block_tridiagonal_blocks(
            self.ribbon, onsite_ev, hopping_ev, edge_relaxation)
        self._h00, self._h01 = build_unit_cell_hamiltonian(
            ArmchairGNR(n_index), hopping_ev, edge_relaxation)

    def _lead_h00(self, side: int) -> np.ndarray:
        shift = self.lead_onsite_ev[side]
        if shift:
            return self._h00 + shift * np.eye(self._h00.shape[0])
        return self._h00

    # ------------------------------------------------------------------ #
    def lead_self_energies(self, energy_ev: float, eta_ev: float = 1e-6
                           ) -> tuple[np.ndarray, np.ndarray]:
        """(Sigma_L, Sigma_R) of the semi-infinite pristine leads.

        The left lead extends through ``h01^T`` (towards -x), the right
        lead through ``h01``; both surface GFs come from Sancho-Rubio
        behind the retry ladder of
        :func:`repro.negf.self_energy.resilient_surface_gf` (the base
        rung runs the exact legacy settings, so a converging decimation
        is bitwise-unchanged).
        """
        g_left = resilient_surface_gf(energy_ev, self._lead_h00(0),
                                      self._h01.T, eta_ev)
        sigma_l = self_energy_from_surface_gf(g_left, self._h01.T)
        g_right = resilient_surface_gf(energy_ev, self._lead_h00(1),
                                       self._h01, eta_ev)
        sigma_r = self_energy_from_surface_gf(g_right, self._h01)
        return sigma_l, sigma_r

    def transmission_at(self, energy_ev: float,
                        eta_ev: float = 1e-6) -> float:
        """Landauer transmission at one energy."""
        sigma_l, sigma_r = self.lead_self_energies(energy_ev, eta_ev)
        result = recursive_greens_function(
            energy_ev, self.diagonal, self.coupling, sigma_l, sigma_r,
            eta_ev)
        return max(result.transmission, 0.0)

    def lead_self_energies_batched(
            self, energies_ev: np.ndarray, eta_ev: float = 1e-6
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked ``(Sigma_L, Sigma_R)``, shape ``(n_energy, b, b)``.

        Energy-batched counterpart of :meth:`lead_self_energies`: the
        Sancho-Rubio decimation runs once per lead with every energy
        carried in the stacked iteration.
        """
        energies_ev = np.asarray(energies_ev, dtype=float)
        g_left = resilient_surface_gf_batched(
            energies_ev, self._lead_h00(0), self._h01.T, eta_ev)
        sigma_l = self_energy_from_surface_gf(g_left, self._h01.T)
        g_right = resilient_surface_gf_batched(
            energies_ev, self._lead_h00(1), self._h01, eta_ev)
        sigma_r = self_energy_from_surface_gf(g_right, self._h01)
        return sigma_l, sigma_r

    def transport(self, energies_ev: np.ndarray,
                  eta_ev: float = 1e-6,
                  batched: bool = True) -> RealSpaceTransport:
        """Transmission over an energy grid.

        By default every energy is carried simultaneously through the
        stacked Sancho-Rubio + RGF kernels (identical output to the
        per-energy loop to numerical round-off).  ``batched=False``
        forces the legacy per-energy loop — the reference path the
        batched kernels are validated against in the test suite.
        """
        energies_ev = np.asarray(energies_ev, dtype=float)
        if not batched or energies_ev.size == 0:
            # Legacy reference path the batched kernels are validated
            # against; kept per-energy by design.
            trans = np.array([self.transmission_at(float(e), eta_ev)  # repro: noqa[RPA802]
                              for e in energies_ev])
            return RealSpaceTransport(energies_ev=energies_ev,
                                      transmission=trans)
        sigma_l, sigma_r = self.lead_self_energies_batched(
            energies_ev, eta_ev)
        trans = rgf_transmission_batched(
            energies_ev, self.diagonal, self.coupling, sigma_l, sigma_r,
            eta_ev)
        # Same clamp as transmission_at: tiny negative round-off -> 0.
        return RealSpaceTransport(energies_ev=energies_ev,
                                  transmission=np.maximum(trans, 0.0))


def longitudinal_onsite(ribbon: ArmchairGNR,
                        profile_ev: np.ndarray) -> np.ndarray:
    """Per-atom on-site array from a per-cell potential profile.

    ``profile_ev`` has one entry per unit cell; every atom of a cell
    shares it (adequate for potentials smooth on the 0.43 nm cell scale,
    which is the same smoothness assumption mode space makes).
    """
    profile_ev = np.asarray(profile_ev, dtype=float)
    if profile_ev.shape != (ribbon.n_cells,):
        raise ValueError(
            f"profile must have one entry per cell ({ribbon.n_cells}), "
            f"got {profile_ev.shape}")
    return np.repeat(profile_ev, ribbon.atoms_per_cell)


def rough_edge_onsite(
    ribbon: ArmchairGNR,
    vacancy_probability: float,
    rng: np.random.Generator,
    base_onsite_ev: np.ndarray | float = 0.0,
) -> tuple[np.ndarray, int]:
    """Edge roughness: randomly remove edge atoms of the segment.

    Implements the defect mechanism of the paper's reference [17]: each
    atom on the two outermost dimer lines is removed independently with
    ``vacancy_probability`` (set to a large on-site energy, expelling its
    orbital from the transport window).

    Returns ``(onsite_array, n_removed)``.
    """
    if not 0.0 <= vacancy_probability <= 1.0:
        raise ValueError("vacancy probability must be in [0, 1]")
    n = ribbon.n_atoms
    onsite = np.asarray(base_onsite_ev, dtype=float)
    if onsite.ndim == 0:
        onsite = np.full(n, float(onsite))
    else:
        onsite = onsite.copy()
        if onsite.shape != (n,):
            raise ValueError(f"base onsite must have shape ({n},)")

    n_removed = 0
    for cell in range(ribbon.n_cells):
        for row in (0, ribbon.n_index - 1):
            for slot in (0, 1):
                if rng.random() < vacancy_probability:
                    idx = ribbon.atom_index(cell, row, slot)
                    onsite[idx] = VACANCY_ONSITE_EV
                    n_removed += 1
    return onsite, n_removed


def ideal_transmission_staircase(n_index: int,
                                 energies_ev: np.ndarray) -> np.ndarray:
    """Reference: channel count of a pristine ribbon vs energy.

    For an ideal ribbon with matched leads, T(E) equals the number of
    propagating subbands at E — a staircase with steps at the subband
    edges.  Computed by counting band crossings of the exact Bloch bands.
    """
    from repro.atomistic.bandstructure import compute_bands

    bands = compute_bands(n_index, n_k=301)
    energies_ev = np.asarray(energies_ev, dtype=float)
    counts = np.zeros(energies_ev.size)
    for b in range(bands.n_bands):
        e_band = bands.energies_ev[:, b]
        lo, hi = e_band.min(), e_band.max()
        inside = (energies_ev >= lo) & (energies_ev <= hi)
        counts += inside.astype(float)
    return counts
