"""Reference self-consistent NEGF + Poisson GNRFET simulator.

This is the rigorous engine corresponding to Section 2 of the paper: the
mode-space NEGF transport equation solved self-consistently with the
Poisson equation on the double-gate device cross-section.

Physics and numerics
--------------------
* **Transport** — one effective-mass tight-binding chain per transverse
  subband and carrier type (electron/hole), with subband edges and masses
  taken from the exact p_z bands.  The chain NEGF is solved with a
  vectorized scalar recursive Green's function (all energies
  simultaneously), giving transmission and contact-resolved spectral
  densities along the channel.
* **Contacts** — metallic leads (half-filled chains of matching hopping)
  whose Fermi levels pin the midgap at the contact interfaces: Schottky
  barriers ``Phi_Bn = Phi_Bp = E_g/2`` for the lowest subband, exactly the
  paper's contact model.
* **Electrostatics** — 2-D finite-difference Poisson on the (transport x
  gate-stack) cross-section: gate / oxide / GNR sheet / oxide / gate, with
  Dirichlet gates and contact columns.  Mobile charge enters as a sheet
  charge on the channel row.  The oxide point-charge impurity is added as
  the analytic gate-image-screened Coulomb potential (a point charge
  cannot be represented on a translationally invariant 2-D cross-section
  without becoming a line charge; see DESIGN.md, substitution table).
* **Self-consistency** — Anderson-accelerated fixed point on the channel
  potential-energy profile ``U(x)``.

The engine is deliberately the *reference* (slow, explicit) path: the
production lookup tables come from :mod:`repro.device.sbfet`, which is
cross-validated against this module in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs, sanitize
from repro.constants import (
    HBAR_SI,
    LANDAUER_PREFACTOR_A_PER_EV,
    Q_E,
    fermi_dirac,
    thermal_energy_ev,
)
from repro.atomistic.modespace import transverse_modes
from repro.device.geometry import GNRFETGeometry, GRAPHENE_THICKNESS_NM
from repro.negf.energy_grid import adaptive_energy_grid
from repro.negf.mixing import AndersonMixer
from repro.negf.scf import (
    SCFOptions,
    SCFResult,
    scf_escalation,
    self_consistent_loop,
)
from repro.negf.self_energy import lead_self_energy_1d
from repro.poisson.fd import PoissonOperator
from repro.poisson.grid import Grid2D
from repro.poisson.pointcharge import screened_impurity_potential_ev
from repro.runtime.accel import warmstart_enabled


@dataclass
class _ChainRGFOutput:
    """Vectorized scalar-chain RGF output for one (mode, carrier) chain."""

    transmission: np.ndarray          # (n_energy,)
    spectral_source: np.ndarray       # (n_energy, n_x)
    spectral_drain: np.ndarray        # (n_energy, n_x)


def _scalar_chain_rgf(
    energies_ev: np.ndarray,
    onsite_ev: np.ndarray,
    hopping_ev: float,
    sigma_left: np.ndarray,
    sigma_right: np.ndarray,
    eta_ev: float = 1e-8,
) -> _ChainRGFOutput:
    """Recursive Green's function of a scalar chain, vectorized in energy.

    Implements the same recurrences as
    :func:`repro.negf.greens.recursive_greens_function` specialized to
    1x1 blocks, with every energy point carried simultaneously as a numpy
    vector (two orders of magnitude faster than looping the generic
    matrix kernel over energies).  Validated against the matrix kernel in
    the test suite.
    """
    energies = np.asarray(energies_ev, dtype=float)
    eps = np.asarray(onsite_ev, dtype=float)
    n_x = eps.size
    n_e = energies.size
    z = energies + 1j * eta_ev
    h01 = -hopping_ev  # off-diagonal Hamiltonian element
    h2 = h01 * h01

    a0 = z[:, None] - eps[None, :]
    a = a0.copy()
    a[:, 0] -= sigma_left
    a[:, -1] -= sigma_right

    g_left = np.empty((n_e, n_x), dtype=complex)
    g_left[:, 0] = 1.0 / a[:, 0]
    for i in range(1, n_x):
        g_left[:, i] = 1.0 / (a[:, i] - h2 * g_left[:, i - 1])

    g_right = np.empty((n_e, n_x), dtype=complex)
    g_right[:, -1] = 1.0 / a[:, -1]
    for i in range(n_x - 2, -1, -1):
        g_right[:, i] = 1.0 / (a[:, i] - h2 * g_right[:, i + 1])

    diag = np.empty((n_e, n_x), dtype=complex)
    diag[:, -1] = g_left[:, -1]
    for i in range(n_x - 2, -1, -1):
        diag[:, i] = g_left[:, i] * (1.0 + h2 * diag[:, i + 1] * g_left[:, i])

    first_col = np.empty((n_e, n_x), dtype=complex)
    first_col[:, 0] = diag[:, 0]
    for i in range(1, n_x):
        first_col[:, i] = g_right[:, i] * h01 * first_col[:, i - 1]

    last_col = np.empty((n_e, n_x), dtype=complex)
    last_col[:, -1] = diag[:, -1]
    for i in range(n_x - 2, -1, -1):
        last_col[:, i] = g_left[:, i] * h01 * last_col[:, i + 1]

    gamma_left = -2.0 * np.imag(sigma_left)
    gamma_right = -2.0 * np.imag(sigma_right)

    transmission = gamma_left * gamma_right * np.abs(last_col[:, 0]) ** 2
    spectral_source = (np.abs(first_col) ** 2) * gamma_left[:, None]
    spectral_drain = (np.abs(last_col) ** 2) * gamma_right[:, None]
    if sanitize.ACTIVE:
        op = "_scalar_chain_rgf"
        sanitize.check_transmission(transmission, 1.0, op,
                                    energies_ev=energies)
        sanitize.check_finite(spectral_source, op, "A_source",
                              energies_ev=energies)
        sanitize.check_finite(spectral_drain, op, "A_drain",
                              energies_ev=energies)
    if obs.ACTIVE:
        obs.incr("negf.chain_rgf_solves")
        obs.incr("negf.chain_energy_points", n_e)
    return _ChainRGFOutput(transmission=transmission,
                           spectral_source=spectral_source,
                           spectral_drain=spectral_drain)


@dataclass(frozen=True)
class NEGFDeviceResult:
    """Converged solution of one bias point.

    Attributes
    ----------
    vg, vd:
        Bias point (V).
    current_a:
        Total (electron + hole branch) drain current.
    x_nm:
        Transport grid.
    midgap_ev:
        Self-consistent midgap profile ``U(x)``.
    conduction_band_ev, valence_band_ev:
        Lowest-subband band edges ``U(x) +- E_1`` (paper Fig. 5a plots
        the conduction band profile).
    electron_density_per_nm, hole_density_per_nm:
        Carrier line densities along the channel.
    scf:
        Self-consistency diagnostics.
    """

    vg: float
    vd: float
    current_a: float
    x_nm: np.ndarray
    midgap_ev: np.ndarray
    conduction_band_ev: np.ndarray
    valence_band_ev: np.ndarray
    electron_density_per_nm: np.ndarray
    hole_density_per_nm: np.ndarray
    scf: SCFResult | None = field(repr=False, default=None)


class NEGFDevice:
    """Self-consistent mode-space NEGF + 2-D Poisson device simulator."""

    def __init__(self, geometry: GNRFETGeometry, n_modes: int = 2,
                 n_x: int = 61, n_y: int = 15,
                 coarse_step_ev: float = 5e-3, fine_step_ev: float = 1e-3):
        self.geometry = geometry
        self.modes = transverse_modes(geometry.n_index, n_modes)
        self.kt_ev = thermal_energy_ev(geometry.temperature_k)
        self._coarse_step_ev = coarse_step_ev
        self._fine_step_ev = fine_step_ev

        length = geometry.channel_length_nm
        self.x_nm = np.linspace(0.0, length, n_x)
        self._dx = self.x_nm[1] - self.x_nm[0]

        # Effective-mass chain hoppings, one per mode: t = hbar^2/(2 m a^2).
        a_m = self._dx * 1e-9
        self._t_chain_ev = np.array(
            [HBAR_SI ** 2 / (2.0 * m.mass_kg * a_m * a_m) / Q_E
             for m in self.modes])

        # Electrostatic cross-section grid: y spans gate-to-gate.
        self._grid = Grid2D(lx_nm=length,
                            ly_nm=geometry.gate_separation_nm,
                            nx=n_x, ny=n_y)
        self._channel_row = n_y // 2
        self._eps = np.full(self._grid.shape, geometry.eps_ox)
        self._impurity_profile = self._impurity_potential_ev()

        # Boundary conditions: the *placement* of Dirichlet nodes (both
        # gate rails, source and drain columns) is bias-independent, and
        # only the gate/drain values change per bias — so the mask, the
        # values template, and the prefactorized Poisson operator are all
        # built once here.  Every SCF iteration of every bias point then
        # reuses the same LU factorization through the RHS.  Assignment
        # order matters for the corner nodes: contact columns are pinned
        # after the gate rails so corners take the contact potential.
        mask = np.zeros(self._grid.shape, dtype=bool)
        mask[:, 0] = True
        mask[:, -1] = True
        mask[0, :] = True
        mask[-1, :] = True
        self._bc_mask = mask
        self._bc_values = np.zeros(self._grid.shape)
        self._poisson_op = PoissonOperator.for_grid(self._grid, self._eps,
                                                    mask)

    # ------------------------------------------------------------------ #
    # Electrostatics
    # ------------------------------------------------------------------ #
    def _impurity_potential_ev(self) -> np.ndarray:
        imp = self.geometry.impurity
        if imp is None or imp.charge_e == 0.0:
            return np.zeros_like(self.x_nm)
        d = self.geometry.gate_separation_nm
        z_plane = d / 2.0
        z_imp = min(z_plane + GRAPHENE_THICKNESS_NM / 2.0 + imp.height_nm,
                    d - 1e-3)
        u = screened_impurity_potential_ev(
            imp.charge_e, np.abs(self.x_nm - imp.position_nm),
            impurity_height_nm=z_imp, gate_separation_nm=d,
            eps_r=self.geometry.eps_ox, plane_height_nm=z_plane)
        return self.geometry.impurity_screening * u

    def _solve_poisson_midgap(self, net_density_per_nm: np.ndarray,
                              vg: float, vd: float) -> np.ndarray:
        """Poisson solve -> midgap energy profile on the channel row.

        ``net_density_per_nm`` is ``n - p`` (electrons positive) per unit
        channel length.  Potential boundary conditions: both gates at
        ``phi = vg`` (work function folded into the reference so that
        ``V_G = 0`` leaves the channel at flat-band/midgap), source column
        at ``phi = 0`` and drain column at ``phi = vd``; the electron
        midgap energy is ``U = -phi``.
        """
        g = self._grid
        rho = np.zeros(g.shape)
        w_eff = self.geometry.width_nm + self.geometry.oxide_thickness_nm
        sheet = -Q_E * np.asarray(net_density_per_nm) / w_eff  # C/nm^2
        rho[:, self._channel_row] = sheet / g.dy_nm

        values = self._bc_values
        values[:, 0] = vg
        values[:, -1] = vg
        values[0, :] = 0.0
        values[-1, :] = vd

        phi = self._poisson_op.solve(rho, values)
        return -phi[:, self._channel_row] + self._impurity_profile

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _energy_grid(self, edge_profile: np.ndarray, mu_a: float,
                     mu_b: float) -> np.ndarray:
        window = 14.0 * self.kt_ev
        e_min = float(edge_profile.min()) - 0.05
        e_max = max(float(edge_profile.max()), mu_a, mu_b) + window
        if e_max <= e_min:
            e_max = e_min + 0.1
        features = [mu_a, mu_b, float(edge_profile.min()),
                    float(edge_profile.max()),
                    float(edge_profile[len(edge_profile) // 2])]
        features = [f for f in features if e_min <= f <= e_max]
        return adaptive_energy_grid(e_min, e_max, features,
                                    coarse_step_ev=self._coarse_step_ev,
                                    fine_step_ev=self._fine_step_ev)

    def _solve_chain(self, edge_profile: np.ndarray, t_chain: float,
                     mu_left: float, mu_right: float
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """NEGF solve of one carrier chain.

        Returns ``(energies, transmission, density_per_site)`` where the
        density is the carrier occupation per site filled from the two
        contacts at their chemical potentials.
        """
        energies = self._energy_grid(edge_profile, mu_left, mu_right)
        onsite = edge_profile + 2.0 * t_chain
        sigma_l = lead_self_energy_1d(energies, mu_left, t_chain)
        sigma_r = lead_self_energy_1d(energies, mu_right, t_chain)
        out = _scalar_chain_rgf(energies, onsite, t_chain, sigma_l, sigma_r)

        f_l = fermi_dirac(energies, mu_left, self.kt_ev)
        f_r = fermi_dirac(energies, mu_right, self.kt_ev)
        integrand = (out.spectral_source * f_l[:, None]
                     + out.spectral_drain * f_r[:, None])
        density = (2.0 / (2.0 * np.pi)) * np.trapezoid(
            integrand, energies, axis=0)
        return energies, out.transmission, density

    def _transport(self, midgap_ev: np.ndarray, vd: float
                   ) -> tuple[float, np.ndarray, np.ndarray]:
        """All-mode transport solve: returns (current, n(x), p(x))."""
        mu_s, mu_d = 0.0, -vd
        current = 0.0
        n_tot = np.zeros_like(self.x_nm)
        p_tot = np.zeros_like(self.x_nm)
        for mode, t_chain in zip(self.modes, self._t_chain_ev):
            # Electron chain: conduction edge U + E_n; metal Fermi levels
            # pin the contact midgap, i.e. barriers of height E_n.
            e_edge = midgap_ev + mode.edge_ev
            energies, trans, dens = self._solve_chain(
                e_edge, t_chain, mu_s, mu_d)
            f_s = fermi_dirac(energies, mu_s, self.kt_ev)
            f_d = fermi_dirac(energies, mu_d, self.kt_ev)
            current += LANDAUER_PREFACTOR_A_PER_EV * float(
                np.trapezoid(trans * (f_s - f_d), energies))
            n_tot += dens / self._dx

            # Hole chain in the hole-energy picture (eps = -E): band edge
            # -E_V = E_n - U, hole chemical potentials -mu.
            h_edge = mode.edge_ev - midgap_ev
            mu_s_h, mu_d_h = 0.0, vd
            energies_h, trans_h, dens_h = self._solve_chain(
                h_edge, t_chain, mu_s_h, mu_d_h)
            f_s_h = fermi_dirac(energies_h, mu_s_h, self.kt_ev)
            f_d_h = fermi_dirac(energies_h, mu_d_h, self.kt_ev)
            # I_v = (2e/h) int T_h(eps) [f(eps; vd) - f(eps; 0)] deps >= 0
            current += LANDAUER_PREFACTOR_A_PER_EV * float(
                np.trapezoid(trans_h * (f_d_h - f_s_h), energies_h))
            p_tot += dens_h / self._dx
        return current, n_tot, p_tot

    # ------------------------------------------------------------------ #
    # Self-consistent solve
    # ------------------------------------------------------------------ #
    def solve(self, vg: float, vd: float,
              tolerance_ev: float = 1e-3,
              max_iterations: int = 60,
              initial_midgap_ev: np.ndarray | None = None
              ) -> NEGFDeviceResult:
        """Self-consistently solve one bias point.

        ``initial_midgap_ev`` optionally seeds the SCF fixed point with a
        previously converged midgap profile (warm-start continuation for
        bias sweeps).  The converged answer is unchanged within
        ``tolerance_ev``; only the iteration count drops.  Ignored when
        ``REPRO_NO_WARMSTART`` is set.

        A base solve that fails to converge escalates through the
        :func:`repro.negf.scf.scf_escalation` retry ladder (halved
        mixing beta, damped Picard with a larger iteration budget) and,
        for warm-started solves, a final cold rung that discards the
        seed.  Escalations count under ``scf.retries`` /
        ``resilience.retries``; if every rung fails the method keeps its
        historical never-raise contract and returns the last best-effort
        state (``result.scf.converged`` is ``False``).
        """
        # The SCF loop's last solve_charge call is always evaluated at the
        # potential it returns (on convergence it recomputes), so the
        # carriers/current recorded here describe the final state and no
        # extra transport solve is needed afterwards.
        state: dict[str, np.ndarray | float] = {}

        def solve_charge(u: np.ndarray) -> np.ndarray:
            current, n, p = self._transport(u, vd)
            state["current"], state["n"], state["p"] = current, n, p
            return n - p

        def solve_potential(net: np.ndarray) -> np.ndarray:
            return self._solve_poisson_midgap(net, vg, vd)

        warm = (initial_midgap_ev is not None and warmstart_enabled())
        if warm:
            u0 = np.asarray(initial_midgap_ev, dtype=float)
            if u0.shape != self.x_nm.shape:
                raise ValueError(
                    f"initial_midgap_ev has shape {u0.shape}, expected "
                    f"{self.x_nm.shape}")
        else:
            u0 = self._solve_poisson_midgap(np.zeros_like(self.x_nm), vg, vd)
        options = SCFOptions(tolerance_ev=tolerance_ev,
                             max_iterations=max_iterations,
                             mixer=AndersonMixer(beta=0.15, history=6),
                             raise_on_failure=False)
        with obs.span("device.negf_solve", vg=vg, vd=vd):
            scf = self_consistent_loop(solve_charge, solve_potential, u0,
                                       options)
            if not scf.converged:
                rungs = [(name, opts, u0)
                         for name, opts in scf_escalation(options)[1:]]
                if warm:
                    # Last resort: discard the warm-start seed entirely.
                    cold_u0 = self._solve_poisson_midgap(
                        np.zeros_like(self.x_nm), vg, vd)
                    rungs.append(("cold", rungs[-1][1], cold_u0))
                for _name, opts, start in rungs:
                    if obs.ACTIVE:
                        obs.incr("resilience.retries")
                        obs.incr("scf.retries")
                    # raise_on_failure stays False: each rung returns its
                    # best-effort state, and SCFResult guarantees charge/
                    # potential consistency, so the never-raise contract
                    # of this method survives an exhausted ladder.
                    relaxed = SCFOptions(tolerance_ev=opts.tolerance_ev,
                                         max_iterations=opts.max_iterations,
                                         mixer=opts.mixer,
                                         raise_on_failure=False)
                    scf = self_consistent_loop(solve_charge, solve_potential,
                                               start, relaxed)
                    if scf.converged:
                        break
                else:
                    if obs.ACTIVE:
                        obs.incr("resilience.exhausted")
        if obs.ACTIVE:
            obs.incr("device.bias_points")
            if warm:
                obs.incr("scf.warm_starts")
                obs.incr("scf.warm_solves")
                obs.incr("scf.warm_iterations", scf.iterations)
            else:
                obs.incr("scf.cold_solves")
                obs.incr("scf.cold_iterations", scf.iterations)

        u = scf.potential
        if sanitize.ACTIVE:
            op = "NEGFDevice.solve"
            bias = sanitize.format_bias(vg=vg, vd=vd)
            sanitize.check_finite(np.asarray(state["current"]), op,
                                  "drain current", bias=bias)
            sanitize.check_finite(state["n"], op,
                                  "electron density", bias=bias)
            sanitize.check_finite(state["p"], op,
                                  "hole density", bias=bias)
            sanitize.check_finite(u, op, "midgap profile", bias=bias)
        edge = self.modes[0].edge_ev
        return NEGFDeviceResult(
            vg=vg, vd=vd, current_a=float(state["current"]),
            x_nm=self.x_nm.copy(),
            midgap_ev=u, conduction_band_ev=u + edge,
            valence_band_ev=u - edge,
            electron_density_per_nm=state["n"], hole_density_per_nm=state["p"],
            scf=scf)

    def band_profile(self, vg: float, vd: float) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: ``(x, E_C(x))`` of the converged solution."""
        result = self.solve(vg, vd)
        return result.x_nm, result.conduction_band_ev
