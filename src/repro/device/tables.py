"""Device lookup tables: the interface between device and circuit layers.

Section 3 of the paper: "A simulator based on table lookup techniques was
implemented ... The simulator uses the drain current I_D(V_G, V_D) and
channel charge Q(V_G, V_D) computed for the intrinsic GNRFET ... These
values were used to populate a lookup table at discrete voltage steps ...
The intrinsic gate and drain capacitances ... can be computed and stored
in the lookup table by differentiating the channel charge w.r.t V_GS and
V_DS respectively.  Thus, C_GD,i = |dQ/dV_DS| and
C_G,i = C_GS,i + C_GD,i = |dQ/dV_GS|."

A :class:`DeviceTable` holds one intrinsic device (a single ribbon or a
whole multi-ribbon array), supports bilinear interpolation with analytic
derivatives (for circuit Newton iterations), gate work-function offsets
(the paper's V_T engineering knob), source/drain mirroring for negative
V_DS, and composition of per-ribbon tables into array tables (the
mechanism behind the "one of four GNRs affected" variability scenarios).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro import obs
from repro.device.engines import DEFAULT_ENGINE, engine_version, resolve_engine
from repro.device.geometry import GNRFETGeometry
from repro.device.iv import IVSweep, sweep_iv
from repro.errors import TableRangeError
from repro.runtime import (
    ArtifactCache,
    backend_name,
    content_key,
    warmstart_enabled,
)


def _bilinear(axis_x: np.ndarray, axis_y: np.ndarray, grid: np.ndarray,
              x: np.ndarray, y: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bilinear interpolation with analytic partial derivatives.

    Returns ``(value, d/dx, d/dy)``; queries are clamped to the table
    edges (the caller decides whether clamping is acceptable).
    """
    x = np.clip(x, axis_x[0], axis_x[-1])
    y = np.clip(y, axis_y[0], axis_y[-1])
    ix = np.clip(np.searchsorted(axis_x, x) - 1, 0, axis_x.size - 2)
    iy = np.clip(np.searchsorted(axis_y, y) - 1, 0, axis_y.size - 2)
    x0, x1 = axis_x[ix], axis_x[ix + 1]
    y0, y1 = axis_y[iy], axis_y[iy + 1]
    tx = (x - x0) / (x1 - x0)
    ty = (y - y0) / (y1 - y0)
    f00 = grid[ix, iy]
    f10 = grid[ix + 1, iy]
    f01 = grid[ix, iy + 1]
    f11 = grid[ix + 1, iy + 1]
    value = (f00 * (1 - tx) * (1 - ty) + f10 * tx * (1 - ty)
             + f01 * (1 - tx) * ty + f11 * tx * ty)
    dfdx = ((f10 - f00) * (1 - ty) + (f11 - f01) * ty) / (x1 - x0)
    dfdy = ((f01 - f00) * (1 - tx) + (f11 - f10) * tx) / (y1 - y0)
    return value, dfdx, dfdy


@dataclass(frozen=True)
class DeviceTable:
    """Lookup table of one intrinsic device (I and Q vs V_GS, V_DS).

    Attributes
    ----------
    vg, vd:
        Tabulated gate / drain bias axes (V), strictly ascending; ``vd``
        starts at 0 (negative V_DS is served by source/drain mirroring).
    current_a, charge_c:
        Gridded drain current and channel charge, shape
        ``(len(vg), len(vd))``.
    gate_offset_v:
        Gate work-function offset: the device is evaluated at
        ``V_G,internal = V_GS + gate_offset_v``.  Increasing the offset
        shifts the I-V curve left, *decreasing* V_T by the same amount
        (paper Fig. 2b).
    label:
        Human-readable provenance (ribbon index, impurity, ...).
    failures:
        Quarantined sweep cells behind any NaN entries of the grids
        (empty for a clean build; see ``docs/robustness.md``).  Tables
        with failures are never persisted to the artifact cache.
    """

    vg: np.ndarray
    vd: np.ndarray
    current_a: np.ndarray
    charge_c: np.ndarray
    gate_offset_v: float = 0.0
    label: str = ""
    failures: tuple = ()

    def __post_init__(self) -> None:
        vg = np.asarray(self.vg, dtype=float)
        vd = np.asarray(self.vd, dtype=float)
        cur = np.asarray(self.current_a, dtype=float)
        chg = np.asarray(self.charge_c, dtype=float)
        if vg.ndim != 1 or vd.ndim != 1:
            raise ValueError("bias axes must be 1-D")
        if np.any(np.diff(vg) <= 0) or np.any(np.diff(vd) <= 0):
            raise ValueError("bias axes must be strictly ascending")
        if cur.shape != (vg.size, vd.size) or chg.shape != cur.shape:
            raise ValueError("grids must be (len(vg), len(vd))")
        object.__setattr__(self, "vg", vg)
        object.__setattr__(self, "vd", vd)
        object.__setattr__(self, "current_a", cur)
        object.__setattr__(self, "charge_c", chg)
        # Uniform-grid fast path for the (scalar-heavy) circuit engine.
        dvg = np.diff(vg)
        dvd = np.diff(vd)
        uniform = (np.allclose(dvg, dvg[0], rtol=1e-9, atol=1e-12)
                   and np.allclose(dvd, dvd[0], rtol=1e-9, atol=1e-12))
        object.__setattr__(self, "_uniform", bool(uniform))
        object.__setattr__(self, "_vg0", float(vg[0]))
        object.__setattr__(self, "_dvg", float(dvg[0]))
        object.__setattr__(self, "_nvg", int(vg.size))
        object.__setattr__(self, "_vd0", float(vd[0]))
        object.__setattr__(self, "_dvd", float(dvd[0]))
        object.__setattr__(self, "_nvd", int(vd.size))
        object.__setattr__(self, "_cur_list", cur.tolist())
        object.__setattr__(self, "_chg_list", chg.tolist())

    def _scalar_bilinear(self, grid: list, x: float, y: float
                         ) -> tuple[float, float, float]:
        """Pure-Python bilinear evaluation on the uniform grid.

        ~10x faster than the numpy path for the one-point-at-a-time
        queries issued by the circuit Newton loop.
        """
        fx = (x - self._vg0) / self._dvg
        if fx < 0.0:
            fx = 0.0
        elif fx > self._nvg - 1:
            fx = float(self._nvg - 1)
        ix = int(fx)
        if ix > self._nvg - 2:
            ix = self._nvg - 2
        tx = fx - ix

        fy = (y - self._vd0) / self._dvd
        if fy < 0.0:
            fy = 0.0
        elif fy > self._nvd - 1:
            fy = float(self._nvd - 1)
        iy = int(fy)
        if iy > self._nvd - 2:
            iy = self._nvd - 2
        ty = fy - iy

        row0 = grid[ix]
        row1 = grid[ix + 1]
        f00 = row0[iy]
        f01 = row0[iy + 1]
        f10 = row1[iy]
        f11 = row1[iy + 1]
        value = (f00 * (1 - tx) * (1 - ty) + f10 * tx * (1 - ty)
                 + f01 * (1 - tx) * ty + f11 * tx * ty)
        dfdx = ((f10 - f00) * (1 - ty) + (f11 - f01) * ty) / self._dvg
        dfdy = ((f01 - f00) * (1 - tx) + (f11 - f10) * tx) / self._dvd
        return value, dfdx, dfdy

    # --- construction helpers ------------------------------------------------
    @classmethod
    def from_sweep(cls, sweep: IVSweep, label: str = "") -> "DeviceTable":
        """Wrap an :class:`IVSweep` into a table (failures carried over)."""
        return cls(vg=sweep.vg, vd=sweep.vd, current_a=sweep.current_a,
                   charge_c=sweep.charge_c, label=label,
                   failures=tuple(sweep.failures))

    def with_gate_offset(self, offset_v: float) -> "DeviceTable":
        """Same table with a different gate work-function offset."""
        return replace(self, gate_offset_v=float(offset_v))

    def scaled(self, factor: float) -> "DeviceTable":
        """Table with current and charge scaled (e.g. per-ribbon -> array)."""
        return replace(self, current_a=self.current_a * factor,
                       charge_c=self.charge_c * factor)

    @staticmethod
    def compose(tables: list["DeviceTable"], label: str = "") -> "DeviceTable":
        """Sum per-ribbon tables into a multi-ribbon array table.

        "The total current is given by the sum of the currents in the
        GNRs, nominal or otherwise" (paper Sec. 4); charge adds the same
        way.  All inputs must share bias axes and gate offset.
        """
        if not tables:
            raise ValueError("need at least one table to compose")
        first = tables[0]
        for t in tables[1:]:
            if not (np.array_equal(t.vg, first.vg)
                    and np.array_equal(t.vd, first.vd)):
                raise ValueError("cannot compose tables with different axes")
            if t.gate_offset_v != first.gate_offset_v:
                raise ValueError("cannot compose tables with different offsets")
        return DeviceTable(
            vg=first.vg, vd=first.vd,
            current_a=sum(t.current_a for t in tables),
            charge_c=sum(t.charge_c for t in tables),
            gate_offset_v=first.gate_offset_v,
            label=label or "+".join(t.label for t in tables))

    # --- evaluation -----------------------------------------------------------
    def _map_bias(self, vgs, vds):
        """Fold negative V_DS via source/drain mirroring.

        For a source/drain-symmetric device, exchanging the terminals
        maps ``(V_GS, V_DS < 0)`` to ``(V_GS - V_DS, -V_DS)`` with the
        current sign flipped.  (For impurity-asymmetric devices this is an
        approximation, used only for transient excursions below 0 V.)
        """
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        neg = vds < 0.0
        vgs_m = np.where(neg, vgs - vds, vgs)
        vds_m = np.where(neg, -vds, vds)
        sign = np.where(neg, -1.0, 1.0)
        return vgs_m + self.gate_offset_v, vds_m, sign

    def _is_scalar_query(self, vgs, vds) -> bool:
        return (self._uniform and isinstance(vgs, (int, float))
                and isinstance(vds, (int, float)))

    def current(self, vgs: float | np.ndarray,
                vds: float | np.ndarray) -> float | np.ndarray:
        """Drain current (A) at arbitrary bias, bilinear interpolation."""
        if self._is_scalar_query(vgs, vds):
            i, _, _ = self.current_and_derivatives(vgs, vds)
            return i
        vg_i, vd_i, sign = self._map_bias(vgs, vds)
        value, _, _ = _bilinear(self.vg, self.vd, self.current_a, vg_i, vd_i)
        return sign * value

    def current_and_derivatives(
        self, vgs: float | np.ndarray, vds: float | np.ndarray,
    ) -> tuple[float | np.ndarray, float | np.ndarray,
               float | np.ndarray]:
        """``(I, dI/dV_GS, dI/dV_DS)`` with derivatives consistent with
        the mirroring rule (used by the circuit Newton solver)."""
        if self._is_scalar_query(vgs, vds):
            vgs = float(vgs)
            vds = float(vds)
            if vds < 0.0:
                # I(vgs, vds<0) = -f(vgs - vds, -vds)
                v, dx, dy = self._scalar_bilinear(
                    self._cur_list, vgs - vds + self.gate_offset_v, -vds)
                return -v, -dx, dx + dy
            v, dx, dy = self._scalar_bilinear(
                self._cur_list, vgs + self.gate_offset_v, vds)
            return v, dx, dy
        vg_i, vd_i, sign = self._map_bias(vgs, vds)
        value, d_dvg, d_dvd = _bilinear(self.vg, self.vd, self.current_a,
                                        vg_i, vd_i)
        # For vds < 0: I = -f(vgs - vds, -vds)
        #   dI/dvgs = -f_x ;  dI/dvds = f_x + f_y.
        di_dvgs = np.where(sign > 0, d_dvg, -d_dvg)
        di_dvds = np.where(sign > 0, d_dvd, d_dvg + d_dvd)
        return sign * value, di_dvgs, di_dvds

    def charge(self, vgs: float | np.ndarray,
               vds: float | np.ndarray) -> float | np.ndarray:
        """Channel charge (C) at arbitrary bias."""
        if self._is_scalar_query(vgs, vds):
            vgs = float(vgs)
            vds = float(vds)
            if vds < 0.0:
                vgs, vds = vgs - vds, -vds
            v, _, _ = self._scalar_bilinear(
                self._chg_list, vgs + self.gate_offset_v, vds)
            return v
        vg_i, vd_i, _ = self._map_bias(vgs, vds)
        value, _, _ = _bilinear(self.vg, self.vd, self.charge_c, vg_i, vd_i)
        return value

    def capacitances(
        self, vgs: float | np.ndarray, vds: float | np.ndarray,
    ) -> tuple[float | np.ndarray, float | np.ndarray]:
        """Intrinsic ``(C_GS,i, C_GD,i)`` in farads at a bias point.

        Following the paper: ``C_GD,i = |dQ/dV_DS|``,
        ``C_GS,i = |dQ/dV_GS| - |dQ/dV_DS|`` (clamped at zero, since a
        discretized |dQ/dV_GS| can dip below |dQ/dV_DS| near the
        ambipolar turning point).
        """
        if self._is_scalar_query(vgs, vds):
            vgs = float(vgs)
            vds = float(vds)
            if vds < 0.0:
                vgs, vds = vgs - vds, -vds
            _, dq_dvg, dq_dvd = self._scalar_bilinear(
                self._chg_list, vgs + self.gate_offset_v, vds)
            cgd = abs(dq_dvd)
            cgs = abs(dq_dvg) - cgd
            return (cgs if cgs > 0.0 else 0.0), cgd
        vg_i, vd_i, _ = self._map_bias(vgs, vds)
        _, dq_dvg, dq_dvd = _bilinear(self.vg, self.vd, self.charge_c,
                                      vg_i, vd_i)
        cgd = np.abs(dq_dvd)
        cgs = np.clip(np.abs(dq_dvg) - cgd, 0.0, None)
        return cgs, cgd

    def check_range(self, vgs: float | np.ndarray,
                    vds: float | np.ndarray) -> None:
        """Raise :class:`TableRangeError` if a query needs extrapolation."""
        vg_i, vd_i, _ = self._map_bias(vgs, vds)
        if np.any(vg_i < self.vg[0] - 1e-9) or np.any(vg_i > self.vg[-1] + 1e-9):
            raise TableRangeError(
                f"gate bias outside table range [{self.vg[0]}, {self.vg[-1]}]")
        if np.any(vd_i > self.vd[-1] + 1e-9):
            raise TableRangeError(
                f"drain bias outside table range [0, {self.vd[-1]}]")

    # --- persistence -----------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Save to a compressed ``.npz`` file."""
        np.savez_compressed(
            Path(path), vg=self.vg, vd=self.vd, current_a=self.current_a,
            charge_c=self.charge_c, gate_offset_v=self.gate_offset_v,
            label=np.array(self.label))

    @classmethod
    def load(cls, path: str | Path) -> "DeviceTable":
        """Load a table previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(vg=data["vg"], vd=data["vd"],
                       current_a=data["current_a"], charge_c=data["charge_c"],
                       gate_offset_v=float(data["gate_offset_v"]),
                       label=str(data["label"]))


# Default bias grid: the paper tabulates 0..0.75 V; the gate axis is
# extended on both sides so that work-function offsets and transient
# overshoots stay inside the table.
DEFAULT_VG_GRID = np.round(np.arange(-0.40, 1.1001, 0.05), 10)
DEFAULT_VD_GRID = np.round(np.arange(0.0, 0.7501, 0.05), 10)

_TABLE_CACHE: dict[tuple, DeviceTable] = {}

#: Namespace of persisted device tables under the runtime cache root.
TABLE_CACHE_NAMESPACE = "tables"


def table_cache_key(
    geometry: GNRFETGeometry,
    vg_grid: np.ndarray,
    vd_grid: np.ndarray,
    n_modes: int | None,
    engine: str | None = None,
    version: str | None = None,
) -> str:
    """Stable content hash identifying one table build on disk.

    Any change to the geometry (including nested impurity fields), either
    bias grid, the retained mode count, the transport engine, the
    engine version tag, or the active array backend yields a different
    key, so stale artifacts are orphaned, never reused — a mode-space
    table can never collide with a real-space or semianalytic one, and
    tables built by an accelerated backend (``REPRO_BACKEND``) never
    masquerade as reference-numpy ones.  The warm-start state is part
    of the key: continuation moves converged midgaps within the bisection
    tolerance, and a ``REPRO_NO_WARMSTART`` run must not silently reuse
    (or poison) warm-started artifacts.
    """
    engine = resolve_engine(engine)
    if version is None:
        version = engine_version(engine)
    return content_key("device-table", version, engine, backend_name(),
                       geometry, np.asarray(vg_grid, float),
                       np.asarray(vd_grid, float), n_modes,
                       warmstart_enabled())


def _disk_cache() -> ArtifactCache:
    return ArtifactCache(TABLE_CACHE_NAMESPACE)


def _table_from_payload(payload: dict) -> DeviceTable:
    return DeviceTable(vg=payload["vg"], vd=payload["vd"],
                       current_a=payload["current_a"],
                       charge_c=payload["charge_c"],
                       label=str(payload["label"]))


def build_device_table(
    geometry: GNRFETGeometry,
    vg_grid: np.ndarray | None = None,
    vd_grid: np.ndarray | None = None,
    n_modes: int | None = None,
    use_cache: bool = True,  # repro: nokey[RPA601] cache-layer switch, not table content
    workers: int | None = None,  # repro: nokey[RPA601] parallelism degree; rows are bitwise order-independent
    strict: bool | None = None,  # repro: nokey[RPA601] failed cells are never cached (NaN-hole tables skip both layers)
    engine: str | None = None,
) -> DeviceTable:
    """Build (or fetch from cache) one ribbon's table.

    Lookup order: in-process dict, then the persistent on-disk store
    (``~/.cache/repro-gnrfet`` unless ``REPRO_CACHE_DIR``/
    ``REPRO_NO_CACHE`` say otherwise), then a fresh ``sweep_iv`` — fanned
    across ``workers`` processes when requested — whose result is written
    back to both layers.  The cache key includes the full geometry (a
    frozen dataclass), the grids, the mode count and the engine version,
    so variant devices (width, impurity) coexist and physics changes
    invalidate cleanly.  ``use_cache=False`` bypasses both layers.

    ``strict`` is passed through to :func:`~repro.device.iv.sweep_iv`
    (default from ``REPRO_STRICT``).  A non-strict build whose sweep
    quarantined cells returns a table with NaN holes and a non-empty
    ``failures`` tuple; such a table is **not** written to either cache
    layer, so a later build retries the failed cells instead of reusing
    the holes.

    ``engine`` selects the transport engine (see
    :mod:`repro.device.engines`); it is part of both cache keys.
    """
    vg_grid = DEFAULT_VG_GRID if vg_grid is None else np.asarray(vg_grid, float)
    vd_grid = DEFAULT_VD_GRID if vd_grid is None else np.asarray(vd_grid, float)
    engine = resolve_engine(engine)
    key = (geometry, tuple(vg_grid), tuple(vd_grid), n_modes, engine,
           backend_name(), warmstart_enabled())
    if use_cache and key in _TABLE_CACHE:
        if obs.ACTIVE:
            obs.incr("cache.table_memory_hits")
        return _TABLE_CACHE[key]

    disk = _disk_cache() if use_cache else None
    digest = table_cache_key(geometry, vg_grid, vd_grid, n_modes,
                             engine=engine)
    table = None
    if disk is not None:
        payload = disk.get(digest)
        if payload is not None:
            try:
                table = _table_from_payload(payload)
            except (KeyError, ValueError):
                table = None  # corrupt/foreign payload: rebuild
        if table is not None and obs.ACTIVE:
            obs.incr("cache.table_disk_hits")
    if table is None:
        if obs.ACTIVE:
            obs.incr("cache.table_builds")
        with obs.span("device.build_table", n_index=geometry.n_index):
            sweep = sweep_iv(geometry, vg_grid, vd_grid, n_modes=n_modes,
                             workers=workers, strict=strict, engine=engine)
            label = f"N={geometry.n_index}"
            if geometry.impurity is not None and \
                    geometry.impurity.charge_e != 0.0:
                label += f",imp={geometry.impurity.charge_e:+g}q"
            if engine != DEFAULT_ENGINE:
                label += f",engine={engine}"
            table = DeviceTable.from_sweep(sweep, label=label)
        if table.failures:
            # Quarantined holes must not outlive this process: caching a
            # table with NaN cells would turn a transient failure into a
            # permanently poisoned artifact.
            return table
        if disk is not None:
            disk.put(digest, vg=table.vg, vd=table.vd,
                     current_a=table.current_a, charge_c=table.charge_c,
                     label=np.array(table.label))
    if use_cache:
        _TABLE_CACHE[key] = table
    return table


def clear_table_cache(disk: bool = False) -> None:
    """Empty the in-process table cache (mainly for tests).

    ``disk=True`` also clears the persistent on-disk namespace.
    """
    _TABLE_CACHE.clear()
    if disk:
        _disk_cache().clear()
