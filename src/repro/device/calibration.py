"""Calibration anchors: every quantitative statement the paper makes.

The reproduction contract is *shape, not absolute numbers* (our substrate
is a reimplementation, not the authors' testbed), but the fast device
engine has a small number of electrostatic parameters that are not pinned
by first principles (effective gate coupling, natural length, impurity
screening).  Those are calibrated once, here, against the quantitative
anchors the paper states, and every anchor is asserted (with generous
tolerance) in the test suite.

Paper anchors
-------------
Device level (Section 2, Figs. 2, 4, 5):

* A1. N=12, V_D = 0.5 V: I_on / width = 6300 uA/um  (I_on ~ 6.3 uA per
  ribbon at V_G = 0.75 V with W approx 1 nm effective).
* A2. N=12, low V_D: V_T approx 0.3 V by linear extrapolation; a gate
  work-function offset of 0.2 V moves V_T to approx 0.1 V.
* A3. Minimum leakage sits at V_G approx V_D / 2; the drain voltage
  exponentially increases the minimum leakage current.
* A4. N=9: I_on / I_off as high as 1000x at V_D = 0.5 V; N=18's gap is
  too small for low leakage.
* A5. N=18 on-state intrinsic channel capacitance approx 1.5x that of N=9.
* A6. A -2q impurity near the source lowers I_on by about 6x; a +2q
  impurity perturbs the n-branch much less (asymmetry).
* A7. "variation of the channel width by a couple of Angstrom changes the
  leakage current by orders of magnitude" (conclusions).

Circuit level (Sections 3 and 5, Tables 1-4, Figs. 3, 6, 7):

* B1. Nominal FO4 inverter at V_DD = 0.4 V, V_T = 0.13 V: delay 7.54 ps,
  static power 0.095 uW, dynamic power 0.706 uW, SNM 0.15 V.
* B2. 15-stage FO4 ring oscillator: operating point B (V_DD = 0.4,
  V_T = 0.13) approx 3.3 GHz, EDP 22.7 fJ-ps; point A (V_DD = 0.3,
  V_T = 0.06) approx 3 GHz at SNM approx 0.1 V; global EDP optimum near
  (V_DD = 0.15, V_T = 0.08).
* B3. Scaled-CMOS EDP at its own optimum is 40-168x the GNRFET point-B EDP.
* B4. SNM with equal n/p widths increases as width shrinks: 0.17 V (N=9)
  -> 0.09 V (N=18); nominal mismatch-free SNM 0.15 V (N=12).
* B5. Monte Carlo: mean frequency -10%, mean static power +23%, mean
  dynamic power approximately unchanged; nominal f = 3.65 GHz,
  P_dyn = 10.7 uW, P_stat = 1.7 uW for the whole oscillator.
* B6. Latch worst case (n: N=9/+q, p: N=18/-q or mirror): near-zero SNM
  and > 5x static power.

Fitted electrostatic parameters (see :class:`repro.device.geometry.GNRFETGeometry`
defaults) were chosen so the A-anchors hold; the B-anchors then emerge
from the circuit layer without further tuning.
"""

from __future__ import annotations

# Device-level anchors (used by tests/benches; keys match the list above).
PAPER_DEVICE_ANCHORS = {
    "A1_ion_per_um_n12_vd05": 6300e-6,   # A/um
    "A2_vt_nominal_v": 0.30,
    "A2_vt_offset02_v": 0.10,
    "A4_on_off_ratio_n9": 1000.0,
    "A5_cap_ratio_n18_over_n9": 1.5,
    "A6_ion_drop_minus2q": 6.0,
}

# Circuit-level anchors.
PAPER_CIRCUIT_ANCHORS = {
    "B1_delay_ps": 7.54,
    "B1_pstat_uw": 0.095,
    "B1_pdyn_uw": 0.706,
    "B1_snm_v": 0.15,
    "B2_freq_b_ghz": 3.3,
    "B2_edp_b_fj_ps": 22.7,
    "B3_cmos_edp_ratio_min": 40.0,
    "B3_cmos_edp_ratio_max": 168.0,
    "B4_snm_n9_v": 0.17,
    "B4_snm_n18_v": 0.09,
    "B5_mc_freq_shift": -0.10,
    "B5_mc_pstat_shift": +0.23,
}

# Paper Table 1 (CMOS columns), the calibration target of repro.cmos.ptm.
PAPER_TABLE1_CMOS = {
    # node_nm: {vdd: (freq_GHz, edp_fJ_ps, snm_V)}
    22: {0.8: (5.8, 1265.0, 0.30), 0.6: (4.2, 1129.0, 0.23), 0.4: (1.64, 1713.0, 0.16)},
    32: {0.8: (4.5, 2688.0, 0.31), 0.6: (3.4, 2370.0, 0.24), 0.4: (1.4, 3259.0, 0.16)},
    # repro: noqa[RPA201] -- 2.7 is the paper's 45 nm clock in GHz,
    # not the hopping energy.
    45: {0.8: (3.5, 5318.0, 0.32), 0.6: (2.7, 4645.0, 0.25), 0.4: (1.24, 6012.0, 0.17)},  # repro: noqa[RPA201]
}

# Paper Table 1 (GNRFET columns) at operating points A, B, C.
PAPER_TABLE1_GNRFET = {
    "A": {"vdd": 0.3, "vt": 0.06, "freq_ghz": 3.3, "edp_fj_ps": 22.7, "snm_v": 0.09},
    "B": {"vdd": 0.4, "vt": 0.13, "freq_ghz": 3.4, "edp_fj_ps": 27.6, "snm_v": 0.14},
    "C": {"vdd": 0.4, "vt": 0.23, "freq_ghz": 2.5, "edp_fj_ps": 36.8, "snm_v": 0.15},
}
