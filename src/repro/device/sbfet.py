"""Fast semi-analytic ballistic Schottky-barrier GNRFET engine.

This is the production device engine that populates the circuit lookup
tables.  It implements the same physics the paper's NEGF simulation
captures for an ideal ballistic SBFET, at a tiny fraction of the cost:

* **Band structure** — subband edges, masses and two-band velocities come
  from the exact edge-relaxed p_z tight-binding bands
  (:mod:`repro.atomistic`), so the width (index) dependence of everything
  is atomistic, not fitted.
* **Electrostatics** — the channel midgap ``U_ch`` follows the
  top-of-the-barrier model: a Laplace part set by gate/drain capacitive
  coupling plus a charging term ``q (n - p) / C_ins``, solved
  self-consistently (this is what limits the on-current through the
  quantum capacitance).
* **Contacts** — metal source/drain with midgap Fermi-level pinning
  (Schottky barriers ``Phi_Bn = Phi_Bp = E_g/2``, as the paper specifies).
  The contact-induced band bending decays exponentially into the channel
  with the double-gate natural length.
* **Transport** — coherent Landauer current with WKB transmission through
  the classically forbidden (gap) regions, using the two-band imaginary
  dispersion ``kappa(E) = sqrt((E_g/2)^2 - E^2) / (hbar v)``.  Thermionic
  emission, Schottky tunneling, ambipolar conduction (minimum leakage at
  ``V_G ~ V_D/2``) and direct source-drain tunneling all emerge from the
  single energy integral.
* **Charge impurities** — the gate-image-screened Coulomb potential of an
  oxide point charge (:mod:`repro.poisson.pointcharge`) is added to the
  band profile, modulating barrier height and thickness exactly as in the
  paper's Fig. 5(a).

The engine is cross-validated against the reference NEGF + Poisson device
simulator in the test suite and in ``benchmarks/bench_ablation_engines.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs, sanitize
from repro.constants import (
    HBAR_SI,
    LANDAUER_PREFACTOR_A_PER_EV,
    Q_E,
    fermi_dirac,
    thermal_energy_ev,
)
from repro.atomistic.modespace import TransverseMode, transverse_modes
from repro.device.engines import AtomisticTransport, resolve_engine
from repro.device.geometry import GNRFETGeometry, GRAPHENE_THICKNESS_NM
from repro.errors import ConvergenceError
from repro.negf.energy_grid import adaptive_energy_grid
from repro.poisson.pointcharge import screened_impurity_potential_ev
from repro.runtime.accel import warmstart_enabled


@dataclass(frozen=True)
class BiasPoint:
    """One (V_G, V_D) bias point, in volts, source grounded."""

    vg: float
    vd: float


@dataclass(frozen=True)
class SBFETSolution:
    """Self-consistent solution of one bias point (one ribbon).

    Attributes
    ----------
    bias:
        The bias point solved.
    midgap_ev:
        Converged channel midgap energy ``U_ch`` relative to the source
        Fermi level.
    current_a:
        Drain current in amperes (positive from drain to source for
        normal n-branch operation).
    charge_c:
        Net mobile channel charge ``q (n - p)`` integrated along the
        channel, in coulombs (positive when electrons dominate; the
        sign convention only matters through derivatives).
    electron_linear_density_per_nm, hole_linear_density_per_nm:
        Carrier densities at the top of the barrier.
    iterations:
        Bisection iterations used by the electrostatic solve.
    """

    bias: BiasPoint
    midgap_ev: float
    current_a: float
    charge_c: float
    electron_linear_density_per_nm: float
    hole_linear_density_per_nm: float
    iterations: int


class SBFETModel:
    """Fast ballistic SBFET solver for one :class:`GNRFETGeometry`.

    Parameters
    ----------
    geometry:
        Device specification (includes any charge impurity).
    n_modes:
        Number of transverse subbands retained.  ``None`` (default)
        retains every subband whose edge lies below ``mode_cutoff_ev``
        (at least two), so wide ribbons automatically gain the extra
        low-lying subbands responsible for their larger channel
        capacitance (paper anchor A5).
    n_x:
        Transport-grid resolution for the WKB integrals.
    n_k:
        k-grid resolution for the charge integrals.
    mode_cutoff_ev:
        Subband-edge cutoff used when ``n_modes`` is ``None``.
    engine:
        Transport engine computing ``transmission`` (see
        :mod:`repro.device.engines`): ``semianalytic`` (default; the
        WKB kernel below), ``modespace`` (coupled mode-space NEGF on
        the retained subbands) or ``realspace`` (full atomistic NEGF).
        ``None`` defers to ``REPRO_ENGINE``.  The electrostatics
        (bisection, density LUT) are shared by all engines.
    """

    def __init__(self, geometry: GNRFETGeometry, n_modes: int | None = None,
                 n_x: int = 81, n_k: int = 161,
                 mode_cutoff_ev: float = 1.35,
                 engine: str | None = None):
        self.geometry = geometry
        self.engine = resolve_engine(engine)
        if n_modes is None:
            candidates = transverse_modes(geometry.n_index, 6)
            n_modes = max(2, sum(1 for m in candidates
                                 if m.edge_ev < mode_cutoff_ev))
        self.modes: tuple[TransverseMode, ...] = transverse_modes(
            geometry.n_index, n_modes)
        if self.engine == "semianalytic":
            self._atomistic = None
        else:
            # realspace keeps the full orbital basis; modespace retains
            # the same subband count the WKB kernel would sum over.
            self._atomistic = AtomisticTransport(
                self.engine, geometry.n_index, geometry.channel_length_nm,
                n_modes=None if self.engine == "realspace" else n_modes)
        self.kt_ev = thermal_energy_ev(geometry.temperature_k)

        length = geometry.channel_length_nm
        self._x_nm = np.linspace(0.0, length, n_x)
        self._dx_nm = self._x_nm[1] - self._x_nm[0]

        # Per-mode hbar*v in eV nm (converts kappa to 1/nm).
        self._hv_ev_nm = np.array(
            [HBAR_SI * m.velocity_m_per_s / Q_E * 1e9 for m in self.modes])
        self._edges_ev = np.array([m.edge_ev for m in self.modes])

        # k-grids for the charge integral, one per mode, spanning energies
        # up to ~1 eV above each subband edge.
        self._k_grids = []
        for m, hv in zip(self.modes, self._hv_ev_nm):
            e_span = 1.0
            k_max = np.sqrt((m.edge_ev + e_span) ** 2 - m.edge_ev ** 2) / hv
            self._k_grids.append(np.linspace(0.0, k_max, n_k))

        self._impurity_profile_ev = self._build_impurity_profile()
        self._build_density_lut()

    # ------------------------------------------------------------------ #
    # Electrostatics
    # ------------------------------------------------------------------ #
    def _build_impurity_profile(self) -> np.ndarray:
        """Electron-energy shift along the channel from the oxide impurity."""
        imp = self.geometry.impurity
        if imp is None or imp.charge_e == 0.0:
            return np.zeros_like(self._x_nm)
        d = self.geometry.gate_separation_nm
        z_plane = d / 2.0
        z_imp = z_plane + GRAPHENE_THICKNESS_NM / 2.0 + imp.height_nm
        # Clamp inside the stack (a tall "height" would poke into the gate).
        z_imp = min(z_imp, d - 1e-3)
        lateral = np.abs(self._x_nm - imp.position_nm)
        u = screened_impurity_potential_ev(
            imp.charge_e, lateral, impurity_height_nm=z_imp,
            gate_separation_nm=d, eps_r=self.geometry.eps_ox,
            plane_height_nm=z_plane)
        return self.geometry.impurity_screening * u

    def laplace_midgap_ev(self, vg: float, vd: float) -> float:
        """Channel midgap in the zero-charge (Laplace) limit."""
        g = self.geometry
        return -g.gate_coupling * vg - g.drain_coupling * vd

    def band_profile_midgap_ev(self, u_ch_ev: float, vd: float) -> np.ndarray:
        """Midgap energy along the channel for a given channel level.

        Contact-induced band bending is exponential with the natural
        length; the source interface midgap is pinned at the source Fermi
        level (0) and the drain interface at ``-V_D`` (midgap pinning with
        barriers E_g/2 for both carriers).
        """
        lam = self.geometry.natural_length_nm
        x = self._x_nm
        length = self.geometry.channel_length_nm
        profile = (u_ch_ev
                   + (0.0 - u_ch_ev) * np.exp(-x / lam)
                   + (-vd - u_ch_ev) * np.exp(-(length - x) / lam))
        return profile + self._impurity_profile_ev

    def _build_density_lut(self) -> None:
        """Tabulate equilibrium carrier densities vs midgap level.

        With a single chemical potential ``mu``, the densities depend
        only on ``u - mu`` (the Fermi factor sees ``E(k) + u - mu``), so
        one equilibrium table ``n0(u)`` / ``p0(u)`` at ``mu = 0`` serves
        every bias: the ballistic two-contact filling is the average of
        two shifted lookups.  This turns the inner loop of the
        electrostatic bisection into two ``np.interp`` calls.
        """
        u_grid = np.linspace(-3.0, 3.0, 2401)
        n0 = np.zeros_like(u_grid)
        p0 = np.zeros_like(u_grid)
        for mode, hv, ks in zip(self.modes, self._hv_ev_nm, self._k_grids):
            e_k = np.sqrt(mode.edge_ev ** 2 + (hv * ks) ** 2)  # (nk,)
            e_cond = u_grid[:, None] + e_k[None, :]
            e_val = u_grid[:, None] - e_k[None, :]
            f_cond = fermi_dirac(e_cond, 0.0, self.kt_ev)
            f_val = fermi_dirac(e_val, 0.0, self.kt_ev)
            # n = (2/pi) int dk f(E(k)); spin x2, +-k folded in.
            n0 += (2.0 / np.pi) * np.trapezoid(f_cond, ks, axis=1)
            p0 += (2.0 / np.pi) * np.trapezoid(1.0 - f_val, ks, axis=1)
        self._lut_u = u_grid
        self._lut_n0 = n0
        self._lut_p0 = p0

    def _densities_at_level(self, u_ev: np.ndarray, mu_s_ev: float,
                            mu_d_ev: float) -> tuple[np.ndarray, np.ndarray]:
        """Electron/hole linear densities (1/nm) for midgap level(s) ``u``.

        Ballistic filling: half the states populated from each contact
        (+k from source, -k from drain), i.e. the average Fermi factor,
        served from the equilibrium lookup table.
        """
        u = np.atleast_1d(np.asarray(u_ev, dtype=float))
        n = 0.5 * (np.interp(u - mu_s_ev, self._lut_u, self._lut_n0)
                   + np.interp(u - mu_d_ev, self._lut_u, self._lut_n0))
        p = 0.5 * (np.interp(u - mu_s_ev, self._lut_u, self._lut_p0)
                   + np.interp(u - mu_d_ev, self._lut_u, self._lut_p0))
        return n, p

    def solve_midgap_ev(self, vg: float, vd: float,
                        tol_ev: float = 1e-6,
                        max_iter: int = 80,
                        initial_guess_ev: float | None = None
                        ) -> tuple[float, int]:
        """Self-consistent channel midgap by bisection.

        The residual ``r(U) = U - U_L - q (n(U) - p(U)) / C_ins`` is
        strictly increasing in ``U`` (raising the bands empties electrons
        and adds holes), so the root is unique and bisection cannot fail
        once bracketed.

        ``initial_guess_ev`` optionally warm-starts the bracket from a
        previously converged midgap of an adjacent bias point: bisection
        halves a bracket width of 3 eV down to ``tol_ev``, so a tight
        bracket around the guess saves most of the iterations when the
        root moved by only one sweep step.  The bracket is expanded
        geometrically around the guess if the root escaped it, falling
        back to the cold bracket, so the returned root is the same one
        (within ``tol_ev``) with or without the guess.
        """
        u_laplace = self.laplace_midgap_ev(vg, vd)
        c_ins = self.geometry.insulator_capacitance_f_per_nm
        mu_s, mu_d = 0.0, -vd

        def residual(u: float) -> float:
            n, p = self._densities_at_level(np.array([u]), mu_s, mu_d)
            charging = Q_E * (n[0] - p[0]) / c_ins  # volts == eV here
            return u - u_laplace - charging

        lo = hi = None
        if initial_guess_ev is not None:
            w = max(8.0 * tol_ev, 0.008)
            g_lo, g_hi = initial_guess_ev - w, initial_guess_ev + w
            for _ in range(4):
                if residual(g_lo) <= 0.0 and residual(g_hi) >= 0.0:
                    lo, hi = g_lo, g_hi
                    break
                w *= 4.0
                g_lo, g_hi = initial_guess_ev - w, initial_guess_ev + w
            # else: guess bracket never captured the root — cold start.

        if lo is None or hi is None:
            lo, hi = u_laplace - 1.5, u_laplace + 1.5
            r_lo, r_hi = residual(lo), residual(hi)
            expand = 0
            while r_lo > 0.0 or r_hi < 0.0:
                lo -= 1.0
                hi += 1.0
                r_lo, r_hi = residual(lo), residual(hi)
                expand += 1
                if expand > 5:
                    raise ConvergenceError(
                        f"cannot bracket electrostatic solution at "
                        f"VG={vg}, VD={vd}",
                        context={"solver": "sbfet_bisection",
                                 "stage": "bracket",
                                 "vg": float(vg), "vd": float(vd),
                                 "n_index": self.geometry.n_index})

        for iteration in range(1, max_iter + 1):
            mid = 0.5 * (lo + hi)
            r_mid = residual(mid)
            if r_mid > 0.0:
                hi = mid
            else:
                lo = mid
            if hi - lo < tol_ev:
                return 0.5 * (lo + hi), iteration
        raise ConvergenceError(
            f"electrostatic bisection stalled at VG={vg}, VD={vd}",
            iterations=max_iter, residual=hi - lo,
            context={"solver": "sbfet_bisection", "stage": "bisect",
                     "vg": float(vg), "vd": float(vd),
                     "tol_ev": float(tol_ev), "max_iter": int(max_iter),
                     "n_index": self.geometry.n_index})

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def transmission(self, energies_ev: np.ndarray,
                     profile_midgap_ev: np.ndarray) -> np.ndarray:
        """WKB transmission summed over modes, shape ``(n_energy,)``.

        Each mode carries two independent WKB channels:

        * the **electron channel** propagates where ``E > E_C(x)``, decays
          with the two-band ``kappa`` inside the local gap, and decays at
          the maximal midgap rate ``E_n / (hbar v)`` where the energy dips
          below the local valence edge (a conduction state has no
          propagating continuation there; treating that region as
          transmitting would amount to unphysical interband transparency
          through tall barrier bumps, which the paper's atomistic NEGF
          does not show);
        * the **hole channel** is the mirror image.

        A mode transmits through whichever channel survives better
        (interband mixing is neglected), and modes add as independent
        Landauer channels.

        When a NEGF engine is selected (``engine=`` / ``REPRO_ENGINE``),
        the WKB evaluation below is replaced by the corresponding
        atomistic kernel on the same profile; everything upstream
        (electrostatics, energy grids, current integral) is shared.
        """
        if self._atomistic is not None:
            if obs.ACTIVE:
                obs.incr(f"device.engine.{self.engine}")
            total = self._atomistic.transmission(
                energies_ev, profile_midgap_ev, self._x_nm)
            if sanitize.ACTIVE:
                sanitize.check_transmission(
                    total, 2 * self.geometry.n_index,
                    "SBFETModel.transmission",
                    energies_ev=np.asarray(energies_ev, dtype=float))
            return total
        e = np.asarray(energies_ev, dtype=float)[:, None]
        u = np.asarray(profile_midgap_ev, dtype=float)[None, :]
        # Interior midgap level and impurity-induced well depths for the
        # quantum-reflection correction (WKB alone is transparent to
        # attractive wells, which would overstate the benefit of
        # favourable impurities; see _well_factor).
        u_interior = float(np.median(u))
        imp = self._impurity_profile_ev
        well_e = max(0.0, -float(imp.min()))   # electron well (positive charge)
        well_h = max(0.0, float(imp.max()))    # hole well (negative charge)

        total = np.zeros(e.shape[0])
        for edge, hv in zip(self._edges_ev, self._hv_ev_nm):
            delta = e - u
            kappa_gap = np.sqrt(np.clip(edge ** 2 - delta ** 2, 0.0, None)) / hv
            kappa_max = edge / hv
            above_cond = delta > edge
            below_val = delta < -edge
            kappa_e = np.where(above_cond, 0.0,
                               np.where(below_val, kappa_max, kappa_gap))
            kappa_h = np.where(below_val, 0.0,
                               np.where(above_cond, kappa_max, kappa_gap))
            exp_e = 2.0 * np.trapezoid(kappa_e, dx=self._dx_nm, axis=1)
            exp_h = 2.0 * np.trapezoid(kappa_h, dx=self._dx_nm, axis=1)
            t_e = np.exp(-np.clip(exp_e, 0.0, 200.0))
            t_h = np.exp(-np.clip(exp_h, 0.0, 200.0))
            if well_e > 0.0:
                t_e = t_e * self._well_factor(
                    e[:, 0] - u_interior, edge, hv, well_e)
            if well_h > 0.0:
                t_h = t_h * self._well_factor(
                    -(e[:, 0] - u_interior), edge, hv, well_h)
            total += np.maximum(t_e, t_h)
        if sanitize.ACTIVE:
            sanitize.check_transmission(total, len(self.modes),
                                        "SBFETModel.transmission",
                                        energies_ev=e[:, 0])
        return total

    @staticmethod
    def _well_factor(delta_ev: np.ndarray, edge_ev: float, hv_ev_nm: float,
                     well_depth_ev: float) -> np.ndarray:
        """Quantum-reflection factor of an impurity-induced potential well.

        WKB transmits attractive wells perfectly, but a nanometre-scale
        well (comparable to the carrier wavelength) reflects through
        wave-vector mismatch at its walls.  The well is treated as two
        abrupt steps composed incoherently: per step
        ``t = 4 k1 k2 / (k1 + k2)^2`` with the two-band wave vectors in
        the channel interior (``k1``) and at the well bottom (``k2``);
        total ``T = t / (2 - t)``.  Applied only to energies that
        propagate in the channel interior (tunneling energies are already
        handled by the decay exponent).
        """
        d1 = np.asarray(delta_ev, dtype=float)
        k1 = np.sqrt(np.clip(d1 ** 2 - edge_ev ** 2, 0.0, None)) / hv_ev_nm
        propagating = d1 > edge_ev
        d2 = d1 + well_depth_ev
        k2 = np.sqrt(np.clip(d2 ** 2 - edge_ev ** 2, 0.0, None)) / hv_ev_nm
        with np.errstate(divide="ignore", invalid="ignore"):
            t_step = np.where((k1 > 0) & (k2 > 0),
                              4.0 * k1 * k2 / (k1 + k2) ** 2, 1.0)
        t_well = t_step / (2.0 - t_step)
        return np.where(propagating, t_well, 1.0)

    def _current_energy_grid(self, u_ch_ev: float, vd: float) -> np.ndarray:
        window = 12.0 * self.kt_ev
        e_min = min(-vd, 0.0) - window
        e_max = max(-vd, 0.0) + window
        features = [0.0, -vd]
        for edge in self._edges_ev:
            features += [u_ch_ev + edge, u_ch_ev - edge]
        features = [f for f in features if e_min <= f <= e_max]
        return adaptive_energy_grid(e_min, e_max, features,
                                    coarse_step_ev=4e-3, fine_step_ev=8e-4)

    def current_a(self, u_ch_ev: float, vd: float) -> float:
        """Landauer current at a converged channel level."""
        if abs(vd) < 1e-12:
            return 0.0
        profile = self.band_profile_midgap_ev(u_ch_ev, vd)
        energies = self._current_energy_grid(u_ch_ev, vd)
        t = self.transmission(energies, profile)
        f_s = fermi_dirac(energies, 0.0, self.kt_ev)
        f_d = fermi_dirac(energies, -vd, self.kt_ev)
        return LANDAUER_PREFACTOR_A_PER_EV * float(
            np.trapezoid(t * (f_s - f_d), energies))

    def channel_charge_c(self, u_ch_ev: float, vd: float) -> float:
        """Net mobile charge ``q (n - p)`` integrated along the channel."""
        profile = self.band_profile_midgap_ev(u_ch_ev, vd)
        n_x, p_x = self._densities_at_level(profile, 0.0, -vd)
        return Q_E * float(np.trapezoid(n_x - p_x, self._x_nm))

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def solve_bias(self, vg: float, vd: float,
                   initial_midgap_ev: float | None = None,
                   max_iter: int = 80) -> SBFETSolution:
        """Solve one bias point self-consistently and return all outputs.

        ``initial_midgap_ev`` warm-starts the electrostatic bisection from
        an adjacent bias point's converged midgap (see
        :meth:`solve_midgap_ev`); ignored when ``REPRO_NO_WARMSTART`` is
        set.  ``max_iter`` bounds the bisection and is raised by the
        retry ladder of :func:`repro.device.iv.solve_cell_resilient`.
        """
        warm = (initial_midgap_ev is not None and warmstart_enabled())
        u_ch, iterations = self.solve_midgap_ev(
            vg, vd, max_iter=max_iter,
            initial_guess_ev=initial_midgap_ev if warm else None)
        if obs.ACTIVE:
            # The bisection is this engine's SCF: emit the same counter
            # family as the NEGF loop so rollups cover both engines.
            obs.incr("device.bias_points")
            obs.incr("scf.solves")
            obs.incr("scf.converged")
            obs.incr("scf.iterations", iterations)
            obs.observe("scf.iterations_to_converge", iterations)
            if warm:
                obs.incr("scf.warm_starts")
                obs.incr("scf.warm_solves")
                obs.incr("scf.warm_iterations", iterations)
            else:
                obs.incr("scf.cold_solves")
                obs.incr("scf.cold_iterations", iterations)
        n, p = self._densities_at_level(np.array([u_ch]), 0.0, -vd)
        current = self.current_a(u_ch, vd)
        charge = self.channel_charge_c(u_ch, vd)
        if sanitize.ACTIVE:
            op = "SBFETModel.solve_bias"
            bias = sanitize.format_bias(vg=vg, vd=vd)
            sanitize.check_finite(np.array([u_ch, current, charge,
                                            n[0], p[0]]),
                                  op, "bias-point solution", bias=bias)
        return SBFETSolution(
            bias=BiasPoint(vg=vg, vd=vd),
            midgap_ev=u_ch,
            current_a=current,
            charge_c=charge,
            electron_linear_density_per_nm=float(n[0]),
            hole_linear_density_per_nm=float(p[0]),
            iterations=iterations,
        )

    def current_at(self, vg: float, vd: float) -> float:
        """Convenience: self-consistent drain current at one bias point."""
        u_ch, _ = self.solve_midgap_ev(vg, vd)
        return self.current_a(u_ch, vd)
