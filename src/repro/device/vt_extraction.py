"""Threshold-voltage extraction by linear extrapolation.

The paper extracts V_T "using traditional V_T extraction methods for MOS
devices from the I-V data": at low drain voltage, the tangent to the
I_D(V_G) curve at the point of maximum transconductance is extrapolated to
zero current; the V_G-axis intercept is the threshold voltage (less half
the drain voltage, a correction that is negligible at V_D = 50 mV and is
included here for completeness).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


def extract_vt_linear(
    vg: np.ndarray,
    current_a: np.ndarray,
    vd: float = 0.0,
    branch: str = "electron",
) -> float:
    """Linear-extrapolation threshold voltage.

    Parameters
    ----------
    vg, current_a:
        Gate sweep and drain current at fixed, low ``vd``.
    branch:
        ``"electron"`` extracts the n-type threshold from the high-V_G
        (electron conduction) side; ``"hole"`` mirrors the sweep to
        extract the p-branch threshold of the ambipolar device.

    Returns
    -------
    The gate voltage where the maximum-transconductance tangent crosses
    zero current, minus ``vd / 2``.
    """
    vg = np.asarray(vg, dtype=float)
    current = np.asarray(current_a, dtype=float)
    if vg.shape != current.shape or vg.size < 4:
        raise ValueError("need matching vg/current arrays with >= 4 points")
    if branch == "hole":
        vg = -vg[::-1]
        current = current[::-1]
    elif branch != "electron":
        raise ValueError(f"branch must be 'electron' or 'hole', got {branch!r}")

    # Transconductance on the electron branch only: restrict to the region
    # right of the ambipolar minimum so the hole branch cannot win.
    i_min = int(np.argmin(np.abs(current)))
    v = vg[i_min:]
    i = np.abs(current[i_min:])
    if v.size < 3:
        raise AnalysisError("no electron branch right of the current minimum")

    gm = np.gradient(i, v)
    idx = int(np.argmax(gm))
    slope = gm[idx]
    if slope <= 0.0:
        raise AnalysisError("non-positive peak transconductance; "
                            "cannot extrapolate a threshold")
    vt = v[idx] - i[idx] / slope - vd / 2.0
    return float(vt)
