"""Device specification: geometry, electrostatic parameters, impurities.

The simulated device follows Section 2 of the paper: a 15 nm-long
armchair-edge GNR channel, double-gate geometry through 1.5 nm SiO2
(eps_r = 3.9), metallic source/drain with Schottky barriers of half the
channel band gap, operating as a Schottky-barrier FET.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.constants import (
    EPS_0_F_PER_NM,
    EPS_SIO2,
    ROOM_TEMPERATURE_K,
    gnr_width_nm,
)
from repro.atomistic.bandstructure import band_gap_ev
from repro.atomistic.lattice import is_semiconducting_index
from repro.errors import InvalidDeviceError

#: Effective electrostatic thickness of a graphene monolayer (interlayer
#: spacing of graphite), used for the natural-length estimate.
GRAPHENE_THICKNESS_NM = 0.35


@dataclass(frozen=True)
class ChargeImpurity:
    """A fixed Coulomb charge in the gate oxide.

    The paper places the impurity "near the source and at a distance of
    0.4 nm from the GNR surface" to exaggerate its effect on the Schottky
    barrier, and varies both polarity and magnitude (+-q, +-2q).

    Attributes
    ----------
    charge_e:
        Signed charge in units of the elementary charge (e.g. ``-2.0``).
    position_nm:
        Position along the channel measured from the source contact.
    height_nm:
        Distance from the GNR surface into the oxide.
    """

    charge_e: float
    position_nm: float = 1.0
    height_nm: float = 0.4

    def __post_init__(self) -> None:
        if self.height_nm <= 0.0:
            raise InvalidDeviceError(
                f"impurity height must be positive, got {self.height_nm}")
        if self.position_nm < 0.0:
            raise InvalidDeviceError(
                f"impurity position must be >= 0, got {self.position_nm}")

    def mirrored(self) -> "ChargeImpurity":
        """The impurity as seen by the complementary (p-type) device.

        The paper notes: "a +q charge has the same effect on a pGNRFET
        device as a -q charge has on an nGNRFET device, and vice versa."
        Electron-hole mirroring flips the charge sign.
        """
        return replace(self, charge_e=-self.charge_e)


@dataclass(frozen=True)
class GNRFETGeometry:
    """Complete specification of one intrinsic GNRFET ribbon.

    Geometric and material parameters mirror the paper; the last three
    fields are effective electrostatic parameters of the fast SBFET engine
    calibrated against the paper's device anchors (see
    :mod:`repro.device.calibration`).

    Attributes
    ----------
    n_index:
        A-GNR index of the channel ribbon (paper: N = 9 ... 18, nominal 12).
    channel_length_nm:
        Gated channel length (paper: 15 nm).
    oxide_thickness_nm:
        Gate insulator thickness per side, double-gate (paper: 1.5 nm SiO2).
    eps_ox:
        Relative permittivity of the gate insulator.
    temperature_k:
        Lattice/contact temperature.
    impurity:
        Optional oxide charge impurity.
    gate_coupling:
        Fraction of the gate voltage dropped onto the channel midgap in
        the Laplace (zero-charge) limit; < 1 from capacitive division in
        the double-gate stack.
    drain_coupling:
        DIBL-like fractional coupling of the drain onto the channel.
    natural_length_nm:
        Exponential decay length of the contact-induced band bending
        (the double-gate natural length sqrt(eps_ch t_ch t_ox / (2 eps_ox))
        is ~0.6 nm for this stack; the calibrated value absorbs fringing).
    impurity_screening:
        Multiplicative factor < 1 applied to the gate-image-screened
        impurity potential to account for the additional screening by the
        channel's own carriers and the nearby source metal, which the
        image construction (grounded gates only) does not capture.
    """

    n_index: int = 12
    channel_length_nm: float = 15.0
    oxide_thickness_nm: float = 1.5
    eps_ox: float = EPS_SIO2
    temperature_k: float = ROOM_TEMPERATURE_K
    impurity: ChargeImpurity | None = None
    gate_coupling: float = 0.96
    drain_coupling: float = 0.02
    natural_length_nm: float = 0.9
    impurity_screening: float = 1.0

    def __post_init__(self) -> None:
        if not is_semiconducting_index(self.n_index):
            # 3q+2 ribbons have a tiny gap; the paper excludes them.  They
            # are still simulatable, but flag obviously invalid indices.
            if self.n_index < 2:
                raise InvalidDeviceError(f"invalid GNR index {self.n_index}")
        if self.channel_length_nm <= 0.0:
            raise InvalidDeviceError("channel length must be positive")
        if self.oxide_thickness_nm <= 0.0:
            raise InvalidDeviceError("oxide thickness must be positive")
        if not 0.0 < self.gate_coupling <= 1.0:
            raise InvalidDeviceError("gate coupling must be in (0, 1]")
        if not 0.0 <= self.drain_coupling < 1.0:
            raise InvalidDeviceError("drain coupling must be in [0, 1)")
        if self.natural_length_nm <= 0.0:
            raise InvalidDeviceError("natural length must be positive")
        if not 0.0 < self.impurity_screening <= 1.0:
            raise InvalidDeviceError("impurity screening must be in (0, 1]")

    # --- derived quantities -------------------------------------------------
    @property
    def width_nm(self) -> float:
        """Physical channel ribbon width."""
        return gnr_width_nm(self.n_index)

    @property
    def band_gap_ev(self) -> float:
        """Tight-binding band gap of the channel ribbon."""
        return band_gap_ev(self.n_index)

    @property
    def schottky_barrier_ev(self) -> float:
        """Electron (= hole) Schottky barrier height, E_g / 2 per the paper."""
        return 0.5 * self.band_gap_ev

    @property
    def gate_separation_nm(self) -> float:
        """Distance between the two gate planes of the double gate."""
        return 2.0 * self.oxide_thickness_nm + GRAPHENE_THICKNESS_NM

    @property
    def insulator_capacitance_f_per_nm(self) -> float:
        """Double-gate insulator capacitance per unit channel length.

        Parallel-plate estimate ``2 eps_ox eps_0 W_eff / t_ox`` with the
        effective electrostatic width taken as the ribbon width plus one
        oxide thickness of fringing per side (a standard fringing-field
        allowance for nanoribbon/nanowire channels).
        """
        w_eff = self.width_nm + self.oxide_thickness_nm
        return 2.0 * self.eps_ox * EPS_0_F_PER_NM * w_eff / self.oxide_thickness_nm

    def natural_length_theoretical_nm(self, eps_channel: float = 6.0) -> float:
        """Textbook double-gate natural length (for comparison with the
        calibrated ``natural_length_nm``)."""
        return math.sqrt(eps_channel * GRAPHENE_THICKNESS_NM
                         * self.oxide_thickness_nm / (2.0 * self.eps_ox))

    def with_impurity(self, impurity: ChargeImpurity | None) -> "GNRFETGeometry":
        """Copy of this geometry with a different impurity."""
        return replace(self, impurity=impurity)

    def with_index(self, n_index: int) -> "GNRFETGeometry":
        """Copy of this geometry with a different ribbon index."""
        return replace(self, n_index=n_index)
