"""GNRFET device layer: geometry, device engines, I-V sweeps, lookup tables.

Several transport engines produce the intrinsic ``I_D(V_G, V_D)`` /
``Q(V_G, V_D)`` data that the circuit layer consumes — selected per call
or via ``REPRO_ENGINE`` (see :mod:`repro.device.engines`):

* :mod:`repro.device.sbfet` — fast semi-analytic ballistic Schottky-barrier
  FET engine (two-band WKB tunneling + Landauer transport with
  self-consistent top-of-barrier electrostatics).  This is the default
  production path for populating circuit lookup tables.
* :mod:`repro.device.negf_modespace` — coupled mode-space NEGF: the
  atomistic Hamiltonian projected onto the lowest transverse subbands,
  run through the energy-batched Sancho-Rubio/RGF kernels on reduced
  blocks (engine name ``modespace``).
* :mod:`repro.device.negf_realspace` — full atomistic p_z NEGF transport
  (engine name ``realspace``), the slow reference, and the only engine
  for transversely non-uniform disorder (edge roughness).
* :mod:`repro.device.negf_device` — the reference self-consistent
  NEGF + Poisson simulator (mode-space RGF transport on a 2-D electrostatic
  cross-section), used for physics validation and the impurity band-profile
  study (paper Fig. 5a).

All engines share the same atomistic band-structure inputs and the same
:class:`~repro.device.geometry.GNRFETGeometry` specification.
"""

from repro.device.geometry import GNRFETGeometry, ChargeImpurity
from repro.device.engines import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    ENGINES,
    AtomisticTransport,
    engine_version,
    resolve_engine,
)
from repro.device.sbfet import SBFETModel, BiasPoint, SBFETSolution
from repro.device.iv import IVSweep, sweep_iv
from repro.device.tables import DeviceTable, build_device_table
from repro.device.vt_extraction import extract_vt_linear
from repro.device.negf_device import NEGFDevice, NEGFDeviceResult
from repro.device.negf_modespace import ModeSpaceGNRDevice, reduced_lead_blocks
from repro.device.negf_realspace import (
    RealSpaceGNRDevice,
    RealSpaceTransport,
    ideal_transmission_staircase,
    longitudinal_onsite,
    rough_edge_onsite,
)

__all__ = [
    "AtomisticTransport",
    "DEFAULT_ENGINE",
    "ENGINE_ENV",
    "ENGINES",
    "ModeSpaceGNRDevice",
    "RealSpaceGNRDevice",
    "RealSpaceTransport",
    "engine_version",
    "ideal_transmission_staircase",
    "longitudinal_onsite",
    "reduced_lead_blocks",
    "resolve_engine",
    "rough_edge_onsite",
    "GNRFETGeometry",
    "ChargeImpurity",
    "SBFETModel",
    "BiasPoint",
    "SBFETSolution",
    "IVSweep",
    "sweep_iv",
    "DeviceTable",
    "build_device_table",
    "extract_vt_linear",
    "NEGFDevice",
    "NEGFDeviceResult",
]
