"""Coupled mode-space NEGF transport through a GNR segment.

The real-space engine (:mod:`repro.device.negf_realspace`) carries all
``2N`` p_z orbitals of every unit cell through the RGF recurrences.  For
potentials that are smooth across the ribbon width — the regime of every
self-consistent device profile in this repo — most of those orbitals are
spectators: transport near the gap lives in the few lowest transverse
subbands.  Following the coupled mode-space method of Zhao-Guo
(arXiv:0902.4621), this engine projects the Hamiltonian onto the
invariant-subspace basis of :func:`repro.atomistic.modespace.\
transverse_mode_basis` and runs the *same* energy-batched
Sancho-Rubio/RGF kernels on the reduced ``m x m`` blocks
(``m ~ 2 n_modes`` instead of ``2N``), an ``(2N / m)^3``-ish win per
solve.

Accuracy contract
-----------------
* The basis block-diagonalizes the *uniform-hopping* lead exactly at
  every wave vector, and a transversely uniform per-cell potential
  projects exactly (``U^T (H + u I) U = U^T H U + u I``).
* Edge-bond relaxation acquires a truncated coupling to the discarded
  blocks; with the default relaxation (0.12) the full-band transmission
  error is at the few-percent level for ``n_modes`` covering the
  transport window, and vanishes to round-off at full rank
  (``n_modes=None``) — the cross-engine parity suite pins both.
* Transversely *non-uniform* disorder (edge vacancies) breaks mode
  decoupling by construction; the real-space engine remains the
  reference there, as Ouyang-Yoon-Guo (arXiv:0704.2261) motivate.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.constants import EDGE_RELAXATION, T_HOPPING_EV
from repro.atomistic.hamiltonian import cached_unit_cell_hamiltonian
from repro.atomistic.lattice import ArmchairGNR
from repro.atomistic.modespace import ModeBasis, transverse_mode_basis
from repro.device.negf_realspace import RealSpaceTransport
from repro.errors import InvalidDeviceError
from repro.negf.greens import (
    recursive_greens_function,
    rgf_transmission_batched,
)
from repro.negf.self_energy import (
    resilient_surface_gf,
    resilient_surface_gf_batched,
    self_energy_from_surface_gf,
)


@lru_cache(maxsize=64)
def reduced_lead_blocks(
    n_index: int,
    n_modes: int | None,
    hopping_ev: float = T_HOPPING_EV,
    edge_relaxation: float = EDGE_RELAXATION,
) -> tuple[np.ndarray, np.ndarray]:
    """Memoized mode-space lead blocks ``(U^T H00 U, U^T H01 U)``.

    ``H00``/``H01`` are the edge-relaxed unit-cell blocks; ``U`` retains
    enough invariant-subspace blocks of the uniform lead to cover
    ``n_modes`` subbands (``None`` keeps every block).  Cached because
    sweep drivers rebuild engines per bias point; the returned arrays
    are read-only.
    """
    basis = transverse_mode_basis(n_index, hopping_ev)
    u = basis.projector(n_modes)
    h00, h01 = cached_unit_cell_hamiltonian(
        n_index, hopping_ev=hopping_ev, edge_relaxation=edge_relaxation)
    r00 = u.T @ h00 @ u
    r01 = u.T @ h01 @ u
    r00.setflags(write=False)
    r01.setflags(write=False)
    return r00, r01


class ModeSpaceGNRDevice:
    """Mode-space NEGF device: reduced GNR segment + reduced GNR leads.

    API-compatible with :class:`~repro.device.negf_realspace.\
RealSpaceGNRDevice` (``diagonal`` / ``coupling`` blocks,
    ``transmission_at``, ``lead_self_energies[_batched]``,
    ``transport`` returning a
    :class:`~repro.device.negf_realspace.RealSpaceTransport`).

    Parameters
    ----------
    n_index:
        A-GNR index of channel and leads.
    n_cells:
        Device length in unit cells (one cell = 0.426 nm).
    onsite_ev:
        Potential: a scalar, a per-cell profile (length ``n_cells``,
        uniform across the width — projects exactly, blocks stay
        decoupled), or a per-atom array (length ``2 n_index *
        n_cells``, cell-major as in :func:`~repro.device.\
negf_realspace.longitudinal_onsite`).  A transversely *non-uniform*
        per-atom potential (edge vacancies, impurities) is projected as
        ``U^T diag(u) U`` — the inter-mode coupling this generates is
        what makes the method *coupled* mode space; it is exact at full
        rank and truncated (real space stays the reference) otherwise.
    n_modes:
        Transverse subbands to retain (whole invariant blocks are kept,
        so the reduced rank is ``>= 2 n_modes``); ``None`` retains the
        full rank, reproducing real-space transport to round-off.
    lead_onsite_ev:
        Rigid potential shifts ``(source, drain)`` of the two
        semi-infinite leads (e.g. the endpoints of a device profile).
    """

    def __init__(self, n_index: int, n_cells: int,
                 onsite_ev: np.ndarray | float = 0.0,
                 n_modes: int | None = None,
                 hopping_ev: float = T_HOPPING_EV,
                 edge_relaxation: float = EDGE_RELAXATION,
                 lead_onsite_ev: tuple[float, float] = (0.0, 0.0)):
        if n_cells < 1:
            raise InvalidDeviceError("device needs at least one cell")
        self.ribbon = ArmchairGNR(n_index, n_cells=n_cells)
        self.hopping_ev = hopping_ev
        self.edge_relaxation = edge_relaxation
        self.n_modes = n_modes
        self.lead_onsite_ev = (float(lead_onsite_ev[0]),
                               float(lead_onsite_ev[1]))

        self._r00, self._r01 = reduced_lead_blocks(
            n_index, n_modes, hopping_ev, edge_relaxation)
        self.n_retained = self._r00.shape[0]

        onsite = np.asarray(onsite_ev, dtype=float)
        n_orb = 2 * n_index
        eye = np.eye(self.n_retained)
        if onsite.ndim == 0:
            onsite = np.full(n_cells, float(onsite))
        if onsite.shape == (n_cells,):
            # Transversely uniform: u I projects to u I_m exactly.
            self.diagonal = [self._r00 + u_c * eye for u_c in onsite]
        elif onsite.shape == (n_cells * n_orb,):
            # Per-atom potential: project each cell's diagonal through
            # the basis.  U^T diag(u) U couples the retained blocks (and,
            # under truncation, leaks into discarded ones).
            u = self.basis.projector(n_modes)
            per_cell = onsite.reshape(n_cells, n_orb)
            self.diagonal = [self._r00 + u.T @ (u_c[:, None] * u)
                             for u_c in per_cell]
        else:
            raise InvalidDeviceError(
                f"mode-space onsite must be scalar, per-cell ({n_cells},) "
                f"or per-atom ({n_cells * n_orb},), got {onsite.shape}")
        self.coupling = [self._r01.copy() for _ in range(n_cells - 1)]

    @property
    def basis(self) -> ModeBasis:
        """The underlying invariant-subspace basis (cached)."""
        return transverse_mode_basis(self.ribbon.n_index, self.hopping_ev)

    # ------------------------------------------------------------------ #
    def _lead_h00(self, side: int) -> np.ndarray:
        shift = self.lead_onsite_ev[side]
        if shift:
            return self._r00 + shift * np.eye(self.n_retained)
        return self._r00

    def lead_self_energies(self, energy_ev: float, eta_ev: float = 1e-6
                           ) -> tuple[np.ndarray, np.ndarray]:
        """(Sigma_L, Sigma_R) of the reduced semi-infinite leads.

        Same lead convention as the real-space engine: the left lead
        extends through ``r01^T`` (towards -x), the right through
        ``r01``; the decimation runs on the reduced blocks behind the
        standard retry ladder.
        """
        g_left = resilient_surface_gf(energy_ev, self._lead_h00(0),
                                      self._r01.T, eta_ev)
        sigma_l = self_energy_from_surface_gf(g_left, self._r01.T)
        g_right = resilient_surface_gf(energy_ev, self._lead_h00(1),
                                       self._r01, eta_ev)
        sigma_r = self_energy_from_surface_gf(g_right, self._r01)
        return sigma_l, sigma_r

    def transmission_at(self, energy_ev: float,
                        eta_ev: float = 1e-6) -> float:
        """Landauer transmission at one energy."""
        sigma_l, sigma_r = self.lead_self_energies(energy_ev, eta_ev)
        result = recursive_greens_function(
            energy_ev, self.diagonal, self.coupling, sigma_l, sigma_r,
            eta_ev)
        return max(result.transmission, 0.0)

    def lead_self_energies_batched(
            self, energies_ev: np.ndarray, eta_ev: float = 1e-6
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked ``(Sigma_L, Sigma_R)``, shape ``(n_energy, m, m)``."""
        energies_ev = np.asarray(energies_ev, dtype=float)
        g_left = resilient_surface_gf_batched(
            energies_ev, self._lead_h00(0), self._r01.T, eta_ev)
        sigma_l = self_energy_from_surface_gf(g_left, self._r01.T)
        g_right = resilient_surface_gf_batched(
            energies_ev, self._lead_h00(1), self._r01, eta_ev)
        sigma_r = self_energy_from_surface_gf(g_right, self._r01)
        return sigma_l, sigma_r

    def transport(self, energies_ev: np.ndarray,
                  eta_ev: float = 1e-6,
                  batched: bool = True) -> RealSpaceTransport:
        """Transmission over an energy grid (batched kernels by default)."""
        energies_ev = np.asarray(energies_ev, dtype=float)
        if not batched or energies_ev.size == 0:
            # Legacy reference path the batched kernels are validated
            # against; kept per-energy by design.
            trans = np.array([self.transmission_at(float(e), eta_ev)  # repro: noqa[RPA802]
                              for e in energies_ev])
            return RealSpaceTransport(energies_ev=energies_ev,
                                      transmission=trans)
        sigma_l, sigma_r = self.lead_self_energies_batched(
            energies_ev, eta_ev)
        trans = rgf_transmission_batched(
            energies_ev, self.diagonal, self.coupling, sigma_l, sigma_r,
            eta_ev)
        return RealSpaceTransport(energies_ev=energies_ev,
                                  transmission=np.maximum(trans, 0.0))
