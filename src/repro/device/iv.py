"""I-V / Q-V sweep drivers.

Runs a device engine over a bias grid and collects the ``I_D(V_G, V_D)``
and ``Q(V_G, V_D)`` data that Section 3 of the paper stores in lookup
tables "at discrete voltage steps of V_GS and V_DS ranging from 0 V to
0.75 V".

The grid fans out across worker processes through
:func:`repro.runtime.parallel_map` with one task per gate row; within a
row each converged midgap warm-starts the next drain point (SCF
continuation, disabled by ``REPRO_NO_WARMSTART``), and rows always cold
start.  Serial sweeps run the identical per-row helper, so parallel and
serial sweeps are bit-for-bit equal regardless of worker count or
chunking.

Resilience (see ``docs/robustness.md``): every cell solve runs behind
the warm→cold→relaxed retry ladder of :func:`solve_cell_resilient`; a
cell whose ladder exhausts is NaN-masked and recorded as a
:class:`~repro.runtime.resilience.FailureRecord` on the result (and in
the obs manifest) unless ``strict`` is set, in which case the first
failure raises as before.  With ``REPRO_CHECKPOINT``/``REPRO_RESUME``
(or the corresponding arguments) the sweep writes atomic row-granular
checkpoints and skips already-completed rows on resume — bitwise
identical to an uninterrupted run because rows are independent and
cold-started.  A crashed worker process costs only its unfinished rows,
which are recomputed in-process from the salvaged
:class:`~repro.errors.ParallelMapError` state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable

import numpy as np

from repro import obs
from repro.device.engines import engine_version, resolve_engine
from repro.device.geometry import GNRFETGeometry
from repro.device.sbfet import SBFETModel, SBFETSolution
from repro.errors import ConvergenceError, ParallelMapError
from repro.runtime import (
    FailureRecord,
    SweepCheckpoint,
    backend_name,
    checkpoint_interval,
    content_key,
    in_worker,
    parallel_map,
    quarantine,
    recover_parallel,
    resolve_workers,
    resume_enabled,
    run_ladder,
    strict_default,
)
from repro.runtime import faults
from repro.runtime.accel import warmstart_enabled

#: Base electrostatic-bisection budget of the cell ladder (the engine's
#: historical default); the ``relaxed`` rung quadruples it.
CELL_BASE_MAX_ITER = 80


@dataclass
class IVSweep:
    """Gridded intrinsic device data.

    Attributes
    ----------
    vg, vd:
        Bias axes in volts (ascending).
    current_a:
        Drain current, shape ``(len(vg), len(vd))``.
    charge_c:
        Channel charge, same shape.
    midgap_ev:
        Converged channel midgap energy per bias point (diagnostic).
    geometry:
        The device specification the sweep belongs to.
    failures:
        Quarantined cells (empty unless a retry ladder exhausted in a
        non-strict sweep); each record's grid coordinates point at a
        NaN-masked cell of the arrays above.
    """

    vg: np.ndarray
    vd: np.ndarray
    current_a: np.ndarray
    charge_c: np.ndarray
    midgap_ev: np.ndarray
    geometry: GNRFETGeometry
    failures: tuple[FailureRecord, ...] = field(default=())

    def current_curve(self, vd: float) -> np.ndarray:
        """I_D(V_G) at the tabulated drain voltage nearest ``vd``."""
        j = int(np.argmin(np.abs(self.vd - vd)))
        return self.current_a[:, j]

    def on_off_ratio(self, vd: float, vg_on: float | None = None) -> float:
        """``I_on / I_off`` at drain bias ``vd``.

        ``I_on`` is the current at ``vg_on`` (default: the top of the
        gate range); ``I_off`` the minimum over the gate sweep (the
        ambipolar leakage floor).
        """
        curve = np.abs(self.current_curve(vd))
        i_on = curve[-1] if vg_on is None else curve[
            int(np.argmin(np.abs(self.vg - vg_on)))]
        i_off = curve.min()
        if i_off <= 0.0:
            return np.inf
        return float(i_on / i_off)


def solve_cell_resilient(model: SBFETModel, vg: float, vd: float,
                         guess_ev: float | None,
                         cell_index: int) -> SBFETSolution:
    """Solve one bias cell behind the warm→cold→relaxed retry ladder.

    Rungs (via :func:`repro.runtime.resilience.run_ladder`, retries
    counted under ``scf.retries``):

    1. ``warm`` — the continuation ``guess_ev`` with the base bisection
       budget; byte-identical to the pre-ladder solve, so sweeps without
       failures are unchanged.  Skipped when there is no guess.
    2. ``cold`` — discard the guess (a stale warm bracket is the usual
       reason a cell that used to converge stops doing so).
    3. ``relaxed`` — cold with a 4x iteration budget.

    The ``scf`` fault-injection site fires here, keyed by the flat
    ``cell_index``, *inside* each rung attempt — injected failures
    traverse the genuine recovery path.  Exhaustion re-raises the last
    :class:`~repro.errors.ConvergenceError` with the bias point, cell
    index, and rungs tried in its context.
    """
    def attempt(initial: float | None,
                max_iter: int) -> Callable[[], SBFETSolution]:
        def thunk() -> SBFETSolution:
            if faults.ACTIVE:
                faults.inject("scf", cell_index,
                              detail=f"VG={vg}, VD={vd}")
            return model.solve_bias(vg, vd, initial_midgap_ev=initial,
                                    max_iter=max_iter)
        return thunk

    rungs: list[tuple[str, Callable[[], SBFETSolution]]] = []
    if guess_ev is not None:
        rungs.append(("warm", attempt(guess_ev, CELL_BASE_MAX_ITER)))
    rungs.append(("cold", attempt(None, CELL_BASE_MAX_ITER)))
    rungs.append(("relaxed", attempt(None, 4 * CELL_BASE_MAX_ITER)))
    try:
        solution, _tried = run_ladder(rungs, site="scf",
                                      counter="scf.retries")
    except ConvergenceError as exc:
        raise exc.with_context(vg=float(vg), vd=float(vd),
                               cell_index=int(cell_index))
    return solution


def _solve_iv_row(geometry: GNRFETGeometry, vd_grid: np.ndarray,
                  n_modes: int | None, strict: bool, engine: str,
                  task: tuple[int, float],
                  model: SBFETModel | None = None
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                             list[FailureRecord]]:
    """One gate row of the sweep (module-level so it pickles to workers).

    ``task`` is ``(row_index, vg)``; the row index keys fault injection
    and the flat cell indices of quarantine records.  When no ``model``
    is supplied (worker processes) one is rebuilt from the geometry;
    construction is deterministic, so row results do not depend on how
    rows are batched.  Each converged midgap warm-starts the next drain
    point of the *same* row (continuation along V_D); rows always
    cold-start, which makes serial and parallel sweeps — where the row
    is the unit of work — bit-for-bit identical.  A quarantined cell
    breaks the continuation chain: the next cell falls back to the last
    finite midgap, or a cold start.
    """
    i, vg = task
    if model is None:
        model = SBFETModel(geometry, n_modes=n_modes, engine=engine)
    if faults.ACTIVE and in_worker():
        faults.inject("worker", i)
    n_vd = vd_grid.size
    current = np.empty(n_vd)
    charge = np.empty(n_vd)
    midgap = np.empty(n_vd)
    failures: list[FailureRecord] = []
    for j, vd in enumerate(vd_grid):
        # Continuation guess: linear extrapolation of the two previous
        # converged midgaps.  The midgap is nearly linear in V_D over a
        # sweep step, so the extrapolation error (~the second difference)
        # is an order of magnitude below the step itself and the warm
        # bracket almost always holds on its first, tightest width.
        prev1 = midgap[j - 1] if j >= 1 else np.nan
        prev2 = midgap[j - 2] if j >= 2 else np.nan
        guess: float | None
        if j >= 2 and np.isfinite(prev1) and np.isfinite(prev2):
            guess = 2.0 * prev1 - prev2
        elif j >= 1 and np.isfinite(prev1):
            guess = float(prev1)
        else:
            guess = None
        cell = i * n_vd + j
        try:
            sol = solve_cell_resilient(model, float(vg), float(vd),
                                       guess, cell)
        except ConvergenceError as exc:
            if strict:
                raise
            failures.append(quarantine(
                exc, site="scf", index=cell, coords=(i, j),
                bias={"vg": float(vg), "vd": float(vd)}))
            current[j] = charge[j] = midgap[j] = np.nan
            continue
        current[j] = sol.current_a
        charge[j] = sol.charge_c
        midgap[j] = sol.midgap_ev
    return current, charge, midgap, failures


_RowResult = tuple[np.ndarray, np.ndarray, np.ndarray, list[FailureRecord]]


def sweep_iv(
    geometry: GNRFETGeometry,
    vg_grid: np.ndarray,
    vd_grid: np.ndarray,
    n_modes: int | None = None,
    workers: int | None = None,  # repro: nokey[RPA601] parallelism degree; serial and parallel sweeps are bit-identical
    strict: bool | None = None,  # repro: nokey[RPA601] failure policy: strict raises, non-strict quarantines; finished rows agree
    checkpoint: int | None = None,  # repro: nokey[RPA601] checkpoint cadence only; saved rows are engine output either way
    resume: bool | None = None,  # repro: nokey[RPA601] whether to load the checkpoint this key names, not what it holds
    engine: str | None = None,
) -> IVSweep:
    """Run the selected transport engine over a (V_G, V_D) grid.

    ``workers`` > 1 fans the gate rows out across a process pool (default
    comes from ``REPRO_WORKERS``; unset means serial).  Parallel results
    are bit-for-bit identical to serial ones.

    ``engine`` picks the transmission engine (argument > ``REPRO_ENGINE``
    > ``semianalytic``; see :mod:`repro.device.engines`).  The resolved
    name and its version tag enter the checkpoint key, so checkpoints
    from different engines can never be resumed into each other.

    ``strict`` (default from ``REPRO_STRICT``, normally ``False``)
    re-raises the first exhausted cell instead of quarantining it.
    ``checkpoint`` is the checkpoint interval in completed rows (default
    from ``REPRO_CHECKPOINT``; 0 disables); ``resume`` (default from
    ``REPRO_RESUME``) loads an existing checkpoint and computes only the
    missing rows.  Checkpoints are keyed by the full sweep spec under
    the ``checkpoints`` cache namespace and deleted on completion.
    """
    vg_grid = np.asarray(vg_grid, dtype=float)
    vd_grid = np.asarray(vd_grid, dtype=float)
    if vg_grid.ndim != 1 or vd_grid.ndim != 1:
        raise ValueError("bias grids must be one-dimensional")
    if np.any(np.diff(vg_grid) <= 0) or np.any(np.diff(vd_grid) <= 0):
        raise ValueError("bias grids must be strictly ascending")

    engine = resolve_engine(engine)
    strict = strict_default() if strict is None else strict
    interval = (checkpoint_interval() if checkpoint is None
                else max(0, int(checkpoint)))
    resume = resume_enabled() if resume is None else resume

    shape = (vg_grid.size, vd_grid.size)
    current = np.full(shape, np.nan)
    charge = np.full(shape, np.nan)
    midgap = np.full(shape, np.nan)
    done = np.zeros(vg_grid.size, dtype=bool)
    failures: list[FailureRecord] = []

    ckpt: SweepCheckpoint | None = None
    if interval > 0 or resume:
        key = content_key("sweep_iv", geometry, vg_grid, vd_grid, n_modes,
                          engine, engine_version(engine), backend_name(),
                          warmstart_enabled())
        ckpt = SweepCheckpoint(key, interval=interval)
        if resume:
            loaded = ckpt.load()
            if loaded is not None and loaded[0].shape == done.shape:
                done, arrays, saved_failures = loaded
                current = np.asarray(arrays["current_a"], dtype=float)
                charge = np.asarray(arrays["charge_c"], dtype=float)
                midgap = np.asarray(arrays["midgap_ev"], dtype=float)
                for record in saved_failures:
                    failures.append(record)
                    if obs.ACTIVE:
                        # Re-recorded so the resumed run's manifest
                        # carries the full failure set, not just the
                        # post-resume tail.
                        obs.incr("resilience.quarantined")
                        obs.record_failure(record.to_dict())

    def save_checkpoint() -> None:
        assert ckpt is not None
        ckpt.save(done, {"current_a": current, "charge_c": charge,
                         "midgap_ev": midgap}, failures)

    def store(i: int, row: _RowResult) -> None:
        current[i], charge[i], midgap[i] = row[0], row[1], row[2]
        failures.extend(row[3])
        done[i] = True

    tasks = [(int(i), float(vg_grid[i]))
             for i in range(vg_grid.size) if not done[i]]
    fn = partial(_solve_iv_row, geometry, vd_grid, n_modes, strict, engine)
    with obs.span("device.sweep_iv", n_index=geometry.n_index,
                  grid=f"{vg_grid.size}x{vd_grid.size}"):
        if resolve_workers(workers) <= 1:
            # Serial fast path: one model serves every row.  The rows run
            # through the same helper as the parallel path (per-row
            # warm-start continuation, cold start at row boundaries), so
            # serial and parallel sweeps stay bit-for-bit identical.
            model = SBFETModel(geometry, n_modes=n_modes, engine=engine)
            for task in tasks:
                store(task[0], fn(task, model=model))
                if ckpt is not None and ckpt.due():
                    save_checkpoint()
        else:
            # With checkpointing on, rows are dispatched in waves of one
            # checkpoint interval so a snapshot lands between waves;
            # with it off this is a single parallel_map call, exactly
            # the historical fast path.
            wave_size = (interval if ckpt is not None and ckpt.enabled
                         and interval > 0 else len(tasks)) or 1
            for w in range(0, len(tasks), wave_size):
                wave = tasks[w:w + wave_size]
                try:
                    rows = parallel_map(fn, wave, workers=workers)
                except ParallelMapError as err:
                    if strict:
                        raise
                    rows = recover_parallel(err, fn, wave)
                for task, row in zip(wave, rows):
                    store(task[0], row)
                if ckpt is not None and ckpt.enabled and interval > 0:
                    save_checkpoint()
        if ckpt is not None:
            ckpt.clear()
    return IVSweep(vg=vg_grid, vd=vd_grid, current_a=current,
                   charge_c=charge, midgap_ev=midgap, geometry=geometry,
                   failures=tuple(failures))
