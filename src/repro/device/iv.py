"""I-V / Q-V sweep drivers.

Runs a device engine over a bias grid and collects the ``I_D(V_G, V_D)``
and ``Q(V_G, V_D)`` data that Section 3 of the paper stores in lookup
tables "at discrete voltage steps of V_GS and V_DS ranging from 0 V to
0.75 V".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.geometry import GNRFETGeometry
from repro.device.sbfet import SBFETModel


@dataclass
class IVSweep:
    """Gridded intrinsic device data.

    Attributes
    ----------
    vg, vd:
        Bias axes in volts (ascending).
    current_a:
        Drain current, shape ``(len(vg), len(vd))``.
    charge_c:
        Channel charge, same shape.
    midgap_ev:
        Converged channel midgap energy per bias point (diagnostic).
    geometry:
        The device specification the sweep belongs to.
    """

    vg: np.ndarray
    vd: np.ndarray
    current_a: np.ndarray
    charge_c: np.ndarray
    midgap_ev: np.ndarray
    geometry: GNRFETGeometry

    def current_curve(self, vd: float) -> np.ndarray:
        """I_D(V_G) at the tabulated drain voltage nearest ``vd``."""
        j = int(np.argmin(np.abs(self.vd - vd)))
        return self.current_a[:, j]

    def on_off_ratio(self, vd: float, vg_on: float | None = None) -> float:
        """``I_on / I_off`` at drain bias ``vd``.

        ``I_on`` is the current at ``vg_on`` (default: the top of the
        gate range); ``I_off`` the minimum over the gate sweep (the
        ambipolar leakage floor).
        """
        curve = np.abs(self.current_curve(vd))
        i_on = curve[-1] if vg_on is None else curve[
            int(np.argmin(np.abs(self.vg - vg_on)))]
        i_off = curve.min()
        if i_off <= 0.0:
            return np.inf
        return float(i_on / i_off)


def sweep_iv(
    geometry: GNRFETGeometry,
    vg_grid: np.ndarray,
    vd_grid: np.ndarray,
    n_modes: int | None = None,
) -> IVSweep:
    """Run the fast SBFET engine over a (V_G, V_D) grid."""
    vg_grid = np.asarray(vg_grid, dtype=float)
    vd_grid = np.asarray(vd_grid, dtype=float)
    if vg_grid.ndim != 1 or vd_grid.ndim != 1:
        raise ValueError("bias grids must be one-dimensional")
    if np.any(np.diff(vg_grid) <= 0) or np.any(np.diff(vd_grid) <= 0):
        raise ValueError("bias grids must be strictly ascending")

    model = SBFETModel(geometry, n_modes=n_modes)
    shape = (vg_grid.size, vd_grid.size)
    current = np.empty(shape)
    charge = np.empty(shape)
    midgap = np.empty(shape)
    for i, vg in enumerate(vg_grid):
        for j, vd in enumerate(vd_grid):
            sol = model.solve_bias(float(vg), float(vd))
            current[i, j] = sol.current_a
            charge[i, j] = sol.charge_c
            midgap[i, j] = sol.midgap_ev
    return IVSweep(vg=vg_grid, vd=vd_grid, current_a=current,
                   charge_c=charge, midgap_ev=midgap, geometry=geometry)
