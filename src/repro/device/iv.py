"""I-V / Q-V sweep drivers.

Runs a device engine over a bias grid and collects the ``I_D(V_G, V_D)``
and ``Q(V_G, V_D)`` data that Section 3 of the paper stores in lookup
tables "at discrete voltage steps of V_GS and V_DS ranging from 0 V to
0.75 V".

The grid fans out across worker processes through
:func:`repro.runtime.parallel_map` with one task per gate row; within a
row each converged midgap warm-starts the next drain point (SCF
continuation, disabled by ``REPRO_NO_WARMSTART``), and rows always cold
start.  Serial sweeps run the identical per-row helper, so parallel and
serial sweeps are bit-for-bit equal regardless of worker count or
chunking.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro import obs
from repro.device.geometry import GNRFETGeometry
from repro.device.sbfet import SBFETModel
from repro.runtime import parallel_map, resolve_workers


@dataclass
class IVSweep:
    """Gridded intrinsic device data.

    Attributes
    ----------
    vg, vd:
        Bias axes in volts (ascending).
    current_a:
        Drain current, shape ``(len(vg), len(vd))``.
    charge_c:
        Channel charge, same shape.
    midgap_ev:
        Converged channel midgap energy per bias point (diagnostic).
    geometry:
        The device specification the sweep belongs to.
    """

    vg: np.ndarray
    vd: np.ndarray
    current_a: np.ndarray
    charge_c: np.ndarray
    midgap_ev: np.ndarray
    geometry: GNRFETGeometry

    def current_curve(self, vd: float) -> np.ndarray:
        """I_D(V_G) at the tabulated drain voltage nearest ``vd``."""
        j = int(np.argmin(np.abs(self.vd - vd)))
        return self.current_a[:, j]

    def on_off_ratio(self, vd: float, vg_on: float | None = None) -> float:
        """``I_on / I_off`` at drain bias ``vd``.

        ``I_on`` is the current at ``vg_on`` (default: the top of the
        gate range); ``I_off`` the minimum over the gate sweep (the
        ambipolar leakage floor).
        """
        curve = np.abs(self.current_curve(vd))
        i_on = curve[-1] if vg_on is None else curve[
            int(np.argmin(np.abs(self.vg - vg_on)))]
        i_off = curve.min()
        if i_off <= 0.0:
            return np.inf
        return float(i_on / i_off)


def _solve_iv_row(geometry: GNRFETGeometry, vd_grid: np.ndarray,
                  n_modes: int | None, vg: float,
                  model: SBFETModel | None = None
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One gate row of the sweep (module-level so it pickles to workers).

    When no ``model`` is supplied (worker processes) one is rebuilt from
    the geometry; construction is deterministic, so row results do not
    depend on how rows are batched.  Each converged midgap warm-starts
    the next drain point of the *same* row (continuation along V_D);
    rows always cold-start, which makes serial and parallel sweeps —
    where the row is the unit of work — bit-for-bit identical.
    """
    if model is None:
        model = SBFETModel(geometry, n_modes=n_modes)
    n_vd = vd_grid.size
    current = np.empty(n_vd)
    charge = np.empty(n_vd)
    midgap = np.empty(n_vd)
    for j, vd in enumerate(vd_grid):
        # Continuation guess: linear extrapolation of the two previous
        # converged midgaps.  The midgap is nearly linear in V_D over a
        # sweep step, so the extrapolation error (~the second difference)
        # is an order of magnitude below the step itself and the warm
        # bracket almost always holds on its first, tightest width.
        if j >= 2:
            guess = 2.0 * midgap[j - 1] - midgap[j - 2]
        elif j == 1:
            guess = midgap[0]
        else:
            guess = None
        sol = model.solve_bias(float(vg), float(vd),
                               initial_midgap_ev=guess)
        current[j] = sol.current_a
        charge[j] = sol.charge_c
        midgap[j] = sol.midgap_ev
    return current, charge, midgap


def sweep_iv(
    geometry: GNRFETGeometry,
    vg_grid: np.ndarray,
    vd_grid: np.ndarray,
    n_modes: int | None = None,
    workers: int | None = None,
) -> IVSweep:
    """Run the fast SBFET engine over a (V_G, V_D) grid.

    ``workers`` > 1 fans the gate rows out across a process pool (default
    comes from ``REPRO_WORKERS``; unset means serial).  Parallel results
    are bit-for-bit identical to serial ones.
    """
    vg_grid = np.asarray(vg_grid, dtype=float)
    vd_grid = np.asarray(vd_grid, dtype=float)
    if vg_grid.ndim != 1 or vd_grid.ndim != 1:
        raise ValueError("bias grids must be one-dimensional")
    if np.any(np.diff(vg_grid) <= 0) or np.any(np.diff(vd_grid) <= 0):
        raise ValueError("bias grids must be strictly ascending")

    shape = (vg_grid.size, vd_grid.size)
    current = np.empty(shape)
    charge = np.empty(shape)
    midgap = np.empty(shape)
    with obs.span("device.sweep_iv", n_index=geometry.n_index,
                  grid=f"{vg_grid.size}x{vd_grid.size}"):
        if resolve_workers(workers) <= 1:
            # Serial fast path: one model serves every row.  The rows run
            # through the same helper as the parallel path (per-row
            # warm-start continuation, cold start at row boundaries), so
            # serial and parallel sweeps stay bit-for-bit identical.
            model = SBFETModel(geometry, n_modes=n_modes)
            for i, vg in enumerate(vg_grid):
                cur_row, chg_row, mid_row = _solve_iv_row(
                    geometry, vd_grid, n_modes, float(vg), model=model)
                current[i] = cur_row
                charge[i] = chg_row
                midgap[i] = mid_row
        else:
            rows = parallel_map(
                partial(_solve_iv_row, geometry, vd_grid, n_modes),
                [float(vg) for vg in vg_grid], workers=workers)
            for i, (cur_row, chg_row, mid_row) in enumerate(rows):
                current[i] = cur_row
                charge[i] = chg_row
                midgap[i] = mid_row
    return IVSweep(vg=vg_grid, vd=vd_grid, current_a=current,
                   charge_c=charge, midgap_ev=midgap, geometry=geometry)
