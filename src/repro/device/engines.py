"""Transport-engine registry and the atomistic-transmission adapter.

Three engines compute the transmission behind the SBFET device model:

``semianalytic`` (default)
    The per-mode WKB kernel built into :class:`~repro.device.sbfet.\
SBFETModel` — the production engine that populates the circuit tables.
``modespace``
    Coupled mode-space NEGF (:class:`~repro.device.negf_modespace.\
ModeSpaceGNRDevice`): the real-space Hamiltonian projected onto the
    lowest transverse subbands, run through the energy-batched
    Sancho-Rubio/RGF kernels on reduced blocks.
``realspace``
    Full atomistic p_z NEGF (:class:`~repro.device.negf_realspace.\
RealSpaceGNRDevice`): the slow reference the other two are validated
    against.

Every engine shares the same electrostatics (bisection over the density
LUT); only ``transmission(E, profile)`` swaps.  The engine choice is
part of every table/checkpoint cache key through
:func:`engine_version`, so artifacts from different engines can never
collide.

Selection: per-call ``engine=`` argument, else the ``REPRO_ENGINE``
environment variable, else the default.  Unknown names fail loudly.
"""

from __future__ import annotations

import os

import numpy as np

from repro.constants import ARMCHAIR_PERIOD_NM, EDGE_RELAXATION, T_HOPPING_EV
from repro.errors import InvalidDeviceError
from repro.runtime.cache import TABLE_ENGINE_VERSION

#: Environment variable selecting the transport engine.
ENGINE_ENV = "REPRO_ENGINE"

#: Recognized engine names.
ENGINES = ("semianalytic", "realspace", "modespace")

DEFAULT_ENGINE = "semianalytic"

#: Cache-key version tag per engine.  The semianalytic tag is the
#: historical ``TABLE_ENGINE_VERSION`` so pre-engine-selection caches
#: remain valid for the default path; bump an engine's tag when its
#: physics or numerics change.
ENGINE_VERSIONS = {
    "semianalytic": TABLE_ENGINE_VERSION,
    "realspace": "negf-realspace-v1",
    "modespace": "negf-modespace-v1",
}


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an engine name (argument > ``REPRO_ENGINE`` > default).

    The environment is read at every call — never cached at import — so
    drivers and tests can flip engines mid-process.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "").strip().lower() or None
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in ENGINES:
        raise InvalidDeviceError(
            f"unknown transport engine {engine!r}; expected one of "
            f"{', '.join(ENGINES)}")
    return engine


def engine_version(engine: str | None = None) -> str:
    """Cache-key version tag of the resolved engine."""
    return ENGINE_VERSIONS[resolve_engine(engine)]


#: Default wide-band contact broadening of the atomistic engines
#: (eV), applied to every orbital of the first/last unit cell.  Half
#: the hopping makes the metal Schottky contacts near-reflectionless:
#: the above-barrier transparency and the integrated current match the
#: semianalytic engine's ideal-injector contacts at the percent level.
CONTACT_BROADENING_EV = 0.5 * T_HOPPING_EV


class AtomisticTransport:
    """Adapter exposing the NEGF engines through the SBFET interface.

    :class:`~repro.device.sbfet.SBFETModel` computes transmission from a
    midgap profile sampled on its transport grid; the atomistic engines
    want a per-unit-cell potential and contact self-energies.  This
    adapter owns the mapping: the channel is discretized into
    ``round(L / 0.426 nm)`` unit cells, the profile is interpolated onto
    the cell centers, and the device is closed by **wide-band metal
    self-energies** on the end cells — the SBFET's source/drain are
    metals pinned at the midgap (Schottky barriers ``E_g/2``), which
    inject at every energy, unlike semiconducting GNR leads whose gap
    would block exactly the Schottky-tunneling window.  Because the
    wide-band matrix is ``-i Gamma/2 I`` and the mode basis is
    orthonormal, the real-space and mode-space engines see *identical*
    contacts (``U^T (-i Gamma/2 I) U = -i Gamma/2 I_m``), so
    cross-engine differences isolate the mode truncation.

    One adapter is built per model and re-used across bias points; the
    per-profile device construction on top of the memoized
    lead/mode-basis blocks is cheap.
    """

    def __init__(self, engine: str, n_index: int, channel_length_nm: float,
                 n_modes: int | None = None,
                 hopping_ev: float = T_HOPPING_EV,
                 edge_relaxation: float = EDGE_RELAXATION,
                 contact_broadening_ev: float = CONTACT_BROADENING_EV):
        if engine not in ("realspace", "modespace"):
            raise InvalidDeviceError(
                f"AtomisticTransport backs NEGF engines only, got {engine!r}")
        self.engine = engine
        self.n_index = n_index
        self.n_modes = n_modes
        self.hopping_ev = hopping_ev
        self.edge_relaxation = edge_relaxation
        self.contact_broadening_ev = float(contact_broadening_ev)
        self.n_cells = max(2, int(round(channel_length_nm
                                        / ARMCHAIR_PERIOD_NM)))
        # Cell centers on the same [0, L] axis the SBFET profile lives on.
        self.cell_centers_nm = ((np.arange(self.n_cells) + 0.5)
                                * channel_length_nm / self.n_cells)

    def _device(self, cell_onsite_ev: np.ndarray):
        if self.engine == "modespace":
            from repro.device.negf_modespace import ModeSpaceGNRDevice

            return ModeSpaceGNRDevice(
                self.n_index, self.n_cells, onsite_ev=cell_onsite_ev,
                n_modes=self.n_modes, hopping_ev=self.hopping_ev,
                edge_relaxation=self.edge_relaxation)
        from repro.atomistic.lattice import ArmchairGNR
        from repro.device.negf_realspace import (
            RealSpaceGNRDevice,
            longitudinal_onsite,
        )

        ribbon = ArmchairGNR(self.n_index, n_cells=self.n_cells)
        return RealSpaceGNRDevice(
            self.n_index, self.n_cells,
            onsite_ev=longitudinal_onsite(ribbon, cell_onsite_ev),
            hopping_ev=self.hopping_ev,
            edge_relaxation=self.edge_relaxation)

    def transmission(self, energies_ev: np.ndarray,
                     profile_midgap_ev: np.ndarray,
                     x_nm: np.ndarray,
                     eta_ev: float = 1e-6) -> np.ndarray:
        """NEGF transmission for one midgap profile.

        ``profile_midgap_ev`` is sampled at ``x_nm`` (the SBFET
        transport grid); energies are absolute (source Fermi level at
        0).  The Schottky metal contacts enter as energy-independent
        wide-band self-energies on the end cells.
        """
        from repro.negf.greens import rgf_transmission_batched
        from repro.negf.self_energy import wide_band_self_energy

        energies = np.asarray(energies_ev, dtype=float)
        profile = np.asarray(profile_midgap_ev, dtype=float)
        x = np.asarray(x_nm, dtype=float)
        cell_onsite = np.interp(self.cell_centers_nm, x, profile)
        device = self._device(cell_onsite)
        b = device.diagonal[0].shape[0]
        sigma = wide_band_self_energy(self.contact_broadening_ev, b)
        sigma_stack = np.broadcast_to(
            sigma, (energies.size, b, b)).copy()
        trans = rgf_transmission_batched(
            energies, device.diagonal, device.coupling,
            sigma_stack, sigma_stack, eta_ev)
        return np.maximum(trans, 0.0)
