"""Physical constants and unit conventions used throughout :mod:`repro`.

Unit conventions
----------------
The library works in the unit system that is most natural for nanoscale
device simulation:

* energies in **electron-volts** (eV),
* lengths in **nanometres** (nm),
* voltages in **volts** (V),
* currents in **amperes** (A),
* capacitances in **farads** (F),
* temperatures in **kelvin** (K).

All constants below are CODATA-2018 exact or recommended values.  Graphene
lattice constants follow the values used by the paper (p_z hopping of
2.7 eV, carbon-carbon bond length of 0.142 nm).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import numpy as np

import math

# --- Fundamental constants (SI) -------------------------------------------
Q_E = 1.602176634e-19
"""Elementary charge in coulomb (exact)."""

K_B_SI = 1.380649e-23
"""Boltzmann constant in J/K (exact)."""

PLANCK_H = 6.62607015e-34
"""Planck constant in J s (exact)."""

HBAR_SI = PLANCK_H / (2.0 * math.pi)
"""Reduced Planck constant in J s."""

EPS_0 = 8.8541878128e-12
"""Vacuum permittivity in F/m."""

M_E = 9.1093837015e-31
"""Electron rest mass in kg."""

# --- Derived constants in library units ------------------------------------
K_B_EV = K_B_SI / Q_E
"""Boltzmann constant in eV/K."""

HBAR_EV_S = HBAR_SI / Q_E
"""Reduced Planck constant in eV s."""

EPS_0_F_PER_NM = EPS_0 * 1e-9
"""Vacuum permittivity in F/nm."""

G_QUANTUM = 2.0 * Q_E * Q_E / PLANCK_H
"""Conductance quantum 2e^2/h (spin degenerate, single mode) in siemens."""

CURRENT_QUANTUM = 2.0 * Q_E / PLANCK_H
"""Prefactor 2e/h of the spin-degenerate Landauer current integral.

Multiplying by an energy window expressed in eV requires one more factor
of ``Q_E`` (J per eV); :func:`landauer_prefactor_ev` folds that in.
"""

LANDAUER_PREFACTOR_A_PER_EV = 2.0 * Q_E / PLANCK_H * Q_E
"""Spin-degenerate Landauer prefactor 2e/h expressed in A per eV.

``I = LANDAUER_PREFACTOR_A_PER_EV * integral T(E) (f_S - f_D) dE`` with the
energy integral carried out in eV yields amperes.
"""

# --- Graphene / GNR lattice -------------------------------------------------
A_CC_NM = 0.142
"""Carbon-carbon bond length in nm."""

A_LATTICE_NM = A_CC_NM * math.sqrt(3.0)
"""Graphene lattice constant (0.246 nm)."""

T_HOPPING_EV = 2.7
"""Nearest-neighbour p_z hopping parameter used by the paper, in eV."""

EDGE_RELAXATION = 0.12
"""Relative strengthening of the edge dimer bonds of an armchair GNR.

Son, Cohen and Louie (PRL 97, 216803, 2006) showed from ab initio
calculations that the C-C bonds at the armchair edges contract, which is
captured in tight binding by scaling the edge dimer hopping by
``1 + EDGE_RELAXATION``.  The paper states that "energy relaxation at the
edges is treated according to ab initio calculations" citing that work.
"""

ARMCHAIR_PERIOD_NM = 3.0 * A_CC_NM
"""Translational period of an armchair-edge GNR along transport (0.426 nm)."""

FERMI_VELOCITY_NM_PER_S = 1.5 * A_CC_NM * T_HOPPING_EV / HBAR_EV_S
"""Graphene Fermi velocity v_F = 3 a_cc t / (2 hbar) in nm/s (~8.7e14)."""

# --- Environment ------------------------------------------------------------
ROOM_TEMPERATURE_K = 300.0
"""Default simulation temperature."""

KT_ROOM_EV = K_B_EV * ROOM_TEMPERATURE_K
"""Thermal energy at 300 K (~25.85 meV)."""

EPS_SIO2 = 3.9
"""Relative permittivity of the SiO2 gate insulator used by the paper."""


def thermal_energy_ev(temperature_k: float) -> float:
    """Return k_B T in eV for a temperature in kelvin."""
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return K_B_EV * temperature_k


def fermi_dirac(energy_ev: float | np.ndarray, mu_ev: float,
                kt_ev: float = KT_ROOM_EV) -> float | np.ndarray:
    """Fermi-Dirac occupation f(E) for energies in eV.

    Implemented in an overflow-safe way so it can be evaluated on numpy
    arrays spanning many k_B T on either side of the chemical potential.
    """
    import numpy as np

    if kt_ev <= 0.0:
        raise ValueError(f"kT must be positive, got {kt_ev}")
    x = (np.asarray(energy_ev, dtype=float) - mu_ev) / kt_ev
    # exp(-|x|) never overflows; branch on the sign of x.
    out = np.where(x > 0.0,
                   np.exp(-np.clip(x, 0.0, None)) / (1.0 + np.exp(-np.clip(x, 0.0, None))),
                   1.0 / (1.0 + np.exp(np.clip(x, None, 0.0))))
    if np.isscalar(energy_ev):
        return float(out)
    return out


def gnr_width_nm(n_index: int) -> float:
    """Physical width of an armchair GNR with ``n_index`` dimer lines.

    The width is the distance between the outermost dimer lines,
    ``(N - 1) * sqrt(3)/2 * a_cc``.  The paper quotes 1.1 nm for N=9 and a
    width increment of 3.7 Å per step of 3 in N, both of which this
    formula reproduces (0.98 nm and 0.369 nm with a_cc = 0.142 nm).
    """
    if n_index < 2:
        raise ValueError(f"armchair GNR index must be >= 2, got {n_index}")
    return (n_index - 1) * math.sqrt(3.0) / 2.0 * A_CC_NM
