"""Charge-impurity potentials, with and without gate screening.

The paper models the most common defect as "a fixed external charge in the
gate oxide region" placed 0.4 nm from the GNR surface near the source, and
notes that "the impurity charge electric field is screened by the gate",
which is why an impurity near one GNR of the array does not disturb its
neighbours (pitch >> oxide thickness).

Two potentials are provided:

* :func:`coulomb_potential_ev` — bare Coulomb potential in a uniform
  dielectric (reference / tests);
* :func:`screened_impurity_potential_ev` — the double-gate geometry,
  solved by the method of images between the two grounded gate planes.
  The resulting lateral decay is exponential with decay length ``d/pi``
  (gate separation ``d``), reproducing the strong screening the paper
  relies on.

Sign convention: functions return the **potential energy of an electron**
in eV (negative charge), i.e. ``U = -e * phi``; a *negative* impurity
(``charge_e < 0``) therefore *raises* the local electron energy (raises
the Schottky barrier), exactly as in the paper's Fig. 5(a).
"""

from __future__ import annotations

import numpy as np

from repro.constants import EPS_0_F_PER_NM, Q_E


def coulomb_potential_ev(
    charge_e: float,
    distance_nm: np.ndarray,
    eps_r: float,
    min_distance_nm: float = 0.05,
) -> np.ndarray:
    """Electron potential energy from a bare point charge.

    Parameters
    ----------
    charge_e:
        Impurity charge in units of the elementary charge (signed;
        e.g. ``-2.0`` for the paper's ``-2q`` impurity).
    distance_nm:
        Distance(s) from the impurity.  Clipped below at
        ``min_distance_nm`` to regularize the on-site singularity (a
        point charge on a lattice is always evaluated at finite distance).
    eps_r:
        Relative permittivity of the host dielectric.

    Returns
    -------
    ``U = -e phi`` in eV; same shape as ``distance_nm``.
    """
    if eps_r <= 0.0:
        raise ValueError(f"relative permittivity must be positive, got {eps_r}")
    r = np.clip(np.asarray(distance_nm, dtype=float), min_distance_nm, None)
    phi_volts = charge_e * Q_E / (4.0 * np.pi * EPS_0_F_PER_NM * eps_r * r)
    return -phi_volts  # -e * phi, expressed in eV (numerically equal to -phi)


def screened_impurity_potential_ev(
    charge_e: float,
    lateral_nm: np.ndarray,
    impurity_height_nm: float,
    gate_separation_nm: float,
    eps_r: float,
    plane_height_nm: float | None = None,
    n_images: int = 40,
    min_distance_nm: float = 0.05,
) -> np.ndarray:
    """Electron potential energy on the GNR plane from a gated impurity.

    Geometry: two grounded metal gates at ``z = 0`` and
    ``z = gate_separation_nm`` (the paper's double gate, separation =
    2 x 1.5 nm oxide + channel); the impurity sits at height
    ``impurity_height_nm``; the potential is evaluated on the plane
    ``z = plane_height_nm`` (defaults to mid-gap of the stack, where the
    GNR sits) at lateral distance ``lateral_nm`` from the impurity.

    Implemented with the classical image series for a charge between two
    grounded planes: images of alternating sign at
    ``z = 2 n d ± z0``.  The series converges quickly because distant
    image pairs cancel; ``n_images = 40`` is far beyond graphical
    accuracy.
    """
    if gate_separation_nm <= 0.0:
        raise ValueError("gate separation must be positive")
    if not 0.0 < impurity_height_nm < gate_separation_nm:
        raise ValueError(
            "impurity must sit strictly between the gate planes")
    if n_images < 1:
        raise ValueError("need at least one image term")

    z_plane = (gate_separation_nm / 2.0 if plane_height_nm is None
               else float(plane_height_nm))
    s = np.asarray(lateral_nm, dtype=float)
    d = gate_separation_nm
    z0 = impurity_height_nm

    total = np.zeros_like(s, dtype=float)
    for n in range(-n_images, n_images + 1):
        # Positive replica of the source charge.
        z_pos = 2.0 * n * d + z0
        # Negative image (reflection through z = 0 of the replica).
        z_neg = 2.0 * n * d - z0
        r_pos = np.sqrt(s ** 2 + (z_plane - z_pos) ** 2)
        r_neg = np.sqrt(s ** 2 + (z_plane - z_neg) ** 2)
        r_pos = np.clip(r_pos, min_distance_nm, None)
        r_neg = np.clip(r_neg, min_distance_nm, None)
        total += 1.0 / r_pos - 1.0 / r_neg

    phi_volts = charge_e * Q_E / (4.0 * np.pi * EPS_0_F_PER_NM * eps_r) * total
    return -phi_volts
