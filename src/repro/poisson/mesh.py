"""Triangular meshes for the 2-D finite-element Poisson solver.

Only what the device geometry needs: a structured triangulation of a
rectangle (each grid cell split into two triangles) with helpers to locate
boundary nodes and tag regions.  The FEM solver itself is mesh-agnostic and
accepts any valid node/triangle arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TriangleMesh:
    """An unstructured triangle mesh.

    Attributes
    ----------
    nodes:
        Node coordinates, shape ``(n_nodes, 2)`` in nm.
    triangles:
        Vertex indices per element, shape ``(n_triangles, 3)``.  The solver
        orients elements automatically, so winding order is free.
    """

    nodes: np.ndarray
    triangles: np.ndarray

    def __post_init__(self) -> None:
        nodes = np.asarray(self.nodes, dtype=float)
        tris = np.asarray(self.triangles, dtype=int)
        if nodes.ndim != 2 or nodes.shape[1] != 2:
            raise ValueError(f"nodes must be (n, 2), got {nodes.shape}")
        if tris.ndim != 2 or tris.shape[1] != 3:
            raise ValueError(f"triangles must be (m, 3), got {tris.shape}")
        if tris.min(initial=0) < 0 or tris.max(initial=-1) >= len(nodes):
            raise ValueError("triangle vertex index out of range")
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "triangles", tris)

    @property
    def n_nodes(self) -> int:
        return self.nodes.shape[0]

    @property
    def n_triangles(self) -> int:
        return self.triangles.shape[0]

    def element_areas(self) -> np.ndarray:
        """Signed areas made positive; zero-area elements are invalid."""
        p = self.nodes
        t = self.triangles
        v1 = p[t[:, 1]] - p[t[:, 0]]
        v2 = p[t[:, 2]] - p[t[:, 0]]
        return 0.5 * np.abs(v1[:, 0] * v2[:, 1] - v1[:, 1] * v2[:, 0])

    def element_centroids(self) -> np.ndarray:
        """Centroid per element, shape (n_triangles, 2)."""
        return self.nodes[self.triangles].mean(axis=1)

    def boundary_nodes(self) -> np.ndarray:
        """Indices of nodes on the mesh boundary.

        A boundary edge belongs to exactly one triangle; interior edges to
        two.  Returns the sorted unique node indices of boundary edges.
        """
        t = self.triangles
        edges = np.vstack([t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]])
        edges = np.sort(edges, axis=1)
        uniq, counts = np.unique(edges, axis=0, return_counts=True)
        boundary_edges = uniq[counts == 1]
        return np.unique(boundary_edges)


def rectangle_mesh(lx_nm: float, ly_nm: float, nx: int, ny: int) -> TriangleMesh:
    """Structured triangulation of ``[0, lx] x [0, ly]``.

    ``nx`` / ``ny`` are node counts per axis; each of the
    ``(nx-1)(ny-1)`` cells is split along its diagonal into two triangles.
    """
    if nx < 2 or ny < 2:
        raise ValueError("need at least 2 nodes per axis")
    if lx_nm <= 0.0 or ly_nm <= 0.0:
        raise ValueError("rectangle extents must be positive")

    xs = np.linspace(0.0, lx_nm, nx)
    ys = np.linspace(0.0, ly_nm, ny)
    xx, yy = np.meshgrid(xs, ys, indexing="ij")
    nodes = np.column_stack([xx.ravel(), yy.ravel()])

    def node_id(i: int, j: int) -> int:
        return i * ny + j

    triangles = []
    for i in range(nx - 1):
        for j in range(ny - 1):
            a = node_id(i, j)
            b = node_id(i + 1, j)
            c = node_id(i + 1, j + 1)
            d = node_id(i, j + 1)
            triangles.append((a, b, c))
            triangles.append((a, c, d))
    return TriangleMesh(nodes=nodes, triangles=np.array(triangles))
