"""Electrostatics: finite-difference and finite-element Poisson solvers.

The paper solves "the 3D Poisson's equation ... numerically ... using the
finite element method (FEM)" because "FEM is efficient to treat a device
with multiple gates".  This package provides:

* structured-grid finite-difference solvers in 1-D, 2-D and 3-D with
  spatially varying permittivity and mixed Dirichlet/Neumann boundaries
  (:mod:`repro.poisson.fd`),
* a genuine 2-D P1 finite-element solver on triangular meshes with
  per-element permittivity (:mod:`repro.poisson.fem`) plus a structured
  triangulator for device cross-sections (:mod:`repro.poisson.mesh`),
* screened point-charge (impurity) potentials with gate image charges
  (:mod:`repro.poisson.pointcharge`).

The production GNRFET device path uses the 2-D FD solver on the
(transport x gate-stack) cross-section; the FEM and 3-D solvers validate
that reduction and serve the impurity-screening calculation (see DESIGN.md
section 5 for the substitution rationale).
"""

from repro.poisson.grid import Grid1D, Grid2D, Grid3D
from repro.poisson.fd import (
    solve_poisson_1d,
    solve_poisson_2d,
    solve_poisson_3d,
)
from repro.poisson.mesh import TriangleMesh, rectangle_mesh
from repro.poisson.fem import solve_poisson_fem_2d
from repro.poisson.pointcharge import (
    coulomb_potential_ev,
    screened_impurity_potential_ev,
)

__all__ = [
    "Grid1D",
    "Grid2D",
    "Grid3D",
    "solve_poisson_1d",
    "solve_poisson_2d",
    "solve_poisson_3d",
    "TriangleMesh",
    "rectangle_mesh",
    "solve_poisson_fem_2d",
    "coulomb_potential_ev",
    "screened_impurity_potential_ev",
]
