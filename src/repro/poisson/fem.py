"""2-D P1 finite-element Poisson solver.

Weak form of ``div(eps_r grad(phi)) = -rho / eps_0`` with piecewise-linear
elements:

``sum_e eps_e \\int_e grad(phi) . grad(v) = (1/eps_0) \\int rho v``

The load integral uses lumped (row-sum) mass, i.e. a third of each element
area is attributed to each vertex; permittivity is constant per element,
which is how dielectric regions (oxide vs. vacuum vs. substrate) are
represented.  This mirrors the paper's choice of FEM "because it can
easily handle an arbitrary grid for complex geometry" with multiple gates.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.constants import EPS_0_F_PER_NM
from repro.poisson.mesh import TriangleMesh


def _element_stiffness(coords: np.ndarray) -> np.ndarray:
    """3x3 P1 stiffness matrix of one triangle (unit permittivity).

    Uses the standard gradient formula: with vertices ``p0, p1, p2`` and
    signed doubled area ``D``, the basis gradients are constant per
    element and the stiffness is ``area * G G^T``.
    """
    p0, p1, p2 = coords
    d = (p1[0] - p0[0]) * (p2[1] - p0[1]) - (p2[0] - p0[0]) * (p1[1] - p0[1])
    if d == 0.0:
        raise ValueError("degenerate (zero-area) triangle in mesh")
    area = 0.5 * abs(d)
    grads = np.array([
        [p1[1] - p2[1], p2[0] - p1[0]],
        [p2[1] - p0[1], p0[0] - p2[0]],
        [p0[1] - p1[1], p1[0] - p0[0]],
    ]) / d
    return area * grads @ grads.T


def solve_poisson_fem_2d(
    mesh: TriangleMesh,
    eps_r_elements: np.ndarray,
    rho_nodes_c_per_nm2: np.ndarray,
    dirichlet_nodes: np.ndarray,
    dirichlet_values: np.ndarray,
) -> np.ndarray:
    """Solve for the nodal potential (V) on a triangle mesh.

    Parameters
    ----------
    eps_r_elements:
        Relative permittivity per element, shape ``(n_triangles,)``.
    rho_nodes_c_per_nm2:
        Nodal charge density in C/nm^2 (translationally invariant third
        dimension, same convention as :func:`repro.poisson.fd.solve_poisson_2d`).
    dirichlet_nodes, dirichlet_values:
        Node indices with fixed potential and the values to fix them at.
        Non-Dirichlet boundary nodes receive the natural (zero-flux)
        boundary condition.
    """
    eps_r_elements = np.asarray(eps_r_elements, dtype=float)
    rho = np.asarray(rho_nodes_c_per_nm2, dtype=float)
    dirichlet_nodes = np.asarray(dirichlet_nodes, dtype=int)
    dirichlet_values = np.asarray(dirichlet_values, dtype=float)

    if eps_r_elements.shape != (mesh.n_triangles,):
        raise ValueError(
            f"eps_r_elements must have shape ({mesh.n_triangles},), "
            f"got {eps_r_elements.shape}")
    if np.any(eps_r_elements <= 0.0):
        raise ValueError("permittivity must be positive in every element")
    if rho.shape != (mesh.n_nodes,):
        raise ValueError(
            f"rho must have shape ({mesh.n_nodes},), got {rho.shape}")
    if dirichlet_nodes.size == 0:
        raise ValueError("at least one Dirichlet node is required")
    if dirichlet_nodes.shape != dirichlet_values.shape:
        raise ValueError("dirichlet_nodes and dirichlet_values mismatch")

    n = mesh.n_nodes
    rows, cols, vals = [], [], []
    load = np.zeros(n)
    areas = mesh.element_areas()

    for e, tri in enumerate(mesh.triangles):
        ke = eps_r_elements[e] * _element_stiffness(mesh.nodes[tri])
        for a in range(3):
            for b in range(3):
                rows.append(tri[a])
                cols.append(tri[b])
                vals.append(ke[a, b])
        # Lumped load: one third of the element area per vertex.
        load[tri] += areas[e] / 3.0 * rho[tri] / EPS_0_F_PER_NM

    k = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

    mask = np.zeros(n, dtype=bool)
    mask[dirichlet_nodes] = True
    fixed = np.zeros(n)
    fixed[dirichlet_nodes] = dirichlet_values

    free = ~mask
    b = load - k @ fixed
    phi = fixed.copy()
    if np.any(free):
        phi[free] = spla.spsolve(k[free][:, free].tocsc(), b[free])
    return phi
