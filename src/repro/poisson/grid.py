"""Structured grids for the finite-difference Poisson solvers.

Grids are node-centered and rectilinear with uniform spacing per axis.
Lengths are in nanometres throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Grid1D:
    """Uniform 1-D grid on ``[0, length]`` with ``n`` nodes."""

    length_nm: float
    n: int

    def __post_init__(self) -> None:
        if self.length_nm <= 0.0:
            raise ValueError(f"length must be positive, got {self.length_nm}")
        if self.n < 2:
            raise ValueError(f"need at least 2 nodes, got {self.n}")

    @property
    def spacing_nm(self) -> float:
        return self.length_nm / (self.n - 1)

    @property
    def coordinates(self) -> np.ndarray:
        return np.linspace(0.0, self.length_nm, self.n)

    @property
    def shape(self) -> tuple[int, ...]:
        return (self.n,)

    @property
    def spacings(self) -> tuple[float, ...]:
        return (self.spacing_nm,)


@dataclass(frozen=True)
class Grid2D:
    """Uniform 2-D grid on ``[0, lx] x [0, ly]``."""

    lx_nm: float
    ly_nm: float
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.lx_nm <= 0.0 or self.ly_nm <= 0.0:
            raise ValueError("grid extents must be positive")
        if self.nx < 2 or self.ny < 2:
            raise ValueError("need at least 2 nodes per axis")

    @property
    def dx_nm(self) -> float:
        return self.lx_nm / (self.nx - 1)

    @property
    def dy_nm(self) -> float:
        return self.ly_nm / (self.ny - 1)

    @property
    def x(self) -> np.ndarray:
        return np.linspace(0.0, self.lx_nm, self.nx)

    @property
    def y(self) -> np.ndarray:
        return np.linspace(0.0, self.ly_nm, self.ny)

    @property
    def shape(self) -> tuple[int, ...]:
        return (self.nx, self.ny)

    @property
    def spacings(self) -> tuple[float, ...]:
        return (self.dx_nm, self.dy_nm)

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray]:
        """``(X, Y)`` arrays of shape ``(nx, ny)`` (ij indexing)."""
        return np.meshgrid(self.x, self.y, indexing="ij")

    def nearest_index(self, x_nm: float, y_nm: float) -> tuple[int, int]:
        """Indices of the node closest to a physical point."""
        i = int(round(np.clip(x_nm / self.dx_nm, 0, self.nx - 1)))
        j = int(round(np.clip(y_nm / self.dy_nm, 0, self.ny - 1)))
        return i, j


@dataclass(frozen=True)
class Grid3D:
    """Uniform 3-D grid on ``[0, lx] x [0, ly] x [0, lz]``."""

    lx_nm: float
    ly_nm: float
    lz_nm: float
    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        if min(self.lx_nm, self.ly_nm, self.lz_nm) <= 0.0:
            raise ValueError("grid extents must be positive")
        if min(self.nx, self.ny, self.nz) < 2:
            raise ValueError("need at least 2 nodes per axis")

    @property
    def spacings(self) -> tuple[float, ...]:
        return (self.lx_nm / (self.nx - 1),
                self.ly_nm / (self.ny - 1),
                self.lz_nm / (self.nz - 1))

    @property
    def shape(self) -> tuple[int, ...]:
        return (self.nx, self.ny, self.nz)

    @property
    def x(self) -> np.ndarray:
        return np.linspace(0.0, self.lx_nm, self.nx)

    @property
    def y(self) -> np.ndarray:
        return np.linspace(0.0, self.ly_nm, self.ny)

    @property
    def z(self) -> np.ndarray:
        return np.linspace(0.0, self.lz_nm, self.nz)
