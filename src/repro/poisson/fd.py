"""Finite-difference Poisson solvers on structured grids.

Solves the variable-coefficient Poisson equation

``div( eps_r grad(phi) ) = -rho / eps_0``

for the electrostatic potential ``phi`` (volts) with

* ``eps_r`` — relative permittivity per node (harmonically averaged onto
  faces so dielectric interfaces are handled conservatively),
* ``rho`` — charge density in C/nm^d for a d-dimensional grid,
* ``eps_0`` in F/nm, making the units close without conversion factors,
* Dirichlet nodes (gates, ohmic contacts) fixed via a boolean mask,
* homogeneous Neumann (zero normal flux) on every other boundary node,
  which arises naturally from dropping the missing-face flux.

A single dimension-agnostic assembler serves the 1-D/2-D/3-D wrappers.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.constants import EPS_0_F_PER_NM
from repro.poisson.grid import Grid1D, Grid2D, Grid3D


def _assemble_and_solve(
    shape: tuple[int, ...],
    spacings: tuple[float, ...],
    eps_r: np.ndarray,
    rho: np.ndarray,
    dirichlet_mask: np.ndarray,
    dirichlet_values: np.ndarray,
) -> np.ndarray:
    """Assemble the FD operator and solve; shared by all dimensions."""
    ndim = len(shape)
    n_total = int(np.prod(shape))

    eps_r = np.asarray(eps_r, dtype=float)
    rho = np.asarray(rho, dtype=float)
    dirichlet_mask = np.asarray(dirichlet_mask, dtype=bool)
    dirichlet_values = np.asarray(dirichlet_values, dtype=float)
    for name, arr in (("eps_r", eps_r), ("rho", rho),
                      ("dirichlet_mask", dirichlet_mask),
                      ("dirichlet_values", dirichlet_values)):
        if arr.shape != shape:
            raise ValueError(f"{name} has shape {arr.shape}, expected {shape}")
    if np.any(eps_r <= 0.0):
        raise ValueError("relative permittivity must be positive everywhere")
    if not np.any(dirichlet_mask):
        raise ValueError(
            "at least one Dirichlet node is required (otherwise the "
            "Neumann problem is singular)")

    # Node volume for the source term (cell-centered control volumes of
    # size prod(spacings); boundary half-cells are absorbed into the same
    # expression, which is second-order accurate in the interior and first
    # order at Neumann boundaries - adequate for the smooth gate fields
    # simulated here).
    cell_volume = float(np.prod(spacings))

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    diag = np.zeros(n_total)
    # The assembled operator is the *negative* divergence (SPD), so
    # A phi = +rho V / eps_0.
    rhs = (rho.ravel() * cell_volume) / EPS_0_F_PER_NM

    strides = np.array([int(np.prod(shape[d + 1:])) for d in range(ndim)])
    flat_index = np.arange(n_total).reshape(shape)

    for axis in range(ndim):
        h = spacings[axis]
        # Cross-sectional area of the face perpendicular to `axis`.
        area = cell_volume / h
        coeff = area / h

        sl_lo = [slice(None)] * ndim
        sl_hi = [slice(None)] * ndim
        sl_lo[axis] = slice(0, shape[axis] - 1)
        sl_hi[axis] = slice(1, shape[axis])

        eps_lo = eps_r[tuple(sl_lo)].ravel()
        eps_hi = eps_r[tuple(sl_hi)].ravel()
        eps_face = 2.0 * eps_lo * eps_hi / (eps_lo + eps_hi)

        idx_lo = flat_index[tuple(sl_lo)].ravel()
        idx_hi = flat_index[tuple(sl_hi)].ravel()

        w = coeff * eps_face
        # Flux contribution: A[lo, hi] -= w; A[lo, lo] += w; symmetric.
        rows.append(idx_lo)
        cols.append(idx_hi)
        vals.append(-w)
        rows.append(idx_hi)
        cols.append(idx_lo)
        vals.append(-w)
        np.add.at(diag, idx_lo, w)
        np.add.at(diag, idx_hi, w)

    rows.append(np.arange(n_total))
    cols.append(np.arange(n_total))
    vals.append(diag)

    a = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n_total, n_total))

    # Impose Dirichlet rows: phi_i = value_i, and move known values to the
    # right-hand side of the remaining equations.
    mask = dirichlet_mask.ravel()
    values = dirichlet_values.ravel()
    free = ~mask

    b = rhs - a @ (values * mask)
    a_ff = a[free][:, free].tocsc()
    b_f = b[free]

    phi = np.empty(n_total)
    phi[mask] = values[mask]
    if np.any(free):
        phi[free] = spla.spsolve(a_ff, b_f)
    return phi.reshape(shape)


def solve_poisson_1d(
    grid: Grid1D,
    eps_r: np.ndarray,
    rho_c_per_nm: np.ndarray,
    dirichlet_mask: np.ndarray,
    dirichlet_values: np.ndarray,
) -> np.ndarray:
    """1-D Poisson solve; ``rho`` in C/nm (line charge density)."""
    return _assemble_and_solve(grid.shape, grid.spacings, eps_r,
                               rho_c_per_nm, dirichlet_mask, dirichlet_values)


def solve_poisson_2d(
    grid: Grid2D,
    eps_r: np.ndarray,
    rho_c_per_nm2: np.ndarray,
    dirichlet_mask: np.ndarray,
    dirichlet_values: np.ndarray,
) -> np.ndarray:
    """2-D Poisson solve; ``rho`` in C/nm^2.

    The 2-D problem describes a geometry that is translationally invariant
    in the third direction; charge is then per unit area of the simulated
    plane (equivalently, volumetric charge integrated over the out-of-plane
    unit length).
    """
    return _assemble_and_solve(grid.shape, grid.spacings, eps_r,
                               rho_c_per_nm2, dirichlet_mask, dirichlet_values)


def solve_poisson_3d(
    grid: Grid3D,
    eps_r: np.ndarray,
    rho_c_per_nm3: np.ndarray,
    dirichlet_mask: np.ndarray,
    dirichlet_values: np.ndarray,
) -> np.ndarray:
    """3-D Poisson solve; ``rho`` in C/nm^3."""
    return _assemble_and_solve(grid.shape, grid.spacings, eps_r,
                               rho_c_per_nm3, dirichlet_mask, dirichlet_values)
