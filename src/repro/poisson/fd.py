"""Finite-difference Poisson solvers on structured grids.

Solves the variable-coefficient Poisson equation

``div( eps_r grad(phi) ) = -rho / eps_0``

for the electrostatic potential ``phi`` (volts) with

* ``eps_r`` — relative permittivity per node (harmonically averaged onto
  faces so dielectric interfaces are handled conservatively),
* ``rho`` — charge density in C/nm^d for a d-dimensional grid,
* ``eps_0`` in F/nm, making the units close without conversion factors,
* Dirichlet nodes (gates, ohmic contacts) fixed via a boolean mask,
* homogeneous Neumann (zero normal flux) on every other boundary node,
  which arises naturally from dropping the missing-face flux.

Operator assembly is split from solving: a :class:`PoissonOperator`
assembles the FD matrix once per (grid, permittivity, Dirichlet mask)
and holds a sparse LU factorization of the free-node block, so each
subsequent solve — bias and charge enter only through the right-hand
side — is two triangular substitutions.  One operator therefore serves
every SCF iteration of every bias point of a sweep.  The
``solve_poisson_1d/2d/3d`` functions remain as one-shot compatibility
wrappers over a throwaway operator.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs
from repro.constants import EPS_0_F_PER_NM
from repro.poisson.grid import Grid1D, Grid2D, Grid3D


def _assemble_matrix(
    shape: tuple[int, ...],
    spacings: tuple[float, ...],
    eps_r: np.ndarray,
) -> tuple[sp.csr_matrix, float]:
    """Assemble the (negative-divergence, SPD) FD operator.

    Returns ``(A, cell_volume)`` where ``A phi = rho V / eps_0`` before
    Dirichlet elimination.  The node volume is the cell-centered control
    volume ``prod(spacings)``; boundary half-cells are absorbed into the
    same expression, which is second-order accurate in the interior and
    first order at Neumann boundaries — adequate for the smooth gate
    fields simulated here.
    """
    ndim = len(shape)
    n_total = int(np.prod(shape))
    cell_volume = float(np.prod(spacings))

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    diag = np.zeros(n_total)
    flat_index = np.arange(n_total).reshape(shape)

    for axis in range(ndim):
        h = spacings[axis]
        # Cross-sectional area of the face perpendicular to `axis`.
        area = cell_volume / h
        coeff = area / h

        sl_lo = [slice(None)] * ndim
        sl_hi = [slice(None)] * ndim
        sl_lo[axis] = slice(0, shape[axis] - 1)
        sl_hi[axis] = slice(1, shape[axis])

        eps_lo = eps_r[tuple(sl_lo)].ravel()
        eps_hi = eps_r[tuple(sl_hi)].ravel()
        eps_face = 2.0 * eps_lo * eps_hi / (eps_lo + eps_hi)

        idx_lo = flat_index[tuple(sl_lo)].ravel()
        idx_hi = flat_index[tuple(sl_hi)].ravel()

        w = coeff * eps_face
        # Flux contribution: A[lo, hi] -= w; A[lo, lo] += w; symmetric.
        rows.append(idx_lo)
        cols.append(idx_hi)
        vals.append(-w)
        rows.append(idx_hi)
        cols.append(idx_lo)
        vals.append(-w)
        np.add.at(diag, idx_lo, w)
        np.add.at(diag, idx_hi, w)

    rows.append(np.arange(n_total))
    cols.append(np.arange(n_total))
    vals.append(diag)

    a = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n_total, n_total))
    return a, cell_volume


class PoissonOperator:
    """Prefactorized FD Poisson operator for one (grid, eps, mask) triple.

    Assembly and LU factorization of the free-node block happen once in
    the constructor; :meth:`solve` then costs two sparse triangular
    substitutions per call.  Charge density and Dirichlet *values* vary
    per solve — the Dirichlet *mask* (which nodes are pinned) is part of
    the operator, because eliminating different node sets changes the
    factorized matrix.

    Parameters
    ----------
    shape, spacings:
        Grid shape and per-axis node spacings (nm); pass ``grid.shape``
        and ``grid.spacings`` of a :class:`~repro.poisson.grid.Grid1D`/
        ``Grid2D``/``Grid3D``, or use :meth:`for_grid`.
    eps_r:
        Relative permittivity per node, same shape as the grid.
    dirichlet_mask:
        Boolean array marking pinned nodes (at least one required).
    """

    def __init__(self, shape: tuple[int, ...], spacings: tuple[float, ...],
                 eps_r: np.ndarray, dirichlet_mask: np.ndarray):
        shape = tuple(int(n) for n in shape)
        eps_r = np.asarray(eps_r, dtype=float)
        dirichlet_mask = np.asarray(dirichlet_mask, dtype=bool)
        for name, arr in (("eps_r", eps_r),
                          ("dirichlet_mask", dirichlet_mask)):
            if arr.shape != shape:
                raise ValueError(f"{name} has shape {arr.shape}, "
                                 f"expected {shape}")
        if np.any(eps_r <= 0.0):
            raise ValueError("relative permittivity must be positive everywhere")
        if not np.any(dirichlet_mask):
            raise ValueError(
                "at least one Dirichlet node is required (otherwise the "
                "Neumann problem is singular)")

        self.shape = shape
        self.spacings = tuple(float(h) for h in spacings)
        self.matrix, self._cell_volume = _assemble_matrix(
            shape, self.spacings, eps_r)
        self._mask = dirichlet_mask.ravel()
        self._free = ~self._mask
        self._any_free = bool(np.any(self._free))
        # Sparse LU of the free-node block: the one-time O(n^1.5) cost
        # that turns every later solve into two triangular substitutions.
        self._lu = (spla.splu(self.matrix[self._free][:, self._free].tocsc())
                    if self._any_free else None)
        if obs.ACTIVE:
            obs.incr("poisson.factor_builds")

    @classmethod
    def for_grid(cls, grid: Grid1D | Grid2D | Grid3D, eps_r: np.ndarray,
                 dirichlet_mask: np.ndarray) -> "PoissonOperator":
        """Operator on a structured grid object (any dimensionality)."""
        return cls(grid.shape, grid.spacings, eps_r, dirichlet_mask)

    def solve(self, rho: np.ndarray,
              dirichlet_values: np.ndarray) -> np.ndarray:
        """Potential for one charge density + Dirichlet-value assignment.

        ``rho`` is in C/nm^d; ``dirichlet_values`` supplies the pinned
        potentials on masked nodes (entries outside the mask are
        ignored).  Only the right-hand side depends on these inputs, so
        repeated calls reuse the stored factorization.
        """
        rho = np.asarray(rho, dtype=float)
        dirichlet_values = np.asarray(dirichlet_values, dtype=float)
        for name, arr in (("rho", rho),
                          ("dirichlet_values", dirichlet_values)):
            if arr.shape != self.shape:
                raise ValueError(f"{name} has shape {arr.shape}, "
                                 f"expected {self.shape}")

        # The assembled operator is the *negative* divergence (SPD), so
        # A phi = +rho V / eps_0.
        rhs = (rho.ravel() * self._cell_volume) / EPS_0_F_PER_NM
        values = dirichlet_values.ravel()
        # Impose Dirichlet rows: phi_i = value_i, and move known values
        # to the right-hand side of the remaining equations.
        b = rhs - self.matrix @ (values * self._mask)

        phi = np.empty(self._mask.size)
        phi[self._mask] = values[self._mask]
        if self._lu is not None:
            phi[self._free] = self._lu.solve(b[self._free])
        if obs.ACTIVE:
            obs.incr("poisson.factor_solves")
        return phi.reshape(self.shape)


def _assemble_and_solve(
    shape: tuple[int, ...],
    spacings: tuple[float, ...],
    eps_r: np.ndarray,
    rho: np.ndarray,
    dirichlet_mask: np.ndarray,
    dirichlet_values: np.ndarray,
) -> np.ndarray:
    """One-shot assemble + solve; shared by the dimension wrappers."""
    op = PoissonOperator(shape, spacings, np.asarray(eps_r, dtype=float),
                         dirichlet_mask)
    return op.solve(rho, dirichlet_values)


def solve_poisson_1d(
    grid: Grid1D,
    eps_r: np.ndarray,
    rho_c_per_nm: np.ndarray,
    dirichlet_mask: np.ndarray,
    dirichlet_values: np.ndarray,
) -> np.ndarray:
    """1-D Poisson solve; ``rho`` in C/nm (line charge density)."""
    return _assemble_and_solve(grid.shape, grid.spacings, eps_r,
                               rho_c_per_nm, dirichlet_mask, dirichlet_values)


def solve_poisson_2d(
    grid: Grid2D,
    eps_r: np.ndarray,
    rho_c_per_nm2: np.ndarray,
    dirichlet_mask: np.ndarray,
    dirichlet_values: np.ndarray,
) -> np.ndarray:
    """2-D Poisson solve; ``rho`` in C/nm^2.

    The 2-D problem describes a geometry that is translationally invariant
    in the third direction; charge is then per unit area of the simulated
    plane (equivalently, volumetric charge integrated over the out-of-plane
    unit length).
    """
    return _assemble_and_solve(grid.shape, grid.spacings, eps_r,
                               rho_c_per_nm2, dirichlet_mask, dirichlet_values)


def solve_poisson_3d(
    grid: Grid3D,
    eps_r: np.ndarray,
    rho_c_per_nm3: np.ndarray,
    dirichlet_mask: np.ndarray,
    dirichlet_values: np.ndarray,
) -> np.ndarray:
    """3-D Poisson solve; ``rho`` in C/nm^3."""
    return _assemble_and_solve(grid.shape, grid.spacings, eps_r,
                               rho_c_per_nm3, dirichlet_mask, dirichlet_values)
