"""Observability layer: opt-in span tracing, metrics, and run manifests.

Layer: cross-cutting utility (imports nothing above :mod:`repro.errors`;
importable from runtime, negf, device, circuit, exploration and cli).
Responsibility: answer "where did this run spend its time and
iterations" without changing any numerical result.

The recorder is process-local: one module-level :class:`Recorder`
accumulates spans, counters, gauges and histograms; hot call sites
guard with ``if obs.ACTIVE:`` so the disabled path is one attribute
load and an untaken branch (the same pattern — and the same overhead
benchmark methodology — as :mod:`repro.sanitize`, pinned by
``benchmarks/bench_obs_overhead.py``).  Worker processes spawned by
:func:`repro.runtime.parallel_map` inherit ``REPRO_TRACE`` through the
environment, record into their own recorder, and ship a
:func:`drain`-ed payload back with their chunk results; the parent
:func:`absorb`-s those payloads in chunk order, so aggregation is
deterministic at any worker count.

Spans aggregate by *path*: a span named ``b`` opened inside a span
named ``a`` contributes to the key ``"a/b"``.  Durations use
``time.perf_counter`` (interval timing only — manifests deliberately
carry no wall-clock timestamps, keeping the determinism contract of
RPA103 intact).

Submodules: :mod:`repro.obs.manifest` (per-run JSON manifests, written
atomically) and :mod:`repro.obs.summary` (text/JSON reporters behind
``repro trace summarize``); both are re-exported here.

The flag, the recorder, and the recording helpers live directly in this
``__init__`` — not a submodule — so ``obs.ACTIVE`` is the *defining*
attribute: :func:`enable`, ``monkeypatch.setattr(obs, "ACTIVE", ...)``
and every ``if obs.ACTIVE:`` guard all touch the same binding.
"""

from __future__ import annotations

import os
import time
from typing import Any, Mapping

#: Environment variable that switches tracing on for a process tree
#: (worker processes spawned by ``runtime.parallel_map`` inherit it).
TRACE_ENV = "REPRO_TRACE"

_FALSEY = ("", "0", "false", "off", "no")

#: Raw observations retained per histogram; count/total/min/max stay
#: exact beyond the cap, only the stored sample list saturates.
HISTOGRAM_VALUE_CAP = 4096

#: Structured failure records retained per run; a counter
#: (``resilience.failures_dropped``) keeps the overflow visible.
FAILURE_RECORD_CAP = 1024


def _env_active() -> bool:
    return os.environ.get(TRACE_ENV, "").strip().lower() not in _FALSEY


#: Module-level guard flag read by every instrumented call site
#: (``if obs.ACTIVE:``).  Mutate only through :func:`enable` /
#: :func:`disable` so the environment stays in sync for worker processes.
ACTIVE: bool = _env_active()


def enable() -> None:
    """Switch tracing on for this process and future workers."""
    global ACTIVE
    ACTIVE = True
    os.environ[TRACE_ENV] = "1"


def disable() -> None:
    """Switch tracing off (and stop exporting it to workers)."""
    global ACTIVE
    ACTIVE = False
    os.environ.pop(TRACE_ENV, None)


def active() -> bool:
    """Current tracing state (prefer reading :data:`ACTIVE` in hot paths)."""
    return ACTIVE


class Recorder:
    """Process-local accumulator for spans, counters, gauges, histograms.

    All state is plain dictionaries keyed by metric/span name so a
    :meth:`snapshot` is directly JSON-serializable and :meth:`merge`
    (used to absorb worker payloads) is pure dictionary arithmetic.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[str, Any]] = {}
        self.spans: dict[str, dict[str, Any]] = {}
        self.failures: list[dict[str, Any]] = []
        self.annotations: dict[str, str] = {}
        self.stack: list[str] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def incr(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def annotate(self, name: str, value: str) -> None:
        """Set a string annotation (last writer wins).

        Annotations carry small categorical facts that are not numbers —
        the scheduler kind of a run, a degradation reason — and surface
        verbatim in the run manifest.
        """
        self.annotations[name] = str(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = {"count": 0, "total": 0.0, "min": value, "max": value,
                    "values": []}
            self.histograms[name] = hist
        hist["count"] += 1
        hist["total"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)
        if len(hist["values"]) < HISTOGRAM_VALUE_CAP:
            hist["values"].append(value)

    def record_span(self, path: str, duration_s: float,
                    attrs: Mapping[str, Any]) -> None:
        span = self.spans.get(path)
        if span is None:
            span = {"count": 0, "total_s": 0.0, "min_s": duration_s,
                    "max_s": duration_s, "attrs": {}}
            self.spans[path] = span
        span["count"] += 1
        span["total_s"] += duration_s
        span["min_s"] = min(span["min_s"], duration_s)
        span["max_s"] = max(span["max_s"], duration_s)
        if attrs:
            span["attrs"].update(attrs)

    def record_failure(self, record: Mapping[str, Any]) -> None:
        """Append one structured quarantine record (JSON-safe mapping).

        Records past :data:`FAILURE_RECORD_CAP` are dropped but counted
        under ``resilience.failures_dropped`` so saturation is visible.
        """
        if len(self.failures) < FAILURE_RECORD_CAP:
            self.failures.append(dict(record))
        else:
            self.incr("resilience.failures_dropped")

    def current_path(self) -> str:
        """Path of the innermost open span (empty string at top level)."""
        return self.stack[-1] if self.stack else ""

    # ------------------------------------------------------------------ #
    # Export / merge
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, Any]:
        """Deep-copied, JSON-serializable view of the recorded state."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: {"count": h["count"], "total": h["total"],
                       "min": h["min"], "max": h["max"],
                       "values": list(h["values"])}
                for name, h in sorted(self.histograms.items())},
            "spans": {
                path: {"count": s["count"], "total_s": s["total_s"],
                       "min_s": s["min_s"], "max_s": s["max_s"],
                       "attrs": dict(s["attrs"])}
                for path, s in sorted(self.spans.items())},
            "failures": [dict(f) for f in self.failures],
            "annotations": dict(sorted(self.annotations.items())),
        }

    def merge(self, payload: Mapping[str, Any], prefix: str = "") -> None:
        """Fold a :meth:`snapshot` payload into this recorder.

        ``prefix`` re-roots the payload's span paths (used to nest worker
        spans under the parent's currently open span).  Counter and
        histogram merges are order-independent; gauges are last-writer-
        wins, which is deterministic because callers merge payloads in
        chunk order.
        """
        for name, value in payload.get("counters", {}).items():
            self.incr(name, value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name, value)
        for name, h in payload.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = {"count": 0, "total": 0.0, "min": h["min"],
                        "max": h["max"], "values": []}
                self.histograms[name] = hist
            hist["count"] += h["count"]
            hist["total"] += h["total"]
            hist["min"] = min(hist["min"], h["min"])
            hist["max"] = max(hist["max"], h["max"])
            room = HISTOGRAM_VALUE_CAP - len(hist["values"])
            if room > 0:
                hist["values"].extend(h["values"][:room])
        for path, s in payload.get("spans", {}).items():
            full = f"{prefix}/{path}" if prefix else path
            span = self.spans.get(full)
            if span is None:
                span = {"count": 0, "total_s": 0.0, "min_s": s["min_s"],
                        "max_s": s["max_s"], "attrs": {}}
                self.spans[full] = span
            span["count"] += s["count"]
            span["total_s"] += s["total_s"]
            span["min_s"] = min(span["min_s"], s["min_s"])
            span["max_s"] = max(span["max_s"], s["max_s"])
            span["attrs"].update(s.get("attrs", {}))
        for record in payload.get("failures", []):
            self.record_failure(record)
        for name, value in payload.get("annotations", {}).items():
            self.annotate(name, value)

    def reset(self) -> None:
        """Drop all recorded state (open-span stack included)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()
        self.failures.clear()
        self.annotations.clear()
        self.stack.clear()


#: The process-wide recorder every module-level helper writes into.
_RECORDER = Recorder()


class _Span:
    """Context manager timing one traced region (enabled path)."""

    __slots__ = ("name", "attrs", "_path", "_start")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self._path = ""
        self._start = 0.0

    def __enter__(self) -> "_Span":
        parent = _RECORDER.current_path()
        self._path = f"{parent}/{self.name}" if parent else self.name
        _RECORDER.stack.append(self._path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = time.perf_counter() - self._start
        if _RECORDER.stack and _RECORDER.stack[-1] == self._path:
            _RECORDER.stack.pop()
        _RECORDER.record_span(self._path, duration, self.attrs)


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: Singleton no-op context manager: ``span(...)`` returns this exact
#: object whenever :data:`ACTIVE` is false, so the disabled path
#: allocates nothing.
NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any) -> "_Span | _NullSpan":
    """Open a traced region: ``with obs.span("scf.solve", vg=0.4): ...``.

    Nested spans aggregate under slash-joined paths
    (``"device.sweep_iv/runtime.parallel_map"``).  Keyword attributes are
    attached to the aggregate (last occurrence wins) — use them for
    small identifying facts (device index, bias), not bulk data.
    """
    if not ACTIVE:
        return NULL_SPAN
    return _Span(name, attrs)


def incr(name: str, value: float = 1) -> None:
    """Add ``value`` to a counter (no-op while disabled)."""
    if ACTIVE:
        _RECORDER.incr(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge to its latest value (no-op while disabled)."""
    if ACTIVE:
        _RECORDER.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op while disabled)."""
    if ACTIVE:
        _RECORDER.observe(name, float(value))


def record_failure(record: Mapping[str, Any]) -> None:
    """Record one structured failure record (no-op while disabled)."""
    if ACTIVE:
        _RECORDER.record_failure(record)


def annotate(name: str, value: str) -> None:
    """Set a string annotation, last writer wins (no-op while disabled)."""
    if ACTIVE:
        _RECORDER.annotate(name, value)


def current_recorder() -> Recorder:
    """The process-wide recorder (mainly for tests and manifests)."""
    return _RECORDER


def snapshot() -> dict[str, Any]:
    """JSON-serializable copy of everything recorded so far."""
    return _RECORDER.snapshot()


def reset() -> None:
    """Clear the process-wide recorder."""
    _RECORDER.reset()


def drain() -> dict[str, Any]:
    """Snapshot the recorder and clear it (the worker-side handoff)."""
    payload = _RECORDER.snapshot()
    _RECORDER.reset()
    return payload


def absorb(payload: Mapping[str, Any] | None, nest: bool = True) -> None:
    """Merge a worker payload into this process's recorder.

    With ``nest=True`` the payload's spans are re-rooted under the
    currently open span, so spans recorded inside worker processes keep
    a correct parent chain across the :func:`repro.runtime.parallel_map`
    process boundary.
    """
    if payload is None:
        return
    prefix = _RECORDER.current_path() if nest else ""
    _RECORDER.merge(payload, prefix=prefix)


from repro.obs.manifest import (  # noqa: E402
    MANIFEST_SCHEMA,
    build_manifest,
    compute_rollups,
    environment_knobs,
    git_revision,
    load_manifest,
    write_manifest,
)
from repro.obs.summary import (  # noqa: E402
    DEFAULT_TOP_SPANS,
    summarize_json,
    summarize_text,
    top_spans,
)

__all__ = [
    "ACTIVE",
    "TRACE_ENV",
    "FAILURE_RECORD_CAP",
    "HISTOGRAM_VALUE_CAP",
    "NULL_SPAN",
    "Recorder",
    "absorb",
    "active",
    "annotate",
    "current_recorder",
    "disable",
    "drain",
    "enable",
    "gauge",
    "incr",
    "observe",
    "record_failure",
    "reset",
    "snapshot",
    "span",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "compute_rollups",
    "environment_knobs",
    "git_revision",
    "load_manifest",
    "write_manifest",
    "DEFAULT_TOP_SPANS",
    "summarize_json",
    "summarize_text",
    "top_spans",
]
