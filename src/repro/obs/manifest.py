"""Per-run JSON manifests: config, environment, timings, metric rollups.

A manifest is the durable artifact of a traced run: one JSON document
holding the run's configuration, the ``REPRO_*`` environment knobs, the
git revision, interval timings (``perf_counter`` wall span and
``process_time`` CPU span — never absolute timestamps), the full
recorder snapshot, and a small set of *rollups* — the headline numbers
(SCF iterations, energy-grid evaluations, cache hit rate) that answer
"where did this run spend its effort" without reading the raw spans.

Writes are atomic (temp file + ``os.replace`` in the destination
directory), matching the artifact-cache discipline in
:mod:`repro.runtime.cache`.
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Any, Mapping

#: Schema tag stamped into every manifest; bump on breaking layout changes.
MANIFEST_SCHEMA = "repro-obs-manifest/1"


def git_revision() -> str | None:
    """Best-effort ``git rev-parse HEAD`` of the working tree, else None."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def environment_knobs() -> dict[str, str]:
    """All ``REPRO_*`` environment variables, sorted by name."""
    return {k: v for k, v in sorted(os.environ.items())
            if k.startswith("REPRO_")}


def compute_rollups(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """Headline aggregates derived from a recorder snapshot.

    Every key is always present (zero / ``None`` when the corresponding
    subsystem never ran), so downstream consumers can index without
    guards.  ``cache_hit_rate`` is ``None`` when no cache lookup
    happened at all — a 0.0 would wrongly read as "everything missed".
    """
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    gauges = snapshot.get("gauges", {})
    annotations = snapshot.get("annotations", {})

    def count(name: str) -> float:
        return counters.get(name, 0)

    scf_solves = count("scf.solves")
    scf_iterations = count("scf.iterations")
    warm_solves = count("scf.warm_solves")
    warm_iterations = count("scf.warm_iterations")
    cold_solves = count("scf.cold_solves")
    cold_iterations = count("scf.cold_iterations")
    artifact_hits = count("cache.artifact_hits")
    artifact_misses = count("cache.artifact_misses")
    memory_hits = count("cache.table_memory_hits")
    hits = artifact_hits + memory_hits
    lookups = hits + artifact_misses

    iter_hist = histograms.get("scf.iterations_to_converge", {})
    return {
        "scf_solves": scf_solves,
        "scf_iterations_total": scf_iterations,
        "scf_iterations_mean": (
            scf_iterations / scf_solves if scf_solves else None),
        "scf_iterations_max": iter_hist.get("max"),
        # Warm-start continuation split: a blended mean hides the effect
        # of seeding a solve from an adjacent bias point, so cold and
        # warm solves are averaged separately.
        "scf_warm_starts": count("scf.warm_starts"),
        "scf_cold_iterations_mean": (
            cold_iterations / cold_solves if cold_solves else None),
        "scf_warm_iterations_mean": (
            warm_iterations / warm_solves if warm_solves else None),
        "energy_grids_built": count("negf.energy_grids"),
        "energy_grid_points_total": count("negf.energy_grid_points"),
        "rgf_block_solves_total": count("negf.rgf_block_solves"),
        "dense_gf_solves_total": count("negf.dense_gf_solves"),
        "chain_rgf_energy_points_total": count("negf.chain_energy_points"),
        "newton_iterations_total": count("circuit.newton_iterations"),
        "transient_steps_total": count("circuit.transient_steps"),
        "device_bias_points": count("device.bias_points"),
        "cache_hits": hits,
        "cache_misses": artifact_misses,
        "cache_hit_rate": (hits / lookups if lookups else None),
        "table_builds": count("cache.table_builds"),
        "table_memory_hits": memory_hits,
        "table_disk_hits": count("cache.table_disk_hits"),
        # Resilience: how often solves escalated, and what was lost.
        "resilience_retries": count("resilience.retries"),
        "scf_retries": count("scf.retries"),
        "sr_retries": count("negf.sr_retries"),
        "cells_quarantined": count("resilience.quarantined"),
        "ladders_exhausted": count("resilience.exhausted"),
        "worker_crash_recoveries": count("resilience.worker_crash_recoveries"),
        "checkpoint_writes": count("resilience.checkpoint_writes"),
        "checkpoint_resumes": count("resilience.checkpoint_resumes"),
        # Scheduler attribution: which dispatch seam ran the waves, and
        # how hard the distributed machinery had to fight for them.
        "scheduler_kind": annotations.get("scheduler_kind", "LocalScheduler"),
        "scheduler_agents": gauges.get("scheduler.agents", 0),
        "leases_granted": count("scheduler.leases_granted"),
        "leases_redispatched": count("scheduler.leases_redispatched"),
        "leases_expired": count("scheduler.leases_expired"),
        "agent_stalls": count("scheduler.agent_stalls"),
        "agent_crashes": count("scheduler.agent_crashes"),
        "agents_quarantined": count("scheduler.agents_quarantined"),
        "local_fallbacks": count("scheduler.local_fallbacks"),
        "local_fallback_tasks": count("scheduler.local_fallback_tasks"),
        "deadlines_exceeded": count("resilience.deadline_exceeded"),
    }


def build_manifest(label: str,
                   config: Mapping[str, Any] | None = None,
                   seed: int | None = None,
                   wall_s: float | None = None,
                   cpu_s: float | None = None,
                   snapshot: Mapping[str, Any] | None = None,
                   ) -> dict[str, Any]:
    """Assemble a manifest document from a recorder snapshot.

    ``snapshot`` defaults to the live process recorder
    (:func:`repro.obs.snapshot`).  ``wall_s`` / ``cpu_s`` are *interval*
    durations measured by the caller with ``time.perf_counter`` /
    ``time.process_time`` deltas.
    """
    # Function-level import: manifest is imported while the obs package
    # ``__init__`` (which owns the live recorder) is still executing.
    from repro import obs
    snap = dict(snapshot) if snapshot is not None else obs.snapshot()
    return {
        "schema": MANIFEST_SCHEMA,
        "label": label,
        "config": dict(config) if config is not None else {},
        "seed": seed,
        "git_rev": git_revision(),
        "env": environment_knobs(),
        "timing": {"wall_s": wall_s, "cpu_s": cpu_s},
        "counters": snap.get("counters", {}),
        "gauges": snap.get("gauges", {}),
        "histograms": snap.get("histograms", {}),
        "spans": snap.get("spans", {}),
        "failures": snap.get("failures", []),
        "annotations": snap.get("annotations", {}),
        "rollups": compute_rollups(snap),
    }


def write_manifest(manifest: Mapping[str, Any], path: str | Path) -> Path:
    """Atomically write a manifest as indented JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(manifest, indent=2, sort_keys=False)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text + "\n")
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Read a manifest back; raises ValueError on a wrong schema tag."""
    with open(path) as handle:
        manifest = json.load(handle)
    schema = manifest.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: unsupported manifest schema {schema!r} "
            f"(expected {MANIFEST_SCHEMA!r})")
    return manifest
