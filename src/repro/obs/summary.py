"""Render a run manifest for humans (text) and machines (JSON).

``obs`` sits below :mod:`repro.reporting` in the layer DAG, so the text
renderer here is deliberately self-contained: plain column alignment
and an ASCII bar histogram, no table helpers imported from higher
layers.  The JSON summary is the same information with raw histogram
sample lists reduced to count/mean/min/max — small enough to diff or
feed to a dashboard.
"""

from __future__ import annotations

from typing import Any, Mapping

#: Default number of spans shown in "top spans by total time".
DEFAULT_TOP_SPANS = 10

_HIST_BINS = 8
_HIST_BAR_WIDTH = 24


def top_spans(manifest: Mapping[str, Any],
              top: int = DEFAULT_TOP_SPANS) -> list[dict[str, Any]]:
    """Spans sorted by cumulative time, heaviest first."""
    spans = manifest.get("spans", {})
    ranked = sorted(spans.items(),
                    key=lambda item: (-item[1].get("total_s", 0.0), item[0]))
    return [
        {"path": path,
         "count": stats.get("count", 0),
         "total_s": stats.get("total_s", 0.0),
         "mean_s": (stats.get("total_s", 0.0) / stats["count"]
                    if stats.get("count") else 0.0),
         "attrs": stats.get("attrs", {})}
        for path, stats in ranked[:top]
    ]


def _histogram_lines(name: str, hist: Mapping[str, Any]) -> list[str]:
    count = hist.get("count", 0)
    lo, hi = hist.get("min", 0), hist.get("max", 0)
    mean = hist.get("total", 0.0) / count if count else 0.0
    lines = [f"  {name}: n={count} min={lo:g} mean={mean:.3g} max={hi:g}"]
    values = hist.get("values", [])
    if not values or lo == hi:
        return lines
    n_bins = min(_HIST_BINS, max(1, len(set(values))))
    width = (hi - lo) / n_bins
    bins = [0] * n_bins
    for v in values:
        idx = min(int((v - lo) / width), n_bins - 1)
        bins[idx] += 1
    peak = max(bins)
    for i, n in enumerate(bins):
        bar = "#" * max(1 if n else 0,
                        round(_HIST_BAR_WIDTH * n / peak))
        lines.append(f"    [{lo + i * width:>10.4g}, "
                     f"{lo + (i + 1) * width:>10.4g})  "
                     f"{bar:<{_HIST_BAR_WIDTH}} {n}")
    return lines


def summarize_text(manifest: Mapping[str, Any],
                   top: int = DEFAULT_TOP_SPANS) -> str:
    """Multi-section plain-text summary of a run manifest."""
    lines: list[str] = []
    label = manifest.get("label", "<unlabeled>")
    lines.append(f"run manifest: {label}")
    git_rev = manifest.get("git_rev")
    if git_rev:
        lines.append(f"  git: {git_rev}")
    timing = manifest.get("timing", {})
    wall, cpu = timing.get("wall_s"), timing.get("cpu_s")
    if wall is not None:
        cpu_text = f", cpu {cpu:.3f} s" if cpu is not None else ""
        lines.append(f"  timing: wall {wall:.3f} s{cpu_text}")
    env = manifest.get("env", {})
    if env:
        knobs = " ".join(f"{k}={v}" for k, v in sorted(env.items()))
        lines.append(f"  env: {knobs}")
    seed = manifest.get("seed")
    if seed is not None:
        lines.append(f"  seed: {seed}")

    rollups = manifest.get("rollups", {})
    if rollups:
        lines.append("")
        lines.append("rollups")
        for key, value in rollups.items():
            if value is None:
                rendered = "n/a"
            elif isinstance(value, float) and not value.is_integer():
                rendered = f"{value:.4g}"
            else:
                rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {key:<32} {rendered}")

    ranked = top_spans(manifest, top=top)
    if ranked:
        lines.append("")
        lines.append(f"top spans by total time (top {len(ranked)})")
        path_w = max(len(s["path"]) for s in ranked)
        lines.append(f"  {'span':<{path_w}}  {'count':>7}  "
                     f"{'total (s)':>10}  {'mean (s)':>10}")
        for s in ranked:
            lines.append(f"  {s['path']:<{path_w}}  {s['count']:>7}  "
                         f"{s['total_s']:>10.4f}  {s['mean_s']:>10.6f}")

    counters = manifest.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters")
        name_w = max(len(n) for n in counters)
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<{name_w}}  {value:g}")

    histograms = manifest.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms")
        for name, hist in sorted(histograms.items()):
            lines.extend(_histogram_lines(name, hist))

    return "\n".join(lines) + "\n"


def summarize_json(manifest: Mapping[str, Any],
                   top: int = DEFAULT_TOP_SPANS) -> dict[str, Any]:
    """Machine-readable summary: rollups, ranked spans, histogram stats."""
    histograms = {}
    for name, hist in manifest.get("histograms", {}).items():
        count = hist.get("count", 0)
        histograms[name] = {
            "count": count,
            "min": hist.get("min"),
            "max": hist.get("max"),
            "mean": (hist.get("total", 0.0) / count) if count else None,
        }
    return {
        "schema": "repro-obs-summary/1",
        "label": manifest.get("label"),
        "git_rev": manifest.get("git_rev"),
        "timing": manifest.get("timing", {}),
        "env": manifest.get("env", {}),
        "seed": manifest.get("seed"),
        "rollups": manifest.get("rollups", {}),
        "top_spans": top_spans(manifest, top=top),
        "counters": manifest.get("counters", {}),
        "gauges": manifest.get("gauges", {}),
        "histograms": histograms,
    }
