"""Per-node parameter sets for the scaled-CMOS baseline.

Parameters are calibrated against the CMOS columns of the paper's
Table 1 (frequency / EDP / SNM of the 15-stage FO4 ring oscillator at
V_DD = 0.8 / 0.6 / 0.4 V for the 22 / 32 / 45 nm PTM nodes) — see
``PAPER_TABLE1_CMOS`` in :mod:`repro.device.calibration` and the
calibration test in ``tests/cmos/test_table1_calibration.py``.

The paper's devices correspond to micron-wide PTM transistors (the PTM
cards' default width); the fitted drive and capacitance values are in
that regime.  The threshold of each node is the PTM high-performance
value; subthreshold slope and leakage follow ITRS-era expectations
(SS ~ 100 mV/dec short channel, I_off ~ 100-400 nA/um growing as nodes
shrink).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cmos.mosfet import AlphaPowerMOSFET


@dataclass(frozen=True)
class PTMNode:
    """One technology node: matched n/p devices plus bookkeeping."""

    node_nm: int
    nmos: AlphaPowerMOSFET
    pmos: AlphaPowerMOSFET

    @property
    def label(self) -> str:
        return f"{self.node_nm}nm"


def _device(vt, b, alpha, vdsat_coeff, lam, i0, n_ss, cgs, cgd):
    return AlphaPowerMOSFET(
        vt_v=vt, b_a_per_valpha=b, alpha=alpha, vdsat_coeff=vdsat_coeff,
        channel_length_modulation=lam, i0_a=i0,
        subthreshold_ideality=n_ss, cgs_f=cgs, cgd_f=cgd)


def _node(node_nm, vt, b_n, cg, i0, n_ss=1.6, alpha=1.3,
          vdsat_coeff=0.9, lam=0.15, p_ratio=0.85):
    """Build a node with a p-device slightly weaker than the n-device.

    ``cg`` is the per-device gate capacitance, split 2:1 between C_GS and
    C_GD (overlap/Miller portion).
    """
    cgs, cgd = 2.0 * cg / 3.0, cg / 3.0
    nmos = _device(vt, b_n, alpha, vdsat_coeff, lam, i0, n_ss, cgs, cgd)
    pmos = _device(vt, b_n * p_ratio, alpha, vdsat_coeff, lam,
                   i0 * p_ratio, n_ss, cgs, cgd)
    return PTMNode(node_nm=node_nm, nmos=nmos, pmos=pmos)


#: Calibrated nodes (see module docstring).  Thresholds are PTM HP values;
#: drive, capacitance and leakage are fitted to the paper's Table 1.
PTM_NODES: dict[int, PTMNode] = {
    22: _node(22, vt=0.311, b_n=5.97e-3, cg=3.21e-15, i0=2.16e-7),
    32: _node(32, vt=0.306, b_n=7.87e-3, cg=5.35e-15, i0=1.50e-7),
    45: _node(45, vt=0.294, b_n=9.87e-3, cg=8.67e-15, i0=1.05e-7),
}


def ptm_node(node_nm: int) -> PTMNode:
    """Look up a calibrated node (22, 32 or 45 nm)."""
    if node_nm not in PTM_NODES:
        raise KeyError(
            f"no calibrated PTM node at {node_nm} nm; "
            f"available: {sorted(PTM_NODES)}")
    return PTM_NODES[node_nm]
