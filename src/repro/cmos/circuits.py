"""CMOS circuit metrics on the shared circuit engine.

Builds CMOS inverters/ring oscillators out of
:class:`repro.circuit.elements.CompactMOSFET` devices and reuses the
metric definitions of :mod:`repro.circuit` so that Table 1's
GNRFET-vs-CMOS comparison holds the simulator fixed and varies only the
technology.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.dc import solve_dc
from repro.circuit.elements import CompactMOSFET
from repro.circuit.netlist import Circuit
from repro.circuit.ring_oscillator import RingOscillatorMetrics
from repro.circuit.snm import butterfly_curves, static_noise_margin
from repro.circuit.vtc import compute_vtc
from repro.cmos.ptm import PTMNode
from repro.errors import AnalysisError


def _build_cmos_inverter(node: PTMNode, vdd: float) -> Circuit:
    circuit = Circuit(f"cmos-inv-{node.label}")
    vin = circuit.node("in")
    vout = circuit.node("out")
    vdd_node = circuit.node("vdd")
    gnd = circuit.node("0")
    circuit.fix(vdd_node, vdd)
    circuit.fix(vin, 0.0)
    circuit.add(CompactMOSFET(vout, vin, gnd, node.nmos, polarity=+1))
    circuit.add(CompactMOSFET(vout, vin, vdd_node, node.pmos, polarity=-1))
    return circuit


def cmos_inverter_vtc(node: PTMNode, vdd: float,
                      n_points: int = 81) -> tuple[np.ndarray, np.ndarray]:
    """Voltage transfer curve of the node's inverter."""
    circuit = _build_cmos_inverter(node, vdd)
    grid = np.linspace(0.0, vdd, n_points)
    return grid, compute_vtc(circuit, "in", "out", grid)


def cmos_inverter_snm(node: PTMNode, vdd: float) -> float:
    """SNM of the CMOS inverter pair."""
    vin, vout = cmos_inverter_vtc(node, vdd)
    return static_noise_margin(butterfly_curves(vin, vout))


def cmos_inverter_static_power_w(node: PTMNode, vdd: float) -> float:
    """Average leakage power over the two input states."""
    circuit = _build_cmos_inverter(node, vdd)
    vin = circuit.node("in")
    vdd_node = circuit.node("vdd")
    leak = 0.0
    for v in (0.0, vdd):
        circuit.fixed[vin] = v
        result = solve_dc(circuit)
        leak += abs(result.source_current(vdd_node))
    return vdd * leak / 2.0


def _effective_drive_a(device, vdd: float) -> float:
    i1, _, _ = device.ids(vdd, vdd)
    i2, _, _ = device.ids(vdd, vdd / 2.0)
    return 0.5 * (i1 + i2)


def estimate_cmos_ring_oscillator(
    node: PTMNode,
    vdd: float,
    n_stages: int = 15,
    fanout: int = 4,
) -> RingOscillatorMetrics:
    """Quasi-static 15-stage FO4 ring-oscillator metrics for one node.

    Mirrors :func:`repro.circuit.ring_oscillator.estimate_ring_oscillator`
    with the compact model's constant capacitances (the integral of C dV
    collapses to C * V_DD).
    """
    cg = (node.nmos.cgs_f + node.nmos.cgd_f
          + node.pmos.cgs_f + node.pmos.cgd_f)
    q_load = fanout * cg * vdd
    q_self = (node.nmos.cgd_f + node.pmos.cgd_f) * vdd

    i_n = _effective_drive_a(node.nmos, vdd)
    i_p = _effective_drive_a(node.pmos, vdd)
    if i_n <= 0.0 or i_p <= 0.0:
        raise AnalysisError("CMOS device has no drive at this supply")
    q_total = q_load + q_self
    stage_delay = 0.25 * q_total * (1.0 / i_n + 1.0 / i_p)

    freq = 1.0 / (2.0 * n_stages * stage_delay)
    e_cycle_stage = q_total * vdd
    p_dyn = n_stages * e_cycle_stage * freq
    p_stat = n_stages * fanout * cmos_inverter_static_power_w(node, vdd)
    p_total = p_dyn + p_stat
    edp = (p_total / freq) * stage_delay
    return RingOscillatorMetrics(
        frequency_hz=freq, stage_delay_s=stage_delay,
        total_power_w=p_total, static_power_w=p_stat,
        dynamic_power_w=p_dyn, edp_j_s=edp, vdd=vdd, n_stages=n_stages)
