"""Scaled-CMOS baseline (paper Table 1 comparison).

The paper simulates 22/32/45 nm CMOS with the PTM predictive models
[Cao et al., CICC 2000].  The BSIM card files are not reproducible here,
so this package provides a physically-structured compact model
(alpha-power-law strong inversion + exponential subthreshold) whose
per-node parameters are calibrated to the aggregate figures the paper's
Table 1 reports (frequency / EDP / SNM of the 15-stage FO4 ring
oscillator at V_DD = 0.8/0.6/0.4 V).  See DESIGN.md, substitution table.

The model plugs into the *same* circuit engine as the GNRFET tables
(:class:`repro.circuit.elements.CompactMOSFET`), so the GNRFET-vs-CMOS
comparison is apples-to-apples at the simulator level.
"""

from repro.cmos.mosfet import AlphaPowerMOSFET
from repro.cmos.ptm import PTMNode, ptm_node, PTM_NODES
from repro.cmos.circuits import (
    cmos_inverter_vtc,
    cmos_inverter_snm,
    cmos_inverter_static_power_w,
    estimate_cmos_ring_oscillator,
)

__all__ = [
    "AlphaPowerMOSFET",
    "PTMNode",
    "ptm_node",
    "PTM_NODES",
    "cmos_inverter_vtc",
    "cmos_inverter_snm",
    "cmos_inverter_static_power_w",
    "estimate_cmos_ring_oscillator",
]
