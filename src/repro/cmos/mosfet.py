"""Alpha-power-law MOSFET compact model with subthreshold conduction.

Sakurai-Newton alpha-power law (the standard short-channel hand model)
for strong inversion, stitched to an exponential subthreshold law, plus
channel-length modulation.  The model exposes the ``ids`` /
``capacitances`` interface consumed by
:class:`repro.circuit.elements.CompactMOSFET` so CMOS circuits run on the
same engine as the GNRFET tables.

Strong inversion (v_gs > v_t):

``I_sat = b (v_gs - v_t)^alpha``
``v_dsat = k_v (v_gs - v_t)^(alpha/2)``
``I = I_sat (2 - v_ds/v_dsat)(v_ds/v_dsat)``   (triode, v_ds < v_dsat)
``I = I_sat (1 + lambda_cl (v_ds - v_dsat))``  (saturation)

Subthreshold:

``I_sub = i0 exp((v_gs - v_t)/(n_ss v_T)) (1 - exp(-v_ds/v_T))``

The two are summed; at ``v_gs = v_t`` the subthreshold term is pinned to
``i0``, the strong-inversion term is zero, and the sum is smooth enough
for Newton with damping.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.constants import KT_ROOM_EV


@dataclass(frozen=True)
class AlphaPowerMOSFET:
    """One n-type (first-quadrant) compact device; p-types are mirrored
    by the circuit element.

    Attributes
    ----------
    vt_v:
        Threshold voltage.
    b_a_per_valpha:
        Drive strength ``b`` of the alpha-power law (A / V^alpha).
    alpha:
        Velocity-saturation index (2 = long channel, ~1.2-1.4 scaled).
    vdsat_coeff:
        ``k_v`` in the saturation-voltage law (V^(1 - alpha/2)).
    channel_length_modulation:
        ``lambda_cl`` (1/V).
    i0_a:
        Subthreshold current at ``v_gs = v_t`` (A).
    subthreshold_ideality:
        ``n_ss`` (SS = n_ss * 60 mV/dec at 300 K).
    cgs_f, cgd_f:
        Gate-source / gate-drain capacitances (constant; adequate for
        delay/energy at the inverter level).
    """

    vt_v: float
    b_a_per_valpha: float
    alpha: float
    vdsat_coeff: float
    channel_length_modulation: float
    i0_a: float
    subthreshold_ideality: float
    cgs_f: float
    cgd_f: float

    def ids(self, vgs: float, vds: float) -> tuple[float, float, float]:
        """``(I, dI/dv_gs, dI/dv_ds)`` in the first quadrant.

        Negative ``v_ds`` is folded by source/drain symmetry (same rule
        as the table devices).
        """
        if vds < 0.0:
            i, di_dvgs, di_dvds = self.ids(vgs - vds, -vds)
            return -i, -di_dvgs, di_dvgs + di_dvds

        vt_th = KT_ROOM_EV  # thermal voltage in volts
        n = self.subthreshold_ideality

        # Subthreshold component (active at all v_gs; negligible far above
        # threshold because the strong-inversion term dominates).
        x = (vgs - self.vt_v) / (n * vt_th)
        x = min(x, 0.0) if vgs > self.vt_v else x
        e = math.exp(x)
        d_fac = 1.0 - math.exp(-vds / vt_th) if vds < 40.0 * vt_th else 1.0
        i_sub = self.i0_a * e * d_fac
        di_sub_dvgs = (self.i0_a * e / (n * vt_th)) * d_fac if vgs <= self.vt_v else 0.0
        di_sub_dvds = self.i0_a * e * (math.exp(-vds / vt_th) / vt_th
                                       if vds < 40.0 * vt_th else 0.0)

        # Strong inversion.
        vov = vgs - self.vt_v
        if vov <= 0.0:
            return i_sub, di_sub_dvgs, di_sub_dvds

        i_sat = self.b_a_per_valpha * vov ** self.alpha
        di_sat = self.alpha * i_sat / vov
        vdsat = self.vdsat_coeff * vov ** (self.alpha / 2.0)
        dvdsat = (self.alpha / 2.0) * vdsat / vov
        lam = self.channel_length_modulation

        if vds < vdsat:
            u = vds / vdsat
            shape = (2.0 - u) * u
            i_si = i_sat * shape
            dshape_du = 2.0 - 2.0 * u
            di_si_dvds = i_sat * dshape_du / vdsat
            # du/dvgs = -vds * dvdsat / vdsat^2
            di_si_dvgs = di_sat * shape + i_sat * dshape_du * (
                -vds * dvdsat / (vdsat * vdsat))
        else:
            grow = 1.0 + lam * (vds - vdsat)
            i_si = i_sat * grow
            di_si_dvds = i_sat * lam
            di_si_dvgs = di_sat * grow - i_sat * lam * dvdsat

        return (i_sub + i_si,
                di_sub_dvgs + di_si_dvgs,
                di_sub_dvds + di_si_dvds)

    def capacitances(self, vgs: float, vds: float) -> tuple[float, float]:
        """Constant ``(C_GS, C_GD)``."""
        return self.cgs_f, self.cgd_f
