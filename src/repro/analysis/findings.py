"""Finding model shared by every checker and reporter.

A finding is one rule violation at one source location.  Codes follow
the ``RPA<family><rule>`` scheme:

* ``RPA0xx`` — engine-level problems (unparsable file, unknown code in a
  suppression comment);
* ``RPA1xx`` — determinism (RNG and wall-clock hygiene);
* ``RPA2xx`` — units (raw physical-constant literals);
* ``RPA3xx`` — layering (package dependency DAG);
* ``RPA4xx`` — API contracts (annotations, defaults, frozen results);
* ``RPA5xx`` — resilience (exception-handling discipline);
* ``RPA6xx`` — cache/checkpoint key soundness (dataflow);
* ``RPA7xx`` — worker/parallel safety (dataflow);
* ``RPA8xx`` — hot-path hygiene (guarded obs records, batched kernels,
  loop allocations).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Sort order is (path, line, col, code) so reports are stable and
    diff-friendly regardless of checker execution order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    symbol: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.code} {self.message}"

    def baseline_key(self) -> str:
        """Line-independent identity used for baseline matching.

        Line and column are deliberately excluded so unrelated edits
        above a baselined finding do not un-suppress it.
        """
        return f"{self.path}::{self.code}::{self.message}"
