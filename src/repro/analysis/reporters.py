"""Text, JSON and SARIF rendering of an analysis report."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisReport


def render_text(report: AnalysisReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    summary = (f"{len(report.findings)} finding(s) in "
               f"{report.n_files} file(s)")
    suppressed = []
    if report.n_noqa_suppressed:
        suppressed.append(f"{report.n_noqa_suppressed} noqa-suppressed")
    if report.n_nokey_suppressed:
        suppressed.append(f"{report.n_nokey_suppressed} nokey-annotated")
    if report.n_baseline_suppressed:
        suppressed.append(
            f"{report.n_baseline_suppressed} baseline-suppressed")
    if suppressed:
        summary += f" ({', '.join(suppressed)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report (stable key order, one document)."""
    document = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
                "symbol": f.symbol,
            }
            for f in report.findings
        ],
        "summary": {
            "files": report.n_files,
            "findings": len(report.findings),
            "noqa_suppressed": report.n_noqa_suppressed,
            "nokey_suppressed": report.n_nokey_suppressed,
            "baseline_suppressed": report.n_baseline_suppressed,
        },
    }
    return json.dumps(document, indent=2)


def render_sarif(report: AnalysisReport) -> str:
    """SARIF 2.1.0 document for GitHub code-scanning upload.

    One run, one ``tool.driver`` (``repro-lint``), one rule entry per
    distinct code that actually fired, one ``result`` per finding with
    a physical location.  Paths are emitted as given (repo-relative in
    CI), which is what the code-scanning ingester expects.
    """
    from repro.analysis.checkers import all_codes

    descriptions = all_codes()
    fired = sorted({f.code for f in report.findings})
    rules = [
        {
            "id": code,
            "shortDescription": {
                "text": descriptions.get(code, code)},
            "defaultConfiguration": {"level": "error"},
        }
        for code in fired
    ]
    rule_index = {code: i for i, code in enumerate(fired)}
    results = [
        {
            "ruleId": f.code,
            "ruleIndex": rule_index[f.code],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col + 1),
                        },
                    }
                }
            ],
        }
        for f in report.findings
    ]
    document = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
