"""Text and JSON rendering of an analysis report."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisReport


def render_text(report: AnalysisReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    summary = (f"{len(report.findings)} finding(s) in "
               f"{report.n_files} file(s)")
    suppressed = []
    if report.n_noqa_suppressed:
        suppressed.append(f"{report.n_noqa_suppressed} noqa-suppressed")
    if report.n_baseline_suppressed:
        suppressed.append(
            f"{report.n_baseline_suppressed} baseline-suppressed")
    if suppressed:
        summary += f" ({', '.join(suppressed)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report (stable key order, one document)."""
    document = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
                "symbol": f.symbol,
            }
            for f in report.findings
        ],
        "summary": {
            "files": report.n_files,
            "findings": len(report.findings),
            "noqa_suppressed": report.n_noqa_suppressed,
            "baseline_suppressed": report.n_baseline_suppressed,
        },
    }
    return json.dumps(document, indent=2)
