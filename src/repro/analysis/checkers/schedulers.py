"""RPA9xx — scheduler-seam discipline.

The runtime exposes one dispatch seam: :class:`repro.runtime.scheduler.
Scheduler`.  Exploration, variability and characterization code that
calls ``parallel_map`` directly bypasses that seam — it hard-codes the
process-pool policy, cannot be redirected by callers that inject a
scheduler (tests, benchmarks, the distributed backend), and silently
diverges from the chunk-planning and fault-recovery behaviour the
``LocalScheduler`` layers on top.

The seam also carries a hard behavioural contract: ``Scheduler.run``
returns ``[fn(t) for t in tasks]`` — results in task order — and every
wave must stay interruptible (Ctrl-C reaches the caller, injected
``BaseException``-class faults are never swallowed by dispatch).

* ``RPA901`` — a module under ``repro.exploration``,
  ``repro.variability`` or ``repro.characterize`` calls
  ``parallel_map`` directly instead of going through a
  :class:`Scheduler`.  The runtime layer itself (and the scheduler's
  own dispatch) is exempt.
* ``RPA902`` — a ``Scheduler.run`` implementation breaks the seam
  contract: it catches ``KeyboardInterrupt`` / ``BaseException`` /
  bare ``except`` (dispatch must stay interruptible; recovery policy
  belongs to :mod:`repro.runtime.resilience`), or returns its results
  through an order-destroying constructor (``set`` / ``sorted`` /
  ``reversed``), which can silently violate the results-in-task-order
  guarantee every sweep depends on.

Escape hatch: ``# repro: noqa[RPA901]`` / ``# repro: noqa[RPA902]`` on
the offending line, for the rare site that intentionally needs it.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, dotted_name
from repro.analysis.dataflow.callgraph import build_call_graph
from repro.analysis.engine import ModuleInfo, Project
from repro.analysis.findings import Finding

PARALLEL_MAP = "repro.runtime.parallel.parallel_map"

#: Package prefixes that must dispatch through the scheduler seam.
_SEAMED_LAYERS = ("repro.exploration", "repro.variability",
                  "repro.characterize")

#: Exception names a Scheduler.run may never catch: swallowing them
#: breaks Ctrl-C and hides process-fatal faults inside dispatch.
_UNCATCHABLE = frozenset({"KeyboardInterrupt", "BaseException",
                          "SystemExit"})

#: Builtins whose return value forgets (or fabricates) task order.
_ORDER_DESTROYING = frozenset({"set", "sorted", "reversed", "frozenset"})


def _base_is_scheduler(base: ast.expr) -> bool:
    """True if a class base names the Scheduler seam (any import style)."""
    name = dotted_name(base)
    return name is not None and (
        name == "Scheduler" or name.endswith(".Scheduler"))


def _caught_forbidden(handler: ast.ExceptHandler) -> str | None:
    """The forbidden name this handler catches, or None."""
    if handler.type is None:
        return "bare except"
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None)
        if name in _UNCATCHABLE:
            return name
    return None


class SchedulerSeamChecker(Checker):
    codes = {
        "RPA901": "exploration/variability/characterize code calls "
                  "parallel_map directly; dispatch through a "
                  "repro.runtime.scheduler.Scheduler so callers can "
                  "inject scheduling policy",
        "RPA902": "Scheduler.run implementation catches "
                  "KeyboardInterrupt/BaseException or returns through "
                  "an order-destroying constructor; dispatch must stay "
                  "interruptible and preserve task order",
    }

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_base_is_scheduler(base) for base in node.bases):
                continue
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) \
                        and item.name == "run":
                    findings.extend(self._check_run(module, node, item))
        return findings

    def _check_run(self, module: ModuleInfo, cls: ast.ClassDef,
                   fn: ast.FunctionDef | ast.AsyncFunctionDef
                   ) -> list[Finding]:
        findings: list[Finding] = []
        qualname = f"{cls.name}.{fn.name}"
        for node in ast.walk(fn):
            if isinstance(node, ast.ExceptHandler):
                forbidden = _caught_forbidden(node)
                if forbidden is not None:
                    findings.append(self.finding(
                        module, node, "RPA902",
                        f"'{qualname}' catches {forbidden}; scheduler "
                        "dispatch must stay interruptible — let it "
                        "propagate and keep recovery policy in "
                        "repro.runtime.resilience",
                        symbol=qualname))
            elif isinstance(node, ast.Return) and node.value is not None:
                call = node.value
                if not isinstance(call, ast.Call):
                    continue
                name = dotted_name(call.func)
                if name in _ORDER_DESTROYING:
                    findings.append(self.finding(
                        module, node, "RPA902",
                        f"'{qualname}' returns through {name}(), which "
                        "destroys task order; Scheduler.run must return "
                        "results positionally matched to its tasks",
                        symbol=qualname))
        return findings

    def check_project(self, project: Project) -> list[Finding]:
        graph = build_call_graph(project)
        by_path = {m.path: m for m in project.modules}
        findings: list[Finding] = []

        for info in graph.functions.values():
            if not info.module.startswith(_SEAMED_LAYERS):
                continue
            module = by_path.get(info.path)
            if module is None:
                continue
            for call in ast.walk(info.node):
                if not isinstance(call, ast.Call):
                    continue
                dotted = dotted_name(call.func)
                if dotted is None or \
                        graph.resolve(info.module, dotted) != PARALLEL_MAP:
                    continue
                findings.append(self.finding(
                    module, call, "RPA901",
                    f"'{info.qualname}' calls parallel_map directly; "
                    "accept a Scheduler (resolve_scheduler(...)) and "
                    "dispatch through its .run() so callers can inject "
                    "scheduling policy",
                    symbol=info.qualname))
        return findings
