"""RPA9xx — scheduler-seam discipline.

The runtime exposes one dispatch seam: :class:`repro.runtime.scheduler.
Scheduler`.  Exploration and variability code that calls
``parallel_map`` directly bypasses that seam — it hard-codes the
process-pool policy, cannot be redirected by callers that inject a
scheduler (tests, benchmarks, future remote backends), and silently
diverges from the chunk-planning and fault-recovery behaviour the
``LocalScheduler`` layers on top.

* ``RPA901`` — a module under ``repro.exploration`` or
  ``repro.variability`` calls ``parallel_map`` directly instead of
  going through a :class:`Scheduler`.  The runtime layer itself (and
  the scheduler's own dispatch) is exempt.

Escape hatch: ``# repro: noqa[RPA901]`` on the calling line, for the
rare site that intentionally needs the raw primitive.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, dotted_name
from repro.analysis.dataflow.callgraph import build_call_graph
from repro.analysis.engine import Project
from repro.analysis.findings import Finding

PARALLEL_MAP = "repro.runtime.parallel.parallel_map"

#: Package prefixes that must dispatch through the scheduler seam.
_SEAMED_LAYERS = ("repro.exploration", "repro.variability")


class SchedulerSeamChecker(Checker):
    codes = {
        "RPA901": "exploration/variability code calls parallel_map "
                  "directly; dispatch through a "
                  "repro.runtime.scheduler.Scheduler so callers can "
                  "inject scheduling policy",
    }

    def check_project(self, project: Project) -> list[Finding]:
        graph = build_call_graph(project)
        by_path = {m.path: m for m in project.modules}
        findings: list[Finding] = []

        for info in graph.functions.values():
            if not info.module.startswith(_SEAMED_LAYERS):
                continue
            module = by_path.get(info.path)
            if module is None:
                continue
            for call in ast.walk(info.node):
                if not isinstance(call, ast.Call):
                    continue
                dotted = dotted_name(call.func)
                if dotted is None or \
                        graph.resolve(info.module, dotted) != PARALLEL_MAP:
                    continue
                findings.append(self.finding(
                    module, call, "RPA901",
                    f"'{info.qualname}' calls parallel_map directly; "
                    "accept a Scheduler (resolve_scheduler(...)) and "
                    "dispatch through its .run() so callers can inject "
                    "scheduling policy",
                    symbol=info.qualname))
        return findings
