"""RPA1xx — determinism: RNG and wall-clock hygiene.

``runtime.parallel_map`` promises bit-for-bit identical sweeps at any
worker count, and the device-table cache assumes a function of its
inputs.  Both promises die the moment library code draws entropy from
the OS or the wall clock:

* ``RPA101`` — ``np.random.default_rng()`` *without* a seed draws OS
  entropy: two runs of the same sweep produce different tables.
* ``RPA102`` — the legacy ``np.random.*`` global-state API
  (``np.random.seed`` / ``rand`` / ``normal`` ...) is shared mutable
  state across the whole process: results depend on call order and on
  which worker executed which chunk.
* ``RPA103`` — ``time.time()`` / ``datetime.now()`` inside ``src/repro``
  make results depend on when they ran (use ``time.perf_counter()`` for
  interval timing — it measures durations, never absolute time).
* ``RPA104`` — a public sampler that builds its own ``Generator``
  internally cannot take part in ``SeedSequence.spawn``-based per-task
  seeding; it must accept an explicit ``rng: np.random.Generator``.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import (
    Checker,
    dotted_name,
    is_public,
    walk_functions,
)
from repro.analysis.engine import ModuleInfo
from repro.analysis.findings import Finding

#: np.random attributes that are part of the reproducible Generator API.
_GENERATOR_API = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Wall-clock callables, by dotted suffix.
_WALL_CLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.now": "datetime.now()",
    "datetime.utcnow": "datetime.utcnow()",
    "datetime.today": "datetime.today()",
    "date.today": "date.today()",
}

#: Parameter names that count as an injected random stream.
_RNG_PARAM_NAMES = frozenset({"rng", "generator", "seed_sequence"})


class DeterminismChecker(Checker):
    codes = {
        "RPA101": "unseeded np.random.default_rng() draws OS entropy; "
                  "pass an explicit seed or SeedSequence",
        "RPA102": "legacy np.random global-state API breaks worker "
                  "reproducibility; use np.random.default_rng(seed)",
        "RPA103": "wall-clock call makes library results time-dependent; "
                  "use time.perf_counter() for interval timing",
        "RPA104": "public sampler builds its own Generator; accept an "
                  "explicit rng: np.random.Generator parameter",
    }

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        numpy_random = self._numpy_random_names(module.tree)
        wall_clock = self._wall_clock_names(module.tree)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            findings.extend(self._check_rng_call(module, node, name,
                                                 numpy_random))
            findings.extend(self._check_clock_call(module, node, name,
                                                   wall_clock))

        findings.extend(self._check_sampler_signatures(module))
        return findings

    # ------------------------------------------------------------------ #
    # Import resolution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _numpy_random_names(tree: ast.Module) -> dict[str, str]:
        """Names bound to numpy.random members: local name -> member name.

        ``from numpy.random import default_rng as mk`` maps ``mk`` to
        ``default_rng``; plain ``np.random.X`` access is handled by
        suffix matching and needs no entry here.
        """
        bound: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and \
                    node.module == "numpy.random":
                for alias in node.names:
                    bound[alias.asname or alias.name] = alias.name
        return bound

    @staticmethod
    def _wall_clock_names(tree: ast.Module) -> dict[str, str]:
        """Bare names that resolve to wall-clock callables."""
        bound: dict[str, str] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "time_ns"):
                        bound[alias.asname or alias.name] = \
                            f"time.{alias.name}"
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        # flagged when .now()/.today() is called on them
                        bound[alias.asname or alias.name] = alias.name
        return bound

    # ------------------------------------------------------------------ #
    # Rules
    # ------------------------------------------------------------------ #
    def _check_rng_call(self, module: ModuleInfo, node: ast.Call,
                        name: str, bound: dict[str, str]) -> list[Finding]:
        parts = name.split(".")
        member: str | None = None
        if len(parts) >= 3 and parts[-3] in ("np", "numpy") and \
                parts[-2] == "random":
            member = parts[-1]
        elif len(parts) == 1 and parts[0] in bound:
            member = bound[parts[0]]

        if member is None:
            return []
        if member == "default_rng":
            if not node.args and not node.keywords:
                return [self.finding(
                    module, node, "RPA101",
                    "np.random.default_rng() without a seed draws OS "
                    "entropy; pass a seed or a spawned SeedSequence",
                    symbol=name)]
            return []
        if member not in _GENERATOR_API:
            return [self.finding(
                module, node, "RPA102",
                f"legacy global-state RNG call np.random.{member}(); use "
                "an explicit np.random.Generator (default_rng(seed))",
                symbol=name)]
        return []

    def _check_clock_call(self, module: ModuleInfo, node: ast.Call,
                          name: str, bound: dict[str, str]) -> list[Finding]:
        hit: str | None = None
        for suffix, label in _WALL_CLOCK.items():
            if name == suffix or name.endswith("." + suffix):
                hit = label
                break
        if hit is None:
            parts = name.split(".")
            if parts[0] in bound:
                resolved = ".".join([bound[parts[0]], *parts[1:]])
                for suffix, label in _WALL_CLOCK.items():
                    if resolved == suffix:
                        hit = label
                        break
        if hit is None:
            return []
        return [self.finding(
            module, node, "RPA103",
            f"{hit} makes library output depend on wall-clock time; use "
            "time.perf_counter() for durations or pass timestamps in",
            symbol=name)]

    def _check_sampler_signatures(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for func, owner in walk_functions(module.tree):
            if not is_public(func.name):
                continue
            if owner is not None and not is_public(owner.name):
                continue
            if not self._calls_default_rng(func):
                continue
            if self._accepts_rng(func):
                continue
            findings.append(self.finding(
                module, func, "RPA104",
                f"public function '{func.name}' constructs its own "
                "Generator via default_rng(); accept an explicit "
                "rng: np.random.Generator parameter so callers (and "
                "runtime.parallel_map seed spawning) control the stream",
                symbol=func.name))
        return findings

    @staticmethod
    def _calls_default_rng(func: ast.FunctionDef | ast.AsyncFunctionDef
                           ) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and \
                        name.split(".")[-1] == "default_rng":
                    return True
        return False

    @staticmethod
    def _accepts_rng(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg in _RNG_PARAM_NAMES:
                return True
            annotation = arg.annotation
            if annotation is not None and \
                    "Generator" in ast.dump(annotation):
                return True
        return False
