"""RPA8xx — hot-path hygiene.

The solver loops dominate runtime; three patterns quietly erode the
batched-kernel speedups the benchmarks pin:

* ``RPA801`` — an ``obs`` record call (``obs.incr``/``gauge``/
  ``observe``/``record_failure``) inside a loop without the
  ``obs.ACTIVE`` module-flag guard: the disabled-path cost of the
  counter API is only near-zero when call sites check the flag first
  (the pattern ``if obs.ACTIVE: obs.incr(...)``; see
  ``benchmarks/bench_obs_overhead.py``).
* ``RPA802`` — a Python-level per-energy loop (or comprehension) over
  a scalar transport kernel where an energy-batched kernel exists:
  ``sancho_rubio_surface_gf_batched`` / ``rgf_transmission_batched``
  replace per-energy ``sancho_rubio_surface_gf`` / ``.transport_at``
  calls with stacked LAPACK operations.  Calls to a scalar kernel
  from its *own* defining module are exempt (the batched kernels and
  retry ladders legitimately wrap their scalar forms).
* ``RPA803`` — array allocation (``np.zeros``/``empty``/``eye``/
  ``stacked_identity``/...) inside the iteration loop of a
  ``*_batched`` kernel: decimation loops run tens of times per call;
  hoist the buffer and slice it.  ``backend_numba`` modules are
  exempt (numba's typed allocation inside ``prange`` is idiomatic).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.checkers.base import Checker, dotted_name
from repro.analysis.engine import ModuleInfo
from repro.analysis.findings import Finding

_OBS_RECORDS = frozenset({"incr", "gauge", "observe", "record_failure"})

#: Scalar kernels with an energy-batched counterpart.
_SCALAR_KERNELS = {
    "sancho_rubio_surface_gf": "sancho_rubio_surface_gf_batched",
    "resilient_surface_gf": "resilient_surface_gf_batched",
    "dense_retarded_gf": "rgf_transmission_batched",
    "recursive_greens_function": "rgf_transmission_batched",
}

#: Per-point evaluation methods with a batched counterpart.
_SCALAR_METHODS = {
    "transmission_at": "transport",
}

_ALLOCATORS = frozenset({
    "zeros", "empty", "ones", "full", "eye", "identity",
    "zeros_like", "empty_like", "ones_like", "full_like",
    "stacked_identity",
})

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                   ast.DictComp)


def _mentions_active(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "ACTIVE":
            return True
        if isinstance(node, ast.Name) and node.id == "ACTIVE":
            return True
    return False


def _is_obs_record(call: ast.Call) -> bool:
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    return len(parts) == 2 and parts[0] == "obs" and \
        parts[1] in _OBS_RECORDS


def _is_allocator(call: ast.Call) -> bool:
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    tail = dotted.split(".")[-1]
    return tail in _ALLOCATORS


def _calls_in(exprs: Iterable[ast.expr | None]) -> list[ast.Call]:
    calls: list[ast.Call] = []
    for expr in exprs:
        if expr is None:
            continue
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                calls.append(node)
    return calls


def _stmt_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """Expressions evaluated by ``stmt`` itself (headers for compound
    statements, everything for simple ones)."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [node for node in ast.iter_child_nodes(stmt)
            if isinstance(node, ast.expr)]


class HotPathChecker(Checker):
    codes = {
        "RPA801": "obs record call inside a loop without the "
                  "'if obs.ACTIVE:' guard; the disabled path must stay "
                  "free",
        "RPA802": "Python per-energy loop over a scalar transport "
                  "kernel; use the energy-batched kernel",
        "RPA803": "array allocation inside the iteration loop of a "
                  "*_batched kernel; hoist the buffer and slice it",
    }

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        if module.module_name is not None and (
                module.module_name.startswith("repro.obs")
                or module.module_name.endswith("backend_numba")):
            return []
        local_defs = {stmt.name for stmt in module.tree.body
                      if isinstance(stmt, (ast.FunctionDef,
                                           ast.AsyncFunctionDef))}
        findings: list[Finding] = []
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            batched = func.name.endswith("_batched")
            self._walk(module, func.body, in_loop=False, guarded=False,
                       batched=batched, local_defs=local_defs,
                       findings=findings)
        # A call inside a comprehension inside a loop is seen by both
        # the loop pass and the comprehension pass: keep one.
        unique: list[Finding] = []
        seen: set[Finding] = set()
        for finding in findings:
            if finding not in seen:
                seen.add(finding)
                unique.append(finding)
        return unique

    # ------------------------------------------------------------------ #
    def _walk(self, module: ModuleInfo, stmts: list[ast.stmt],
              in_loop: bool, guarded: bool, batched: bool,
              local_defs: set[str], findings: list[Finding]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs are visited as their own scope
            self._check_exprs(module, _stmt_exprs(stmt), in_loop,
                              guarded, batched, local_defs, findings)
            if isinstance(stmt, ast.If):
                body_guarded = guarded or _mentions_active(stmt.test)
                self._walk(module, stmt.body, in_loop, body_guarded,
                           batched, local_defs, findings)
                self._walk(module, stmt.orelse, in_loop, guarded,
                           batched, local_defs, findings)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._walk(module, stmt.body, True, guarded, batched,
                           local_defs, findings)
                self._walk(module, stmt.orelse, in_loop, guarded,
                           batched, local_defs, findings)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk(module, stmt.body, in_loop, guarded, batched,
                           local_defs, findings)
            elif isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    self._walk(module, block, in_loop, guarded, batched,
                               local_defs, findings)
                for handler in stmt.handlers:
                    self._walk(module, handler.body, in_loop, guarded,
                               batched, local_defs, findings)
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    self._walk(module, case.body, in_loop, guarded,
                               batched, local_defs, findings)

    def _check_exprs(self, module: ModuleInfo,
                     exprs: list[ast.expr], in_loop: bool, guarded: bool,
                     batched: bool, local_defs: set[str],
                     findings: list[Finding]) -> None:
        calls = _calls_in(exprs)
        if in_loop:
            for call in calls:
                if _is_obs_record(call) and not guarded:
                    findings.append(self.finding(
                        module, call, "RPA801",
                        "obs record call in a loop without the "
                        "'if obs.ACTIVE:' guard; counters must cost "
                        "nothing when tracing is off",
                        symbol=dotted_name(call.func) or ""))
                self._check_scalar_kernel(module, call, local_defs,
                                          findings)
                if batched and _is_allocator(call):
                    findings.append(self.finding(
                        module, call, "RPA803",
                        "allocation inside the iteration loop of a "
                        "batched kernel; hoist the buffer before the "
                        "loop and slice per iteration",
                        symbol=dotted_name(call.func) or ""))
        # Comprehensions are loops wherever they appear.
        for expr in exprs:
            if expr is None:
                continue
            for node in ast.walk(expr):
                if isinstance(node, _COMPREHENSIONS):
                    for call in _calls_in([_comp_elt(node)]):
                        self._check_scalar_kernel(module, call,
                                                  local_defs, findings)

    def _check_scalar_kernel(self, module: ModuleInfo, call: ast.Call,
                             local_defs: set[str],
                             findings: list[Finding]) -> None:
        dotted = dotted_name(call.func)
        if dotted is None:
            return
        tail = dotted.split(".")[-1]
        if tail in _SCALAR_KERNELS and tail not in local_defs:
            findings.append(self.finding(
                module, call, "RPA802",
                f"per-energy loop over scalar kernel '{tail}'; use "
                f"'{_SCALAR_KERNELS[tail]}' on the full energy grid "
                "instead",
                symbol=dotted))
        elif isinstance(call.func, ast.Attribute) and \
                call.func.attr in _SCALAR_METHODS:
            method = call.func.attr
            findings.append(self.finding(
                module, call, "RPA802",
                f"per-energy loop over '.{method}()'; use "
                f"'.{_SCALAR_METHODS[method]}()' on the full energy "
                "grid instead",
                symbol=dotted))


def _comp_elt(node: ast.expr) -> ast.expr:
    if isinstance(node, ast.DictComp):
        return node.value
    assert isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp))
    return node.elt
