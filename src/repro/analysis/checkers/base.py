"""Checker interface and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Project
from repro.analysis.findings import Finding


class Checker:
    """Base class every rule family derives from.

    Subclasses override :meth:`check_module` (per-file rules) and/or
    :meth:`check_project` (whole-tree rules such as the layering DAG),
    and declare their codes in :attr:`codes` for ``--list-codes``.
    """

    #: Mapping of code -> one-line rule description.
    codes: dict[str, str] = {}

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        return []

    def check_project(self, project: Project) -> list[Finding]:
        return []

    def finding(self, module: ModuleInfo, node: ast.AST, code: str,
                message: str, symbol: str = "") -> Finding:
        return Finding(path=module.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       code=code, message=message, symbol=symbol)


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_functions(tree: ast.Module,
                   include_nested: bool = False
                   ) -> Iterable[tuple[ast.FunctionDef | ast.AsyncFunctionDef,
                                       ast.ClassDef | None]]:
    """Yield ``(function, owning_class)`` pairs.

    By default only module-level functions and direct methods of
    module-level classes are yielded — nested closures are local
    implementation detail, not API surface.
    """
    if include_nested:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, None
        return
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, node


def is_public(name: str) -> bool:
    return not name.startswith("_")
