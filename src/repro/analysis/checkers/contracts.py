"""RPA4xx — API contracts: annotations, defaults, frozen results.

* ``RPA401`` — public functions are the package's API surface; every
  parameter and the return type must be annotated so ``mypy`` (and the
  next reader) can hold the line.  Private helpers (leading underscore),
  nested closures and dunder methods are exempt.
* ``RPA402`` — mutable default arguments (``def f(x=[])``) are shared
  across calls — the classic aliasing bug, doubly dangerous now that
  sweeps run in long-lived worker processes.
* ``RPA403`` — result dataclasses (``*Result``, ``*Solution``,
  ``*Metrics``, ``*Output``) are values handed across layer boundaries
  and into caches; they must be ``frozen=True`` so a consumer cannot
  silently mutate a cached table's provenance.
* ``RPA404`` — every package ``__init__.py`` must carry a non-empty
  docstring naming the package's layer and responsibility; the package
  docstring is the entry point a reader (and ``help()``) hits first,
  and an empty one hides where a module sits in the DESIGN §4.1 DAG.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import (
    Checker,
    dotted_name,
    is_public,
    walk_functions,
)
from repro.analysis.engine import ModuleInfo
from repro.analysis.findings import Finding

_RESULT_SUFFIXES = ("Result", "Solution", "Metrics", "Output")

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict",
                            "OrderedDict", "Counter", "deque"})


class ContractsChecker(Checker):
    codes = {
        "RPA401": "public function must annotate every parameter and "
                  "its return type",
        "RPA402": "mutable default argument is shared across calls",
        "RPA403": "result dataclass must be frozen "
                  "(@dataclass(frozen=True))",
        "RPA404": "package __init__.py must have a non-empty docstring "
                  "stating the package's layer and responsibility",
    }

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for func, owner in walk_functions(module.tree):
            findings.extend(self._check_annotations(module, func, owner))
            findings.extend(self._check_mutable_defaults(module, func))
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_result_dataclass(module, node))
        findings.extend(self._check_package_docstring(module))
        return findings

    # ------------------------------------------------------------------ #
    # RPA401
    # ------------------------------------------------------------------ #
    def _check_annotations(self, module: ModuleInfo,
                           func: ast.FunctionDef | ast.AsyncFunctionDef,
                           owner: ast.ClassDef | None) -> list[Finding]:
        if not is_public(func.name) or func.name.startswith("__"):
            return []
        if owner is not None and not is_public(owner.name):
            return []
        args = func.args
        positional = args.posonlyargs + args.args
        missing = [a.arg for a in positional + args.kwonlyargs
                   if a.annotation is None and a.arg not in ("self", "cls")]
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append("*" + vararg.arg)
        problems = []
        if missing:
            problems.append(f"unannotated parameter(s) "
                            f"{', '.join(repr(m) for m in missing)}")
        if func.returns is None:
            problems.append("missing return annotation")
        if not problems:
            return []
        qualifier = f"{owner.name}.{func.name}" if owner else func.name
        return [self.finding(
            module, func, "RPA401",
            f"public function '{qualifier}' has "
            f"{' and '.join(problems)}; the public API surface must be "
            "fully typed",
            symbol=qualifier)]

    # ------------------------------------------------------------------ #
    # RPA402
    # ------------------------------------------------------------------ #
    def _check_mutable_defaults(self, module: ModuleInfo,
                                func: ast.FunctionDef | ast.AsyncFunctionDef
                                ) -> list[Finding]:
        findings = []
        defaults = list(func.args.defaults) + [
            d for d in func.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_LITERALS)
            if not mutable and isinstance(default, ast.Call):
                name = dotted_name(default.func)
                mutable = name is not None and \
                    name.split(".")[-1] in _MUTABLE_CALLS
            if mutable:
                findings.append(self.finding(
                    module, default, "RPA402",
                    f"mutable default argument in '{func.name}' is "
                    "evaluated once and shared across every call; "
                    "default to None and construct inside the body",
                    symbol=func.name))
        return findings

    # ------------------------------------------------------------------ #
    # RPA403
    # ------------------------------------------------------------------ #
    def _check_result_dataclass(self, module: ModuleInfo,
                                cls: ast.ClassDef) -> list[Finding]:
        if not is_public(cls.name):
            return []
        if not cls.name.endswith(_RESULT_SUFFIXES):
            return []
        decorator = self._dataclass_decorator(cls)
        if decorator is None:
            return []
        if isinstance(decorator, ast.Call):
            for kw in decorator.keywords:
                if kw.arg == "frozen" and \
                        isinstance(kw.value, ast.Constant) and \
                        kw.value.value is True:
                    return []
        return [self.finding(
            module, cls, "RPA403",
            f"result dataclass '{cls.name}' is mutable; declare it "
            "@dataclass(frozen=True) so values crossing layer (and "
            "cache) boundaries cannot be altered in place",
            symbol=cls.name)]

    # ------------------------------------------------------------------ #
    # RPA404
    # ------------------------------------------------------------------ #
    def _check_package_docstring(self, module: ModuleInfo) -> list[Finding]:
        if not module.is_package_init or module.module_name is None:
            return []
        doc = ast.get_docstring(module.tree)
        if doc is not None and doc.strip():
            return []
        return [self.finding(
            module, module.tree, "RPA404",
            f"package '{module.module_name}' has no docstring; state the "
            "package's layer and responsibility (see DESIGN.md §4.1)",
            symbol=module.module_name)]

    @staticmethod
    def _dataclass_decorator(cls: ast.ClassDef) -> ast.AST | None:
        for dec in cls.decorator_list:
            name = dotted_name(dec.func if isinstance(dec, ast.Call) else dec)
            if name is not None and name.split(".")[-1] == "dataclass":
                return dec
        return None
