"""RPA2xx — units: raw physical-constant literals.

Every physical constant the library needs has one canonical, documented
home: :mod:`repro.constants`.  A raw ``1.602e-19`` scattered in a kernel
is a silent unit bug waiting to happen — it drifts from the CODATA value,
it hides the unit convention, and it cannot be audited.  ``RPA201``
matches float literals against the canonical table (within 0.5 %
relative tolerance, so truncated copies like ``8.85e-12`` are caught
too) and points at the :mod:`repro.constants` symbol to use instead.

Integer literals never match (a ``300``-point grid is not a
temperature); ``repro/constants.py`` itself and the analysis package are
exempt.  Genuine data coincidences (a 2.7 GHz calibration figure is not
the 2.7 eV hopping energy) are suppressed in place with
``# repro: noqa[RPA201]``.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker
from repro.analysis.engine import ModuleInfo
from repro.analysis.findings import Finding

#: Canonical value -> repro.constants symbol.  Values are matched with
#: _REL_TOL so truncated copies (1.602e-19, 0.0259) resolve to the same
#: symbol as full-precision ones.
CANONICAL_CONSTANTS: dict[float, str] = {
    1.602176634e-19: "Q_E",
    1.380649e-23: "K_B_SI",
    6.62607015e-34: "PLANCK_H",
    1.0545718176461565e-34: "HBAR_SI",
    8.8541878128e-12: "EPS_0",
    9.1093837015e-31: "M_E",
    8.617333262e-5: "K_B_EV",
    0.02585199101165144: "KT_ROOM_EV",
    2.7: "T_HOPPING_EV",
    0.142: "A_CC_NM",
    0.24595121467478056: "A_LATTICE_NM",
    0.426: "ARMCHAIR_PERIOD_NM",
    3.9: "EPS_SIO2",
    300.0: "ROOM_TEMPERATURE_K",
}

_REL_TOL = 5e-3

#: Packages whose float literals are never physics (the lint tooling
#: itself carries the canonical table as data).
_EXEMPT_PACKAGES = frozenset({"constants", "analysis"})


def match_constant(value: float) -> str | None:
    """Return the repro.constants symbol ``value`` duplicates, if any."""
    for canonical, symbol in CANONICAL_CONSTANTS.items():
        if abs(value - canonical) <= _REL_TOL * abs(canonical):
            return symbol
    return None


class UnitsChecker(Checker):
    codes = {
        "RPA201": "raw physical-constant literal duplicates a "
                  "repro.constants symbol; import it instead",
    }

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        if module.package in _EXEMPT_PACKAGES:
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            if not isinstance(node.value, float):
                continue
            symbol = match_constant(node.value)
            if symbol is None:
                continue
            findings.append(self.finding(
                module, node, "RPA201",
                f"raw literal {node.value!r} duplicates the physical "
                f"constant repro.constants.{symbol}; import and use the "
                "named constant",
                symbol=symbol))
        return findings
