"""Checker registry: one instance of every rule family.

Layer: inside :mod:`repro.analysis` (cross-cutting tooling; imports
only ``errors``).  Responsibility: enumerate the rule families the
engine runs — RPA1xx determinism, RPA2xx units, RPA3xx layering,
RPA4xx API contracts (annotations, defaults, frozen results, package
docstrings), RPA5xx resilience (no broad exception handlers outside
the recovery layer), and the dataflow families RPA6xx cache-key
soundness, RPA7xx worker/parallel safety, RPA8xx hot-path hygiene,
RPA9xx scheduler-seam discipline — so `python -m repro.analysis` and
`repro lint` agree on the rule set.
Add new checkers here (``default_checkers``) and their codes surface
automatically in ``all_codes`` / ``--list-codes``.
"""

from __future__ import annotations

from repro.analysis.checkers.base import Checker
from repro.analysis.checkers.cachekeys import CacheKeyChecker
from repro.analysis.checkers.contracts import ContractsChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.hotpath import HotPathChecker
from repro.analysis.checkers.layering import LayeringChecker
from repro.analysis.checkers.resilience import ResilienceChecker
from repro.analysis.checkers.schedulers import SchedulerSeamChecker
from repro.analysis.checkers.units import UnitsChecker
from repro.analysis.checkers.workers import WorkerSafetyChecker

__all__ = [
    "CacheKeyChecker",
    "Checker",
    "ContractsChecker",
    "DeterminismChecker",
    "HotPathChecker",
    "LayeringChecker",
    "ResilienceChecker",
    "SchedulerSeamChecker",
    "UnitsChecker",
    "WorkerSafetyChecker",
    "all_codes",
    "default_checkers",
]


def default_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, in report order."""
    return [DeterminismChecker(), UnitsChecker(), LayeringChecker(),
            ContractsChecker(), ResilienceChecker(), CacheKeyChecker(),
            WorkerSafetyChecker(), HotPathChecker(),
            SchedulerSeamChecker()]


def all_codes() -> dict[str, str]:
    """Every known code -> description, including the engine's own."""
    from repro.analysis.engine import PARSE_ERROR_CODE

    codes: dict[str, str] = {
        PARSE_ERROR_CODE: "file cannot be parsed/analysed",
    }
    for checker in default_checkers():
        codes.update(checker.codes)
    return dict(sorted(codes.items()))
