"""RPA5xx — resilience: recovery logic stays centralized.

The resilience layer (:mod:`repro.runtime.resilience`) owns the policy
for what happens when a solve fails: retry ladders absorb
``ConvergenceError`` only, quarantine converts exhausted failures into
structured records, and everything else propagates.  A broad handler
anywhere else — ``except Exception:``, ``except BaseException:`` or a
bare ``except:`` — silently swallows programming errors, masks injected
faults, and forks the recovery policy into ad-hoc local variants:

* ``RPA501`` — broad exception handler outside
  ``repro.runtime.resilience``.  Catch the narrowest concrete type
  (``ConvergenceError``, ``AnalysisError``, ``OSError``, ...) instead;
  a handler that *re-raises* (cleanup-then-``raise``, the atomic-write
  idiom) is exempt because nothing is swallowed.

Suppress a deliberate exception firewall with
``# repro: noqa[RPA501]``.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker
from repro.analysis.engine import ModuleInfo
from repro.analysis.findings import Finding

#: The one module allowed to hold broad recovery handlers.
_ALLOWED_MODULES = frozenset({"repro.runtime.resilience"})

#: Exception names considered "broad" when caught.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_catch(handler: ast.ExceptHandler) -> str | None:
    """The broad name this handler catches, or None if it is narrow."""
    if handler.type is None:
        return "bare except"
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None)
        if name in _BROAD_NAMES:
            return name
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True if the handler body re-raises what it caught.

    A bare ``raise`` anywhere in the handler (outside nested function
    definitions) counts — that is the cleanup-then-reraise idiom — and
    so does ``raise <caught name>``.
    """
    caught = handler.name

    def scan(nodes: list[ast.stmt]) -> bool:
        for stmt in nodes:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                    continue
                if isinstance(node, ast.Raise):
                    if node.exc is None:
                        return True
                    if (caught and isinstance(node.exc, ast.Name)
                            and node.exc.id == caught):
                        return True
        return False

    return scan(handler.body)


class ResilienceChecker(Checker):
    codes = {
        "RPA501": "broad exception handler outside "
                  "repro.runtime.resilience swallows failures; catch a "
                  "concrete type or re-raise",
    }

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        if module.module_name in _ALLOWED_MODULES:
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_catch(node)
            if broad is None or _reraises(node):
                continue
            findings.append(self.finding(
                module, node, "RPA501",
                f"broad handler ({broad}) swallows failures; catch a "
                "concrete exception type, re-raise, or centralize the "
                "recovery in repro.runtime.resilience"))
        return findings
