"""RPA6xx — cache/checkpoint key soundness.

A content-addressed cache is only as sound as its key: a parameter that
changes the computed result but not the hash silently serves stale
artifacts; an environment variable read below the cached call does the
same across processes.  PR 6 guarded two specific keys with hand-written
regression tests; this family turns that into a checked property of
every key in the tree, using the dataflow layer:

* ``RPA601`` — a parameter of a key-computing function (one that calls
  ``content_key`` or a key-builder that wraps it) does not flow into
  the key's arguments.  Parameters that are deliberately not part of
  the artifact identity (worker counts, cache toggles) carry a
  ``# repro: nokey[RPA601] <reason>`` annotation on their line.
* ``RPA602`` — a result-affecting ``REPRO_*`` environment variable is
  transitively readable from a key-computing function but no call
  whose result flows into the key covers it (e.g. a key missing
  ``warmstart_enabled()`` while the solver honors
  ``REPRO_NO_WARMSTART``).
* ``RPA603`` — a ``.put(key, ...)`` / ``SweepCheckpoint(key, ...)``
  whose key derives from neither a content-key call nor a parameter
  (an ad-hoc string or counter is not a content hash).

``repro.runtime`` itself is exempt: it *implements* the mechanism.
Execution-strategy variables (``REPRO_WORKERS``, ``REPRO_STRICT``,
checkpoint/resume/trace/cache-location toggles) are result-neutral by
the determinism contract — parallel and resumed runs are bit-for-bit
identical — and are therefore never required in a key.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, dotted_name
from repro.analysis.dataflow.callgraph import CallGraph, build_call_graph
from repro.analysis.dataflow.queries import (
    call_results_flowing_into,
    param_flows_into,
)
from repro.analysis.engine import ModuleInfo, Project
from repro.analysis.findings import Finding

#: The root key primitive; everything hashing through it is "a key".
CONTENT_KEY = "repro.runtime.cache.content_key"

#: Result-neutral environment variables: they steer *how* a result is
#: computed (parallelism, persistence, logging, failure policy), never
#: *what* is computed — the determinism tests pin that equivalence.
RESULT_NEUTRAL_ENV = frozenset({
    "REPRO_WORKERS",
    "REPRO_TRACE",
    "REPRO_CACHE_DIR",
    "REPRO_NO_CACHE",
    "REPRO_CHECKPOINT",
    "REPRO_RESUME",
    "REPRO_STRICT",
    "REPRO_FAULTS",
    "REPRO_SANITIZE",
    "REPRO_SCHEDULER",
    "REPRO_HOSTS",
    "REPRO_LEASE_TIMEOUT",
    "REPRO_HEARTBEAT_S",
})

#: Classes whose constructor takes a cache key as first argument.
_KEYED_CONSTRUCTORS = frozenset({
    "repro.runtime.resilience.SweepCheckpoint",
})


def _result_affecting(env_vars: frozenset[str]) -> set[str]:
    return {v for v in env_vars
            if v.startswith("REPRO_") and v not in RESULT_NEUTRAL_ENV}


def key_builders(graph: CallGraph) -> frozenset[str]:
    """Functions whose return value is (recursively) a content key."""
    builders: set[str] = {CONTENT_KEY}
    changed = True
    while changed:
        changed = False
        for info in graph.functions.values():
            if info.qualname in builders:
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Call):
                        dotted = dotted_name(sub.func)
                        if dotted is None:
                            continue
                        target = graph.resolve(info.module, dotted)
                        if target in builders:
                            builders.add(info.qualname)
                            changed = True
                            break
                if info.qualname in builders:
                    break
    return frozenset(builders)


def _key_calls(info, graph: CallGraph,
               builders: frozenset[str]) -> list[tuple[ast.Call, str]]:
    """``(call, resolved_builder)`` for every key call in the body."""
    calls: list[tuple[ast.Call, str]] = []
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            target = graph.resolve(info.module, dotted)
            if target in builders:
                calls.append((node, target))
    return calls


def _checkable_params(info) -> list[ast.arg]:
    args = info.node.args
    params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    if info.is_method and params and params[0].arg in ("self", "cls"):
        params = params[1:]
    return [p for p in params if not p.arg.startswith("_")]


class CacheKeyChecker(Checker):
    codes = {
        "RPA601": "parameter of a key-computing function does not flow "
                  "into the content-hash key (annotate deliberate "
                  "omissions with '# repro: nokey[RPA601] reason')",
        "RPA602": "result-affecting REPRO_* environment variable is "
                  "readable below a key-computing function but not "
                  "covered by the key",
        "RPA603": "cache/checkpoint key does not derive from a "
                  "content-key call or a parameter",
    }

    def check_project(self, project: Project) -> list[Finding]:
        graph = build_call_graph(project)
        builders = key_builders(graph)
        by_path = {m.path: m for m in project.modules}
        findings: list[Finding] = []
        for info in graph.functions.values():
            if info.module.startswith("repro.runtime") or \
                    info.module.startswith("repro.analysis"):
                continue
            module = by_path.get(info.path)
            if module is None:
                continue
            calls = _key_calls(info, graph, builders)
            if calls:
                findings.extend(
                    self._check_params(module, info, calls))
                findings.extend(
                    self._check_env_coverage(module, info, graph, calls))
            findings.extend(
                self._check_key_provenance(module, info, graph, builders))
        return findings

    # -------------------------------------------------------- RPA601 -- #
    def _check_params(self, module: ModuleInfo, info,
                      calls: list[tuple[ast.Call, str]]) -> list[Finding]:
        findings: list[Finding] = []
        for param in _checkable_params(info):
            if any(param_flows_into(info.node, param.arg, call)
                   for call, _ in calls):
                continue
            findings.append(Finding(
                path=module.path, line=param.lineno,
                col=param.col_offset, code="RPA601",
                message=f"parameter '{param.arg}' of key-computing "
                        f"function '{info.name}' does not flow into the "
                        "content-hash key; include it in the key or "
                        "annotate the parameter line with "
                        "'# repro: nokey[RPA601] <why it cannot change "
                        "the cached result>'",
                symbol=f"{info.qualname}.{param.arg}"))
        return findings

    # -------------------------------------------------------- RPA602 -- #
    def _check_env_coverage(self, module: ModuleInfo, info,
                            graph: CallGraph,
                            calls: list[tuple[ast.Call, str]]
                            ) -> list[Finding]:
        relevant = _result_affecting(
            graph.transitive_env_reads(info.qualname))
        if not relevant:
            return []

        def resolve(dotted: str) -> str | None:
            return graph.resolve(info.module, dotted)

        covered: set[str] = set()
        for call, target in calls:
            if target != CONTENT_KEY:
                # A key-builder covers whatever it reads itself; its own
                # soundness is checked at its definition site.
                covered |= graph.transitive_env_reads(target)
            for callee in call_results_flowing_into(info.node, call,
                                                    resolve):
                covered |= graph.transitive_env_reads(callee)
        findings: list[Finding] = []
        for call, _ in calls:
            uncovered = sorted(relevant - covered)
            if not uncovered:
                break
            findings.append(Finding(
                path=module.path, line=call.lineno, col=call.col_offset,
                code="RPA602",
                message="cache key does not cover result-affecting "
                        f"environment read(s) {', '.join(uncovered)} "
                        f"reachable from '{info.name}'; thread the "
                        "resolved value (e.g. resolve_engine(), "
                        "warmstart_enabled(), backend_name()) into the "
                        "key arguments",
                symbol=info.qualname))
            break  # one finding per function, not per key call
        return findings

    # -------------------------------------------------------- RPA603 -- #
    def _check_key_provenance(self, module: ModuleInfo, info,
                              graph: CallGraph,
                              builders: frozenset[str]) -> list[Finding]:
        params = {p.arg for p in _checkable_params(info)}
        findings: list[Finding] = []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if not self._is_keyed_store(node, info, graph):
                continue
            key_arg = node.args[0]
            if self._key_is_derived(key_arg, info, graph, builders,
                                    params):
                continue
            findings.append(Finding(
                path=module.path, line=node.lineno, col=node.col_offset,
                code="RPA603",
                message="stored key does not derive from a content-key "
                        "call or a parameter; build it with "
                        "content_key(...) so artifact identity follows "
                        "content, not call order",
                symbol=info.qualname))
        return findings

    @staticmethod
    def _is_keyed_store(node: ast.Call, info, graph: CallGraph) -> bool:
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "put":
            return True
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        return graph.resolve_class(info.module, dotted) in \
            _KEYED_CONSTRUCTORS

    @staticmethod
    def _key_is_derived(key_arg: ast.expr, info, graph: CallGraph,
                        builders: frozenset[str],
                        params: set[str]) -> bool:
        # Direct: SweepCheckpoint(content_key(...), ...).
        if isinstance(key_arg, ast.Call):
            dotted = dotted_name(key_arg.func)
            if dotted is not None and \
                    graph.resolve(info.module, dotted) in builders:
                return True
        # A parameter is the caller's responsibility (checked there).
        if isinstance(key_arg, ast.Name):
            if key_arg.id in params:
                return True

            def resolve(dotted: str) -> str | None:
                target = graph.resolve(info.module, dotted)
                return target if target in builders else None

            # Local binding: does a key-builder result reach the store
            # call's arguments?  Locate the store by the Name node.
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call) and node.args and \
                        node.args[0] is key_arg:
                    return bool(call_results_flowing_into(
                        info.node, node, resolve))
        if isinstance(key_arg, ast.Attribute):
            # self.key / obj.key: provenance tracked where it was built.
            return True
        return False
