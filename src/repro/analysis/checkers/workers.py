"""RPA7xx — worker/parallel safety.

``parallel_map`` ships callables to spawned processes: the callable is
pickled by reference (so it must be importable at module level), runs
in a fresh interpreter (so mutations of parent module state are
silently lost), and shares the parent's observability configuration by
environment re-export (so a worker toggling ``obs``/``faults``/
``sanitize`` flags diverges from the parent run's manifest).  The
determinism contract — bit-for-bit identical results at any worker
count — quietly depends on all three properties.

* ``RPA701`` — the callable handed to ``parallel_map`` is a lambda or
  a nested function: not picklable by reference, fails at spawn time
  on a cold path only exercised with ``workers > 1``.
* ``RPA702`` — a worker function mutates module-level state
  (``global`` rebinding, item/attribute stores, mutating method calls
  on module names): the mutation happens in the child and never
  reaches the parent, so results differ between serial and parallel
  runs.
* ``RPA703`` — a worker function toggles ``obs``/``faults``/
  ``sanitize`` flags: the parent re-exports these through the
  environment; a worker flipping them mid-run diverges from the
  recorded configuration.

Only the worker's *direct* body is checked for 702/703: a worker may
legitimately call into caches that maintain per-process memoization
(e.g. the device-table memory cache) — cross-process divergence there
is handled by the content-addressed disk layer, which RPA6xx guards.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, dotted_name
from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
)
from repro.analysis.dataflow.cfg import build_cfg
from repro.analysis.dataflow.defs import compute_reaching_definitions
from repro.analysis.engine import ModuleInfo, Project
from repro.analysis.findings import Finding

PARALLEL_MAP = "repro.runtime.parallel.parallel_map"

#: Mutating methods on built-in containers.
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "setdefault", "add", "discard", "popitem", "appendleft", "sort",
})

#: Flag-toggling callables a worker must never invoke.
_TOGGLES = frozenset({
    "repro.obs.enable", "repro.obs.disable",
    "repro.sanitize.enable", "repro.sanitize.disable",
    "repro.runtime.faults.enable", "repro.runtime.faults.disable",
})


def _partial_target(call: ast.Call, graph: CallGraph,
                    module: str) -> str | None:
    """Resolved wrapped function of a ``partial(fn, ...)`` call."""
    dotted = dotted_name(call.func)
    if dotted not in ("partial", "functools.partial") or not call.args:
        return None
    wrapped = dotted_name(call.args[0])
    if wrapped is None:
        return None
    return graph.resolve(module, wrapped)


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names


def _store_root(target: ast.expr) -> str | None:
    """Root name of an attribute/subscript store target."""
    if not isinstance(target, (ast.Attribute, ast.Subscript)):
        return None
    node: ast.expr = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _local_names(func: ast.AST) -> set[str]:
    """Names bound anywhere inside the function (params included)."""
    names: set[str] = set()
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


class WorkerSafetyChecker(Checker):
    codes = {
        "RPA701": "callable passed to parallel_map is not module-level "
                  "importable (lambda or nested def does not pickle by "
                  "reference)",
        "RPA702": "worker function mutates module-level state; the "
                  "mutation is lost in spawned processes, so serial "
                  "and parallel runs diverge",
        "RPA703": "worker function toggles obs/faults/sanitize flags, "
                  "diverging from the parent run's recorded "
                  "configuration",
    }

    def check_project(self, project: Project) -> list[Finding]:
        graph = build_call_graph(project)
        by_path = {m.path: m for m in project.modules}
        findings: list[Finding] = []
        workers: dict[str, FunctionInfo] = {}

        for info in graph.functions.values():
            module = by_path.get(info.path)
            if module is None:
                continue
            for call in ast.walk(info.node):
                if not isinstance(call, ast.Call):
                    continue
                dotted = dotted_name(call.func)
                if dotted is None or \
                        graph.resolve(info.module, dotted) != PARALLEL_MAP:
                    continue
                if not call.args:
                    continue
                findings.extend(self._check_dispatch(
                    module, info, graph, call, workers))

        for worker in workers.values():
            worker_module = by_path.get(worker.path)
            if worker_module is None or \
                    worker.module.startswith("repro.runtime"):
                continue
            findings.extend(self._check_purity(worker_module, worker,
                                               graph))
        return findings

    # -------------------------------------------------------- RPA701 -- #
    def _check_dispatch(self, module: ModuleInfo, info: FunctionInfo,
                        graph: CallGraph, call: ast.Call,
                        workers: dict[str, FunctionInfo]) -> list[Finding]:
        fn_arg = call.args[0]
        findings: list[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(Finding(
                path=module.path, line=node.lineno,
                col=node.col_offset, code="RPA701",
                message=f"{what} passed to parallel_map cannot be "
                        "pickled by reference in spawned workers; "
                        "promote it to a module-level function (or a "
                        "functools.partial of one)",
                symbol=info.qualname))

        def record(qualname: str | None) -> None:
            if qualname is not None:
                worker = graph.function(qualname)
                if worker is not None:
                    workers[qualname] = worker

        if isinstance(fn_arg, ast.Lambda):
            flag(fn_arg, "lambda")
            return findings
        if isinstance(fn_arg, ast.Call):
            target = _partial_target(fn_arg, graph, info.module)
            if target is not None:
                record(target)
            elif _is_nested_partial(fn_arg, info.node):
                flag(fn_arg, "partial of a nested function")
            return findings
        dotted = dotted_name(fn_arg)
        if dotted is None:
            return findings
        resolved = graph.resolve(info.module, dotted)
        if resolved is not None and "." not in dotted:
            # Name shadowed by a local binding?  Follow reaching defs.
            resolved = None if _locally_bound(info.node, dotted) \
                else resolved
        if resolved is not None:
            record(resolved)
            return findings
        # A plain name bound locally: inspect its definitions.
        if "." in dotted:
            return findings
        for value in _binding_values(info.node, dotted):
            if isinstance(value, ast.Lambda):
                flag(value, "lambda")
            elif isinstance(value, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                flag(value, f"nested function '{value.name}'")
            elif isinstance(value, ast.Call):
                target = _partial_target(value, graph, info.module)
                if target is not None:
                    record(target)
                elif _is_nested_partial(value, info.node):
                    flag(value, "partial of a nested function")
        return findings

    # ----------------------------------------------------- RPA702/3 -- #
    def _check_purity(self, module: ModuleInfo, worker: FunctionInfo,
                      graph: CallGraph) -> list[Finding]:
        findings: list[Finding] = []
        module_names = _module_level_names(module.tree)
        local_names = _local_names(worker.node)
        shadowed = module_names - local_names

        for node in ast.walk(worker.node):
            if isinstance(node, ast.Global):
                findings.append(self.finding(
                    module, node, "RPA702",
                    f"worker '{worker.name}' rebinds module global(s) "
                    f"{', '.join(node.names)}; the rebinding is lost "
                    "in spawned processes",
                    symbol=worker.qualname))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    root = _store_root(target)
                    if root is not None and root in shadowed:
                        findings.append(self.finding(
                            module, node, "RPA702",
                            f"worker '{worker.name}' stores into "
                            f"module-level '{root}'; spawned processes "
                            "never propagate this back to the parent",
                            symbol=worker.qualname))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(module, worker, graph,
                                                 node, shadowed))
        return findings

    def _check_call(self, module: ModuleInfo, worker: FunctionInfo,
                    graph: CallGraph, node: ast.Call,
                    shadowed: set[str]) -> list[Finding]:
        findings: list[Finding] = []
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS \
                and isinstance(func.value, ast.Name) \
                and func.value.id in shadowed:
            findings.append(self.finding(
                module, node, "RPA702",
                f"worker '{worker.name}' calls mutating "
                f"'.{func.attr}()' on module-level "
                f"'{func.value.id}'; the mutation stays in the child "
                "process",
                symbol=worker.qualname))
        dotted = dotted_name(func)
        if dotted is not None:
            resolved = graph.resolve(worker.module, dotted)
            if resolved in _TOGGLES:
                findings.append(self.finding(
                    module, node, "RPA703",
                    f"worker '{worker.name}' calls '{dotted}()'; "
                    "obs/faults/sanitize state must be configured by "
                    "the parent (it is re-exported to workers through "
                    "the environment), never toggled per-worker",
                    symbol=worker.qualname))
        return findings


def _locally_bound(func: ast.AST, name: str) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and name == node.id and \
                isinstance(node.ctx, ast.Store):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func and node.name == name:
            return True
    return False


def _binding_values(func: ast.FunctionDef | ast.AsyncFunctionDef,
                    name: str) -> list[ast.AST]:
    """Every value expression (or def) bound to ``name`` inside
    ``func``, found through the CFG's definition sites."""
    cfg = build_cfg(func)
    rd = compute_reaching_definitions(cfg)
    values: list[ast.AST] = []
    for node in cfg.nodes:
        for definition in rd.defs_at(node.index):
            if definition.name != name or node.stmt is None:
                continue
            stmt = node.stmt
            if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in stmt.targets):
                values.append(stmt.value)
            elif isinstance(stmt, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)) and \
                    stmt.name == name:
                values.append(stmt)
    return values


def _is_nested_partial(call: ast.Call, func: ast.AST) -> bool:
    """Is ``partial(f, ...)`` wrapping a function nested in ``func``?"""
    dotted = dotted_name(call.func)
    if dotted not in ("partial", "functools.partial") or not call.args:
        return False
    wrapped = dotted_name(call.args[0])
    if wrapped is None:
        return isinstance(call.args[0], ast.Lambda)
    return _locally_bound(func, wrapped.split(".")[0])
