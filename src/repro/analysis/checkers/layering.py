"""RPA3xx — layering: the package dependency DAG.

The architecture (DESIGN.md §4) is a strict pipeline

``constants -> atomistic -> {poisson, negf} -> device -> circuit ->
cmos -> exploration -> variability -> reporting -> characterize -> cli``

with four cross-cutting utility layers importable from anywhere:
``errors`` (exception hierarchy), ``runtime`` (execution substrate),
``sanitize`` (numerical guards) and ``obs`` (tracing/metrics).  A package may import any package
*reachable* through the DAG below it; importing upward (``negf`` pulling
in ``device``) or across unrelated branches (``poisson`` pulling in
``negf``) couples layers that were designed independent, and any cycle
makes partial imports and pickling (worker processes!) order-dependent.

* ``RPA301`` — import edge not permitted by the DAG;
* ``RPA302`` — module-level import cycle inside ``repro``.

The root facade ``repro/__init__.py`` re-exports the public API and is
exempt from RPA301 (it sits above every layer by construction).
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker
from repro.analysis.engine import ModuleInfo, Project
from repro.analysis.findings import Finding

#: Direct dependency edges of the architecture DAG.  Permission to
#: import is the transitive closure of these edges.
LAYER_DAG: dict[str, frozenset[str]] = {
    "constants": frozenset(),
    "errors": frozenset(),
    "obs": frozenset({"errors"}),
    "runtime": frozenset({"errors", "obs"}),
    "sanitize": frozenset({"constants", "errors"}),
    "analysis": frozenset({"errors"}),
    "atomistic": frozenset({"constants", "errors"}),
    "poisson": frozenset({"atomistic", "obs"}),
    "negf": frozenset({"atomistic", "sanitize", "obs", "runtime"}),
    "device": frozenset({"negf", "poisson", "runtime", "sanitize", "obs"}),
    "circuit": frozenset({"device", "obs"}),
    "cmos": frozenset({"circuit"}),
    "exploration": frozenset({"cmos", "runtime", "obs"}),
    "variability": frozenset({"exploration", "runtime", "sanitize"}),
    "reporting": frozenset({"variability"}),
    "characterize": frozenset({"reporting", "runtime", "obs", "errors"}),
    "cli": frozenset({"reporting", "characterize", "analysis", "runtime",
                      "sanitize", "obs"}),
}


def allowed_imports(package: str) -> frozenset[str]:
    """Transitive closure of :data:`LAYER_DAG` below ``package``."""
    if package not in LAYER_DAG:
        return frozenset()
    reached: set[str] = set()
    stack = list(LAYER_DAG[package])
    while stack:
        dep = stack.pop()
        if dep in reached:
            continue
        reached.add(dep)
        stack.extend(LAYER_DAG.get(dep, frozenset()))
    return frozenset(reached)


def _walk_skipping_functions(tree: ast.Module):
    """Walk the AST without descending into function bodies.

    Imports deferred into a function body are the accepted way to break
    a runtime cycle, so the RPA302 cycle detector must only see
    module-level (import-time) edges.
    """
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def _imported_repro_modules(tree: ast.Module, module_level_only: bool = False
                            ) -> list[tuple[str, ast.AST]]:
    """Every ``repro.*`` module referenced by import statements."""
    imports: list[tuple[str, ast.AST]] = []
    nodes = (_walk_skipping_functions(tree) if module_level_only
             else ast.walk(tree))
    for node in nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    imports.append((alias.name, node))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                continue  # relative imports are not used in this tree
            if node.module == "repro":
                for alias in node.names:
                    imports.append((f"repro.{alias.name}", node))
            elif node.module is not None and \
                    node.module.startswith("repro."):
                imports.append((node.module, node))
    return imports


def _package_of(module_name: str) -> str | None:
    parts = module_name.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


class LayeringChecker(Checker):
    codes = {
        "RPA301": "import crosses the architecture layer DAG upward or "
                  "sideways; depend only on lower layers",
        "RPA302": "module-level import cycle inside repro",
    }

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        package = module.package
        if package is None or package == "__init__":
            return []  # outside repro, or the exempt root facade
        permitted = allowed_imports(package)
        findings: list[Finding] = []
        for target, node in _imported_repro_modules(module.tree):
            target_pkg = _package_of(target)
            if target_pkg is None or target_pkg == package:
                continue
            if target_pkg in permitted:
                continue
            if target_pkg not in LAYER_DAG:
                findings.append(self.finding(
                    module, node, "RPA301",
                    f"import of unknown package 'repro.{target_pkg}' — "
                    "add it to the layer DAG in "
                    "repro/analysis/checkers/layering.py (and DESIGN.md) "
                    "before depending on it",
                    symbol=target))
            else:
                findings.append(self.finding(
                    module, node, "RPA301",
                    f"layer violation: '{package}' may not import "
                    f"'{target_pkg}' (allowed: "
                    f"{', '.join(sorted(permitted)) or 'nothing'}); "
                    "the DAG flows constants -> atomistic -> "
                    "{poisson,negf} -> device -> circuit -> cmos -> "
                    "exploration -> variability -> reporting -> cli",
                    symbol=target))
        return findings

    def check_project(self, project: Project) -> list[Finding]:
        """Detect module-level import cycles with Tarjan's SCC algorithm."""
        by_name = project.by_module_name()
        graph: dict[str, set[str]] = {}
        for name, module in by_name.items():
            deps = set()
            for target, _ in _imported_repro_modules(module.tree,
                                                     module_level_only=True):
                if target in by_name and target != name:
                    deps.add(target)
                else:
                    # 'from repro.negf.scf import X' may name a symbol's
                    # parent module; fall back to the longest known prefix.
                    parts = target.split(".")
                    for cut in range(len(parts) - 1, 1, -1):
                        prefix = ".".join(parts[:cut])
                        if prefix in by_name and prefix != name:
                            deps.add(prefix)
                            break
            graph[name] = deps

        findings: list[Finding] = []
        for cycle in _strongly_connected_cycles(graph):
            anchor = sorted(cycle)[0]
            module = by_name[anchor]
            findings.append(Finding(
                path=module.path, line=1, col=0, code="RPA302",
                message="import cycle: " + " -> ".join(sorted(cycle)) +
                        " -> ...; break the cycle by moving the shared "
                        "piece into the lower layer",
                symbol=anchor))
        return findings


def _strongly_connected_cycles(graph: dict[str, set[str]]
                               ) -> list[frozenset[str]]:
    """Non-trivial SCCs (size > 1, or self-loop) of the import graph."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[frozenset[str]] = []

    def visit(root: str) -> None:
        work: list[tuple[str, iter]] = [(root, iter(graph.get(root, ())))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph.get(node, ()):
                    cycles.append(frozenset(component))

    for name in sorted(graph):
        if name not in index:
            visit(name)
    return cycles
