"""Shared AST infrastructure: module model, suppression, orchestration.

The engine parses every target file once, hands the shared
:class:`ModuleInfo` to each checker (per-module pass), then hands the
whole :class:`Project` to checkers that need a global view (the layering
DAG).  Findings flow through two suppression filters:

* per-line ``# repro: noqa[CODE]`` (or blanket ``# repro: noqa``)
  comments on the offending line;
* an optional baseline file of previously accepted findings
  (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

#: Engine-level code for files the parser rejects.
PARSE_ERROR_CODE = "RPA001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE)


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file plus everything checkers need about it.

    Attributes
    ----------
    path:
        Path as given on the command line (used in reports).
    module_name:
        Dotted module name when the file lives inside the ``repro``
        package (e.g. ``repro.negf.greens``), else ``None``.
    tree:
        Parsed AST.
    source_lines:
        Raw source split into lines (1-indexed through ``line(n)``).
    noqa:
        Mapping of line number to the set of suppressed codes on that
        line; an empty set means a blanket ``# repro: noqa``.
    """

    path: str
    module_name: str | None
    tree: ast.Module
    source_lines: tuple[str, ...]
    noqa: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def package(self) -> str | None:
        """First component below ``repro`` (``negf`` for ``repro.negf.scf``).

        Top-level modules map to themselves (``repro.cli`` -> ``cli``);
        the root ``repro/__init__`` maps to ``"__init__"``.
        """
        if self.module_name is None or self.module_name == "repro":
            return "__init__" if self.module_name == "repro" else None
        return self.module_name.split(".")[1]

    @property
    def is_package_init(self) -> bool:
        return Path(self.path).name == "__init__.py"

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.noqa.get(finding.line)
        if codes is None:
            return False
        return not codes or finding.code in codes


@dataclass
class Project:
    """Every module of one analysis run, keyed for global checkers."""

    modules: list[ModuleInfo]

    def by_module_name(self) -> dict[str, ModuleInfo]:
        return {m.module_name: m for m in self.modules
                if m.module_name is not None}


def scan_noqa(source_lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Extract ``# repro: noqa[...]`` suppressions, keyed by line number."""
    noqa: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        if "repro:" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            noqa[lineno] = frozenset()
        else:
            noqa[lineno] = frozenset(
                c.strip().upper() for c in raw.split(",") if c.strip())
    return noqa


def module_name_for(path: Path) -> str | None:
    """Dotted module name of ``path`` if it sits inside a ``repro`` tree."""
    parts = list(path.with_suffix("").parts)
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    if parts[-1] == "__init__":
        parts = parts[:-1] or ["repro"]
    return ".".join(parts)


def load_module(path: Path, display_path: str | None = None
                ) -> tuple[ModuleInfo | None, Finding | None]:
    """Parse one file; returns ``(module, None)`` or ``(None, finding)``."""
    display = display_path if display_path is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=display)
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return None, Finding(path=display, line=int(line), col=0,
                             code=PARSE_ERROR_CODE,
                             message=f"file cannot be analysed: {exc}")
    lines = tuple(source.splitlines())
    return ModuleInfo(path=display, module_name=module_name_for(path),
                      tree=tree, source_lines=lines,
                      noqa=scan_noqa(lines)), None


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)))
        elif p.suffix == ".py":
            files.append(p)
    seen: set[Path] = set()
    unique = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: tuple[Finding, ...]
    n_files: int
    n_noqa_suppressed: int
    n_baseline_suppressed: int

    @property
    def clean(self) -> bool:
        return not self.findings


def run_analysis(paths: Iterable[str | Path],
                 checkers: Sequence["object"] | None = None,
                 baseline: dict[str, int] | None = None) -> AnalysisReport:
    """Analyse ``paths`` with ``checkers`` (default: the full registry).

    ``baseline`` is a ``{baseline_key: count}`` mapping of accepted
    findings (see :mod:`repro.analysis.baseline`); matching findings are
    consumed against their counts and dropped from the report.
    """
    from repro.analysis.checkers import default_checkers

    active = list(checkers) if checkers is not None else default_checkers()

    modules: list[ModuleInfo] = []
    findings: list[Finding] = []
    for path in discover_files(paths):
        module, parse_finding = load_module(path)
        if parse_finding is not None:
            findings.append(parse_finding)
            continue
        assert module is not None
        modules.append(module)

    project = Project(modules=modules)
    for checker in active:
        for module in modules:
            findings.extend(checker.check_module(module))
        findings.extend(checker.check_project(project))

    by_path = {m.path: m for m in modules}
    kept: list[Finding] = []
    n_noqa = 0
    for finding in sorted(findings):
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            n_noqa += 1
            continue
        kept.append(finding)

    n_baseline = 0
    if baseline:
        budget = dict(baseline)
        surviving = []
        for finding in kept:
            key = finding.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                n_baseline += 1
            else:
                surviving.append(finding)
        kept = surviving

    return AnalysisReport(findings=tuple(kept), n_files=len(modules),
                          n_noqa_suppressed=n_noqa,
                          n_baseline_suppressed=n_baseline)
