"""Shared AST infrastructure: module model, suppression, orchestration.

The engine parses every target file once, hands the shared
:class:`ModuleInfo` to each checker (per-module pass), then hands the
whole :class:`Project` to checkers that need a global view (the layering
DAG, the RPA6xx-7xx dataflow families).  Findings flow through three
suppression filters:

* per-line ``# repro: noqa[CODE]`` (or blanket ``# repro: noqa``)
  comments on the offending line;
* per-line ``# repro: nokey[RPA6xx] <reason>`` annotations declaring a
  parameter deliberately absent from a cache key — the reason text is
  mandatory (an annotation without one does not suppress) and only
  RPA6xx codes are accepted, so the cache-key contract can never be
  waved off wholesale;
* an optional baseline file of previously accepted findings
  (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

#: Engine-level code for files the parser rejects.
PARSE_ERROR_CODE = "RPA001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE)

_NOKEY_RE = re.compile(
    r"#\s*repro:\s*nokey\[(?P<codes>[A-Z0-9,\s]+)\]\s*(?P<reason>.*)",
    re.IGNORECASE)


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file plus everything checkers need about it.

    Attributes
    ----------
    path:
        Path as given on the command line (used in reports).
    module_name:
        Dotted module name when the file lives inside the ``repro``
        package (e.g. ``repro.negf.greens``), else ``None``.
    tree:
        Parsed AST.
    source_lines:
        Raw source split into lines (1-indexed through ``line(n)``).
    noqa:
        Mapping of line number to the set of suppressed codes on that
        line; an empty set means a blanket ``# repro: noqa``.
    nokey:
        Mapping of line number to the set of RPA6xx codes a
        ``# repro: nokey[...] reason`` annotation suppresses there.
        Annotations without a reason, or naming non-RPA6xx codes, are
        dropped at scan time and suppress nothing.
    """

    path: str
    module_name: str | None
    tree: ast.Module
    source_lines: tuple[str, ...]
    noqa: dict[int, frozenset[str]] = field(default_factory=dict)
    nokey: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def package(self) -> str | None:
        """First component below ``repro`` (``negf`` for ``repro.negf.scf``).

        Top-level modules map to themselves (``repro.cli`` -> ``cli``);
        the root ``repro/__init__`` maps to ``"__init__"``.
        """
        if self.module_name is None or self.module_name == "repro":
            return "__init__" if self.module_name == "repro" else None
        return self.module_name.split(".")[1]

    @property
    def is_package_init(self) -> bool:
        return Path(self.path).name == "__init__.py"

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.noqa.get(finding.line)
        if codes is None:
            return False
        return not codes or finding.code in codes

    def is_nokey_annotated(self, finding: Finding) -> bool:
        """Does a valid ``nokey`` annotation cover this finding's line?"""
        return finding.code in self.nokey.get(finding.line, frozenset())


@dataclass
class Project:
    """Every module of one analysis run, keyed for global checkers."""

    modules: list[ModuleInfo]

    def by_module_name(self) -> dict[str, ModuleInfo]:
        return {m.module_name: m for m in self.modules
                if m.module_name is not None}


def scan_noqa(source_lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Extract ``# repro: noqa[...]`` suppressions, keyed by line number."""
    noqa: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        if "repro:" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            noqa[lineno] = frozenset()
        else:
            noqa[lineno] = frozenset(
                c.strip().upper() for c in raw.split(",") if c.strip())
    return noqa


def scan_nokey(source_lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Extract ``# repro: nokey[RPA6xx] reason`` annotations.

    The reason is mandatory: an annotation with no text after the code
    list is invalid and suppresses nothing (the finding it fails to
    suppress points straight at the line).  Only RPA6xx codes are
    accepted — ``nokey`` is a cache-key design statement, not a general
    escape hatch (that is what ``noqa`` is for).
    """
    nokey: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        if "repro:" not in text:
            continue
        match = _NOKEY_RE.search(text)
        if match is None:
            continue
        if not match.group("reason").strip():
            continue
        codes = frozenset(
            c.strip().upper() for c in match.group("codes").split(",")
            if c.strip() and c.strip().upper().startswith("RPA6"))
        if codes:
            nokey[lineno] = codes
    return nokey


def module_name_for(path: Path) -> str | None:
    """Dotted module name of ``path`` if it sits inside a ``repro`` tree."""
    parts = list(path.with_suffix("").parts)
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    if parts[-1] == "__init__":
        parts = parts[:-1] or ["repro"]
    return ".".join(parts)


def load_module(path: Path, display_path: str | None = None
                ) -> tuple[ModuleInfo | None, Finding | None]:
    """Parse one file; returns ``(module, None)`` or ``(None, finding)``."""
    display = display_path if display_path is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=display)
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return None, Finding(path=display, line=int(line), col=0,
                             code=PARSE_ERROR_CODE,
                             message=f"file cannot be analysed: {exc}")
    lines = tuple(source.splitlines())
    return ModuleInfo(path=display, module_name=module_name_for(path),
                      tree=tree, source_lines=lines,
                      noqa=scan_noqa(lines),
                      nokey=scan_nokey(lines)), None


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)))
        elif p.suffix == ".py":
            files.append(p)
    seen: set[Path] = set()
    unique = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: tuple[Finding, ...]
    n_files: int
    n_noqa_suppressed: int
    n_baseline_suppressed: int
    n_nokey_suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _matches_select(code: str, select: Sequence[str]) -> bool:
    return any(code.startswith(prefix) for prefix in select)


def run_analysis(paths: Iterable[str | Path],
                 checkers: Sequence["object"] | None = None,
                 baseline: dict[str, int] | None = None,
                 select: Sequence[str] | None = None,
                 focus: Iterable[str | Path] | None = None
                 ) -> AnalysisReport:
    """Analyse ``paths`` with ``checkers`` (default: the full registry).

    ``baseline`` is a ``{baseline_key: count}`` mapping of accepted
    findings (see :mod:`repro.analysis.baseline`); matching findings are
    consumed against their counts and dropped from the report.

    ``select`` restricts the run to code prefixes (``["RPA6", "RPA7"]``
    runs only the dataflow families): checkers with no matching code
    are skipped entirely (the expensive project passes never build),
    and stray findings outside the selection are filtered.  Parse
    errors (RPA001) are always reported.

    ``focus`` restricts *reporting* (not analysis) to the given files:
    the whole path set is still parsed so the project-wide passes —
    call graph, import cycles, layering — resolve against the real
    tree, but only findings landing in a focus file survive.  This is
    what ``--changed`` mode uses; analysing the changed subset alone
    would hand the dataflow checkers a truncated project in which,
    e.g., ``content_key`` no longer resolves and sound keys look
    ad-hoc.
    """
    from repro.analysis.checkers import default_checkers

    active = list(checkers) if checkers is not None else default_checkers()
    if select:
        select = [prefix.strip().upper() for prefix in select
                  if prefix.strip()]
        active = [checker for checker in active
                  if any(_matches_select(code, select)
                         for code in getattr(checker, "codes", {}))]

    modules: list[ModuleInfo] = []
    findings: list[Finding] = []
    for path in discover_files(paths):
        module, parse_finding = load_module(path)
        if parse_finding is not None:
            findings.append(parse_finding)
            continue
        assert module is not None
        modules.append(module)

    project = Project(modules=modules)
    for checker in active:
        for module in modules:
            findings.extend(checker.check_module(module))
        findings.extend(checker.check_project(project))

    if select:
        findings = [f for f in findings
                    if f.code == PARSE_ERROR_CODE
                    or _matches_select(f.code, select)]

    n_files = len(modules)
    if focus is not None:
        focus_set = {Path(p).resolve() for p in focus}
        findings = [f for f in findings
                    if Path(f.path).resolve() in focus_set]
        n_files = sum(1 for m in modules
                      if Path(m.path).resolve() in focus_set)

    by_path = {m.path: m for m in modules}
    kept: list[Finding] = []
    n_noqa = 0
    n_nokey = 0
    for finding in sorted(findings):
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            n_noqa += 1
            continue
        if module is not None and module.is_nokey_annotated(finding):
            n_nokey += 1
            continue
        kept.append(finding)

    n_baseline = 0
    if baseline:
        budget = dict(baseline)
        surviving = []
        for finding in kept:
            key = finding.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                n_baseline += 1
            else:
                surviving.append(finding)
        kept = surviving

    return AnalysisReport(findings=tuple(kept), n_files=n_files,
                          n_noqa_suppressed=n_noqa,
                          n_baseline_suppressed=n_baseline,
                          n_nokey_suppressed=n_nokey)
