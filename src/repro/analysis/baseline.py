"""Baseline files: accepted findings carried across refactors.

A baseline is a JSON document mapping line-independent finding keys
(``path::code::message``) to occurrence counts.  ``run_analysis``
consumes matching findings against those counts, so a legacy violation
can be grandfathered without a ``noqa`` comment while every *new*
occurrence of the same rule still fails the build.

This repo's own policy is an **empty baseline** — violations get fixed,
not recorded — but the mechanism is load-bearing for adopting new rules
incrementally.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: Default baseline filename probed in the working directory.
DEFAULT_BASELINE_NAME = ".repro-analysis-baseline.json"


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a baseline file into a ``{finding_key: count}`` budget."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or \
            document.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline format in {path} "
            f"(expected version {BASELINE_VERSION})")
    entries = document.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"baseline entries must be an object in {path}")
    return {str(key): int(count) for key, count in entries.items()}


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Write the baseline accepting ``findings``; returns the entry count."""
    budget: dict[str, int] = {}
    for finding in findings:
        key = finding.baseline_key()
        budget[key] = budget.get(key, 0) + 1
    document = {"version": BASELINE_VERSION,
                "entries": dict(sorted(budget.items()))}
    Path(path).write_text(json.dumps(document, indent=2) + "\n",
                          encoding="utf-8")
    return sum(budget.values())
