"""Physics-aware static analysis for the :mod:`repro` tree.

An AST-based lint engine with four rule families tailored to the
invariants this codebase lives by:

* **RPA1xx determinism** — no OS entropy, no global RNG state, no wall
  clock inside the library; samplers take explicit Generators so
  ``runtime.parallel_map`` sweeps stay bit-reproducible.
* **RPA2xx units** — physical constants live in :mod:`repro.constants`,
  nowhere else.
* **RPA3xx layering** — the package import graph must follow the
  architecture DAG (DESIGN.md §4) with no cycles.
* **RPA4xx API contracts** — fully-annotated public functions, no
  mutable defaults, frozen result dataclasses.

Run it with ``python -m repro.analysis src/repro`` or ``repro lint``;
suppress a single line with ``# repro: noqa[RPA201]`` and grandfather
legacy findings with a baseline file (``--write-baseline``).
"""

from __future__ import annotations

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.checkers import all_codes, default_checkers
from repro.analysis.engine import (
    AnalysisReport,
    ModuleInfo,
    Project,
    run_analysis,
)
from repro.analysis.findings import Finding

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleInfo",
    "Project",
    "all_codes",
    "default_checkers",
    "load_baseline",
    "run_analysis",
    "write_baseline",
]
