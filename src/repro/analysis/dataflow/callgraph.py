"""Project-wide symbol table and best-effort call graph.

Builds on the same import extraction philosophy as the RPA3xx layering
checker, but at *function* granularity: every module-level function and
every direct method of a module-level class becomes a node, and call
expressions resolve to edges through a per-module import table.  Three
dispatch idioms beyond plain calls are resolved because this codebase
leans on them:

* ``functools.partial(fn, ...)`` — the wrapped callable gets a call
  edge from the function constructing the partial (that is how workers
  are shipped to ``parallel_map``);
* ``self.method(...)`` inside a method body resolves within the class;
* ``obj = SomeClass(...)`` followed by ``obj.method(...)`` in the same
  function resolves to ``SomeClass.method`` (locally constructed
  instances — the checkpoint/cache helpers are used this way).

On top of the edges, each function records which ``REPRO_*``
environment variables its body reads — directly via
``os.environ.get``/``os.getenv``/``os.environ[...]`` with a literal or
a resolvable module-level ``*_ENV`` constant — and the graph exposes
the transitive closure of those reads, which is what the RPA602
cache-key checker consumes.

Unresolvable calls simply produce no edge: the analysis is best-effort
by design and every consumer treats a missing edge as "no evidence",
never as proof of absence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import ModuleInfo, Project


@dataclass(frozen=True)
class FunctionInfo:
    """One module-level function or class method in the project."""

    qualname: str          #: ``repro.device.tables.build_device_table``
    module: str            #: dotted module name
    name: str              #: plain name; ``Class.method`` for methods
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    class_name: str | None = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class CallGraph:
    """Call edges, env reads and symbol tables over one project."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: caller qualname -> callee qualnames (may-call).
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: function qualname -> env var names its body reads directly.
    env_reads: dict[str, set[str]] = field(default_factory=dict)
    #: module -> local alias -> dotted target.
    imports: dict[str, dict[str, str]] = field(default_factory=dict)
    #: class qualname -> method names.
    classes: dict[str, set[str]] = field(default_factory=dict)
    #: module -> constant name -> string value (``*_ENV`` style).
    constants: dict[str, dict[str, str]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def callees(self, qualname: str) -> frozenset[str]:
        return frozenset(self.edges.get(qualname, ()))

    def transitive_callees(self, qualname: str) -> frozenset[str]:
        """Every function reachable from ``qualname`` (excluded itself
        unless it participates in a cycle)."""
        reached: set[str] = set()
        stack = list(self.edges.get(qualname, ()))
        while stack:
            callee = stack.pop()
            if callee in reached:
                continue
            reached.add(callee)
            stack.extend(self.edges.get(callee, ()))
        return frozenset(reached)

    def transitive_env_reads(self, qualname: str) -> frozenset[str]:
        """Env vars read by ``qualname`` or anything it may call."""
        reads = set(self.env_reads.get(qualname, ()))
        for callee in self.transitive_callees(qualname):
            reads |= self.env_reads.get(callee, set())
        return frozenset(reads)

    def resolve(self, module: str, dotted: str) -> str | None:
        """Resolve a (possibly dotted) callable name used inside
        ``module`` to a known function qualname, or ``None``."""
        for candidate in self._candidates(module, dotted):
            chased = self._chase(candidate, self.functions)
            if chased is not None:
                return chased
        return None

    def resolve_class(self, module: str, dotted: str) -> str | None:
        """Resolve a name used inside ``module`` to a known class."""
        for candidate in self._candidates(module, dotted):
            chased = self._chase(candidate, self.classes)
            if chased is not None:
                return chased
        return None

    def resolve_constant(self, module: str, name: str) -> str | None:
        """Resolve a module-level string constant (possibly imported)."""
        local = self.constants.get(module, {})
        if name in local:
            return local[name]
        target = self.imports.get(module, {}).get(name)
        for _ in range(4):
            if target is None:
                return None
            src_module, _, const = target.rpartition(".")
            if const in self.constants.get(src_module, {}):
                return self.constants[src_module][const]
            target = self.imports.get(src_module, {}).get(const)
        return None

    def _candidates(self, module: str, dotted: str) -> list[str]:
        candidates = [f"{module}.{dotted}", dotted]
        head, _, rest = dotted.partition(".")
        target = self.imports.get(module, {}).get(head)
        if target is not None:
            candidates.insert(0, f"{target}.{rest}" if rest else target)
        return candidates

    def _chase(self, candidate: str, table: dict[str, object],
               depth: int = 0) -> str | None:
        """Follow facade re-exports: ``repro.runtime.content_key`` ->
        ``repro.runtime.cache.content_key`` (the ``__init__`` facades
        re-import their submodules' public API)."""
        if candidate in table:
            return candidate
        if depth >= 4:
            return None
        module, _, name = candidate.rpartition(".")
        target = self.imports.get(module, {}).get(name)
        if target is None or target == candidate:
            return None
        return self._chase(target, table, depth + 1)


# ---------------------------------------------------------------------- #
def _import_table(tree: ast.Module) -> dict[str, str]:
    """Local alias -> dotted target for every import in ``tree``."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; attribute chains
                    # are rebuilt against the top-level package.
                    head = alias.name.split(".")[0]
                    table.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                table[bound] = f"{node.module}.{alias.name}"
    return table


def _string_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments."""
    consts: dict[str, str] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not isinstance(value, ast.Constant) or \
                not isinstance(value.value, str):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                consts[target.id] = value.value
    return consts


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _env_var_name(arg: ast.expr, graph: CallGraph, module: str
                  ) -> str | None:
    """Literal or constant-resolved environment variable name."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.Name):
        return graph.resolve_constant(module, arg.id)
    return None


_ENV_GET_SUFFIXES = ("os.environ.get", "environ.get", "os.getenv",
                     "getenv")
_ENV_SUBSCRIPT_SUFFIXES = ("os.environ", "environ")


def _collect_env_reads(func: ast.AST, graph: CallGraph,
                       module: str) -> set[str]:
    reads: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in _ENV_GET_SUFFIXES and node.args:
                name = _env_var_name(node.args[0], graph, module)
                if name is not None:
                    reads.add(name)
        elif isinstance(node, ast.Subscript) and \
                isinstance(node.ctx, ast.Load):
            dotted = _dotted(node.value)
            if dotted in _ENV_SUBSCRIPT_SUFFIXES:
                name = _env_var_name(node.slice, graph, module)
                if name is not None:
                    reads.add(name)
    return reads


def _local_instance_classes(func: ast.AST, graph: CallGraph,
                            module: str) -> dict[str, str]:
    """Map local variable -> class qualname for ``var = Cls(...)``."""
    instances: dict[str, str] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or \
                not isinstance(node.value, ast.Call):
            continue
        dotted = _dotted(node.value.func)
        if dotted is None:
            continue
        cls = graph.resolve_class(module, dotted)
        if cls is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                instances[target.id] = cls
    return instances


def _is_partial(dotted: str | None, graph: CallGraph, module: str) -> bool:
    if dotted is None:
        return False
    if dotted in ("functools.partial", "partial"):
        target = graph.imports.get(module, {}).get(dotted.split(".")[0])
        return dotted == "functools.partial" or \
            target in ("functools.partial", "functools")
    return False


def _collect_edges(info: FunctionInfo, graph: CallGraph) -> set[str]:
    module = info.module
    callees: set[str] = set()
    instances = _local_instance_classes(info.node, graph, module)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        # partial(fn, ...) dispatches to fn eventually.
        if _is_partial(dotted, graph, module) and node.args:
            wrapped = _dotted(node.args[0])
            if wrapped is not None:
                target = graph.resolve(module, wrapped)
                if target is not None:
                    callees.add(target)
            continue
        head, _, rest = dotted.partition(".")
        # self.method() within a class.
        if head == "self" and rest and info.class_name is not None:
            candidate = f"{module}.{info.class_name}.{rest}"
            if candidate in graph.functions:
                callees.add(candidate)
                continue
        # Locally constructed instance: var = Cls(...); var.method().
        if head in instances and rest:
            candidate = f"{instances[head]}.{rest}"
            if candidate in graph.functions:
                callees.add(candidate)
                continue
        target = graph.resolve(module, dotted)
        if target is not None:
            callees.add(target)
            continue
        # Constructor call: edge to Cls.__init__ if defined.
        cls = graph.resolve_class(module, dotted)
        if cls is not None and f"{cls}.__init__" in graph.functions:
            callees.add(f"{cls}.__init__")
    return callees


def build_call_graph(project: Project) -> CallGraph:
    """Build the symbol table and call graph for ``project``."""
    graph = CallGraph()
    repro_modules = [m for m in project.modules
                     if m.module_name is not None]

    for module in repro_modules:
        name = module.module_name
        assert name is not None
        graph.imports[name] = _import_table(module.tree)
        graph.constants[name] = _string_constants(module.tree)
        _register_module(graph, module)

    for info in graph.functions.values():
        graph.env_reads[info.qualname] = _collect_env_reads(
            info.node, graph, info.module)
    for info in graph.functions.values():
        graph.edges[info.qualname] = _collect_edges(info, graph)
    return graph


def _register_module(graph: CallGraph, module: ModuleInfo) -> None:
    name = module.module_name
    assert name is not None
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{name}.{stmt.name}"
            graph.functions[qualname] = FunctionInfo(
                qualname=qualname, module=name, name=stmt.name,
                node=stmt, path=module.path)
        elif isinstance(stmt, ast.ClassDef):
            cls_qual = f"{name}.{stmt.name}"
            graph.classes[cls_qual] = set()
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    method_qual = f"{cls_qual}.{item.name}"
                    graph.classes[cls_qual].add(item.name)
                    graph.functions[method_qual] = FunctionInfo(
                        qualname=method_qual, module=name,
                        name=f"{stmt.name}.{item.name}", node=item,
                        path=module.path, class_name=stmt.name)
