"""Intraprocedural control-flow graphs at statement granularity.

One :class:`CFGNode` per simple statement plus one per compound-statement
*header* (the ``if``/``while`` test, the ``for`` target/iterator, the
``with`` items, the ``try`` marker): fine enough for reaching
definitions, coarse enough that functions of this codebase build in
microseconds.  Synthetic ``entry`` and ``exit`` nodes bracket the graph;
function parameters are treated as definitions at ``entry``.

Approximations (all conservative for a *may*-reach analysis):

* every statement inside a ``try`` body may transfer to every handler
  (an exception can interrupt anywhere);
* ``finally`` bodies are chained after both the normal and the handled
  frontiers;
* nested function/class definitions are single statements (their bodies
  belong to their own CFGs);
* ``break``/``continue`` edges target the innermost enclosing loop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class CFGNode:
    """One control-flow node: a statement header plus its graph edges.

    ``stmt`` is ``None`` for the synthetic ``entry``/``exit`` nodes.
    ``header_exprs`` holds the expressions evaluated *at* this node (the
    ``if`` test, the ``for`` iterator, an assignment's value...) so the
    defs/uses extraction never descends into a compound statement's
    body, which has nodes of its own.
    """

    index: int
    stmt: ast.AST | None
    kind: str
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    header_exprs: tuple[ast.expr, ...] = ()


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: list[CFGNode]
    entry: int
    exit: int

    def successors(self, index: int) -> list[int]:
        return self.nodes[index].succs

    def predecessors(self, index: int) -> list[int]:
        return self.nodes[index].preds

    def statement_nodes(self) -> list[CFGNode]:
        """Every non-synthetic node, in creation (source) order."""
        return [n for n in self.nodes if n.stmt is not None]


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.nodes: list[CFGNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        # (break_targets, continue_targets) collectors per loop depth.
        self._loops: list[tuple[list[int], list[int]]] = []

    def _new(self, stmt: ast.AST | None, kind: str,
             header_exprs: tuple[ast.expr, ...] = ()) -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt, kind=kind,
                       header_exprs=header_exprs)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def _link(self, frontier: list[int], dst: int) -> None:
        for src in frontier:
            self._edge(src, dst)

    def build(self) -> CFG:
        frontier = self._body(self.func.body, [self.entry])
        self._link(frontier, self.exit)
        return CFG(func=self.func, nodes=self.nodes, entry=self.entry,
                   exit=self.exit)

    # ------------------------------------------------------------------ #
    def _body(self, stmts: list[ast.stmt],
              frontier: list[int]) -> list[int]:
        for stmt in stmts:
            if not frontier:
                # Unreachable code still gets nodes (a checker may want
                # to look at it) but no incoming edges.
                pass
            frontier = self._statement(stmt, frontier)
        return frontier

    def _statement(self, stmt: ast.stmt,
                   frontier: list[int]) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            exprs = tuple(item.context_expr for item in stmt.items)
            node = self._new(stmt, "with", exprs)
            self._link(frontier, node)
            return self._body(stmt.body, [node])
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            exprs = ()
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                exprs = (stmt.value,)
            elif isinstance(stmt, ast.Raise) and stmt.exc is not None:
                exprs = (stmt.exc,)
            node = self._new(stmt, "terminator", exprs)
            self._link(frontier, node)
            self._edge(node, self.exit)
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = self._new(stmt, "jump")
            self._link(frontier, node)
            if self._loops:
                breaks, continues = self._loops[-1]
                (breaks if isinstance(stmt, ast.Break)
                 else continues).append(node)
            return []
        # Simple statement (assignments, expressions, imports, nested
        # defs, global/nonlocal, assert, delete, pass...).
        node = self._new(stmt, "stmt", self._simple_exprs(stmt))
        self._link(frontier, node)
        return [node]

    @staticmethod
    def _simple_exprs(stmt: ast.stmt) -> tuple[ast.expr, ...]:
        if isinstance(stmt, ast.Assign):
            return (stmt.value,)
        if isinstance(stmt, ast.AugAssign):
            return (stmt.value, stmt.target)
        if isinstance(stmt, ast.AnnAssign):
            return (stmt.value,) if stmt.value is not None else ()
        if isinstance(stmt, ast.Expr):
            return (stmt.value,)
        if isinstance(stmt, ast.Assert):
            return ((stmt.test, stmt.msg) if stmt.msg is not None
                    else (stmt.test,))
        if isinstance(stmt, ast.Delete):
            return tuple(stmt.targets)
        return ()

    def _if(self, stmt: ast.If, frontier: list[int]) -> list[int]:
        test = self._new(stmt, "if", (stmt.test,))
        self._link(frontier, test)
        then_frontier = self._body(stmt.body, [test])
        if stmt.orelse:
            else_frontier = self._body(stmt.orelse, [test])
        else:
            else_frontier = [test]
        return then_frontier + else_frontier

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor,
              frontier: list[int]) -> list[int]:
        if isinstance(stmt, ast.While):
            header = self._new(stmt, "while", (stmt.test,))
        else:
            header = self._new(stmt, "for", (stmt.iter,))
        self._link(frontier, header)
        self._loops.append(([], []))
        body_frontier = self._body(stmt.body, [header])
        breaks, continues = self._loops.pop()
        self._link(body_frontier, header)       # back edge
        self._link(continues, header)
        exit_frontier = [header] + breaks
        if stmt.orelse:
            exit_frontier = self._body(stmt.orelse, [header]) + breaks
        return exit_frontier

    def _try(self, stmt: ast.Try, frontier: list[int]) -> list[int]:
        marker = self._new(stmt, "try")
        self._link(frontier, marker)
        first_body = len(self.nodes)
        body_frontier = self._body(stmt.body, [marker])
        body_nodes = list(range(first_body, len(self.nodes)))
        out = list(body_frontier)
        for handler in stmt.handlers:
            head = self._new(handler, "except",
                             (handler.type,) if handler.type else ())
            # An exception can surface after any statement of the try
            # body (and before the first one).
            self._edge(marker, head)
            for idx in body_nodes:
                self._edge(idx, head)
            out.extend(self._body(handler.body, [head]))
        if stmt.orelse:
            normal = self._body(stmt.orelse, body_frontier)
            out = [n for n in out if n not in body_frontier] + normal
        if stmt.finalbody:
            out = self._body(stmt.finalbody, out)
        return out

    def _match(self, stmt: ast.Match, frontier: list[int]) -> list[int]:
        subject = self._new(stmt, "match", (stmt.subject,))
        self._link(frontier, subject)
        out: list[int] = [subject]  # no case may match
        for case in stmt.cases:
            out.extend(self._body(case.body, [subject]))
        return out


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG of one function definition."""
    return _Builder(func).build()
