"""Reaching definitions and use-def chains over a statement-level CFG.

A *definition* is one binding of a name at one CFG node: an assignment
target, a ``for`` target, a ``with ... as`` name, an ``except ... as``
name, a walrus, an import alias, a nested ``def``/``class``, or a
function parameter (defined at the synthetic entry node).  The classic
forward may-analysis then answers, per node, which definitions of each
name can reach it — the substrate for the taint queries in
:mod:`repro.analysis.dataflow.queries`.

Attribute and subscript stores (``obj.attr = x``, ``table[k] = x``) do
not bind a name; they are collected separately as *mutations* with the
root name of the stored-into chain, which is what the worker-purity
checker (RPA702) needs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.dataflow.cfg import CFG


@dataclass(frozen=True)
class Definition:
    """One binding of ``name`` at CFG node ``node``."""

    name: str
    node: int


def _target_names(target: ast.expr) -> Iterable[str]:
    """Names bound by an assignment/for/with target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    # Attribute / Subscript stores bind no name (they mutate).


def _mutation_roots(target: ast.expr) -> Iterable[str]:
    """Root names of attribute/subscript store targets."""
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        root = target.value
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name):
            yield root.id
    elif isinstance(target, (ast.Tuple, ast.List, ast.Starred)):
        inner = target.elts if isinstance(target, (ast.Tuple, ast.List)) \
            else [target.value]
        for element in inner:
            yield from _mutation_roots(element)


def _walk_expr(expr: ast.expr) -> Iterable[ast.AST]:
    """Walk an expression without descending into lambdas/comprehension
    bodies' nested function scopes (lambdas introduce their own scope;
    comprehensions are treated as part of the enclosing scope, matching
    their read behavior for everything but the comprehension targets)."""
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))


def node_defs(cfg: CFG, index: int) -> list[str]:
    """Names defined at CFG node ``index``."""
    node = cfg.nodes[index]
    stmt = node.stmt
    names: list[str] = []
    if node.kind == "entry":
        args = cfg.func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            names.append(arg.arg)
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return names
    if stmt is None:
        return names
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.extend(_target_names(target))
    elif isinstance(stmt, ast.AnnAssign):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, ast.AugAssign):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.extend(_target_names(item.optional_vars))
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.append(stmt.name)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            names.append(bound)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        names.append(stmt.name)
    # Walrus targets anywhere in the header expressions.
    for expr in node.header_exprs:
        if expr is None:
            continue
        for sub in _walk_expr(expr):
            if isinstance(sub, ast.NamedExpr):
                names.extend(_target_names(sub.target))
    return names


def node_uses(cfg: CFG, index: int) -> list[str]:
    """Names read at CFG node ``index`` (header expressions only)."""
    node = cfg.nodes[index]
    used: list[str] = []
    for expr in node.header_exprs:
        if expr is None:
            continue
        for sub in _walk_expr(expr):
            if isinstance(sub, ast.Name) and \
                    isinstance(sub.ctx, ast.Load):
                used.append(sub.id)
    stmt = node.stmt
    # Mutation targets read their root object.
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            used.extend(_mutation_roots(target))
    return used


class ReachingDefinitions:
    """Result of the reaching-definitions analysis over one CFG."""

    def __init__(self, cfg: CFG, reach_in: list[set[Definition]],
                 gen: list[set[Definition]]):
        self.cfg = cfg
        self._in = reach_in
        self._gen = gen

    def reaching(self, index: int) -> frozenset[Definition]:
        """Definitions that may reach the *start* of node ``index``."""
        return frozenset(self._in[index])

    def reaching_for(self, index: int, name: str) -> frozenset[Definition]:
        """Definitions of ``name`` that may reach node ``index``."""
        return frozenset(d for d in self._in[index] if d.name == name)

    def defs_at(self, index: int) -> frozenset[Definition]:
        """Definitions generated by node ``index`` itself."""
        return frozenset(self._gen[index])

    def use_def_chain(self, index: int) -> dict[str, frozenset[Definition]]:
        """For each name used at node ``index``, its reaching defs."""
        return {name: self.reaching_for(index, name)
                for name in set(node_uses(self.cfg, index))}


def compute_reaching_definitions(cfg: CFG) -> ReachingDefinitions:
    """Classic forward may-analysis worklist over ``cfg``."""
    n = len(cfg.nodes)
    gen: list[set[Definition]] = [set() for _ in range(n)]
    kill_names: list[set[str]] = [set() for _ in range(n)]
    for i in range(n):
        names = node_defs(cfg, i)
        gen[i] = {Definition(name=name, node=i) for name in set(names)}
        kill_names[i] = set(names)

    reach_in: list[set[Definition]] = [set() for _ in range(n)]
    reach_out: list[set[Definition]] = [
        set(gen[i]) for i in range(n)]
    work = list(range(n))
    while work:
        i = work.pop(0)
        new_in: set[Definition] = set()
        for p in cfg.nodes[i].preds:
            new_in |= reach_out[p]
        new_out = gen[i] | {d for d in new_in
                            if d.name not in kill_names[i]}
        if new_in != reach_in[i] or new_out != reach_out[i]:
            reach_in[i] = new_in
            reach_out[i] = new_out
            for s in cfg.nodes[i].succs:
                if s not in work:
                    work.append(s)
    return ReachingDefinitions(cfg, reach_in, gen)
