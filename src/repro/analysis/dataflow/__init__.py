"""Dataflow layer of the static analysis engine.

Layer: inside :mod:`repro.analysis` (cross-cutting tooling; imports only
``errors``).  Responsibility: the *semantic* substrate the RPA6xx-8xx
rule families stand on — everything the per-line AST pattern matchers of
RPA1xx-5xx cannot see:

* :mod:`repro.analysis.dataflow.cfg` — intraprocedural control-flow
  graphs at statement granularity (branches, loops, try/except);
* :mod:`repro.analysis.dataflow.defs` — reaching definitions and
  use-def chains over a CFG;
* :mod:`repro.analysis.dataflow.callgraph` — project-wide symbol table
  and best-effort call graph (module-level functions, methods,
  ``functools.partial`` dispatch, locally constructed instances), plus
  per-function ``REPRO_*`` environment-read tracking;
* :mod:`repro.analysis.dataflow.queries` — taint-style reachability
  queries ("does parameter ``p`` flow into this call's arguments?")
  used by the cache-key soundness checker.

Everything here is conservative in the direction that keeps the lint
*quiet* rather than noisy: an unresolvable call edge or an opaque
expression widens the may-flow relation, so a parameter that reaches a
cache key through any syntactic path is accepted.
"""

from __future__ import annotations

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
)
from repro.analysis.dataflow.cfg import CFG, CFGNode, build_cfg
from repro.analysis.dataflow.defs import (
    Definition,
    ReachingDefinitions,
    compute_reaching_definitions,
)
from repro.analysis.dataflow.queries import (
    call_results_flowing_into,
    names_in,
    param_flows_into,
)

__all__ = [
    "CFG",
    "CFGNode",
    "CallGraph",
    "Definition",
    "FunctionInfo",
    "ReachingDefinitions",
    "build_call_graph",
    "build_cfg",
    "call_results_flowing_into",
    "compute_reaching_definitions",
    "names_in",
    "param_flows_into",
]
