"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit codes: 0 clean, 1 findings reported, 2 usage error (or, under
``--strict``, findings reported — so CI jobs that must hard-fail on the
dataflow families can distinguish "dirty" from "merely advisory").
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.analysis.checkers import all_codes
from repro.analysis.engine import run_analysis
from repro.analysis.reporters import render_json, render_sarif, render_text

_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Physics-aware static analysis for the repro tree "
                    "(determinism RPA1xx, units RPA2xx, layering RPA3xx, "
                    "API contracts RPA4xx, resilience RPA5xx, cache-key "
                    "soundness RPA6xx, worker safety RPA7xx, hot-path "
                    "hygiene RPA8xx)")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyse "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="PREFIXES", default=None,
                        help="comma-separated code prefixes to run "
                             "(e.g. 'RPA6,RPA7,RPA8' for the dataflow "
                             "families only)")
    parser.add_argument("--changed", metavar="REF", nargs="?",
                        const="HEAD", default=None,
                        help="restrict analysis to .py files differing "
                             "from a git ref (default HEAD), plus "
                             "untracked ones — fast pre-commit mode")
    parser.add_argument("--strict", action="store_true",
                        help="exit 2 instead of 1 when findings remain")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="baseline file of accepted findings "
                             f"(default: {DEFAULT_BASELINE_NAME} if it "
                             "exists)")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="accept all current findings into FILE and "
                             "exit 0")
    parser.add_argument("--list-codes", action="store_true",
                        help="list every rule code and exit")
    return parser


def changed_files(ref: str, within: list[str]) -> list[str] | None:
    """``.py`` files differing from ``ref`` (tracked) or untracked.

    Returns ``None`` when git is unavailable or the ref does not
    resolve (the caller falls back to a full run — a lint must degrade
    toward checking more, not less).  Results are filtered to the
    requested ``within`` paths so ``repro lint --changed src/repro``
    keeps its scope.
    """
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", ref,
             "--", "*.py"],
            capture_output=True, text=True, check=True, timeout=60)
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard",
             "--", "*.py"],
            capture_output=True, text=True, check=True, timeout=60)
    except (OSError, subprocess.SubprocessError):
        return None
    candidates = [line.strip() for out in (diff.stdout, untracked.stdout)
                  for line in out.splitlines() if line.strip()]
    scopes = [Path(p).resolve() for p in within]
    selected: list[str] = []
    for candidate in candidates:
        path = Path(candidate)
        if not path.is_file():
            continue
        resolved = path.resolve()
        if any(scope == resolved or scope in resolved.parents
               for scope in scopes):
            selected.append(candidate)
    return sorted(set(selected))


def main(argv: list[str] | None = None,
         args: argparse.Namespace | None = None) -> int:
    """Run the linter; ``args`` lets ``repro lint`` pass a parsed namespace."""
    if args is None:
        args = build_parser().parse_args(argv)

    if args.list_codes:
        for code, description in all_codes().items():
            print(f"{code}  {description}")
        return 0

    baseline = None
    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE_NAME).is_file() \
            and args.write_baseline is None:
        baseline_path = DEFAULT_BASELINE_NAME
    if baseline_path is not None and args.write_baseline is None:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, TypeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    paths = list(args.paths)
    focus = None
    changed = getattr(args, "changed", None)
    if changed is not None:
        subset = changed_files(changed, paths)
        if subset is not None:
            if not subset:
                print(f"0 finding(s): no .py files changed vs {changed}")
                return 0
            # The full path set is still parsed (the project-wide
            # passes need the real tree to resolve imports and call
            # edges); only the reporting narrows to the changed files.
            focus = subset
        else:
            print(f"warning: cannot diff against {changed!r}; "
                  "analysing the full path set", file=sys.stderr)

    select = None
    if getattr(args, "select", None):
        select = [p for p in args.select.split(",") if p.strip()]

    report = run_analysis(paths, baseline=baseline, select=select,
                          focus=focus)

    if args.write_baseline is not None:
        n = write_baseline(args.write_baseline, report.findings)
        print(f"wrote {n} accepted finding(s) to {args.write_baseline}")
        return 0

    renderer = _RENDERERS[args.format]
    print(renderer(report))
    if report.clean:
        return 0
    return 2 if getattr(args, "strict", False) else 1


if __name__ == "__main__":
    sys.exit(main())
