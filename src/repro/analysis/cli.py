"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit codes: 0 clean, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.analysis.checkers import all_codes
from repro.analysis.engine import run_analysis
from repro.analysis.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Physics-aware static analysis for the repro tree "
                    "(determinism RPA1xx, units RPA2xx, layering RPA3xx, "
                    "API contracts RPA4xx, resilience RPA5xx)")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyse "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="baseline file of accepted findings "
                             f"(default: {DEFAULT_BASELINE_NAME} if it "
                             "exists)")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="accept all current findings into FILE and "
                             "exit 0")
    parser.add_argument("--list-codes", action="store_true",
                        help="list every rule code and exit")
    return parser


def main(argv: list[str] | None = None,
         args: argparse.Namespace | None = None) -> int:
    """Run the linter; ``args`` lets ``repro lint`` pass a parsed namespace."""
    if args is None:
        args = build_parser().parse_args(argv)

    if args.list_codes:
        for code, description in all_codes().items():
            print(f"{code}  {description}")
        return 0

    baseline = None
    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE_NAME).is_file() \
            and args.write_baseline is None:
        baseline_path = DEFAULT_BASELINE_NAME
    if baseline_path is not None and args.write_baseline is None:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, TypeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    report = run_analysis(args.paths, baseline=baseline)

    if args.write_baseline is not None:
        n = write_baseline(args.write_baseline, report.findings)
        print(f"wrote {n} accepted finding(s) to {args.write_baseline}")
        return 0

    renderer = render_json if args.format == "json" else render_text
    print(renderer(report))
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
