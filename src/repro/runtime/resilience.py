"""Resilient sweep execution: retry ladders, quarantine, checkpoints.

Every deliverable of the paper is a large independent-cell sweep — the
I/Q(V_G, V_D) device tables, the V_DD–V_T exploration plane, the
width/impurity Monte Carlo — and production practice in SPICE-class
simulators treats non-convergence of one cell as a *recoverable
per-point event*, not a process-fatal one.  This module supplies the
three generic mechanisms that make the sweeps behave that way:

Retry ladder (:func:`run_ladder`)
    A sequence of named rungs, each a zero-argument callable attempting
    the same solve with progressively more conservative settings (lower
    mixing beta, Anderson→damped Picard, more iterations, cold start).
    An optional per-rung wall-clock ``deadline_s`` (enforced by
    :func:`run_with_deadline`, preemptive on the Unix main thread)
    converts a *hung* rung into a
    :class:`~repro.errors.DeadlineExceeded` failure the ladder can
    escalate past — the primitive under the distributed scheduler's
    lease deadlines.
    The first rung that converges wins; each escalation is counted
    (``resilience.retries`` plus a per-site counter such as
    ``scf.retries``); exhaustion re-raises the last
    :class:`~repro.errors.ConvergenceError` enriched with the rungs
    tried.  The *contents* of each ladder live next to the solver they
    escalate (``repro.negf``/``repro.device``) — this module only runs
    them, keeping the layer DAG intact.

Failure quarantine (:class:`FailureRecord`)
    When a ladder exhausts and the sweep is not ``strict``, the cell is
    NaN-masked and a structured, JSON-round-trippable record (exception
    class, message, task index, grid coordinates, bias, rungs tried,
    residual, solver context) is collected into the sweep's result
    dataclass and the obs run manifest.

Checkpoint/resume (:class:`SweepCheckpoint`)
    Periodic atomic ``.npz`` checkpoints under the artifact cache
    (namespace ``checkpoints``), keyed like the table cache by a content
    hash of the sweep specification.  A resumed run loads the mask of
    completed units and recomputes only the rest; because sweep units
    (rows / samples) are computed independently and cold-started, the
    resumed result is bitwise-identical to an uninterrupted one.  The
    checkpoint is deleted when the sweep completes.

Environment knobs: ``REPRO_STRICT`` flips the quarantine default back to
raise-on-first-failure, ``REPRO_CHECKPOINT`` sets the checkpoint
interval in sweep units (``1`` = after every unit), ``REPRO_RESUME``
makes sweeps look for an existing checkpoint before computing.  All are
inherited by worker processes.  Deterministic failures for exercising
these paths come from :mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import threading
import time
from typing import Any, Callable, Mapping, Sequence, TypeVar

import numpy as np

from repro import obs
from repro.errors import (
    CheckpointError,
    ConvergenceError,
    DeadlineExceeded,
    ParallelMapError,
)
import repro.runtime.faults as faults
from repro.runtime.cache import ArtifactCache

#: Environment variable flipping sweeps back to raise-on-first-failure.
STRICT_ENV = "REPRO_STRICT"

#: Environment variable setting the checkpoint interval in sweep units
#: (rows for bias sweeps, samples for Monte Carlo); 0/unset disables.
CHECKPOINT_ENV = "REPRO_CHECKPOINT"

#: Environment variable making sweeps resume from an existing checkpoint.
RESUME_ENV = "REPRO_RESUME"

#: Artifact-cache namespace holding sweep checkpoints.
CHECKPOINT_NAMESPACE = "checkpoints"

_FALSEY = ("", "0", "false", "off", "no")

T = TypeVar("T")


def strict_default() -> bool:
    """Default ``strict`` flag for sweeps (from ``REPRO_STRICT``)."""
    return os.environ.get(STRICT_ENV, "").strip().lower() not in _FALSEY


def checkpoint_interval() -> int:
    """Checkpoint interval in sweep units; 0 disables checkpointing.

    ``REPRO_CHECKPOINT`` accepts an integer interval; any other truthy
    value means "after every unit".
    """
    raw = os.environ.get(CHECKPOINT_ENV, "").strip().lower()
    if raw in _FALSEY:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return 1


def resume_enabled() -> bool:
    """True if sweeps should look for a checkpoint (``REPRO_RESUME``)."""
    return os.environ.get(RESUME_ENV, "").strip().lower() not in _FALSEY


# --------------------------------------------------------------------- #
# Wall-clock deadlines
# --------------------------------------------------------------------- #
def _deadline_preemptable() -> bool:
    """True when a hung call can be *interrupted*, not just detected.

    Preemption uses ``SIGALRM``/``setitimer``, which only works on the
    main thread of a Unix process.  Everywhere else (worker threads,
    Windows) :func:`run_with_deadline` degrades to a post-hoc elapsed
    check: the overrun is still reported, it just cannot cut a wedged
    call short.
    """
    return (hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread())


def run_with_deadline(thunk: Callable[[], T], deadline_s: float,
                      site: str, rung: str = "") -> T:
    """Run ``thunk`` with a wall-clock budget of ``deadline_s`` seconds.

    Raises :class:`~repro.errors.DeadlineExceeded` (a
    :class:`~repro.errors.ConvergenceError`, so ladders escalate past
    it and quarantine absorbs it) when the budget is exhausted.  On the
    main thread of a Unix process the deadline is *preemptive* — a
    ``SIGALRM`` timer interrupts the call mid-flight, which is what
    closes the hang-forever gap for a wedged SCF solve; elsewhere the
    overrun is detected after the call returns (best effort, but a
    returning call was by definition not hung).

    ``deadline_s <= 0`` means "already expired" and raises immediately
    — the distributed scheduler uses this to force-expire a lease under
    the ``lease`` fault site.
    """
    if deadline_s <= 0:
        if obs.ACTIVE:
            obs.incr("resilience.deadline_exceeded")
        raise DeadlineExceeded(
            f"deadline of {deadline_s:.3g} s at {site} already expired",
            site=site, rung=rung, deadline_s=deadline_s, elapsed_s=0.0)
    start = time.perf_counter()
    if _deadline_preemptable():
        def _on_alarm(signum: int, frame: object) -> None:
            raise DeadlineExceeded(
                f"deadline of {deadline_s:.3g} s at {site} exceeded",
                site=site, rung=rung, deadline_s=deadline_s,
                elapsed_s=time.perf_counter() - start)

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, deadline_s)
        try:
            result = thunk()
        except DeadlineExceeded:
            if obs.ACTIVE:
                obs.incr("resilience.deadline_exceeded")
            raise
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        return result
    result = thunk()
    elapsed = time.perf_counter() - start
    if elapsed > deadline_s:
        if obs.ACTIVE:
            obs.incr("resilience.deadline_exceeded")
        raise DeadlineExceeded(
            f"deadline of {deadline_s:.3g} s at {site} exceeded "
            f"(detected after {elapsed:.3g} s; non-preemptive context)",
            site=site, rung=rung, deadline_s=deadline_s, elapsed_s=elapsed)
    return result


# --------------------------------------------------------------------- #
# Retry / escalation ladder
# --------------------------------------------------------------------- #
def run_ladder(rungs: Sequence[tuple[str, Callable[[], T]]],
               site: str, counter: str | None = None,
               deadline_s: float | None = None,
               ) -> tuple[T, list[str]]:
    """Attempt ``rungs`` in order until one converges.

    Each rung is a ``(name, thunk)`` pair; a rung *fails* by raising
    :class:`~repro.errors.ConvergenceError` (any other exception
    propagates immediately — the ladder only absorbs non-convergence).
    Returns ``(result, rungs_tried)`` where ``rungs_tried`` lists the
    names of the failed rungs plus the one that succeeded.

    ``deadline_s`` arms a *per-rung* wall-clock budget through
    :func:`run_with_deadline`: a rung that runs past it fails with
    :class:`~repro.errors.DeadlineExceeded` (a ``ConvergenceError``
    subclass, so the ladder escalates to the next rung exactly as it
    would past a diverged solve) and the whole ladder is therefore
    bounded by ``len(rungs) * deadline_s`` — no single wedged solve can
    hang a wave.

    Every escalation past the first rung increments
    ``resilience.retries`` and, if given, the per-site ``counter``
    (e.g. ``scf.retries``); exhaustion increments
    ``resilience.exhausted`` and re-raises the last error with
    ``ladder_site`` and ``rungs_tried`` merged into its context.
    """
    if not rungs:
        raise ValueError("run_ladder needs at least one rung")
    tried: list[str] = []
    last_error: ConvergenceError | None = None
    for position, (name, thunk) in enumerate(rungs):
        if position and obs.ACTIVE:
            obs.incr("resilience.retries")
            if counter:
                obs.incr(counter)
        tried.append(name)
        try:
            if deadline_s is not None:
                return run_with_deadline(
                    thunk, deadline_s, site=site, rung=name), tried
            return thunk(), tried
        except ConvergenceError as exc:
            last_error = exc
    assert last_error is not None
    if obs.ACTIVE:
        obs.incr("resilience.exhausted")
    raise last_error.with_context(ladder_site=site, rungs_tried=list(tried))


# --------------------------------------------------------------------- #
# Failure quarantine
# --------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class FailureRecord:
    """One quarantined sweep cell: what failed, where, and how hard we tried.

    Attributes
    ----------
    site:
        Ladder site that exhausted (``"scf"``, ``"sr"``, ``"cell"``, ...).
    error:
        Exception class name (e.g. ``"ConvergenceError"``).
    message:
        The exception's message string.
    index:
        Flat task index within the sweep (cell index for bias grids,
        sample index for Monte Carlo).
    coords:
        Grid coordinates of the cell (e.g. ``(i_vg, j_vd)``), or ``()``.
    bias:
        Bias/parameter point, e.g. ``{"vg": 0.4, "vd": 0.5}``.
    rungs_tried:
        Names of the ladder rungs attempted, in order.
    residual:
        Final residual of the last attempt, if known.
    context:
        The exception's structured context (JSON-safe scalars).
    """

    site: str
    error: str
    message: str
    index: int
    coords: tuple[int, ...] = ()
    bias: Mapping[str, float] = dataclasses.field(default_factory=dict)
    rungs_tried: tuple[str, ...] = ()
    residual: float | None = None
    context: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_exception(cls, exc: BaseException, site: str, index: int,
                       coords: Sequence[int] = (),
                       bias: Mapping[str, float] | None = None,
                       rungs_tried: Sequence[str] = (),
                       ) -> "FailureRecord":
        """Build a record from a (usually convergence) exception."""
        residual = getattr(exc, "residual", None)
        context = dict(getattr(exc, "context", {}) or {})
        tried = tuple(rungs_tried) or tuple(
            context.pop("rungs_tried", ()) or ())
        return cls(site=site, error=type(exc).__name__, message=str(exc),
                   index=int(index), coords=tuple(int(c) for c in coords),
                   bias=dict(bias or {}), rungs_tried=tried,
                   residual=None if residual is None else float(residual),
                   context=context)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (round-trips via :meth:`from_dict`)."""
        return {"site": self.site, "error": self.error,
                "message": self.message, "index": self.index,
                "coords": list(self.coords), "bias": dict(self.bias),
                "rungs_tried": list(self.rungs_tried),
                "residual": self.residual, "context": dict(self.context)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(site=str(data["site"]), error=str(data["error"]),
                   message=str(data["message"]), index=int(data["index"]),
                   coords=tuple(int(c) for c in data.get("coords", ())),
                   bias=dict(data.get("bias", {})),
                   rungs_tried=tuple(data.get("rungs_tried", ())),
                   residual=data.get("residual"),
                   context=dict(data.get("context", {})))


def quarantine(exc: BaseException, site: str, index: int,
               coords: Sequence[int] = (),
               bias: Mapping[str, float] | None = None,
               ) -> FailureRecord:
    """Convert an exhausted failure into a record and notify obs."""
    record = FailureRecord.from_exception(exc, site, index, coords, bias)
    if obs.ACTIVE:
        obs.incr("resilience.quarantined")
        obs.record_failure(record.to_dict())
    return record


def recover_parallel(err: ParallelMapError, fn: Callable[[Any], T],
                     tasks: Sequence[Any]) -> list[T]:
    """Fill in the tasks a broken process pool failed to deliver.

    Completed chunks ride along on the
    :class:`~repro.errors.ParallelMapError` (their obs payloads were
    already absorbed by ``parallel_map``); only the failed/cancelled
    tasks are recomputed, serially in this process, by calling ``fn`` on
    the original task values.  Recomputed results are identical to
    worker-computed ones whenever ``fn`` is deterministic and per-task
    independent — the contract every sweep in this repo already meets.

    Counted under ``resilience.worker_crash_recoveries`` (one per
    recovery) and ``resilience.rows_recomputed`` (one per task).
    """
    results: list[T | None] = [None] * len(tasks)
    delivered = np.zeros(len(tasks), dtype=bool)
    for k, chunk_results in err.completed.items():
        # Explicit chunk offsets (guided/dynamic plans) take precedence;
        # uniform chunking keeps the k * chunk_size arithmetic.
        start = (err.chunk_offsets[k] if err.chunk_offsets is not None
                 else k * err.chunk_size)
        for offset, value in enumerate(chunk_results):
            results[start + offset] = value
            delivered[start + offset] = True
    missing = [idx for idx in range(len(tasks)) if not delivered[idx]]
    if obs.ACTIVE:
        obs.incr("resilience.worker_crash_recoveries")
        obs.incr("resilience.rows_recomputed", len(missing))
    for idx in missing:
        results[idx] = fn(tasks[idx])
    return results  # type: ignore[return-value]


def encode_failures(records: Sequence[FailureRecord]) -> np.ndarray:
    """Pack records into one JSON string array (npz-storable)."""
    text = json.dumps([r.to_dict() for r in records], sort_keys=True)
    return np.array(text)


def decode_failures(encoded: np.ndarray) -> tuple[FailureRecord, ...]:
    """Inverse of :func:`encode_failures`."""
    return tuple(FailureRecord.from_dict(d)
                 for d in json.loads(str(encoded)))


# --------------------------------------------------------------------- #
# Checkpoint / resume
# --------------------------------------------------------------------- #
class SweepCheckpoint:
    """Atomic, resumable progress snapshots for one sweep.

    A checkpoint stores a boolean ``done`` mask over sweep units, the
    partially filled result arrays, and the failure records collected so
    far.  Writes go through :class:`~repro.runtime.cache.ArtifactCache`
    (same-directory temp file + ``os.replace``), so a checkpoint is
    either fully the old snapshot or fully the new one — an interrupted
    write (including the injected ``checkpoint`` fault) leaves the
    previous snapshot intact.

    The key must content-hash everything that determines the sweep's
    output (geometry, grids, mode count, engine version, warm-start
    flag), exactly like the table cache: a resumed run with a different
    spec simply misses and starts fresh.
    """

    def __init__(self, key: str, interval: int | None = None,
                 cache: ArtifactCache | None = None):
        self.key = key
        self.interval = checkpoint_interval() if interval is None else interval
        self.cache = cache if cache is not None else ArtifactCache(
            CHECKPOINT_NAMESPACE)
        self._writes = 0
        self._since_last = 0

    @property
    def enabled(self) -> bool:
        """True if snapshots will actually be written."""
        return self.interval > 0 and self.cache.enabled

    def due(self) -> bool:
        """True when ``interval`` units completed since the last write."""
        if not self.enabled:
            return False
        self._since_last += 1
        return self._since_last >= self.interval

    def save(self, done: np.ndarray, arrays: Mapping[str, np.ndarray],
             failures: Sequence[FailureRecord] = ()) -> None:
        """Atomically persist the current progress snapshot.

        Raises :class:`~repro.errors.CheckpointError` if the write fails
        (the previous snapshot, if any, stays readable).
        """
        if not self.enabled:
            return
        self._since_last = 0
        write_index = self._writes
        self._writes += 1
        if faults.ACTIVE:
            faults.inject("checkpoint", write_index, detail=self.key[:12])
        reserved = {"__done__", "__failures__"}
        if reserved & set(arrays):
            raise CheckpointError(
                f"checkpoint array names {sorted(reserved & set(arrays))} "
                "are reserved")
        try:
            self.cache.put(self.key, __done__=np.asarray(done, dtype=bool),
                           __failures__=encode_failures(failures), **arrays)
        except CheckpointError:
            raise
        except OSError as exc:
            raise CheckpointError(
                f"could not write checkpoint {self.key[:12]}…: {exc}"
            ) from exc
        if obs.ACTIVE:
            obs.incr("resilience.checkpoint_writes")

    def load(self) -> tuple[np.ndarray, dict[str, np.ndarray],
                            tuple[FailureRecord, ...]] | None:
        """Load the latest snapshot, or None if absent/disabled/corrupt."""
        if not self.cache.enabled:
            return None
        payload = self.cache.get(self.key)
        if payload is None or "__done__" not in payload:
            return None
        done = np.asarray(payload.pop("__done__"), dtype=bool)
        encoded = payload.pop("__failures__", None)
        try:
            failures = (decode_failures(encoded)
                        if encoded is not None else ())
        except (ValueError, KeyError, TypeError):
            return None  # torn/foreign payload: start fresh
        if obs.ACTIVE:
            obs.incr("resilience.checkpoint_resumes")
        return done, payload, failures

    def clear(self) -> None:
        """Remove the checkpoint (called when the sweep completes)."""
        if self.cache.enabled:
            self.cache.path_for(self.key).unlink(missing_ok=True)
