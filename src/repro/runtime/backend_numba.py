"""Numba-JIT'd NEGF inner loops (the ``numba`` array backend).

Imported lazily by :mod:`repro.runtime.backend` only when
``REPRO_BACKEND=numba`` and the numba package is installed — this module
must never be imported on the default path.

The kernels re-run the *identical* arithmetic of the inline numpy
recurrences, per energy instead of stacked:

* the same matrix products in the same association order (the batched
  numpy kernels loop over the stack calling the same BLAS/LAPACK
  routines one matrix at a time, so a per-energy loop issuing the same
  calls reproduces them bit-for-bit);
* the same convergence test at the same iteration (each energy exits
  the decimation exactly where the active-set numpy kernel would have
  finalized it);
* the final reductions (lead broadening, transmission trace) run
  *outside* the JIT through the very numpy expressions of
  :mod:`repro.negf.greens`, so no reimplemented summation can drift.

What the JIT buys is the glue: no stacked temporaries, per-energy early
exit without masking machinery, and thread-parallel energies
(``prange``) — each energy is independent, so threading cannot change
results.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from repro.errors import ConvergenceError


@njit(cache=True, parallel=True)
def _sr_kernel(energies, h00, h01, h10, eta_ev, tol, max_iter):
    """Per-energy Sancho-Rubio decimation; returns (g, ok, residual)."""
    n_e = energies.shape[0]
    n = h00.shape[0]
    eye = np.eye(n).astype(np.complex128)
    out = np.empty((n_e, n, n), dtype=np.complex128)
    ok = np.zeros(n_e, dtype=np.bool_)
    residual = np.zeros(n_e, dtype=np.float64)
    for ie in prange(n_e):
        z = (energies[ie] + 1j * eta_ev) * eye
        eps_s = h00.copy()
        eps = h00.copy()
        alpha = h01.copy()
        beta = h10.copy()
        for _ in range(max_iter):
            g_bulk = np.linalg.solve(z - eps, eye)
            ag = alpha @ g_bulk
            bg = beta @ g_bulk
            agb = ag @ beta
            bga = bg @ alpha
            eps_s = eps_s + agb
            eps = eps + agb + bga
            alpha = ag @ alpha
            beta = bg @ beta
            a_res = np.max(np.abs(alpha))
            b_res = np.max(np.abs(beta))
            if a_res < tol and b_res < tol:
                out[ie] = np.linalg.solve(z - eps_s, eye)
                ok[ie] = True
                break
        if not ok[ie]:
            residual[ie] = (np.max(np.abs(alpha)) + np.max(np.abs(beta)))
    return out, ok, residual


def sancho_rubio_batched(
    energies_ev: np.ndarray,
    h00: np.ndarray,
    h01: np.ndarray,
    eta_ev: float = 1e-6,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> np.ndarray:
    """Drop-in fused replacement for the batched Sancho-Rubio kernel.

    Same contract as
    :func:`repro.negf.self_energy.sancho_rubio_surface_gf_batched`:
    the ``(n_energy, n, n)`` surface-GF stack, or
    :class:`~repro.errors.ConvergenceError` naming the slowest energy.
    """
    energies = np.atleast_1d(np.asarray(energies_ev, dtype=float))
    h00c = np.ascontiguousarray(np.asarray(h00, dtype=complex))
    h01c = np.ascontiguousarray(np.asarray(h01, dtype=complex))
    h10c = np.ascontiguousarray(h01c.conj().T)
    out, ok, residual = _sr_kernel(energies, h00c, h01c, h10c,
                                   float(eta_ev), float(tol),
                                   int(max_iter))
    if not ok.all():
        bad = np.flatnonzero(~ok)
        worst = int(bad[np.argmax(residual[bad])])
        raise ConvergenceError(
            f"batched Sancho-Rubio iteration did not converge "
            f"(slowest energy E = {energies[worst]} eV)",
            iterations=int(max_iter),
            context={"solver": "sancho_rubio_surface_gf_batched",
                     "backend": "numba",
                     "energy_ev": float(energies[worst]),
                     "eta_ev": float(eta_ev), "tol": float(tol),
                     "max_iter": int(max_iter),
                     "n_unconverged": int(bad.size)})
    return out


@njit(cache=True, parallel=True)
def _rgf_g1n_kernel(energies, diag, coup, sigma_l, sigma_r, eta_ev):
    """Forward RGF sweep per energy; returns the G_1N corner stack."""
    n_e = energies.shape[0]
    n_blocks = diag.shape[0]
    b = diag.shape[1]
    eye = np.eye(b).astype(np.complex128)
    g_1n = np.empty((n_e, b, b), dtype=np.complex128)
    for ie in prange(n_e):
        z = (energies[ie] + 1j * eta_ev) * eye
        m = z - diag[0] - sigma_l[ie]
        if n_blocks == 1:
            m = m - sigma_r[ie]
            g_1n[ie] = np.linalg.solve(m, eye)
        else:
            t_0 = np.ascontiguousarray(coup[0])
            x = np.linalg.solve(m, t_0)
            prod = x
            m = z - diag[1]
            if n_blocks == 2:
                m = m - sigma_r[ie]
            m = m - np.ascontiguousarray(np.conj(t_0).T) @ x
            for i in range(1, n_blocks - 1):
                t_i = np.ascontiguousarray(coup[i])
                x = np.linalg.solve(m, t_i)
                m = z - diag[i + 1]
                if i + 1 == n_blocks - 1:
                    m = m - sigma_r[ie]
                m = m - np.ascontiguousarray(np.conj(t_i).T) @ x
                prod = np.ascontiguousarray(prod @ x)
            # G_1N = P M^{-1} = solve(M^T, P^T)^T (plain transpose).
            g_1n[ie] = np.linalg.solve(
                np.ascontiguousarray(m.T),
                np.ascontiguousarray(prod.T)).T
    return g_1n


def rgf_transmission_batched(
    energies_ev: np.ndarray,
    diag_stack: np.ndarray,
    coup_stack: np.ndarray,
    sigma_left: np.ndarray,
    sigma_right: np.ndarray,
    eta_ev: float = 1e-6,
) -> np.ndarray:
    """Fused RGF transmission over uniform block stacks.

    ``diag_stack`` is ``(n_blocks, b, b)`` complex, ``coup_stack``
    ``(n_blocks - 1, b, b)``; self-energies are per-energy stacks as in
    :func:`repro.negf.greens.rgf_transmission_batched`.  The trace
    reduction below is verbatim the inline kernel's numpy code.
    """
    energies = np.atleast_1d(np.asarray(energies_ev, dtype=float))
    g_1n = _rgf_g1n_kernel(
        energies,
        np.ascontiguousarray(diag_stack),
        np.ascontiguousarray(coup_stack),
        np.ascontiguousarray(sigma_left),
        np.ascontiguousarray(sigma_right),
        float(eta_ev))
    gamma_left = 1j * (sigma_left - np.conj(np.swapaxes(sigma_left, -2, -1)))
    gamma_right = 1j * (sigma_right
                        - np.conj(np.swapaxes(sigma_right, -2, -1)))
    left_part = gamma_left @ g_1n
    right_part = gamma_right @ np.conj(np.swapaxes(g_1n, -2, -1))
    return np.real(np.sum(
        left_part * np.swapaxes(right_part, -2, -1), axis=(-2, -1)))
