"""Distributed scheduler: lease-based fan-out over subprocess agents.

:class:`DistributedScheduler` is the second implementation of the
:class:`~repro.runtime.scheduler.Scheduler` seam.  It shards a wave of
tasks across worker *agents* — subprocesses launched from a host
specification (``REPRO_HOSTS``) and speaking the newline-delimited JSON
protocol of :mod:`repro.runtime.protocol` — and is designed around the
assumption that remote workers stall, die and straggle:

Leases, not fire-and-forget
    Every task chunk is granted as a *lease* with a wall-clock deadline
    derived from an EWMA of observed per-task solve times (until data
    exists, ``REPRO_LEASE_TIMEOUT`` seconds).  Agents enforce the
    deadline cooperatively
    (:func:`~repro.runtime.resilience.run_with_deadline` inside the
    agent) and the scheduler enforces it again with a grace factor — so
    a lease ends even when its holder is too wedged to run Python.

Heartbeats
    A leased agent emits ``heartbeat`` frames from a background thread;
    silence beyond the stall window means the host is wedged or
    partitioned, and its process is killed.

Reassignment with backoff and a cap
    An expired, stalled or crashed lease goes back into the queue with
    exponential backoff; after ``redispatch_cap`` grants its tasks are
    computed *locally in the parent* — re-dispatch chaos can cost time
    but never correctness, and no wave can hang indefinitely.

Agent quarantine
    A host entry whose agents fail repeatedly (crash, stall, protocol
    garbage, hard deadline blow-through) is quarantined: no more
    launches, and a structured
    :class:`~repro.runtime.resilience.FailureRecord` (``site="agent"``)
    lands in the obs manifest's failures block.  A protocol-version
    mismatch at ``hello`` quarantines immediately.

Graceful degradation
    With every host quarantined or dead (or ``REPRO_HOSTS`` empty), the
    remaining tasks run through a
    :class:`~repro.runtime.scheduler.LocalScheduler` in the parent —
    the wave always completes.

Determinism rides the existing machinery: tasks keep their
caller-assigned indices, so per-sample seeds, ``REPRO_FAULTS`` specs
and ``SweepCheckpoint`` memos are host-count-invariant, and the result
list is bitwise-identical to ``LocalScheduler`` for deterministic
per-task functions — including under injected agent crashes
(``host@i``), heartbeat stalls (``stall@i``) and forced lease expiry
(``lease@i``).  Task-level exceptions reported by an agent are *not*
retried on another host (the failure is deterministic); the parent
recomputes those tasks locally, where the exception re-raises
faithfully — the same contract as
:func:`~repro.runtime.resilience.recover_parallel`.

Host specification (``REPRO_HOSTS`` or the ``hosts=`` argument) —
entries separated by ``;`` (or ``,`` when no ``;`` is present):

* ``local`` — an agent subprocess of this Python interpreter, with the
  parent's ``sys.path`` exported so pickled callables resolve exactly
  as they do in pool workers;
* ``local*N`` — N such agents;
* anything else — a command template, e.g. ``ssh user@box``: the agent
  invocation (``python -u -m repro.runtime.agent``) is appended, or
  substituted for a literal ``{agent}`` token if present.  The remote
  end needs ``repro`` importable; nothing else is assumed.

Tuning knobs: ``REPRO_LEASE_TIMEOUT`` (initial/floor lease deadline,
seconds), ``REPRO_HEARTBEAT_S`` (heartbeat interval; the stall window
is four beats).  Constructor arguments override both for tests.
"""

from __future__ import annotations

import os
import queue
import shlex
import subprocess
import sys
import threading
import time
import weakref
from collections import deque
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro import obs
from repro.errors import FrameError
from repro.runtime.faults import should_fire
from repro.runtime.parallel import default_chunk_size
from repro.runtime.protocol import (
    check_hello,
    decode_frame,
    encode_frame,
    pack_payload,
    unpack_payload,
)
from repro.runtime.resilience import FailureRecord
from repro.runtime.scheduler import LocalScheduler, Scheduler

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable holding the agent host specification.
HOSTS_ENV = "REPRO_HOSTS"

#: Environment variable: initial/floor lease deadline in seconds.
LEASE_TIMEOUT_ENV = "REPRO_LEASE_TIMEOUT"

#: Environment variable: heartbeat interval in seconds.
HEARTBEAT_ENV = "REPRO_HEARTBEAT_S"

#: Default lease deadline before any solve-time data exists.
DEFAULT_LEASE_TIMEOUT_S = 300.0  # repro: noqa[RPA201] seconds, not kelvin

#: Default heartbeat interval.
DEFAULT_HEARTBEAT_S = 1.0

#: Deadline = max(floor, factor * EWMA-per-task * tasks-in-lease).
DEADLINE_FACTOR = 4.0

#: The scheduler-side (hard) expiry fires at ``deadline * grace`` — the
#: agent's cooperative alarm should have reported first on any host
#: healthy enough to run a signal handler.
DEADLINE_GRACE = 1.5

#: Minimum hard-expiry window, so a force-expired lease (deadline 0,
#: the ``lease`` fault site) is reported by the agent's cooperative
#: path rather than racing the scheduler's kill timer.
MIN_GRACE_S = 0.5

#: EWMA smoothing factor for observed per-task wall times.
EWMA_ALPHA = 0.4

#: Agent invocation appended to (or substituted into) host templates.
AGENT_ARGV = ("python", "-u", "-m", "repro.runtime.agent")


def parse_hosts(spec: str) -> list[str]:
    """Expand a host specification into one entry per agent.

    ``"local*3"`` becomes three ``"local"`` entries; separators are
    ``;`` — or ``,`` when the spec contains no ``;`` (so ssh command
    templates may contain commas if the list is ``;``-separated).
    Raises ``ValueError`` on a malformed ``*N`` multiplier.
    """
    entries: list[str] = []
    parts = spec.split(";") if ";" in spec else spec.split(",")
    for part in parts:
        part = part.strip()
        if not part:
            continue
        head, star, count = part.rpartition("*")
        if star and head.strip() and count.strip().isdigit():
            n = int(count)
            if n < 1:
                raise ValueError(f"bad host multiplier in {part!r}")
            entries.extend([head.strip()] * n)
        else:
            entries.append(part)
    return entries


def agent_command(entry: str) -> list[str]:
    """The argv that launches one agent for a host entry."""
    if entry == "local":
        return [sys.executable, "-u", "-m", "repro.runtime.agent"]
    tokens = shlex.split(entry)
    if not tokens:
        raise ValueError(f"empty host entry {entry!r}")
    if "{agent}" in tokens:
        expanded: list[str] = []
        for token in tokens:
            expanded.extend(AGENT_ARGV if token == "{agent}" else [token])
        return expanded
    return tokens + list(AGENT_ARGV)


def _agent_env(entry: str) -> dict[str, str]:
    """Environment for a launched agent.

    Local agents mirror the parent interpreter's import path (the same
    guarantee ``multiprocessing`` spawn gives pool workers), so pickled
    module-level callables resolve identically.  ``REPRO_*`` knobs —
    including ``REPRO_FAULTS`` and ``REPRO_TRACE`` — are inherited
    as-is; nested distribution is impossible because the agent marks
    itself as a worker process before resolving anything.
    """
    env = dict(os.environ)
    if entry == "local":
        env["PYTHONPATH"] = os.pathsep.join(
            dict.fromkeys(p for p in sys.path if p))
    return env


def lease_timeout_default() -> float:
    """Initial/floor lease deadline (``REPRO_LEASE_TIMEOUT`` or default)."""
    raw = os.environ.get(LEASE_TIMEOUT_ENV, "").strip()
    if not raw:
        return DEFAULT_LEASE_TIMEOUT_S
    try:
        return max(0.1, float(raw))
    except ValueError:
        raise ValueError(
            f"{LEASE_TIMEOUT_ENV} must be a number of seconds, "
            f"got {raw!r}") from None


def heartbeat_default() -> float:
    """Heartbeat interval (``REPRO_HEARTBEAT_S`` or default)."""
    raw = os.environ.get(HEARTBEAT_ENV, "").strip()
    if not raw:
        return DEFAULT_HEARTBEAT_S
    try:
        return max(0.05, float(raw))
    except ValueError:
        raise ValueError(
            f"{HEARTBEAT_ENV} must be a number of seconds, "
            f"got {raw!r}") from None


def distributed_available() -> bool:
    """True when a non-empty host specification is configured."""
    return bool(os.environ.get(HOSTS_ENV, "").strip())


class _Lease:
    """Bookkeeping for one granted-or-pending chunk of task indices."""

    __slots__ = ("lease_id", "indices", "attempts", "eligible_at",
                 "granted_at", "deadline_s")

    def __init__(self, lease_id: int, indices: list[int]):
        self.lease_id = lease_id
        self.indices = indices
        self.attempts = 0
        self.eligible_at = 0.0
        self.granted_at = 0.0
        self.deadline_s = 0.0


class _Agent:
    """One live (or launching) agent subprocess."""

    __slots__ = ("uid", "slot", "entry", "proc", "state", "lease",
                 "last_beat", "spawned_at")

    def __init__(self, uid: int, slot: int, entry: str):
        self.uid = uid
        self.slot = slot
        self.entry = entry
        self.proc: subprocess.Popen[str] | None = None
        self.state = "starting"  # starting | ready | busy
        self.lease: _Lease | None = None
        self.last_beat = 0.0
        self.spawned_at = 0.0


class _Wave:
    """Mutable state of one :meth:`DistributedScheduler.run` call.

    Results are delivered by caller-assigned task index.  A lease that
    exhausts its re-dispatch cap (or hits a deterministic task error)
    is *parked*: it leaves the ``outstanding`` count but its indices
    stay undelivered, so they surface in :meth:`missing` and are
    computed by the local fallback in task-index order.
    """

    __slots__ = ("fn", "tasks", "results", "have", "pending",
                 "outstanding", "payloads", "lease_floor", "beat")

    def __init__(self, fn: Callable[[Any], Any], tasks: list[Any],
                 leases: list[_Lease], lease_floor: float, beat: float):
        self.fn = fn
        self.tasks = tasks
        self.results: list[Any] = [None] * len(tasks)
        self.have = [False] * len(tasks)
        self.pending: deque[_Lease] = deque(leases)
        self.outstanding = len(leases)
        self.payloads: list[tuple[int, dict[str, Any]]] = []
        self.lease_floor = lease_floor
        self.beat = beat

    def deliver(self, lease: _Lease, values: list[Any]) -> None:
        for offset, index in enumerate(lease.indices):
            self.results[index] = values[offset]
            self.have[index] = True
        self.outstanding -= 1

    def park(self, lease: _Lease) -> None:
        self.outstanding -= 1

    def missing(self) -> list[int]:
        return [i for i in range(len(self.tasks)) if not self.have[i]]


def _kill_processes(procs: list[subprocess.Popen[str]]) -> None:
    """Finalizer target: no agent process may outlive its scheduler."""
    for proc in procs:
        if proc.poll() is None:
            proc.kill()


class DistributedScheduler(Scheduler):
    """Lease-based scheduler over subprocess agents (see module docs).

    Agents persist across :meth:`run` calls (adaptive engines submit
    many waves through one scheduler object); :meth:`close` — or
    garbage collection, or use as a context manager — shuts them down.
    ``hosts=None`` reads ``REPRO_HOSTS`` at each run, so one instance
    serves tests and production alike.
    """

    def __init__(self, hosts: Sequence[str] | str | None = None,
                 workers: int | None = None,
                 chunk_size: int | None = None,
                 lease_timeout_s: float | None = None,
                 heartbeat_s: float | None = None,
                 redispatch_cap: int = 3,
                 quarantine_after: int = 2,
                 backoff_base_s: float = 0.05,
                 hello_timeout_s: float = 30.0):
        if isinstance(hosts, str):
            hosts = parse_hosts(hosts)
        self.hosts = None if hosts is None else list(hosts)
        self.workers = workers  # width of the local fallback
        self.chunk_size = chunk_size
        self.lease_timeout_s = lease_timeout_s
        self.heartbeat_s = heartbeat_s
        self.redispatch_cap = max(1, int(redispatch_cap))
        self.quarantine_after = max(1, int(quarantine_after))
        self.backoff_base_s = max(0.0, float(backoff_base_s))
        self.hello_timeout_s = max(0.1, float(hello_timeout_s))
        self._agents: list[_Agent] = []
        self._next_uid = 0
        self._strikes: dict[int, int] = {}
        self._quarantined: set[int] = set()
        self._frames: "queue.Queue[tuple[int, str | None]]" = queue.Queue()
        self._ewma_task_s: float | None = None
        self._procs: list[subprocess.Popen[str]] = []
        self._finalizer = weakref.finalize(self, _kill_processes,
                                           self._procs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DistributedScheduler(hosts={self.hosts!r}, "
                f"workers={self.workers!r})")

    def __enter__(self) -> "DistributedScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, fn: Callable[[T], R], tasks: Iterable[T], *,
            strict: bool = False,
            chunk_size: int | None = None) -> list[R]:
        tasks = list(tasks)
        n = len(tasks)
        entries = self._resolve_hosts()
        if obs.ACTIVE:
            obs.annotate("scheduler_kind", type(self).__name__)
            obs.gauge("scheduler.agents", len(entries))
        if n == 0:
            return []
        if not entries:
            return self._fallback(fn, tasks, strict,
                                  reason="no hosts configured")
        lease_floor = (lease_timeout_default()
                       if self.lease_timeout_s is None
                       else self.lease_timeout_s)
        beat = (heartbeat_default() if self.heartbeat_s is None
                else self.heartbeat_s)
        size = chunk_size or self.chunk_size or default_chunk_size(
            n, len(entries), chunks_per_worker=2)
        leases = [_Lease(k, list(range(start, min(start + size, n))))
                  for k, start in enumerate(range(0, n, size))]
        wave = _Wave(fn, tasks, leases, lease_floor, beat)
        with obs.span("runtime.distributed.run", tasks=n,
                      agents=len(entries), leases=len(leases)):
            self._run_wave(wave, entries)
        missing = wave.missing()
        if missing:
            fallback = self._fallback(fn, [tasks[i] for i in missing],
                                      strict, reason="undelivered leases")
            for offset, index in enumerate(missing):
                wave.results[index] = fallback[offset]
        return wave.results  # type: ignore[return-value]

    def close(self) -> None:
        """Shut down all agents (polite frame, then kill)."""
        for agent in self._agents:
            if agent.proc is not None and agent.proc.poll() is None:
                try:
                    assert agent.proc.stdin is not None
                    agent.proc.stdin.write(encode_frame("shutdown") + "\n")
                    agent.proc.stdin.flush()
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + 2.0
        for agent in self._agents:
            if agent.proc is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                agent.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                agent.proc.kill()
                agent.proc.wait()
        self._agents.clear()
        self._procs.clear()

    # ------------------------------------------------------------------ #
    # Wave execution
    # ------------------------------------------------------------------ #
    def _run_wave(self, wave: _Wave, entries: list[str]) -> None:
        stall_window = max(4.0 * wave.beat, 1.0)
        tick = max(0.02, min(0.2, wave.beat / 2.0))
        while wave.outstanding > 0:
            self._reap(wave)
            if not self._usable_slots(entries) and not self._agents:
                # Every host is quarantined (each strike path kills its
                # agent, so no live agent can remain): park everything
                # still queued and let the local fallback finish.
                while wave.pending:
                    wave.park(wave.pending.popleft())
                break
            self._launch_missing(entries)
            self._grant(wave)
            self._drain_frames(wave, tick)
            self._check_timers(wave, stall_window)
        if obs.ACTIVE:
            for _, payload in sorted(wave.payloads, key=lambda p: p[0]):
                obs.absorb(payload)

    # ------------------------------------------------------------------ #
    # Agent lifecycle
    # ------------------------------------------------------------------ #
    def _resolve_hosts(self) -> list[str]:
        if self.hosts is not None:
            return list(self.hosts)
        spec = os.environ.get(HOSTS_ENV, "").strip()
        return parse_hosts(spec) if spec else []

    def _usable_slots(self, entries: list[str]) -> list[int]:
        return [slot for slot in range(len(entries))
                if slot not in self._quarantined]

    def _agent_by_uid(self, uid: int) -> "_Agent | None":
        for agent in self._agents:
            if agent.uid == uid:
                return agent
        return None

    def _launch_missing(self, entries: list[str]) -> None:
        occupied = {agent.slot for agent in self._agents}
        for slot in self._usable_slots(entries):
            if slot in occupied:
                continue
            agent = _Agent(self._next_uid, slot, entries[slot])
            self._next_uid += 1
            try:
                agent.proc = subprocess.Popen(
                    agent_command(agent.entry), stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                    text=True, bufsize=1, env=_agent_env(agent.entry))
            except (OSError, ValueError) as exc:
                self._strike(agent, f"launch failed: {exc}")
                continue
            self._procs.append(agent.proc)
            now = time.monotonic()
            agent.spawned_at = now
            agent.last_beat = now
            threading.Thread(target=self._read_frames,
                             args=(agent.uid, agent.proc),
                             daemon=True).start()
            self._agents.append(agent)
            if obs.ACTIVE:
                obs.incr("scheduler.agents_launched")

    def _read_frames(self, uid: int, proc: subprocess.Popen[str]) -> None:
        assert proc.stdout is not None
        for line in proc.stdout:
            self._frames.put((uid, line))
        self._frames.put((uid, None))

    def _kill_agent(self, agent: _Agent) -> None:
        if agent.proc is not None and agent.proc.poll() is None:
            agent.proc.kill()
            agent.proc.wait()
        if agent in self._agents:
            self._agents.remove(agent)

    def _strike(self, agent: _Agent, reason: str,
                fatal: bool = False) -> None:
        """Count one failure against the agent's host entry.

        ``fatal=True`` (protocol-version mismatch at hello) quarantines
        the host immediately regardless of its strike count.
        """
        strikes = self._strikes.get(agent.slot, 0) + 1
        self._strikes[agent.slot] = strikes
        if not fatal and strikes < self.quarantine_after:
            return
        if agent.slot in self._quarantined:
            return
        self._quarantined.add(agent.slot)
        record = FailureRecord(
            site="agent", error="AgentFailure",
            message=(f"host {agent.entry!r} quarantined after "
                     f"{strikes} failure(s): {reason}"),
            index=agent.slot,
            context={"host": agent.entry, "strikes": strikes,
                     "reason": reason})
        if obs.ACTIVE:
            obs.incr("scheduler.agents_quarantined")
            obs.record_failure(record.to_dict())

    def _requeue(self, wave: _Wave, lease: _Lease) -> None:
        """Queue a failed lease for another grant — or park it at cap."""
        lease.granted_at = 0.0
        if lease.attempts >= self.redispatch_cap:
            if obs.ACTIVE:
                obs.incr("scheduler.leases_parked")
            wave.park(lease)
            return
        lease.eligible_at = (time.monotonic() + self.backoff_base_s
                             * (2.0 ** max(0, lease.attempts - 1)))
        wave.pending.append(lease)
        if obs.ACTIVE:
            obs.incr("scheduler.leases_redispatched")

    def _reap(self, wave: _Wave) -> None:
        """Notice dead agent processes and recycle their leases."""
        for agent in list(self._agents):
            if agent.proc is None or agent.proc.poll() is None:
                continue
            lease = agent.lease
            agent.lease = None
            self._kill_agent(agent)
            if obs.ACTIVE:
                obs.incr("scheduler.agent_crashes")
            self._strike(agent, "process exited "
                                f"(code {agent.proc.returncode})")
            if lease is not None:
                self._requeue(wave, lease)

    # ------------------------------------------------------------------ #
    # Lease granting and monitoring
    # ------------------------------------------------------------------ #
    def _lease_deadline(self, n_tasks: int, lease_floor: float) -> float:
        if self._ewma_task_s is None:
            return lease_floor
        return max(lease_floor,
                   DEADLINE_FACTOR * self._ewma_task_s * n_tasks)

    def _grant(self, wave: _Wave) -> None:
        now = time.monotonic()
        for agent in list(self._agents):
            if agent.state != "ready":
                continue
            lease = self._next_eligible(wave.pending, now)
            if lease is None:
                return
            lease.attempts += 1
            lease.granted_at = now
            deadline = self._lease_deadline(len(lease.indices),
                                            wave.lease_floor)
            if any(should_fire("lease", i) for i in lease.indices):
                deadline = 0.0  # granted already expired
            lease.deadline_s = deadline
            payload = pack_payload(
                (wave.fn, [wave.tasks[i] for i in lease.indices]))
            try:
                assert agent.proc is not None and agent.proc.stdin is not None
                agent.proc.stdin.write(encode_frame(
                    "lease", lease_id=lease.lease_id,
                    indices=lease.indices, payload=payload,
                    heartbeat_s=wave.beat, deadline_s=deadline) + "\n")
                agent.proc.stdin.flush()
            except (OSError, ValueError):
                self._kill_agent(agent)
                self._strike(agent, "lease write failed")
                self._requeue(wave, lease)
                continue
            agent.state = "busy"
            agent.lease = lease
            agent.last_beat = now
            if obs.ACTIVE:
                obs.incr("scheduler.leases_granted")

    @staticmethod
    def _next_eligible(pending: deque[_Lease],
                       now: float) -> "_Lease | None":
        for _ in range(len(pending)):
            lease = pending.popleft()
            if lease.eligible_at <= now:
                return lease
            pending.append(lease)
        return None

    def _check_timers(self, wave: _Wave, stall_window: float) -> None:
        now = time.monotonic()
        for agent in list(self._agents):
            if agent.state == "starting":
                if now - agent.spawned_at > self.hello_timeout_s:
                    self._kill_agent(agent)
                    self._strike(agent, "no hello before timeout")
                continue
            if agent.state != "busy" or agent.lease is None:
                continue
            lease = agent.lease
            expired = (now - lease.granted_at
                       > max(lease.deadline_s * DEADLINE_GRACE,
                             MIN_GRACE_S))
            stalled = now - agent.last_beat > stall_window
            if not (expired or stalled):
                continue
            agent.lease = None
            self._kill_agent(agent)
            if obs.ACTIVE:
                obs.incr("scheduler.leases_expired" if expired
                         else "scheduler.agent_stalls")
            self._strike(agent, "lease deadline expired (hard)" if expired
                         else "heartbeat silence")
            self._requeue(wave, lease)

    # ------------------------------------------------------------------ #
    # Frame processing
    # ------------------------------------------------------------------ #
    def _drain_frames(self, wave: _Wave, tick: float) -> None:
        try:
            uid, line = self._frames.get(timeout=tick)
        except queue.Empty:
            return
        while True:
            self._handle_frame(wave, uid, line)
            try:
                uid, line = self._frames.get_nowait()
            except queue.Empty:
                return

    def _handle_frame(self, wave: _Wave, uid: int,
                      line: str | None) -> None:
        agent = self._agent_by_uid(uid)
        if agent is None or line is None:
            # Frame from an already-removed agent (stale), or the EOF
            # marker — process exits are handled by _reap.
            return
        try:
            frame = decode_frame(line)
        except FrameError as exc:
            self._frame_failure(wave, agent, f"undecodable frame: {exc}")
            return
        kind = frame["type"]
        if kind == "hello":
            try:
                check_hello(frame)
            except FrameError as exc:
                if obs.ACTIVE:
                    obs.incr("scheduler.protocol_errors")
                self._kill_agent(agent)
                self._strike(agent, str(exc), fatal=True)
                return
            agent.state = "ready"
            agent.last_beat = time.monotonic()
        elif kind == "heartbeat":
            agent.last_beat = time.monotonic()
            if obs.ACTIVE:
                obs.incr("scheduler.heartbeats")
        elif kind == "result":
            try:
                self._handle_result(wave, agent, frame)
            except FrameError as exc:
                self._frame_failure(wave, agent, f"bad result frame: {exc}")
        elif kind == "error":
            self._handle_error(wave, agent, frame)
        # Only scheduler-bound frame types remain; anything unknown was
        # already rejected by decode_frame.

    def _frame_failure(self, wave: _Wave, agent: _Agent,
                       reason: str) -> None:
        """A garbage-emitting agent is killed; its lease is reassigned."""
        if obs.ACTIVE:
            obs.incr("scheduler.protocol_errors")
        lease = agent.lease
        agent.lease = None
        self._kill_agent(agent)
        self._strike(agent, reason)
        if lease is not None:
            self._requeue(wave, lease)

    def _handle_result(self, wave: _Wave, agent: _Agent,
                       frame: dict[str, Any]) -> None:
        lease = agent.lease
        if lease is None or frame["lease_id"] != lease.lease_id:
            return  # stale result for a lease this agent no longer holds
        values = unpack_payload(frame["payload"])
        if not isinstance(values, list) or len(values) != len(lease.indices):
            raise FrameError(
                f"result for lease {lease.lease_id} carries "
                f"{len(values) if isinstance(values, list) else '?'} "
                f"values for {len(lease.indices)} tasks")
        try:
            task_s = [float(t) for t in frame["task_s"]]
        except (TypeError, ValueError) as exc:
            raise FrameError(f"non-numeric task_s: {exc}") from exc
        positive = [t for t in task_s if t >= 0.0]
        if positive:
            mean = sum(positive) / len(positive)
            self._ewma_task_s = (mean if self._ewma_task_s is None
                                 else EWMA_ALPHA * mean
                                 + (1.0 - EWMA_ALPHA) * self._ewma_task_s)
        if frame["obs"] is not None and obs.ACTIVE:
            if not isinstance(frame["obs"], dict):
                raise FrameError("result obs payload must be an object")
            wave.payloads.append((lease.indices[0], frame["obs"]))
        wave.deliver(lease, values)
        agent.lease = None
        agent.state = "ready"
        agent.last_beat = time.monotonic()

    def _handle_error(self, wave: _Wave, agent: _Agent,
                      frame: dict[str, Any]) -> None:
        lease = agent.lease
        if lease is None or frame["lease_id"] != lease.lease_id:
            return
        agent.lease = None
        agent.state = "ready"
        agent.last_beat = time.monotonic()
        if frame["kind"] == "deadline":
            # Cooperative expiry: the agent is healthy enough to report,
            # so no strike — but the lease goes through the same
            # backoff / re-dispatch-cap path as a hard expiry.
            if obs.ACTIVE:
                obs.incr("scheduler.leases_expired")
            self._requeue(wave, lease)
            return
        # Task-level exception: re-dispatching cannot help (the failure
        # is deterministic), so park the lease — the parent recomputes
        # its tasks locally, where the exception re-raises faithfully.
        if obs.ACTIVE:
            obs.incr("scheduler.task_errors")
            obs.incr("scheduler.leases_parked")
        wave.park(lease)

    # ------------------------------------------------------------------ #
    # Local fallback
    # ------------------------------------------------------------------ #
    def _fallback(self, fn: Callable[[T], R], items: list[T],
                  strict: bool, reason: str) -> list[R]:
        """Finish ``items`` in the parent through a LocalScheduler."""
        if obs.ACTIVE:
            obs.incr("scheduler.local_fallbacks")
            obs.incr("scheduler.local_fallback_tasks", len(items))
            obs.annotate("scheduler_degraded", reason)
        with obs.span("runtime.distributed.local_fallback",
                      tasks=len(items), reason=reason):
            return LocalScheduler(workers=self.workers).run(
                fn, items, strict=strict)


__all__ = [
    "AGENT_ARGV",
    "DEADLINE_FACTOR",
    "DEADLINE_GRACE",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_LEASE_TIMEOUT_S",
    "DistributedScheduler",
    "EWMA_ALPHA",
    "HEARTBEAT_ENV",
    "HOSTS_ENV",
    "LEASE_TIMEOUT_ENV",
    "MIN_GRACE_S",
    "agent_command",
    "distributed_available",
    "heartbeat_default",
    "lease_timeout_default",
    "parse_hosts",
]
