"""Pluggable array backend for the hot NEGF kernels.

The energy-batched Sancho-Rubio decimation and RGF transmission sweeps
(:mod:`repro.negf.self_energy`, :mod:`repro.negf.greens`) spend their
time in stacked LAPACK/BLAS calls glued together by a thin Python
recurrence.  That glue is where alternative array runtimes can win: a
JIT that fuses the per-energy loop (numba) removes the stacked-temporary
traffic, and a GPU runtime (cupy) moves the whole batch off-host.  This
module is the seam those runtimes plug into.

Design rules
------------
* **numpy is the default and the reference.**  The numpy backend
  provides *no* fused kernels, so the existing inline recurrences run
  unchanged — bit-for-bit the pre-backend behavior.  Every other
  backend is opt-in via ``REPRO_BACKEND`` and validated against numpy
  in the test suite.
* **Selection is explicit and fails loudly.**  Naming a backend whose
  runtime is not importable raises :class:`BackendUnavailableError` at
  resolution time; nothing silently falls back, because a benchmark
  that quietly ran on numpy would report fictitious numbers.
* **Kernels are optional per backend.**  A backend exposes
  ``sancho_rubio`` / ``rgf_transmission`` fused kernels or ``None``;
  callers consult :func:`active_backend` and fall back to the inline
  numpy path when a kernel is missing (counted under
  ``backend.numpy_fallbacks``), e.g. for non-uniform block sizes or
  under the sanitizer, whose checks need the recurrence internals.

Environment
-----------
``REPRO_BACKEND``
    ``numpy`` (default), ``numba`` (JIT'd per-energy kernels; requires
    the optional numba package), or ``cupy`` (GPU stub; requires cupy).
    Checked at every resolution, so tests can flip it mid-process.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass
from typing import Any, Callable

from repro import obs
from repro.errors import ReproError

#: Environment variable selecting the array backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Names accepted by ``REPRO_BACKEND`` (empty means numpy).
BACKEND_NAMES = ("numpy", "numba", "cupy")

DEFAULT_BACKEND = "numpy"


class BackendUnavailableError(ReproError):
    """Requested array backend cannot run in this environment."""


@dataclass(frozen=True)
class ArrayBackend:
    """One array runtime and its fused NEGF kernels.

    Attributes
    ----------
    name:
        Backend identifier (``numpy`` / ``numba`` / ``cupy``).
    sancho_rubio:
        Fused surface-GF decimation kernel with the signature of
        :func:`repro.negf.self_energy.sancho_rubio_surface_gf_batched`
        (returns the ``(n_energy, n, n)`` stack plus a per-energy
        converged mask), or ``None`` to use the inline numpy path.
    rgf_transmission:
        Fused RGF transmission kernel over uniform block stacks
        ``(energies, diag_stack, coup_stack, sigma_l, sigma_r, eta)``,
        or ``None`` to use the inline numpy path.
    """

    name: str
    sancho_rubio: Callable[..., Any] | None = None
    rgf_transmission: Callable[..., Any] | None = None


def backend_name() -> str:
    """Backend selected by ``REPRO_BACKEND`` (default ``numpy``).

    Read from the environment at every call — never cached at import —
    so drivers and tests can flip backends mid-process.
    """
    raw = os.environ.get(BACKEND_ENV, "").strip().lower()
    return raw or DEFAULT_BACKEND


def _module_available(module: str) -> bool:
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


def available_backends() -> dict[str, bool]:
    """Importability of each known backend in this environment."""
    return {
        "numpy": True,
        "numba": _module_available("numba"),
        "cupy": _module_available("cupy"),
    }


_NUMPY_BACKEND = ArrayBackend(name="numpy")

# Constructed backends, keyed by name (the numba JIT warm-up is paid
# once per process).
_CACHE: dict[str, ArrayBackend] = {"numpy": _NUMPY_BACKEND}


def _build_backend(name: str) -> ArrayBackend:
    if name == "numpy":
        return _NUMPY_BACKEND
    if name == "numba":
        if not _module_available("numba"):
            raise BackendUnavailableError(
                "REPRO_BACKEND=numba but the numba package is not "
                "installed; install numba or unset REPRO_BACKEND "
                "(the numpy default needs no extra packages)")
        from repro.runtime import backend_numba

        return ArrayBackend(
            name="numba",
            sancho_rubio=backend_numba.sancho_rubio_batched,
            rgf_transmission=backend_numba.rgf_transmission_batched,
        )
    if name == "cupy":
        # GPU stub: selection validates the runtime exists, but the
        # fused kernels are not implemented yet — transport falls back
        # to the inline numpy recurrences (counted as fallbacks).
        if not _module_available("cupy"):
            raise BackendUnavailableError(
                "REPRO_BACKEND=cupy but the cupy package is not "
                "installed; this backend is a stub pending a GPU "
                "runtime — unset REPRO_BACKEND to use numpy")
        return ArrayBackend(name="cupy")
    raise BackendUnavailableError(
        f"unknown array backend {name!r}; expected one of "
        f"{', '.join(BACKEND_NAMES)}")


def active_backend() -> ArrayBackend:
    """Resolve the selected backend (see :func:`backend_name`).

    Raises :class:`BackendUnavailableError` for unknown names and for
    backends whose runtime is not importable.  Resolution is counted
    under ``backend.resolve.<name>`` when tracing is active.
    """
    name = backend_name()
    backend = _CACHE.get(name)
    if backend is None:
        backend = _build_backend(name)
        _CACHE[name] = backend
    if obs.ACTIVE:
        obs.incr(f"backend.resolve.{backend.name}")
    return backend


def record_kernel(kernel: str, backend: ArrayBackend) -> None:
    """Count one fused-kernel dispatch (``backend.<name>.<kernel>``)."""
    if obs.ACTIVE:
        obs.incr(f"backend.{backend.name}.{kernel}")


def record_fallback(kernel: str, backend: ArrayBackend) -> None:
    """Count one inline-numpy fallback taken by a non-numpy backend."""
    if obs.ACTIVE and backend.name != "numpy":
        obs.incr("backend.numpy_fallbacks")
        obs.incr(f"backend.{backend.name}.fallback.{kernel}")
