"""Distributed worker agent: ``python -m repro.runtime.agent``.

One agent is one leased executor on one host.  The scheduler
(:mod:`repro.runtime.distributed`) launches it from a ``REPRO_HOSTS``
command template — directly as a subprocess for ``local`` entries, or
wrapped in ``ssh user@box ...`` for remote ones — and speaks the
newline-delimited JSON protocol of :mod:`repro.runtime.protocol` over
its stdin/stdout.

The agent is intentionally *policy-free*: it announces itself
(``hello``), executes whatever leases arrive, emits ``heartbeat``
frames from a background thread while a lease is active, ships results
(and its drained obs payload) back in ``result`` frames, and exits on
``shutdown`` or EOF.  All robustness policy — deadlines, heartbeat
windows, reassignment, quarantine, fallback — lives scheduler-side, so
a wedged, crashed or malicious agent can never take a wave down.

Determinism: tasks arrive with their caller-assigned global indices and
are executed by a plain ``fn(item)`` call in lease order, so per-sample
seeds, ``REPRO_FAULTS`` specs and checkpoint memos key identically at
any host count.  The agent marks itself as a worker process
(``_REPRO_IN_WORKER``), which collapses nested pools and nested
scheduler resolution to serial — one lease is one single-threaded
computation, exactly like a pool worker chunk.

Fault sites (inherited through the spawned environment, keyed by the
lease's global task indices): ``host`` crashes the agent process hard,
``stall`` silences its heartbeats and sleeps — see
:mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from typing import Any, TextIO

from repro import obs
from repro.errors import DeadlineExceeded, FrameError
from repro.runtime import faults
from repro.runtime.parallel import _IN_WORKER_ENV
from repro.runtime.protocol import (
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    pack_payload,
    unpack_payload,
)
from repro.runtime.resilience import run_with_deadline


class _HeartbeatThread(threading.Thread):
    """Background heartbeat emitter for one active lease.

    Writes ``heartbeat`` frames every ``interval_s`` until stopped.
    ``suppress()`` silences it permanently (the ``stall`` fault path) —
    a wedged host does not send heartbeats, that is the point.
    """

    def __init__(self, writer: "_FrameWriter", lease_id: int,
                 interval_s: float):
        super().__init__(daemon=True)
        self.writer = writer
        self.lease_id = lease_id
        self.interval_s = max(0.05, float(interval_s))
        self.done = 0
        self._stop = threading.Event()
        self._suppressed = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            if self._suppressed.is_set():
                continue
            try:
                self.writer.send("heartbeat", lease_id=self.lease_id,
                                 done=int(self.done))
            except OSError:
                return  # scheduler went away; main loop will see EOF too

    def suppress(self) -> None:
        self._suppressed.set()

    def stop(self) -> None:
        self._stop.set()


class _FrameWriter:
    """Locked line writer shared by the main loop and heartbeat thread."""

    def __init__(self, stream: TextIO):
        self.stream = stream
        self._lock = threading.Lock()

    def send(self, frame_type: str, **fields: Any) -> None:
        line = encode_frame(frame_type, **fields)
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()


def _execute_lease(frame: dict[str, Any], writer: _FrameWriter) -> None:
    """Run one lease and reply with ``result`` (or ``error``).

    The scheduler's lease deadline is also enforced *cooperatively*
    here through :func:`~repro.runtime.resilience.run_with_deadline`
    (the agent main thread can take ``SIGALRM``): a lease that overruns
    reports ``error kind="deadline"`` instead of silently running on,
    which spares the scheduler a kill for stragglers that are slow but
    not wedged.  The scheduler-side timer remains the backstop for
    agents too far gone to run this code at all.
    """
    lease_id = int(frame["lease_id"])
    indices = [int(i) for i in frame["indices"]]
    deadline_s = frame["deadline_s"]
    fn, items = unpack_payload(frame["payload"])
    if len(items) != len(indices):
        raise FrameError(
            f"lease {lease_id}: {len(indices)} indices but "
            f"{len(items)} items")
    heartbeat = _HeartbeatThread(writer, lease_id,
                                 float(frame["heartbeat_s"]))
    heartbeat.start()
    if obs.ACTIVE:
        obs.reset()
    results: list[Any] = []
    task_s: list[float] = []

    def _run_tasks() -> None:
        for index, item in zip(indices, items):
            if faults.ACTIVE:
                faults.inject("host", index)  # may os._exit(23)
                if faults.should_fire("stall", index):
                    _stall(heartbeat)
            start = time.perf_counter()
            results.append(fn(item))
            task_s.append(time.perf_counter() - start)
            heartbeat.done += 1

    try:
        if deadline_s is None:
            _run_tasks()
        else:
            run_with_deadline(_run_tasks, float(deadline_s), site="lease")
    except DeadlineExceeded as exc:
        heartbeat.stop()
        writer.send("error", lease_id=lease_id, kind="deadline",
                    error=repr(exc))
        return
    except Exception as exc:  # repro: noqa[RPA501] transport firewall: the task's exception is reported to the scheduler, which re-raises it faithfully by local recompute
        heartbeat.stop()
        writer.send("error", lease_id=lease_id, kind="task",
                    error=repr(exc))
        return
    heartbeat.stop()
    payload = pack_payload(results)
    writer.send("result", lease_id=lease_id, payload=payload,
                task_s=[round(t, 6) for t in task_s],
                obs=obs.drain() if obs.ACTIVE else None)


def _stall(heartbeat: _HeartbeatThread) -> None:
    """Go silent: no heartbeats, no alarm, just a long sleep.

    The cooperative deadline alarm is disarmed first — a genuinely
    wedged process does not run Python signal handlers, and the test
    contract of the ``stall`` site is that *only* the scheduler's
    missed-heartbeat window can end it.
    """
    heartbeat.suppress()
    if hasattr(signal, "setitimer"):
        signal.setitimer(signal.ITIMER_REAL, 0.0)
    time.sleep(faults.STALL_SLEEP_S)


def serve(stdin: TextIO | None = None, stdout: TextIO | None = None) -> int:
    """Agent main loop; returns the process exit code.

    Reads frames line-by-line from ``stdin`` until ``shutdown`` or EOF.
    A malformed inbound frame is fatal to the *agent* (exit code 2) —
    the scheduler treats the death as an agent failure and reassigns,
    which is the correct blast radius for a corrupted pipe.
    """
    os.environ[_IN_WORKER_ENV] = "1"
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    writer = _FrameWriter(stdout)
    writer.send("hello", v=PROTOCOL_VERSION, pid=os.getpid())
    for line in stdin:
        if not line.strip():
            continue
        try:
            frame = decode_frame(line)
        except FrameError as exc:
            print(f"repro-agent: bad frame: {exc}", file=sys.stderr)
            return 2
        if frame["type"] == "shutdown":
            return 0
        if frame["type"] == "lease":
            try:
                _execute_lease(frame, writer)
            except FrameError as exc:
                print(f"repro-agent: bad lease: {exc}", file=sys.stderr)
                return 2
        # Other frame types are scheduler-bound; ignore echoes silently.
    return 0


def main() -> int:
    """Console entry point (``python -m repro.runtime.agent``)."""
    return serve()


if __name__ == "__main__":
    sys.exit(main())
