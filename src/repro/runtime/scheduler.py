"""Scheduler seam: pluggable task dispatch for every adaptive sweep.

:func:`repro.runtime.parallel.parallel_map` is a *mechanism* — a
process pool with deterministic, input-ordered results.  The exploration
and variability layers, however, need a *policy* seam: adaptive sweeps
submit work in waves whose size the algorithm discovers as it runs, so
the dispatch layer must (a) survive worker crashes without losing the
wave, (b) keep serial == parallel bitwise, and (c) stay swappable so a
future distributed backend slots in without touching the sweeps.

:class:`Scheduler` is that seam.  :class:`LocalScheduler` is the
default implementation: it wraps ``parallel_map``, adds
work-stealing-style *guided chunking* (decreasing chunk sizes from
:func:`~repro.runtime.parallel.guided_chunk_plan`, so a straggler task
cannot serialize a wave), and absorbs
:class:`~repro.errors.ParallelMapError` through
:func:`~repro.runtime.resilience.recover_parallel` unless the caller is
strict.  The fault-injection sites, quarantine records and obs payload
forwarding of the underlying machinery ride through unchanged: tasks
keep their caller-assigned indices, so ``REPRO_FAULTS`` specs fire at
the same logical work item at any worker count.

:class:`~repro.runtime.distributed.DistributedScheduler` is the second
implementation — lease-based dispatch over subprocess agents with
deadlines, heartbeats, reassignment and local fallback.  Select it per
run with ``REPRO_SCHEDULER=distributed`` (plus a ``REPRO_HOSTS`` spec)
or per call by passing an instance to :func:`resolve_scheduler`.

Determinism contract: a :class:`Scheduler` may partition tasks freely
but must return results in task order, computed by a per-task pure
function — exactly ``[fn(t) for t in tasks]``.  Chunking/worker-count
choices affect wall-clock only, never values.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ParallelMapError
from repro.runtime.parallel import (
    guided_chunk_plan,
    in_worker,
    parallel_map,
    resolve_workers,
)
from repro.runtime.resilience import recover_parallel

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable choosing the scheduler implementation
#: (``local`` | ``distributed``); unset means local.
SCHEDULER_ENV = "REPRO_SCHEDULER"


class Scheduler:
    """Abstract task dispatcher behind which every adaptive sweep runs.

    Implementations must satisfy ``run(fn, tasks) == [fn(t) for t in
    tasks]`` for deterministic per-task ``fn`` — partitioning is an
    implementation detail, values are not.
    """

    def run(self, fn: Callable[[T], R], tasks: Iterable[T], *,
            strict: bool = False,
            chunk_size: int | None = None) -> list[R]:
        """Evaluate ``fn`` over ``tasks``, results in task order.

        ``strict=True`` propagates the first failure (including
        :class:`~repro.errors.ParallelMapError`) instead of recovering.
        ``chunk_size`` pins uniform chunking; ``None`` lets the
        scheduler pick its own partitioning.
        """
        raise NotImplementedError


class LocalScheduler(Scheduler):
    """Process-pool scheduler: ``parallel_map`` + crash recovery.

    ``workers=None`` defers to ``REPRO_WORKERS`` at each ``run`` call
    (serial fallback included), so one scheduler object serves both
    serial tests and parallel production runs.  When the caller does not
    pin ``chunk_size``, dispatch uses a guided decreasing-chunk plan so
    late stragglers in a wave are spread across the pool.
    """

    def __init__(self, workers: int | None = None):
        self.workers = workers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalScheduler(workers={self.workers!r})"

    def run(self, fn: Callable[[T], R], tasks: Iterable[T], *,
            strict: bool = False,
            chunk_size: int | None = None) -> list[R]:
        tasks = list(tasks)
        workers = resolve_workers(self.workers)
        chunk_plan: list[int] | None = None
        if chunk_size is None and workers > 1 and len(tasks) > 1:
            chunk_plan = guided_chunk_plan(len(tasks), workers)
        try:
            return parallel_map(  # repro: noqa[RPA901] the seam's own dispatch
                fn, tasks, workers=self.workers,
                chunk_size=chunk_size, chunk_plan=chunk_plan)
        except ParallelMapError as err:
            if strict:
                raise
            return recover_parallel(err, fn, tasks)


def resolve_scheduler(scheduler: Scheduler | None = None,
                      workers: int | None = None) -> Scheduler:
    """The scheduler to use: explicit > ``REPRO_SCHEDULER`` > local.

    ``workers`` only applies when a scheduler is constructed here; an
    explicit ``scheduler`` argument wins as-is.  Inside a worker or
    agent process the answer is always a :class:`LocalScheduler` —
    nested distribution would fan out recursively.  An unknown
    ``REPRO_SCHEDULER`` value raises ``ValueError`` (misconfiguration
    should fail loudly, not silently fall back to local).
    """
    if scheduler is not None:
        return scheduler
    choice = os.environ.get(SCHEDULER_ENV, "").strip().lower()
    if choice in ("", "local") or in_worker():
        return LocalScheduler(workers=workers)
    if choice == "distributed":
        # Imported here, not at module top: distributed.py subclasses
        # Scheduler and wraps LocalScheduler, so a top-level import
        # would be cyclic.
        from repro.runtime.distributed import DistributedScheduler
        return DistributedScheduler(workers=workers)
    raise ValueError(
        f"{SCHEDULER_ENV} must be 'local' or 'distributed', got {choice!r}")


def scheduler_kind(scheduler: Any) -> str:
    """Short label for obs/manifest attribution."""
    return type(scheduler).__name__


__all__ = [
    "LocalScheduler",
    "SCHEDULER_ENV",
    "Scheduler",
    "resolve_scheduler",
    "scheduler_kind",
]
