"""Content-addressed on-disk cache for expensive simulation artifacts.

The self-consistent device tables behind every circuit-level experiment
take seconds-to-minutes to build but depend only on (geometry, bias
grids, mode count, engine version).  This module persists them as
compressed ``.npz`` payloads keyed by a stable content hash, so a fresh
process — a new CLI invocation, a test run, a benchmark worker — reuses
tables computed by any earlier one.

Layout and protocol
-------------------
* Default root: ``~/.cache/repro-gnrfet`` (override with
  ``REPRO_CACHE_DIR``; disable entirely with ``REPRO_NO_CACHE=1``).
* One file per artifact: ``<root>/<namespace>/<sha256-hex>.npz``.
* Writes are atomic (write to a same-directory temp file, then
  ``os.replace``), so concurrent workers never observe torn files; the
  last writer wins with an identical payload.
* Keys hash a canonical string form of the inputs: dataclasses are
  flattened field-by-field (sorted), floats go through ``repr`` (full
  precision), arrays through their dtype/shape/bytes.  Any change to
  geometry, grids, mode count or the engine version tag changes the key.
* Invalidation is by construction: nothing is ever mutated in place.
  Bump the relevant ``*_VERSION`` tag when an engine's physics changes
  so stale artifacts are orphaned rather than reused.  ``repro cache
  clear`` (or deleting the directory) reclaims space.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro import obs

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the disk cache entirely (any non-empty
#: value).
NO_CACHE_ENV = "REPRO_NO_CACHE"

#: Version tag of the fast SBFET table engine.  Bump when the engine's
#: physics or numerics change so previously cached tables are not reused.
#: v2: warm-start continuation along V_D rows (converged midgaps move
#: within the bisection tolerance relative to cold-started v1 tables).
TABLE_ENGINE_VERSION = "sbfet-v2"


def cache_enabled() -> bool:
    """True unless ``REPRO_NO_CACHE`` is set (to any non-empty value)."""
    return not os.environ.get(NO_CACHE_ENV)


def cache_root() -> Path:
    """Cache root directory (not created until first write)."""
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-gnrfet"


def canonical_repr(value: Any) -> str:
    """Stable, content-complete string form of a cache-key component.

    Handles the types that appear in simulation specifications:
    dataclasses (flattened field-by-field), mappings/sequences
    (recursively), numpy arrays (dtype + shape + raw bytes), floats
    (``repr``: full precision) and None.  Unknown objects raise rather
    than silently hashing an address-based ``repr``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = sorted(dataclasses.fields(value), key=lambda f: f.name)
        inner = ",".join(
            f"{f.name}={canonical_repr(getattr(value, f.name))}"
            for f in fields)
        return f"{type(value).__name__}({inner})"
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return (f"ndarray(dtype={arr.dtype.str},shape={arr.shape},"
                f"sha={hashlib.sha256(arr.tobytes()).hexdigest()})")
    if isinstance(value, np.generic):
        return canonical_repr(value.item())
    if isinstance(value, dict):
        inner = ",".join(f"{canonical_repr(k)}:{canonical_repr(v)}"
                         for k, v in sorted(value.items(),
                                            key=lambda kv: repr(kv[0])))
        return f"dict({inner})"
    if isinstance(value, (list, tuple)):
        inner = ",".join(canonical_repr(v) for v in value)
        return f"{type(value).__name__}({inner})"
    raise TypeError(
        f"cannot build a stable cache key from {type(value).__name__!r}")


def content_key(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``parts``."""
    text = "|".join(canonical_repr(p) for p in parts)
    return hashlib.sha256(text.encode()).hexdigest()


class ArtifactCache:
    """One namespace of the on-disk artifact store.

    Payloads are dictionaries of numpy arrays, stored as compressed
    ``.npz`` files under ``<root>/<namespace>/``.  A disabled cache
    (``REPRO_NO_CACHE``) degrades every operation to a no-op / miss.
    """

    def __init__(self, namespace: str, root: Path | None = None,
                 enabled: bool | None = None):
        self.namespace = namespace
        self._root = root
        self._enabled = enabled

    @property
    def enabled(self) -> bool:
        return cache_enabled() if self._enabled is None else self._enabled

    @property
    def directory(self) -> Path:
        return (self._root if self._root is not None
                else cache_root()) / self.namespace

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """Load a payload, or None on miss / disabled / corrupt file."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        if not path.is_file():
            if obs.ACTIVE:
                obs.incr("cache.artifact_misses")
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                payload = {name: data[name] for name in data.files}
        except (OSError, ValueError, KeyError):
            # Torn or foreign file: treat as a miss; the rebuilt artifact
            # will atomically replace it.
            if obs.ACTIVE:
                obs.incr("cache.artifact_misses")
            return None
        if obs.ACTIVE:
            obs.incr("cache.artifact_hits")
        return payload

    def put(self, key: str, **arrays: np.ndarray) -> Path | None:
        """Atomically persist a payload; returns the path (None if
        disabled)."""
        if not self.enabled:
            return None
        directory = self.directory
        directory.mkdir(parents=True, exist_ok=True)
        final = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            os.replace(tmp, final)  # atomic on POSIX
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        if obs.ACTIVE:
            obs.incr("cache.artifact_writes")
        return final

    def keys(self) -> list[str]:
        """Keys currently present on disk (empty if disabled/missing)."""
        if not self.enabled or not self.directory.is_dir():
            return []
        return sorted(p.stem for p in self.directory.glob("*.npz"))

    def size_bytes(self) -> int:
        """Total bytes of all payloads in this namespace."""
        if not self.directory.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.directory.glob("*.npz"))

    def clear(self) -> int:
        """Delete every payload in this namespace; returns count removed."""
        removed = 0
        if self.directory.is_dir():
            for p in list(self.directory.glob("*.npz")):
                p.unlink(missing_ok=True)
                removed += 1
            for p in list(self.directory.glob("*.tmp")):
                p.unlink(missing_ok=True)
        return removed


def clear_all(namespaces: Iterable[str] = ("tables",)) -> int:
    """Clear the listed namespaces of the active cache root."""
    return sum(ArtifactCache(ns).clear() for ns in namespaces)
