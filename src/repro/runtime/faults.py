"""Deterministic fault injection for exercising recovery paths.

Every resilience mechanism in this repo — retry ladders, failure
quarantine, checkpoint/resume, parallel-chunk salvage — exists for
events that essentially never occur in a healthy run.  This module makes
those events *reproducible on demand* so each recovery path is testable
in CI: a fault specification names a site and the task indices at which
that site must fail, and the instrumented call sites consult it through
one module-flag guard (``if faults.ACTIVE:``), so a run without
``REPRO_FAULTS`` pays one attribute load per hook.

Specification grammar (``REPRO_FAULTS`` or :func:`enable`)::

    spec     := clause (";" clause)*
    clause   := site "@" index ("," index)*
    index    := INT ("x" INT)?          # "x" caps how many attempts fail
    site     := "scf" | "sr" | "worker" | "checkpoint"
              | "host" | "stall" | "lease"

Examples
--------
``scf@3,7``
    Every solve attempt of sweep cells 3 and 7 raises a
    :class:`~repro.errors.ConvergenceError` — the retry ladder exhausts
    and the cells are quarantined.
``scf@3x2``
    Only the first two attempts at cell 3 fail; the third (a later
    ladder rung) succeeds — exercises ladder *recovery*.
``sr@5``
    The Sancho-Rubio decimation fails at task index 5.
``worker@2``
    The worker process handling task index 2 exits hard
    (``os._exit``), breaking the process pool — exercises
    :class:`~repro.errors.ParallelMapError` salvage.
``checkpoint@1``
    The second checkpoint write (index 1) is interrupted after the
    temp file is written but before the atomic replace — exercises
    resume-from-previous-checkpoint.
``host@2``
    The *agent process* (``repro.runtime.agent``) about to compute
    task index 2 crashes hard (``os._exit``) — exercises the
    distributed scheduler's lease-reassignment and agent quarantine.
``stall@2``
    The agent about to compute task index 2 goes silent: its heartbeat
    thread is suppressed and the process sleeps — exercises
    missed-heartbeat detection (the scheduler kills and replaces it).
``lease@2``
    The lease covering task index 2 is granted already expired
    (scheduler-side, consumed via :func:`should_fire`, never
    :func:`inject`) — exercises lease-expiry reassignment without
    touching the agent.

Indices are *task indices of the enclosing sweep* (flat cell index for
bias grids, sample index for Monte Carlo, write ordinal for
checkpoints), never global call counts, so the same spec fires at the
same logical work item at any worker count — including any *host*
count: distributed agents inherit ``REPRO_FAULTS`` through their
spawned environment exactly like pool workers, and the host-level
sites key on the lease's task indices.  Attempt counters are
process-local; because a given task is always retried within the one
process that owns it, ``xN`` counting is exact in workers too.  (A
*fresh* agent process starts with fresh counters, so an always-on
``host@i`` clause crashes every agent that ever leases task ``i`` —
the re-dispatch cap and local fallback are what terminate that chaos.)
"""

from __future__ import annotations

import os
import time

from repro.errors import CheckpointError, ConvergenceError

#: Environment variable holding the fault specification.
FAULTS_ENV = "REPRO_FAULTS"

#: Recognized fault sites.  ``host``/``stall`` fire inside distributed
#: agent processes; ``lease`` is consumed scheduler-side.
SITES = ("scf", "sr", "worker", "checkpoint", "host", "stall", "lease")

#: How long a ``stall`` fault sleeps.  Long enough that the scheduler's
#: missed-heartbeat window always expires first; the stalled process is
#: then killed, so the sleep never actually completes.
STALL_SLEEP_S = 600.0

#: Module-level guard flag: ``True`` iff a fault plan is armed.  Hot
#: hooks check this before anything else, so a faultless run costs one
#: attribute load per hook.
ACTIVE: bool = False

#: Parsed plan: ``(site, index) -> max failing attempts`` (None = always).
_PLAN: dict[tuple[str, int], int | None] = {}

#: Attempts observed so far at each armed (site, index).
_ATTEMPTS: dict[tuple[str, int], int] = {}


def parse_spec(spec: str) -> dict[tuple[str, int], int | None]:
    """Parse a ``REPRO_FAULTS`` specification string.

    Returns ``{(site, index): count_or_None}`` where ``None`` means the
    site fails at that index on every attempt.  Raises ``ValueError``
    on malformed clauses or unknown sites.
    """
    plan: dict[tuple[str, int], int | None] = {}
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        site, sep, rest = clause.partition("@")
        site = site.strip()
        if not sep or site not in SITES:
            raise ValueError(
                f"bad fault clause {clause!r}: expected site@indices with "
                f"site in {SITES}")
        for token in rest.split(","):
            token = token.strip()
            if not token:
                raise ValueError(f"bad fault clause {clause!r}: empty index")
            head, x, tail = token.partition("x")
            try:
                index = int(head)
                count = int(tail) if x else None
            except ValueError:
                raise ValueError(
                    f"bad fault index {token!r} in clause {clause!r}; "
                    "expected INT or INTxCOUNT") from None
            if index < 0 or (count is not None and count < 1):
                raise ValueError(
                    f"bad fault index {token!r}: index must be >= 0 and "
                    "count >= 1")
            plan[(site, index)] = count
    return plan


def _sync_from_env() -> None:
    """Arm (or disarm) the plan from the current environment value."""
    global ACTIVE
    spec = os.environ.get(FAULTS_ENV, "").strip()
    _PLAN.clear()
    _ATTEMPTS.clear()
    if spec:
        _PLAN.update(parse_spec(spec))
    ACTIVE = bool(_PLAN)


def enable(spec: str) -> None:
    """Arm a fault plan for this process and future workers."""
    os.environ[FAULTS_ENV] = spec
    _sync_from_env()


def disable() -> None:
    """Disarm fault injection (and stop exporting it to workers)."""
    os.environ.pop(FAULTS_ENV, None)
    _sync_from_env()


def reset_attempts() -> None:
    """Forget attempt counts (``xN`` clauses re-arm); plan unchanged."""
    _ATTEMPTS.clear()


def should_fire(site: str, index: int) -> bool:
    """True (and consume one attempt) if ``site`` must fail at ``index``.

    Every call for an armed ``(site, index)`` increments its attempt
    counter, so an ``xN`` clause lets attempt ``N+1`` — a later retry
    rung — succeed.
    """
    key = (site, index)
    cap = _PLAN.get(key, 0)
    if cap == 0:  # not armed (0 never parses, so it doubles as a sentinel)
        return False
    attempt = _ATTEMPTS.get(key, 0) + 1
    _ATTEMPTS[key] = attempt
    return cap is None or attempt <= cap


def inject(site: str, index: int, detail: str = "") -> None:
    """Raise the configured fault for ``site`` at ``index``, if armed.

    Call sites guard with ``if faults.ACTIVE:`` so this function is
    never entered in a faultless run.  The raised exception type
    matches what the real failure mode would produce:

    * ``scf`` / ``sr`` — :class:`~repro.errors.ConvergenceError` with a
      ``context`` marking the failure as injected;
    * ``checkpoint`` — :class:`~repro.errors.CheckpointError`;
    * ``worker`` — hard process exit (``os._exit(17)``), the closest
      reproducible stand-in for an OOM-killed / segfaulted worker;
    * ``host`` — hard agent-process exit (``os._exit(23)``), the
      distributed analogue of ``worker``;
    * ``stall`` — the process goes silent for :data:`STALL_SLEEP_S`
      (callers such as the agent suppress their heartbeats first), the
      reproducible stand-in for a wedged or network-partitioned host;
    * ``lease`` — never raised here: the distributed scheduler consults
      :func:`should_fire` directly when granting leases and forces the
      deadline into the past instead.
    """
    if not should_fire(site, index):
        return
    if site == "worker":
        os._exit(17)
    if site == "host":
        os._exit(23)
    if site == "stall":
        time.sleep(STALL_SLEEP_S)
        return
    if site == "lease":
        return  # scheduler-side: consumed via should_fire at grant time
    where = f"{site}@{index}" + (f" ({detail})" if detail else "")
    if site == "checkpoint":
        raise CheckpointError(f"injected checkpoint-write fault at {where}")
    raise ConvergenceError(
        f"injected {site} fault at {where}",
        context={"injected": True, "fault_site": site, "task_index": index})


# Arm from the environment at import so worker processes (which inherit
# REPRO_FAULTS) come up with the same plan as the parent.
_sync_from_env()
