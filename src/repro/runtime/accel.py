"""Solver acceleration substrate: warm-start gating + batched linear algebra.

Layer: cross-cutting utility under :mod:`repro.runtime` (imports only
``errors``/``obs``), importable from the physics layers.  Responsibility:
the *generic* pieces of the solver acceleration layer —

* **warm-start gating** — sweep drivers thread each converged solution
  into the adjacent bias point (SCF continuation).  The
  ``REPRO_NO_WARMSTART`` escape hatch restores cold starts everywhere
  (bit-for-bit the pre-continuation behavior) for debugging and for
  A/B benchmarking; :func:`warmstart_enabled` is the single gate every
  engine consults.
* **energy-batched dense kernels** — the real-space NEGF path carries a
  leading energy axis through every block recurrence
  (``np.linalg.solve`` broadcasts over leading dimensions), replacing
  per-energy Python loops.  The helpers here build the stacked
  identities and inverses those recurrences share.

The physics-specific surgery lives next to the physics: prefactorized
Poisson operators in :mod:`repro.poisson.fd`, continuation-aware SCF in
:mod:`repro.device`, batched Sancho-Rubio and RGF recurrences in
:mod:`repro.negf`.
"""

from __future__ import annotations

import os

import numpy as np

#: Any non-empty, non-falsey value disables SCF warm-start continuation
#: in every sweep driver (cold starts everywhere, the pre-acceleration
#: behavior).
NO_WARMSTART_ENV = "REPRO_NO_WARMSTART"

_FALSEY = ("", "0", "false", "off", "no")


def warmstart_enabled() -> bool:
    """True unless ``REPRO_NO_WARMSTART`` disables SCF continuation.

    Checked at every solve (not cached at import), so tests and drivers
    can flip the environment mid-process.
    """
    return os.environ.get(NO_WARMSTART_ENV, "").strip().lower() in _FALSEY


def stacked_identity(n_batch: int, n: int) -> np.ndarray:
    """``(n_batch, n, n)`` complex array holding one identity per batch.

    The right-hand side shared by every batched inversion below; built
    once per kernel invocation and reused across recurrence steps.
    """
    eye = np.eye(n, dtype=complex)
    return np.broadcast_to(eye, (n_batch, n, n)).copy()


def batched_inverse(matrices: np.ndarray) -> np.ndarray:
    """Inverse of a stack of square matrices via one LAPACK call.

    ``matrices`` has shape ``(..., n, n)``; the solve against a
    broadcast identity runs over all leading axes simultaneously, which
    is the primitive the energy-batched NEGF recurrences are built on.
    """
    matrices = np.asarray(matrices)
    n = matrices.shape[-1]
    eye = np.eye(n, dtype=matrices.dtype)
    return np.linalg.solve(matrices, np.broadcast_to(
        eye, matrices.shape).copy())


def batched_trace(matrices: np.ndarray) -> np.ndarray:
    """Trace along the last two axes of a matrix stack: ``(..., n, n) -> (...)``."""
    return np.trace(np.asarray(matrices), axis1=-2, axis2=-1)
