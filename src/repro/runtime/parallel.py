"""Process-pool execution substrate shared by every sweep in the repo.

The paper's workflow is sweep-shaped at every layer: ``I_D/Q(V_G, V_D)``
grids populate lookup tables (Sec. 3), the V_DD-V_T plane is explored
cell-by-cell (Fig. 3), and variability is a 1000-sample Monte Carlo
(Fig. 6).  Every cell of every one of those sweeps is independent, so
they all dispatch through :func:`parallel_map` here.

Design rules
------------
* **Deterministic ordering** — results come back in input order no
  matter which worker finished first, so parallel sweeps are
  bit-for-bit identical to serial ones.
* **Serial fallback** — ``workers <= 1`` (the default when neither the
  argument nor ``REPRO_WORKERS`` is set) runs a plain list
  comprehension in-process: no pool, no pickling, easy debugging.
* **Chunked dispatch** — items are shipped to workers in contiguous
  chunks (default: ~4 chunks per worker) to amortize pickling overhead
  while keeping the pool load-balanced.
* **No nested pools** — worker processes see ``_REPRO_IN_WORKER`` in
  their environment and resolve every inner ``workers=None`` to 1, so a
  parallel Monte Carlo whose workers build device tables never
  oversubscribes the machine.
* **Reproducible randomness** — :func:`spawn_seed_sequences` derives one
  independent child :class:`numpy.random.SeedSequence` per task from a
  single root seed.  Because the spawn tree depends only on the root
  seed and the task index (never on the worker partitioning), a Monte
  Carlo run is bit-for-bit reproducible at any worker count.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro import obs
from repro.errors import ParallelMapError

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable read when ``workers=None`` is passed.
WORKERS_ENV = "REPRO_WORKERS"

#: Set inside worker processes; forces inner ``workers=None`` to serial.
_IN_WORKER_ENV = "_REPRO_IN_WORKER"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve the effective worker count.

    Priority: explicit argument > ``REPRO_WORKERS`` env var > 1 (serial).
    Inside a worker process the answer is always 1 (no nested pools).
    ``workers=0`` or negative counts clamp to serial.
    """
    if os.environ.get(_IN_WORKER_ENV):
        return 1
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}") from None
    return max(1, int(workers))


def in_worker() -> bool:
    """True when executing inside a :func:`parallel_map` worker process."""
    return bool(os.environ.get(_IN_WORKER_ENV))


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]
               ) -> tuple[list[R], dict | None]:
    """Worker-side chunk executor (module-level so it pickles).

    Returns ``(results, obs_payload)``: workers inherit ``REPRO_TRACE``
    through the environment, record spans/metrics into their own
    process-local recorder, and ship the drained payload back alongside
    the chunk results so the parent can absorb it deterministically.
    """
    os.environ[_IN_WORKER_ENV] = "1"
    if not obs.ACTIVE:
        return [fn(item) for item in chunk], None
    obs.reset()
    results = [fn(item) for item in chunk]
    return results, obs.drain()


def default_chunk_size(n_items: int, workers: int,
                       chunks_per_worker: int = 4) -> int:
    """Chunk size giving ~``chunks_per_worker`` chunks per worker."""
    return max(1, math.ceil(n_items / max(1, workers * chunks_per_worker)))


def guided_chunk_plan(n_items: int, workers: int) -> list[int]:
    """Decreasing chunk sizes in the guided-self-scheduling style.

    Each chunk takes ``ceil(remaining / (2 * workers))`` items (never
    below 1): early chunks are large to amortize dispatch overhead,
    late chunks shrink so stragglers cannot leave workers idle — the
    work-stealing effect without a shared queue.  The plan depends only
    on ``(n_items, workers)``, so the *partitioning* is deterministic;
    per-item results never depend on it.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    plan: list[int] = []
    remaining = int(n_items)
    workers = max(1, int(workers))
    while remaining > 0:
        size = max(1, math.ceil(remaining / (2 * workers)))
        plan.append(size)
        remaining -= size
    return plan


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
    chunk_size: int | None = None,
    chunk_plan: Sequence[int] | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` across a process pool.

    Results are returned in input order regardless of completion order.
    ``fn`` and the items must be picklable when ``workers > 1`` (i.e.
    ``fn`` must be a module-level function or a :func:`functools.partial`
    of one).

    ``chunk_plan`` (mutually exclusive with ``chunk_size``) gives the
    explicit size of every chunk in order, e.g. from
    :func:`guided_chunk_plan`; the sizes must sum to ``len(items)``.

    Failure contract: on the serial path the item's exception propagates
    unchanged.  On the pooled path a chunk failure (worker exception or
    a crashed worker process) raises :class:`~repro.errors.ParallelMapError`
    with the original exception chained as ``__cause__`` — chunks that
    finished before the failure surfaced ride along on the wrapper
    (``completed``, keyed by chunk index) together with the
    cancelled/completed chunk counts, and their obs payloads are
    absorbed rather than dropped, so partial progress is neither lost
    nor invisible.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if chunk_plan is not None:
        if chunk_size is not None:
            raise ValueError("pass chunk_size or chunk_plan, not both")
        if sum(chunk_plan) != len(items) or any(s < 1 for s in chunk_plan):
            raise ValueError(
                f"chunk_plan {list(chunk_plan)!r} does not partition "
                f"{len(items)} item(s)")
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    if chunk_plan is not None:
        offsets: list[int] | None = []
        chunks = []
        start = 0
        for size in chunk_plan:
            offsets.append(start)
            chunks.append(items[start:start + size])
            start += size
        chunk_size = chunk_plan[0]
    else:
        offsets = None
        if chunk_size is None:
            chunk_size = default_chunk_size(len(items), workers)
        chunks = [items[i:i + chunk_size]
                  for i in range(0, len(items), chunk_size)]

    with obs.span("runtime.parallel_map", workers=workers,
                  items=len(items), chunks=len(chunks)):
        results: list[list[R] | None] = [None] * len(chunks)
        payloads: list[dict | None] = [None] * len(chunks)
        failed: dict[int, BaseException] = {}
        n_cancelled = 0
        with ProcessPoolExecutor(
                max_workers=min(workers, len(chunks))) as pool:
            future_index = {pool.submit(_run_chunk, fn, chunk): k
                            for k, chunk in enumerate(chunks)}
            wait(future_index, return_when=FIRST_EXCEPTION)
            for future in future_index:
                future.cancel()
            # future_index iterates in submission (= chunk) order, so
            # salvage and failure attribution are deterministic.
            for future, k in future_index.items():
                if future.cancelled():
                    n_cancelled += 1
                    continue
                exc = future.exception()  # waits for still-running chunks
                if exc is not None:
                    failed[k] = exc
                else:
                    results[k], payloads[k] = future.result()
        if obs.ACTIVE:
            # Chunk-index order, not completion order: worker metrics
            # aggregate identically at any worker count.  Completed
            # chunks' payloads are absorbed even on the failure path so
            # their spans/counters are not silently dropped.
            for payload in payloads:
                obs.absorb(payload)
        if failed:
            n_completed = len(chunks) - len(failed) - n_cancelled
            if obs.ACTIVE:
                obs.incr("parallel.chunks_failed", len(failed))
                obs.incr("parallel.chunks_cancelled", n_cancelled)
                obs.incr("parallel.chunks_salvaged", n_completed)
            first = min(failed)
            raise ParallelMapError(
                f"parallel_map chunk {first} of {len(chunks)} failed "
                f"({type(failed[first]).__name__}: {failed[first]}); "
                f"{n_completed} completed chunk(s) salvaged, "
                f"{n_cancelled} cancelled",
                completed={k: r for k, r in enumerate(results)
                           if r is not None},
                failed={k: repr(e) for k, e in sorted(failed.items())},
                n_chunks=len(chunks), n_cancelled=n_cancelled,
                chunk_size=chunk_size,
                chunk_offsets=offsets) from failed[first]
        return [r for chunk in results
                for r in chunk]  # type: ignore[union-attr]


def spawn_seed_sequences(seed: int, n_tasks: int
                         ) -> list[np.random.SeedSequence]:
    """One independent child :class:`~numpy.random.SeedSequence` per task.

    The children depend only on ``(seed, task_index)``, so distributing
    tasks over any number of workers (or running them serially) draws the
    same random streams.
    """
    return np.random.SeedSequence(seed).spawn(n_tasks)


def batch_indices(n_items: int, n_batches: int) -> list[range]:
    """Split ``range(n_items)`` into ``n_batches`` contiguous ranges.

    Earlier batches are at most one element longer; empty batches are
    dropped.
    """
    n_batches = max(1, min(n_batches, n_items)) if n_items else 1
    base, extra = divmod(n_items, n_batches)
    ranges = []
    start = 0
    for b in range(n_batches):
        size = base + (1 if b < extra else 0)
        if size:
            ranges.append(range(start, start + size))
        start += size
    return ranges
