"""Wire protocol of the distributed scheduler: versioned JSON frames.

The scheduler (:mod:`repro.runtime.distributed`) and its worker agents
(:mod:`repro.runtime.agent`) speak newline-delimited JSON over the
agent's stdin/stdout.  One line = one *frame*: a JSON object whose
``"type"`` field names the message.  The vocabulary is deliberately
tiny — five scheduler-visible frame types plus ``shutdown`` — because
every robustness decision (deadlines, heartbeat windows, reassignment)
lives in the scheduler; the agent is a dumb, replaceable executor.

Frame types and their required fields::

    hello      agent -> scheduler   {"v": PROTOCOL_VERSION, "pid": int}
    lease      scheduler -> agent   {"lease_id": int, "indices": [int],
                                     "payload": b64, "heartbeat_s": float,
                                     "deadline_s": float | null}
    heartbeat  agent -> scheduler   {"lease_id": int, "done": int}
    result     agent -> scheduler   {"lease_id": int, "payload": b64,
                                     "task_s": [float], "obs": {} | null}
    error      agent -> scheduler   {"lease_id": int, "kind": str,
                                     "error": str}
    shutdown   scheduler -> agent   {}

``payload`` fields carry pickled Python objects (the ``(fn, items)``
pair of a lease; the result list of a ``result``) as base64 text, so a
frame is always one clean ASCII line regardless of content.  Anything
that does not decode — invalid JSON, a non-object, a missing or unknown
``type``, a field of the wrong shape, corrupt base64 — raises
:class:`~repro.errors.FrameError`.  The scheduler maps a frame error to
*agent failure* (kill + reassign the lease), never to wave failure, so
a garbage-emitting host cannot take a run down.

``PROTOCOL_VERSION`` is checked on ``hello``: an agent speaking a
different version is quarantined immediately rather than trusted with
leases (mixed-version fleets fail loudly at handshake, not subtly at
unpickling).
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Any, Mapping

from repro.errors import FrameError

#: Version stamped into (and required of) every ``hello`` frame.
PROTOCOL_VERSION = 1

#: Frame vocabulary and the fields each frame must carry.
FRAME_FIELDS: dict[str, tuple[str, ...]] = {
    "hello": ("v", "pid"),
    "lease": ("lease_id", "indices", "payload", "heartbeat_s",
              "deadline_s"),
    "heartbeat": ("lease_id", "done"),
    "result": ("lease_id", "payload", "task_s", "obs"),
    "error": ("lease_id", "kind", "error"),
    "shutdown": (),
}


def pack_payload(obj: Any) -> str:
    """Pickle ``obj`` into base64 text (one-line safe)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def unpack_payload(text: str) -> Any:
    """Inverse of :func:`pack_payload`; :class:`FrameError` on corruption.

    Unpickling executes arbitrary constructors by design — the payload
    comes from *our own* scheduler/agent pair over a private pipe, the
    same trust model as :mod:`multiprocessing` itself.
    """
    try:
        return pickle.loads(base64.b64decode(text, validate=True))
    except Exception as exc:  # repro: noqa[RPA501] decode firewall: any corrupt payload must become FrameError, never crash the scheduler loop
        raise FrameError(f"corrupt frame payload: {exc!r}") from exc


def encode_frame(frame_type: str, **fields: Any) -> str:
    """Serialize one frame to its wire line (no trailing newline).

    Validates the type and field set, so a malformed frame is a bug
    caught at the sender, not a mystery at the receiver.
    """
    expected = FRAME_FIELDS.get(frame_type)
    if expected is None:
        raise FrameError(f"unknown frame type {frame_type!r}")
    missing = [f for f in expected if f not in fields]
    extra = [f for f in fields if f not in expected]
    if missing or extra:
        raise FrameError(
            f"{frame_type} frame fields mismatch: missing {missing}, "
            f"unexpected {extra}")
    return json.dumps({"type": frame_type, **fields}, sort_keys=True)


def decode_frame(line: str | bytes) -> dict[str, Any]:
    """Parse one wire line into a validated frame dictionary.

    Raises :class:`~repro.errors.FrameError` for anything that is not a
    complete, known, well-shaped frame.  Field *values* are shape-checked
    (lists are lists, ids are ints) but payloads stay encoded — call
    :func:`unpack_payload` only on frames you trust enough to act on.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameError(f"frame is not UTF-8: {exc}") from exc
    line = line.strip()
    if not line:
        raise FrameError("empty frame line")
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise FrameError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise FrameError(
            f"frame must be a JSON object, got {type(frame).__name__}")
    frame_type = frame.get("type")
    expected = FRAME_FIELDS.get(frame_type) if isinstance(
        frame_type, str) else None
    if expected is None:
        raise FrameError(f"unknown frame type {frame_type!r}")
    missing = [f for f in expected if f not in frame]
    if missing:
        raise FrameError(f"{frame_type} frame missing fields {missing}")
    _check_shapes(frame)
    return frame


def _check_shapes(frame: Mapping[str, Any]) -> None:
    """Cheap structural validation of the decoded field values."""
    kind = frame["type"]
    if kind == "hello":
        if not isinstance(frame["v"], int) or not isinstance(
                frame["pid"], int):
            raise FrameError("hello frame: 'v' and 'pid' must be integers")
    elif kind == "lease":
        indices = frame["indices"]
        if (not isinstance(frame["lease_id"], int)
                or not isinstance(indices, list)
                or not all(isinstance(i, int) for i in indices)
                or not isinstance(frame["payload"], str)):
            raise FrameError("lease frame: bad lease_id/indices/payload")
    elif kind == "heartbeat":
        if not isinstance(frame["lease_id"], int) or not isinstance(
                frame["done"], int):
            raise FrameError("heartbeat frame: lease_id/done must be ints")
    elif kind == "result":
        if (not isinstance(frame["lease_id"], int)
                or not isinstance(frame["payload"], str)
                or not isinstance(frame["task_s"], list)):
            raise FrameError("result frame: bad lease_id/payload/task_s")
    elif kind == "error":
        if not isinstance(frame["lease_id"], int) or not isinstance(
                frame["error"], str):
            raise FrameError("error frame: bad lease_id/error")


def check_hello(frame: Mapping[str, Any]) -> None:
    """Reject a ``hello`` whose protocol version is not ours."""
    if frame["v"] != PROTOCOL_VERSION:
        raise FrameError(
            f"protocol version mismatch: agent speaks v{frame['v']}, "
            f"scheduler speaks v{PROTOCOL_VERSION}")


__all__ = [
    "FRAME_FIELDS",
    "PROTOCOL_VERSION",
    "check_hello",
    "decode_frame",
    "encode_frame",
    "pack_payload",
    "unpack_payload",
]
