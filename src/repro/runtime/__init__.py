"""Shared execution substrate: process-pool sweeps + persistent caching.

Every sweep layer in the repo — device ``I_D/Q(V_G, V_D)`` grids, the
V_DD-V_T exploration plane, the ring-oscillator Monte Carlo — dispatches
through :func:`repro.runtime.parallel.parallel_map`, and the expensive
self-consistent device tables persist across processes through
:class:`repro.runtime.cache.ArtifactCache`.

Environment knobs
-----------------
``REPRO_WORKERS``
    Default worker count for every sweep (overridden per-call by the
    ``workers`` argument; ``<=1`` means serial).
``REPRO_CACHE_DIR``
    Cache root (default ``~/.cache/repro-gnrfet``).
``REPRO_NO_CACHE``
    Any non-empty value disables the on-disk cache.
``REPRO_TRACE``
    Enables :mod:`repro.obs` tracing; worker processes inherit it and
    forward their recorded metrics back to the parent in chunk order.
``REPRO_NO_WARMSTART``
    Any non-empty value disables SCF warm-start continuation in every
    sweep driver (cold starts everywhere; see :mod:`repro.runtime.accel`).
``REPRO_BACKEND``
    Array backend for the hot NEGF kernels: ``numpy`` (default),
    ``numba`` or ``cupy`` (see :mod:`repro.runtime.backend`).
``REPRO_STRICT``
    Truthy value flips every sweep back to raise-on-first-failure
    instead of quarantining failed cells (see
    :mod:`repro.runtime.resilience`).
``REPRO_CHECKPOINT`` / ``REPRO_RESUME``
    Checkpoint interval in sweep units, and whether to resume from an
    existing checkpoint (see :mod:`repro.runtime.resilience`).
``REPRO_FAULTS``
    Deterministic fault-injection plan for exercising the recovery
    paths (see :mod:`repro.runtime.faults`).
``REPRO_SCHEDULER``
    Dispatch seam implementation: ``local`` (default) or
    ``distributed`` (see :mod:`repro.runtime.scheduler` and
    :mod:`repro.runtime.distributed`).
``REPRO_HOSTS`` / ``REPRO_LEASE_TIMEOUT`` / ``REPRO_HEARTBEAT_S``
    Distributed-scheduler agent host spec, initial/floor lease deadline
    in seconds, and heartbeat interval (see
    :mod:`repro.runtime.distributed`).
"""

from repro.runtime.accel import (
    NO_WARMSTART_ENV,
    batched_inverse,
    batched_trace,
    stacked_identity,
    warmstart_enabled,
)
from repro.runtime.backend import (
    BACKEND_ENV,
    BACKEND_NAMES,
    ArrayBackend,
    BackendUnavailableError,
    active_backend,
    available_backends,
    backend_name,
)
from repro.runtime.cache import (
    CACHE_DIR_ENV,
    NO_CACHE_ENV,
    TABLE_ENGINE_VERSION,
    ArtifactCache,
    cache_enabled,
    cache_root,
    canonical_repr,
    clear_all,
    content_key,
)
from repro.runtime.distributed import (
    HEARTBEAT_ENV,
    HOSTS_ENV,
    LEASE_TIMEOUT_ENV,
    DistributedScheduler,
    distributed_available,
    parse_hosts,
)
from repro.runtime.faults import FAULTS_ENV
from repro.runtime.parallel import (
    WORKERS_ENV,
    batch_indices,
    default_chunk_size,
    guided_chunk_plan,
    in_worker,
    parallel_map,
    resolve_workers,
    spawn_seed_sequences,
)
from repro.runtime.scheduler import (
    SCHEDULER_ENV,
    LocalScheduler,
    Scheduler,
    resolve_scheduler,
    scheduler_kind,
)
from repro.runtime.resilience import (
    CHECKPOINT_ENV,
    RESUME_ENV,
    STRICT_ENV,
    FailureRecord,
    SweepCheckpoint,
    checkpoint_interval,
    quarantine,
    recover_parallel,
    resume_enabled,
    run_ladder,
    run_with_deadline,
    strict_default,
)

__all__ = [
    "ArrayBackend",
    "ArtifactCache",
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "CACHE_DIR_ENV",
    "CHECKPOINT_ENV",
    "DistributedScheduler",
    "FAULTS_ENV",
    "FailureRecord",
    "HEARTBEAT_ENV",
    "HOSTS_ENV",
    "LEASE_TIMEOUT_ENV",
    "LocalScheduler",
    "NO_CACHE_ENV",
    "NO_WARMSTART_ENV",
    "RESUME_ENV",
    "SCHEDULER_ENV",
    "STRICT_ENV",
    "Scheduler",
    "SweepCheckpoint",
    "TABLE_ENGINE_VERSION",
    "WORKERS_ENV",
    "active_backend",
    "available_backends",
    "backend_name",
    "batch_indices",
    "batched_inverse",
    "batched_trace",
    "cache_enabled",
    "cache_root",
    "canonical_repr",
    "checkpoint_interval",
    "clear_all",
    "content_key",
    "default_chunk_size",
    "distributed_available",
    "guided_chunk_plan",
    "in_worker",
    "parallel_map",
    "parse_hosts",
    "quarantine",
    "recover_parallel",
    "resolve_scheduler",
    "resolve_workers",
    "resume_enabled",
    "scheduler_kind",
    "run_ladder",
    "run_with_deadline",
    "spawn_seed_sequences",
    "stacked_identity",
    "strict_default",
    "warmstart_enabled",
]
