"""Figure 2: intrinsic N=12 GNRFET I-V (a) and V_T extraction (b).

Paper anchors asserted:
* ambipolar curves with minimum leakage near V_G = V_D/2, leakage rising
  exponentially with V_D;
* I_on ~ 6.3 uA scale at V_D = 0.5 V (factor-2 band);
* V_T ~ 0.3 V at zero offset, ~0.1 V at a 0.2 V gate work-function offset.
"""

import numpy as np

from repro.reporting.experiments import run_fig2
from repro.reporting.figures import save_series_csv


def test_fig2_iv_and_vt(benchmark, tech, save_report, output_dir):
    report, data = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    save_report("fig2", report)
    save_series_csv(data["series"], output_dir / "fig2a_series.csv")

    # V_T anchors (paper: 0.3 V and 0.1 V).
    assert abs(data["vt"][0.0] - 0.30) < 0.05
    assert abs(data["vt"][0.2] - 0.10) < 0.05
    assert abs((data["vt"][0.0] - data["vt"][0.2]) - 0.2) < 0.04

    by_name = {s.name: s for s in data["series"]}
    # Ambipolar minimum near V_D/2 for the V_D = 0.5 V curve.
    s = by_name["VD=0.50V"]
    v_min = s.x[np.argmin(s.y)]
    assert abs(v_min - 0.25) < 0.1

    # Minimum leakage rises exponentially with V_D.
    mins = {name: float(np.min(series.y))
            for name, series in by_name.items()}
    assert mins["VD=0.50V"] > 4.0 * mins["VD=0.25V"]
    assert mins["VD=0.75V"] > 4.0 * mins["VD=0.50V"]

    # I_on scale at V_D = 0.5 (paper ~6.3 uA; factor-2 band).
    i_on = float(by_name["VD=0.50V"].y[-1])
    assert 2.5e-6 < i_on < 13e-6
