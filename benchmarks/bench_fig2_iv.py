"""Figure 2: intrinsic N=12 GNRFET I-V (a) and V_T extraction (b).

Paper anchors asserted:
* ambipolar curves with minimum leakage near V_G = V_D/2, leakage rising
  exponentially with V_D;
* I_on ~ 6.3 uA scale at V_D = 0.5 V (factor-2 band);
* V_T ~ 0.3 V at zero offset, ~0.1 V at a 0.2 V gate work-function offset.
"""

from repro.characterize.specs import extract_fig2
from repro.reporting.experiments import run_fig2
from repro.reporting.figures import save_series_csv


def test_fig2_iv_and_vt(benchmark, tech, save_report, output_dir):
    report, data = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    save_report("fig2", report)
    save_series_csv(data["series"], output_dir / "fig2a_series.csv")

    fom = extract_fig2(data)

    # V_T anchors (paper: 0.3 V and 0.1 V).
    assert abs(fom["vt_zero_offset_v"] - 0.30) < 0.05
    assert abs(fom["vt_offset02_v"] - 0.10) < 0.05
    assert abs(fom["delta_vt_v"] - 0.2) < 0.04

    # Ambipolar minimum near V_D/2 for the V_D = 0.5 V curve.
    assert abs(fom["ambipolar_min_vg_v"] - 0.25) < 0.1

    # Minimum leakage rises exponentially with V_D.
    assert fom["leak_ratio_050_025"] > 4.0
    assert fom["leak_ratio_075_050"] > 4.0

    # I_on scale at V_D = 0.5 (paper ~6.3 uA; factor-2 band).
    assert 2.5 < fom["i_on_vd05_ua"] < 13.0
