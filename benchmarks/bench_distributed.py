"""Distributed scheduler: dispatch overhead and chaos-parity cost.

Runs one wave of deterministic numeric tasks through the
``LocalScheduler`` baseline and the ``DistributedScheduler`` (three
``local`` agents), then repeats the distributed wave under injected
chaos (an agent hard-crash plus two forced lease expiries).  Writes the
headline numbers to ``BENCH_distributed.json`` at the repository root
(plus a line in ``BENCH_trajectory.jsonl``).

Asserted invariants, both modes:

* **bitwise parity** — the distributed result list equals the local
  one exactly, clean *and* under chaos (the scheduler seam contract:
  partitioning affects wall-clock only, never values);
* **bounded overhead** — distributed dispatch (subprocess launch,
  pickling, frame traffic) stays under a per-task overhead ceiling
  against the serial baseline.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the wave; it never
rewrites the committed ``BENCH_distributed.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.characterize.trajectory import append_trajectory, trajectory_entry
from repro.reporting.tables import format_table
from repro.runtime import faults
from repro.runtime.distributed import DistributedScheduler
from repro.runtime.scheduler import LocalScheduler

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_distributed.json"

MODE = "fast" if SMOKE else "full"
N_TASKS = 48 if SMOKE else 192
HOSTS = "local*3"

#: Per-task overhead ceiling (seconds) for clean distributed dispatch
#: vs the serial baseline — generous, because the point is to catch a
#: pathological regression (per-lease relaunching, frame storms), not
#: to benchmark subprocess start-up.
OVERHEAD_CEILING_S = 0.25


def _cell(i: int) -> float:
    """One deterministic pseudo-solve (~ms of dense linear algebra)."""
    rng = np.random.default_rng(20260808 + i)
    a = rng.standard_normal((48, 48))
    h = a @ a.T + 48.0 * np.eye(48)
    return float(np.linalg.eigvalsh(h).sum())


def test_distributed_dispatch(benchmark, save_report):
    tasks = list(range(N_TASKS))

    start = time.perf_counter()
    baseline = LocalScheduler(workers=1).run(_cell, tasks)
    serial_wall = time.perf_counter() - start

    with DistributedScheduler(hosts=HOSTS, heartbeat_s=0.2) as sched:
        start = time.perf_counter()
        clean = benchmark.pedantic(lambda: sched.run(_cell, tasks),
                                   rounds=1, iterations=1)
        clean_wall = time.perf_counter() - start

    faults.enable(f"host@{N_TASKS // 2};lease@1x2")
    try:
        with DistributedScheduler(hosts=HOSTS, heartbeat_s=0.2,
                                  backoff_base_s=0.01) as sched:
            start = time.perf_counter()
            chaotic = sched.run(_cell, tasks)
            chaos_wall = time.perf_counter() - start
    finally:
        faults.disable()

    assert clean == baseline
    assert chaotic == baseline
    overhead_s = max(0.0, clean_wall - serial_wall) / N_TASKS
    assert overhead_s < OVERHEAD_CEILING_S
    chaos_cost = chaos_wall / clean_wall if clean_wall > 0 else float("inf")

    rows = [
        ["serial baseline", f"{serial_wall:.2f} s",
         f"{N_TASKS} tasks, LocalScheduler(workers=1)"],
        ["distributed clean", f"{clean_wall:.2f} s",
         f"{HOSTS}, {overhead_s * 1e3:.2f} ms/task overhead, "
         "bitwise == local"],
        ["distributed chaos", f"{chaos_wall:.2f} s",
         f"host@{N_TASKS // 2} + lease@1x2, {chaos_cost:.2f}x clean, "
         "bitwise == local"],
    ]
    report = format_table(
        ["path", "wall", "detail"], rows,
        title=f"Distributed dispatch ({MODE} mode"
              f"{', smoke' if SMOKE else ''})")
    save_report("distributed", report)
    print(report)

    append_trajectory(trajectory_entry(
        "bench_distributed", MODE, True,
        serial_wall + clean_wall + chaos_wall,
        {"n_tasks": N_TASKS,
         "overhead_ms_per_task": round(overhead_s * 1e3, 3),
         "chaos_cost_ratio": round(chaos_cost, 3)}))

    if SMOKE:
        return

    payload = {
        "schema": "repro-bench-distributed/1",
        "hosts": HOSTS,
        "n_tasks": N_TASKS,
        "serial_wall_s": serial_wall,
        "distributed_wall_s": clean_wall,
        "chaos_wall_s": chaos_wall,
        "overhead_s_per_task": overhead_s,
        "chaos_cost_ratio": chaos_cost,
        "bitwise_parity": True,
        "chaos_spec": f"host@{N_TASKS // 2};lease@1x2",
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
