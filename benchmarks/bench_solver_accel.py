"""Solver acceleration layer: the three hot-path wins, measured.

The acceleration work has three legs, each with a quantitative
acceptance target measured here and persisted to ``BENCH_solvers.json``
at the repository root:

* **Prefactorized Poisson** — :class:`repro.poisson.fd.PoissonOperator`
  assembles + LU-factorizes once per (grid, permittivity, mask); each
  SCF iteration then pays two triangular substitutions.  Target: >= 3x
  over assemble-per-solve on the reference 61 x 15 device grid (measured
  ~25x: factorization dominates at this size).
* **SCF warm-start continuation** — sweep drivers seed each bias point's
  bisection from an extrapolation of the two previous converged midgaps,
  shrinking the bracket from 3 eV to ~0.016 eV.  Target: >= 30% fewer
  bisection iterations on a 13-point I_D(V_G) sweep, with every root
  within the solver tolerance of its cold value.
* **Energy-batched real-space transport** — stacked Sancho-Rubio + RGF
  kernels carry all energies per LAPACK call.  Target: >= 5x over the
  per-energy loop at 12 and at 64 energies on the edge-roughness
  ensemble workload shape (N = 7 ribbon, 80 cells), with parity to
  1e-10.  (On wide ribbons the stacked calls amortize less — see
  docs/performance.md for the block-size dependence.)
* **Mode-space engine** — the coupled mode-space reduction of
  :class:`repro.device.negf_modespace.ModeSpaceGNRDevice` shrinks every
  RGF block from ``2N`` to the retained mode count.  Target: >= 5x over
  the real-space engine at matched accuracy (max |dT| <= 0.05 and
  relative dI <= 0.05 over the transport window) on the paper-scale
  N = 12 barrier device, with the full n_modes/accuracy trade-off curve
  recorded.
* **Numba array backend** — ``REPRO_BACKEND=numba`` swaps the stacked
  recurrences for JIT'd per-energy kernels.  Measured only where the
  optional package is installed (the CI optional-backend job); the
  committed block records availability honestly otherwise.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the workloads and relaxes
the ratio assertions to sanity bounds; it never rewrites the committed
``BENCH_solvers.json``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.device.geometry import GNRFETGeometry
from repro.device.negf_modespace import ModeSpaceGNRDevice
from repro.device.negf_realspace import RealSpaceGNRDevice
from repro.device.sbfet import SBFETModel
from repro.poisson.fd import PoissonOperator, solve_poisson_2d
from repro.poisson.grid import Grid2D
from repro.reporting.tables import format_table
from repro.runtime.backend import BACKEND_ENV, available_backends

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_solvers.json"

# Workload sizes (full / smoke).
POISSON_SHAPE = (61, 15)
POISSON_REPEATS = 50 if SMOKE else 200
SWEEP_POINTS = 13
TRANSPORT_N_INDEX = 7
TRANSPORT_CELLS = 16 if SMOKE else 80
TRANSPORT_GRIDS = (12,) if SMOKE else (12, 64)
TRANSPORT_REPEATS = 1 if SMOKE else 5
MODESPACE_N_INDEX = 12
MODESPACE_CELLS = 12 if SMOKE else 36
MODESPACE_ENERGIES = 21 if SMOKE else 61
MODESPACE_REPEATS = 1 if SMOKE else 3
MODESPACE_SWEEP = (4,) if SMOKE else (2, 4, 6, None)


def _bench_poisson() -> dict:
    grid = Grid2D(15.0, 3.0, *POISSON_SHAPE)
    rng = np.random.default_rng(0)
    eps = rng.uniform(1.0, 4.0, grid.shape)
    mask = np.zeros(grid.shape, dtype=bool)
    mask[:, 0] = mask[:, -1] = mask[0, :] = mask[-1, :] = True
    values = np.zeros(grid.shape)
    rho = rng.normal(scale=1e-21, size=grid.shape)

    operator = PoissonOperator.for_grid(grid, eps, mask)
    start = time.perf_counter()
    for _ in range(POISSON_REPEATS):
        phi_fast = operator.solve(rho, values)
    prefactorized_s = (time.perf_counter() - start) / POISSON_REPEATS

    one_shot_repeats = max(POISSON_REPEATS // 10, 3)
    start = time.perf_counter()
    for _ in range(one_shot_repeats):
        phi_ref = solve_poisson_2d(grid, eps, rho, mask, values)
    one_shot_s = (time.perf_counter() - start) / one_shot_repeats

    return {
        "grid": list(POISSON_SHAPE),
        "one_shot_ms": one_shot_s * 1e3,
        "prefactorized_ms": prefactorized_s * 1e3,
        "speedup": one_shot_s / prefactorized_s,
        "max_abs_dphi": float(np.max(np.abs(phi_fast - phi_ref))),
    }


def _bench_warmstart() -> dict:
    model = SBFETModel(GNRFETGeometry())
    vgs = np.linspace(0.0, 0.75, SWEEP_POINTS)
    vd = 0.5

    cold = [model.solve_bias(float(vg), vd) for vg in vgs]
    cold_iterations = sum(s.iterations for s in cold)

    warm_iterations = 0
    max_dmid = 0.0
    mids: list[float] = []
    for j, vg in enumerate(vgs):
        if j >= 2:
            guess = 2.0 * mids[-1] - mids[-2]
        elif j == 1:
            guess = mids[0]
        else:
            guess = None
        sol = model.solve_bias(float(vg), vd, initial_midgap_ev=guess)
        warm_iterations += sol.iterations
        max_dmid = max(max_dmid, abs(sol.midgap_ev - cold[j].midgap_ev))
        mids.append(sol.midgap_ev)

    return {
        "sweep_points": SWEEP_POINTS,
        "cold_iterations": cold_iterations,
        "warm_iterations": warm_iterations,
        "reduction": 1.0 - warm_iterations / cold_iterations,
        "max_abs_dmidgap_ev": max_dmid,
    }


def _bench_batched_transport() -> dict:
    device = RealSpaceGNRDevice(TRANSPORT_N_INDEX, TRANSPORT_CELLS)
    grids = {}
    for n_energy in TRANSPORT_GRIDS:
        energies = np.linspace(-1.0, 1.0, n_energy)
        looped = device.transport(energies, batched=False)
        batched = device.transport(energies, batched=True)
        parity = float(np.max(np.abs(looped.transmission
                                     - batched.transmission)))
        best_loop = best_batch = np.inf
        for _ in range(TRANSPORT_REPEATS):
            start = time.perf_counter()
            device.transport(energies, batched=False)
            best_loop = min(best_loop, time.perf_counter() - start)
            start = time.perf_counter()
            device.transport(energies, batched=True)
            best_batch = min(best_batch, time.perf_counter() - start)
        grids[str(n_energy)] = {
            "looped_ms": best_loop * 1e3,
            "batched_ms": best_batch * 1e3,
            "speedup": best_loop / best_batch,
            "max_abs_dT": parity,
        }
    return {
        "n_index": TRANSPORT_N_INDEX,
        "n_cells": TRANSPORT_CELLS,
        "energy_grids": grids,
    }


def _bench_modespace_engine() -> dict:
    """Mode-space vs real-space engine on a paper-scale barrier device.

    The workload is the 15 nm channel shape: an N = 12 ribbon with a
    smooth 0.35 eV barrier over the middle third, swept over the
    transport window.  Current parity integrates the transmission
    between source/drain windows at V_D = 0.5 V.
    """
    n_cells = MODESPACE_CELLS
    cells = np.arange(n_cells)
    profile = 0.35 * np.exp(-(((cells + 0.5) / n_cells - 0.5) / 0.18) ** 2)
    energies = np.linspace(-1.0, 1.0, MODESPACE_ENERGIES)
    mu_source, mu_drain = 0.0, -0.5

    realspace = RealSpaceGNRDevice(
        MODESPACE_N_INDEX, n_cells,
        onsite_ev=np.repeat(profile, 2 * MODESPACE_N_INDEX))
    ref = realspace.transport(energies)
    i_ref = ref.current_a(mu_source, mu_drain)
    best_ref = np.inf
    for _ in range(MODESPACE_REPEATS):
        start = time.perf_counter()
        realspace.transport(energies)
        best_ref = min(best_ref, time.perf_counter() - start)

    sweep = {}
    for n_modes in MODESPACE_SWEEP:
        device = ModeSpaceGNRDevice(MODESPACE_N_INDEX, n_cells,
                                    onsite_ev=profile, n_modes=n_modes)
        result = device.transport(energies)
        best = np.inf
        for _ in range(MODESPACE_REPEATS):
            start = time.perf_counter()
            device.transport(energies)
            best = min(best, time.perf_counter() - start)
        i_ms = result.current_a(mu_source, mu_drain)
        sweep[str(n_modes)] = {
            "n_retained": device.n_retained,
            "realspace_ms": best_ref * 1e3,
            "modespace_ms": best * 1e3,
            "speedup": best_ref / best,
            "max_abs_dT": float(np.max(np.abs(ref.transmission
                                              - result.transmission))),
            "rel_dI": abs(i_ms - i_ref) / abs(i_ref),
        }
    return {
        "n_index": MODESPACE_N_INDEX,
        "n_cells": n_cells,
        "n_energies": MODESPACE_ENERGIES,
        "n_orbitals": 2 * MODESPACE_N_INDEX,
        "barrier_ev": 0.35,
        "tolerance": {"max_abs_dT": 0.05, "rel_dI": 0.05},
        "n_modes_sweep": sweep,
    }


def _bench_backend_numba() -> dict:
    """Numba backend vs numpy inline path (where numba is installed)."""
    if not available_backends()["numba"]:
        return {"available": False,
                "note": "numba not installed; measured in the CI "
                        "optional-backend job"}
    device = ModeSpaceGNRDevice(MODESPACE_N_INDEX, MODESPACE_CELLS,
                                n_modes=4)
    energies = np.linspace(-1.0, 1.0, MODESPACE_ENERGIES)
    saved = os.environ.pop(BACKEND_ENV, None)
    try:
        ref = device.transport(energies)
        best_np = np.inf
        for _ in range(MODESPACE_REPEATS):
            start = time.perf_counter()
            device.transport(energies)
            best_np = min(best_np, time.perf_counter() - start)
        os.environ[BACKEND_ENV] = "numba"
        jit = device.transport(energies)  # includes first-call JIT cost
        best_nb = np.inf
        for _ in range(MODESPACE_REPEATS):
            start = time.perf_counter()
            device.transport(energies)
            best_nb = min(best_nb, time.perf_counter() - start)
    finally:
        if saved is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = saved
    bitwise = bool(np.array_equal(ref.transmission, jit.transmission))
    return {
        "available": True,
        "n_index": MODESPACE_N_INDEX,
        "n_cells": MODESPACE_CELLS,
        "n_energies": MODESPACE_ENERGIES,
        "numpy_ms": best_np * 1e3,
        "numba_ms": best_nb * 1e3,
        "speedup": best_np / best_nb,
        "bitwise_equal": bitwise,
    }


def test_solver_acceleration(save_report):
    poisson = _bench_poisson()
    warmstart = _bench_warmstart()
    transport = _bench_batched_transport()
    modespace = _bench_modespace_engine()
    numba_backend = _bench_backend_numba()

    rows = [
        ["Poisson prefactorized "
         f"({poisson['grid'][0]}x{poisson['grid'][1]})",
         f"{poisson['one_shot_ms']:.2f} ms",
         f"{poisson['prefactorized_ms']:.3f} ms",
         f"{poisson['speedup']:.1f}x"],
        [f"SCF warm-start ({warmstart['sweep_points']}-pt I_D(V_G))",
         f"{warmstart['cold_iterations']} iter",
         f"{warmstart['warm_iterations']} iter",
         f"-{warmstart['reduction']:.1%}"],
    ]
    for n_energy, g in transport["energy_grids"].items():
        rows.append(
            [f"batched transport (N={transport['n_index']}, "
             f"{transport['n_cells']} cells, {n_energy} E)",
             f"{g['looped_ms']:.1f} ms",
             f"{g['batched_ms']:.1f} ms",
             f"{g['speedup']:.2f}x"])
    for n_modes, g in modespace["n_modes_sweep"].items():
        rows.append(
            [f"modespace engine (N={modespace['n_index']}, "
             f"n_modes={n_modes}, m={g['n_retained']})",
             f"{g['realspace_ms']:.1f} ms",
             f"{g['modespace_ms']:.1f} ms",
             f"{g['speedup']:.2f}x (dT {g['max_abs_dT']:.1e})"])
    if numba_backend["available"]:
        rows.append(
            ["numba backend (modespace transport)",
             f"{numba_backend['numpy_ms']:.1f} ms",
             f"{numba_backend['numba_ms']:.1f} ms",
             f"{numba_backend['speedup']:.2f}x"])
    report = format_table(
        ["path", "before", "after", "gain"], rows,
        title="Solver acceleration layer (best of repeated runs)")
    save_report("solver_accel", report)
    print(report)

    # Physics parity first: acceleration is worthless if answers moved.
    assert poisson["max_abs_dphi"] == 0.0  # same operator, same solve
    assert warmstart["max_abs_dmidgap_ev"] < 2e-6  # 2 x bisection tol
    for g in transport["energy_grids"].values():
        assert g["max_abs_dT"] < 1e-10
    # Full rank must reproduce real space to round-off; the truncated
    # points must stay inside the documented accuracy contract.
    tol = modespace["tolerance"]
    for n_modes, g in modespace["n_modes_sweep"].items():
        if n_modes == "None":
            assert g["max_abs_dT"] < 1e-6
        if n_modes in ("4", "6", "None"):
            assert g["max_abs_dT"] <= tol["max_abs_dT"]
            assert g["rel_dI"] <= tol["rel_dI"]
    if numba_backend["available"]:
        assert numba_backend["bitwise_equal"]

    if SMOKE:
        # Sanity bounds only: smoke runners are slow and shared.
        assert poisson["speedup"] > 1.5
        assert warmstart["reduction"] > 0.15
        for g in transport["energy_grids"].values():
            assert g["speedup"] > 1.5
        assert modespace["n_modes_sweep"]["4"]["speedup"] > 1.5
        return

    assert poisson["speedup"] >= 3.0
    assert warmstart["reduction"] >= 0.30
    for g in transport["energy_grids"].values():
        assert g["speedup"] >= 5.0
    # The headline claim: >= 5x over real space at matched accuracy.
    assert modespace["n_modes_sweep"]["4"]["speedup"] >= 5.0

    payload = {
        "schema": "repro-bench-solvers/2",
        "poisson_prefactorized": poisson,
        "scf_warmstart": warmstart,
        "batched_transport": transport,
        "modespace_engine": modespace,
        "backend_numba": numba_backend,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
