"""Figure 4: I-V at V_D = 0.5 V for GNR widths N = 9 / 12 / 15 / 18.

Paper anchors asserted:
* I_on/I_off ordering strictly decreasing with width;
* N=9 ratio > 100x (paper: "as high as 1000X");
* N=18's small gap cannot deliver a small leakage current;
* on-current increases with width (more drive at smaller gap).
"""

from repro.characterize.specs import extract_fig4
from repro.reporting.experiments import run_fig4
from repro.reporting.figures import save_series_csv


def test_fig4_width_iv(benchmark, tech, save_report, output_dir):
    report, data = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    save_report("fig4", report)
    save_series_csv(data["series"], output_dir / "fig4_series.csv")

    fom = extract_fig4(data)
    assert (fom["on_off_n9"] > fom["on_off_n12"] > fom["on_off_n15"]
            > fom["on_off_n18"])
    assert fom["on_off_n9"] > 100.0
    assert fom["on_off_n18"] < 20.0

    by_name = {s.name: s for s in data["series"]}
    i_on = {n: float(by_name[f"N={n}"].y[-1]) for n in (9, 12, 15, 18)}
    assert i_on[9] < i_on[12] < i_on[15] < i_on[18]
    assert fom["i_on_ratio_n18_n9"] > 1.0

    # Leakage changes by orders of magnitude over a couple of Angstrom
    # of width (conclusions anchor A7).
    assert fom["leak_ratio_n18_n9"] > 100.0
