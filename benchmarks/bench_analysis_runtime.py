"""Static-analysis runtime: the full-tree lint must stay CI-cheap.

The dataflow families (RPA6xx-8xx) build a project-wide call graph and
run reaching-definitions/taint fixpoints per key-computing function —
quadratic-looking machinery that must nonetheless finish well inside a
pre-commit hook's patience.  This bench pins three numbers:

* **full tree** — one ``run_analysis`` pass over ``src/repro`` with
  every rule family enabled, asserted under 30 seconds (it runs in
  roughly one on the reference container; the bound is CI slack, not a
  target);
* **dataflow share** — the same pass restricted to RPA6xx-8xx, so call
  graph + fixpoint cost is a tracked artifact of its own;
* **call graph** — ``build_call_graph`` alone, the project-wide
  substrate both dataflow families share.

Timings land in the report; the hard assertion is only the 30 s wall
bound the CI lint-dataflow job relies on.  ``REPRO_BENCH_SMOKE`` is
accepted for symmetry with the other benches but changes nothing: the
subject *is* the full tree.
"""

import time
from pathlib import Path

from repro.analysis.dataflow import build_call_graph
from repro.analysis.engine import (
    Project,
    discover_files,
    load_module,
    run_analysis,
)
from repro.reporting.tables import format_table

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_TREE = REPO_ROOT / "src" / "repro"

#: Hard wall bound the CI lint-dataflow job depends on.
FULL_TREE_BUDGET_S = 30.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_full_tree_lint_under_budget(save_report):
    """One full-rule-set pass over src/repro stays under 30 s."""
    report, full_s = _timed(lambda: run_analysis([SRC_TREE]))
    assert report.clean, "bench requires a lint-clean tree"
    assert report.n_files > 80, "tree unexpectedly small; wrong path?"

    dataflow, dataflow_s = _timed(
        lambda: run_analysis([SRC_TREE], select=["RPA6", "RPA7", "RPA8"]))
    assert dataflow.clean

    modules = []
    for path in discover_files([SRC_TREE]):
        module, err = load_module(path)
        assert err is None
        modules.append(module)
    graph, graph_s = _timed(
        lambda: build_call_graph(Project(modules=modules)))
    assert len(graph.functions) > 400

    assert full_s < FULL_TREE_BUDGET_S, (
        f"full-tree lint took {full_s:.1f} s; the CI lint-dataflow job "
        f"budgets {FULL_TREE_BUDGET_S:.0f} s")

    rows = [
        ("full tree (all families)", f"{full_s:.2f}",
         f"{report.n_files}"),
        ("dataflow families only", f"{dataflow_s:.2f}",
         f"{dataflow.n_files}"),
        ("call graph build", f"{graph_s:.2f}",
         f"{len(graph.functions)} functions"),
    ]
    save_report("analysis_runtime", format_table(
        ["pass", "seconds", "scope"], rows,
        title="Static-analysis runtime (budget: "
              f"{FULL_TREE_BUDGET_S:.0f} s full tree)"))
