"""Table 2: inverter sensitivity to independent n/p GNR width variation.

Regenerates the full 4x4 grid of (p-width, n-width) cells, both array
scenarios.  Paper anchors asserted:

* worst-case slow corner (N=9 / N=9): delay increases, one-affected
  milder than all-affected;
* worst-case leaky corner (N=18 / N=18): static power up by multiples
  (paper +313-643%), delay *decreases*, dynamic power up;
* matched narrow widths improve SNM, maximum mismatch (9 vs 18) causes
  the worst SNM loss (paper -27 to -80%);
* single-GNR leakage: even one N=18 ribbon costs ~2x static power
  (paper: ~3x).
"""

from repro.characterize.specs import extract_table2
from repro.reporting.experiments import run_table2


def test_table2_width_variation(benchmark, tech, save_report):
    report, data = benchmark.pedantic(
        run_table2, kwargs={"fast": False}, rounds=1, iterations=1)
    save_report("table2", report)

    entries = data["entries"]
    fom = extract_table2(data)

    assert fom["delay_slow_one_pct"] > 0.0
    assert fom["delay_slow_all_pct"] > fom["delay_slow_one_pct"]

    assert fom["delay_fast_all_pct"] < 0.0
    assert fom["pstat_leaky_all_pct"] > 250.0
    assert fom["pstat_leaky_one_pct"] > 80.0
    assert entries[(18, 18)].dynamic_power_pct[1] > 0.0

    # SNM: matched narrow helps, mismatch hurts most.
    assert fom["snm_matched_narrow_all_pct"] > entries[(18, 18)].snm_pct[1]
    assert fom["snm_mismatch_worst_pct"] < -25.0
    assert fom["snm_mismatch_worst_pct"] <= entries[(18, 18)].snm_pct[1] + 1.0

    # Static power is monotone in the number of small-gap ribbons.
    assert (entries[(18, 18)].static_power_pct[1]
            > entries[(15, 15)].static_power_pct[1]
            > entries[(9, 9)].static_power_pct[1])
