"""Figure 7: latch butterfly curves under worst-case variations.

Three cases (nominal / single GNR affected / all GNRs affected) with the
paper's worst anomaly (n: N=9 & +q, p: N=18 & -q).  Anchors asserted:

* SNM strictly degrades with severity; all-affected is near-zero
  ("one eye of the butterfly curve collapses");
* static power multiplies in the worst case (paper: > 5x; we assert
  > 2x, see EXPERIMENTS.md for the measured factor);
* the single-GNR case sits between nominal and all-affected.
"""

from repro.characterize.specs import extract_fig7
from repro.reporting.experiments import run_fig7


def test_fig7_latch_butterfly(benchmark, tech, save_report):
    report, data = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    save_report("fig7", report)

    nominal, single, worst = data["cases"]
    fom = extract_fig7(data)

    assert fom["nominal_snm_mv"] > 30.0
    assert fom["single_snm_mv"] < fom["nominal_snm_mv"]
    assert fom["worst_snm_mv"] <= fom["single_snm_mv"]
    assert fom["worst_snm_mv"] < 0.35 * fom["nominal_snm_mv"]

    assert single.static_power_w > nominal.static_power_w
    assert fom["worst_pstat_ratio"] > 2.0
    assert worst.static_power_w > single.static_power_w
