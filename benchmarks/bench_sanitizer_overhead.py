"""Sanitizer overhead: the disabled hot path must cost nothing.

The numerical sanitizer (:mod:`repro.sanitize`) instruments the RGF,
SCF, device and transient hot paths behind a module-level flag checked
as ``if sanitize.ACTIVE:``.  The design claim is that a *disabled*
sanitizer is one global load and an untaken branch per guarded site —
i.e. unmeasurable against any real numerical kernel.  This bench pins
that claim:

* **micro** — the guard pattern itself is timed in a tight loop and
  asserted under 0.5 microseconds per evaluation (it measures in the
  tens of nanoseconds; the bound is 10x slack for noisy CI runners);
* **macro** — the vectorized mode-space RGF kernel is timed with the
  sanitizer disabled and enabled; both timings land in the report so
  the cost of *enabling* the guards is a tracked artifact.  Disabled
  runs are repeated and asserted mutually consistent, which is the
  strongest statement a wall clock can make on a shared runner.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the grids for CI; the
assertions are unchanged.
"""

import os
import time
import timeit

import numpy as np

from repro import sanitize
from repro.device.negf_device import _scalar_chain_rgf
from repro.negf.greens import recursive_greens_function
from repro.negf.self_energy import lead_self_energy_1d
from repro.reporting.tables import format_table

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

N_ENERGY = 301 if SMOKE else 1501
N_SITES = 41 if SMOKE else 81
N_REPEATS = 5


def _chain_inputs():
    energies = np.linspace(-0.6, 0.6, N_ENERGY)
    onsite = 0.05 * np.cos(np.linspace(0.0, np.pi, N_SITES))
    t_chain = 1.1
    sigma_l = lead_self_energy_1d(energies, 0.0, t_chain)
    sigma_r = lead_self_energy_1d(energies, -0.3, t_chain)
    return energies, onsite, t_chain, sigma_l, sigma_r


def _time_chain(repeats: int) -> list[float]:
    args = _chain_inputs()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        _scalar_chain_rgf(*args)
        times.append(time.perf_counter() - start)
    return times


def test_disabled_guard_is_nanoseconds(save_report):
    """The `if sanitize.ACTIVE:` pattern costs tens of ns when off."""
    assert not sanitize.ACTIVE, "bench requires a sanitizer-off process"
    n = 200_000
    # Same shape as every instrumented call site: attribute load + jump.
    per_call = timeit.timeit("sanitize.ACTIVE and None",
                             globals={"sanitize": sanitize},
                             number=n) / n
    assert per_call < 0.5e-6, (
        f"disabled guard costs {per_call * 1e9:.0f} ns/site; "
        "expected tens of nanoseconds")


def test_hot_path_overhead(save_report, monkeypatch):
    assert not sanitize.ACTIVE

    off_a = min(_time_chain(N_REPEATS))
    off_b = min(_time_chain(N_REPEATS))
    monkeypatch.setattr(sanitize, "ACTIVE", True)
    on = min(_time_chain(N_REPEATS))
    monkeypatch.setattr(sanitize, "ACTIVE", False)

    # Matrix RGF path as a second data point (per-block hermiticity
    # checks make it the most instrumented kernel).
    diag = [np.diag([0.1, -0.1]).astype(complex) for _ in range(24)]
    coup = [np.full((2, 2), -0.4, dtype=complex) for _ in range(23)]
    sigma = -0.05j * np.eye(2)

    def run_matrix():
        start = time.perf_counter()
        for e in np.linspace(-0.3, 0.3, 16 if SMOKE else 64):
            recursive_greens_function(float(e), diag, coup, sigma, sigma)
        return time.perf_counter() - start

    m_off = min(run_matrix() for _ in range(3))
    monkeypatch.setattr(sanitize, "ACTIVE", True)
    m_on = min(run_matrix() for _ in range(3))
    monkeypatch.setattr(sanitize, "ACTIVE", False)

    rows = [
        ["scalar-chain RGF", f"{off_a * 1e3:.2f}", f"{on * 1e3:.2f}",
         f"{on / max(off_a, 1e-12):.3f}"],
        ["matrix RGF sweep", f"{m_off * 1e3:.2f}", f"{m_on * 1e3:.2f}",
         f"{m_on / max(m_off, 1e-12):.3f}"],
    ]
    report = format_table(
        ["kernel", "off (ms)", "on (ms)", "on/off"], rows,
        title="Sanitizer overhead (best of repeated runs)")
    report += (f"\nrepeatability: two sanitizer-off runs differ by "
               f"{abs(off_a - off_b) / max(off_a, 1e-12):.1%}")
    save_report("sanitizer_overhead", report)
    print(report)

    # Two disabled runs must agree with each other: the disabled guards
    # sit below the wall-clock noise floor of the kernel itself.
    assert abs(off_a - off_b) <= 0.5 * max(off_a, off_b)
    # Enabling the sanitizer may cost real work, but never an order of
    # magnitude on a vectorized kernel.
    assert on < 10.0 * off_a
    assert m_on < 10.0 * m_off
