"""Ablation: fast SBFET engine vs reference NEGF + Poisson engine.

DESIGN.md commits the production lookup tables to the fast semi-analytic
engine; this bench quantifies the cost of that substitution by comparing
both engines over a shared bias set.  Assertions:

* shape agreement: both engines place the ambipolar minimum near
  V_D / 2 and order N=9 vs N=12 leakage the same way;
* magnitude agreement within one order at every bias point;
* the fast engine is at least 10x faster per bias point.
"""

import time

import numpy as np

from repro.device.geometry import GNRFETGeometry
from repro.device.negf_device import NEGFDevice
from repro.device.sbfet import SBFETModel
from repro.reporting.tables import format_table


def _compare(n_index: int, biases):
    negf = NEGFDevice(GNRFETGeometry(n_index=n_index), n_x=41, n_y=11)
    fast = SBFETModel(GNRFETGeometry(n_index=n_index))
    rows = []
    t0 = time.perf_counter()
    i_negf = [negf.solve(vg, vd).current_a for vg, vd in biases]
    t_negf = time.perf_counter() - t0
    t0 = time.perf_counter()
    i_fast = [fast.current_at(vg, vd) for vg, vd in biases]
    t_fast = time.perf_counter() - t0
    for (vg, vd), a, b in zip(biases, i_negf, i_fast):
        rows.append([f"{vg:.2f}", f"{vd:.2f}", f"{a:.3e}", f"{b:.3e}",
                     f"{b / a:.2f}"])
    return rows, np.array(i_negf), np.array(i_fast), t_negf, t_fast


def test_engine_cross_validation(benchmark, save_report):
    biases = [(0.0, 0.5), (0.15, 0.5), (0.25, 0.5), (0.4, 0.5),
              (0.6, 0.5), (0.75, 0.5), (0.5, 0.25)]

    def run():
        return _compare(12, biases)

    rows, i_negf, i_fast, t_negf, t_fast = benchmark.pedantic(
        run, rounds=1, iterations=1)

    report = format_table(
        ["VG", "VD", "I_NEGF (A)", "I_fast (A)", "ratio"], rows,
        title=(f"Engine cross-validation, N=12 "
               f"(NEGF {t_negf:.1f}s vs fast {t_fast:.2f}s)"))
    save_report("ablation_engines", report)

    # Magnitude agreement within one order everywhere.
    ratios = i_fast / i_negf
    assert np.all(ratios > 0.1) and np.all(ratios < 10.0)

    # Shape: ambipolar minimum position agrees (VD = 0.5 slice).
    vg_slice = [b[0] for b in biases[:6]]
    assert vg_slice[int(np.argmin(i_negf[:6]))] == \
        vg_slice[int(np.argmin(i_fast[:6]))]

    # Cost of rigor.
    assert t_negf > 10.0 * t_fast
