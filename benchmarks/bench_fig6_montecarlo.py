"""Figure 6: Monte Carlo histograms of the 15-stage ring oscillator.

2000 samples with per-ribbon discretized-normal width (N = 9/12/15) and
impurity (-q/0/+q) draws, calibrated against one full nominal transient.
Paper anchors asserted:

* mean frequency decreases (paper: -10%; band -2% to -30%);
* mean static power increases (paper: +23%; band +5% to +150%);
* mean dynamic power approximately unchanged (|shift| < 15%);
* distributions have finite spread and the nominal sits above the mean
  frequency.
"""

import numpy as np

from repro.characterize.specs import extract_fig6
from repro.reporting.experiments import nominal_technology
from repro.reporting.ascii_plot import ascii_histogram
from repro.variability.montecarlo import run_ring_oscillator_monte_carlo


def _run():
    tech = nominal_technology()
    return run_ring_oscillator_monte_carlo(
        tech, n_samples=2000, calibrate_against_transient=True)


def test_fig6_monte_carlo(benchmark, tech, save_report):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = "\n\n".join([
        ascii_histogram(result.frequencies_hz / 1e9, title=(
            f"frequency (GHz); nominal "
            f"{result.nominal_frequency_hz / 1e9:.2f}, mean shift "
            f"{result.mean_frequency_shift:+.1%} (paper: -10%)")),
        ascii_histogram(result.dynamic_power_w * 1e6, title=(
            f"dynamic power (uW); mean shift "
            f"{result.mean_dynamic_power_shift:+.1%} (paper: ~0%)")),
        ascii_histogram(result.static_power_w * 1e6, title=(
            f"static power (uW); mean shift "
            f"{result.mean_static_power_shift:+.1%} (paper: +23%)")),
        f"calibration factor (transient/surrogate): "
        f"{result.calibration_factor:.3f}",
    ])
    save_report("fig6", report)

    fom = extract_fig6({"result": result})
    assert -30.0 < fom["mean_frequency_shift_pct"] < -2.0
    assert 5.0 < fom["mean_static_power_shift_pct"] < 150.0
    assert abs(fom["mean_dynamic_power_shift_pct"]) < 15.0
    assert fom["freq_spread_rel"] > 0.02
    assert np.mean(result.frequencies_hz) < result.nominal_frequency_hz
