"""Observability overhead: the disabled hot path must cost nothing.

The tracing/metrics layer (:mod:`repro.obs`) instruments the SCF, RGF,
device-table, circuit and runtime hot paths behind a module-level flag
checked as ``if obs.ACTIVE:`` (plus ``obs.span(...)`` returning a shared
null context manager).  The design claim mirrors the sanitizer's: a
*disabled* observability layer is one global load and an untaken branch
per guarded site.  This bench pins that claim with the same methodology
as ``bench_sanitizer_overhead.py``:

* **micro** — the guard pattern and the disabled ``span()`` call are
  timed in tight loops and asserted under 0.5 microseconds per
  evaluation (both measure in the tens of nanoseconds; the bound is
  10x slack for noisy CI runners);
* **macro** — the vectorized mode-space RGF kernel is timed with
  tracing disabled and enabled; both timings land in the report so the
  cost of *enabling* the instrumentation is a tracked artifact.
  Disabled runs are repeated and asserted mutually consistent, which is
  the strongest statement a wall clock can make on a shared runner.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the grids for CI; the
assertions are unchanged.
"""

import os
import time
import timeit

import numpy as np

from repro import obs
from repro.device.negf_device import _scalar_chain_rgf
from repro.negf.self_energy import lead_self_energy_1d
from repro.reporting.tables import format_table

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

N_ENERGY = 301 if SMOKE else 1501
N_SITES = 41 if SMOKE else 81
N_REPEATS = 5


def _chain_inputs():
    energies = np.linspace(-0.6, 0.6, N_ENERGY)
    onsite = 0.05 * np.cos(np.linspace(0.0, np.pi, N_SITES))
    t_chain = 1.1
    sigma_l = lead_self_energy_1d(energies, 0.0, t_chain)
    sigma_r = lead_self_energy_1d(energies, -0.3, t_chain)
    return energies, onsite, t_chain, sigma_l, sigma_r


def _time_chain(repeats: int) -> list[float]:
    args = _chain_inputs()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        _scalar_chain_rgf(*args)
        times.append(time.perf_counter() - start)
    return times


def test_disabled_guard_is_nanoseconds(save_report):
    """The `if obs.ACTIVE:` pattern costs tens of ns when off."""
    assert not obs.ACTIVE, "bench requires a tracing-off process"
    n = 200_000
    # Same shape as every instrumented call site: attribute load + jump.
    per_call = timeit.timeit("obs.ACTIVE and None",
                             globals={"obs": obs},
                             number=n) / n
    assert per_call < 0.5e-6, (
        f"disabled guard costs {per_call * 1e9:.0f} ns/site; "
        "expected tens of nanoseconds")


def test_disabled_span_is_nanoseconds(save_report):
    """A disabled `with obs.span(...):` is one call + the shared null
    context manager — no allocation, no recording."""
    assert not obs.ACTIVE
    assert obs.span("bench") is obs.NULL_SPAN
    n = 200_000
    per_call = timeit.timeit("span('bench.region')",
                            globals={"span": obs.span},
                            number=n) / n
    assert per_call < 0.5e-6, (
        f"disabled span() costs {per_call * 1e9:.0f} ns/site; "
        "expected tens of nanoseconds")


def test_hot_path_overhead(save_report, monkeypatch):
    assert not obs.ACTIVE

    off_a = min(_time_chain(N_REPEATS))
    off_b = min(_time_chain(N_REPEATS))
    monkeypatch.setattr(obs, "ACTIVE", True)
    obs.reset()
    on = min(_time_chain(N_REPEATS))
    monkeypatch.setattr(obs, "ACTIVE", False)
    obs.reset()

    rows = [
        ["scalar-chain RGF", f"{off_a * 1e3:.2f}", f"{on * 1e3:.2f}",
         f"{on / max(off_a, 1e-12):.3f}"],
    ]
    report = format_table(
        ["kernel", "off (ms)", "on (ms)", "on/off"], rows,
        title="Observability overhead (best of repeated runs)")
    report += (f"\nrepeatability: two tracing-off runs differ by "
               f"{abs(off_a - off_b) / max(off_a, 1e-12):.1%}")
    save_report("obs_overhead", report)
    print(report)

    # Two disabled runs must agree with each other: the disabled guards
    # sit below the wall-clock noise floor of the kernel itself.
    assert abs(off_a - off_b) <= 0.5 * max(off_a, off_b)
    # Enabled tracing increments a couple of counters per kernel call —
    # real work, but never an order of magnitude on a vectorized kernel.
    assert on < 10.0 * off_a
