"""Table 4: simultaneous width + impurity variations.

Regenerates the 4x4 grid over (N, q) in {9, 18} x {-q, +q} for both
devices.  Paper anchors asserted:

* worst static power (both devices N=18 with degrading impurities)
  reaches several hundred percent (paper +371-684%), beyond the
  impurity-only study;
* the slow corner's delay degradation exceeds the pure-width slow
  corner ("dominated by width ... exacerbated by charge impurities");
* maximum n/p asymmetry (n: 9/+q vs p: 18/-q) collapses the SNM
  (paper: -34 to -100%).
"""

from repro.characterize.specs import extract_table4
from repro.reporting.experiments import run_table4


def test_table4_simultaneous(benchmark, tech, save_report):
    report, data = benchmark.pedantic(
        run_table4, kwargs={"fast": False}, rounds=1, iterations=1)
    save_report("table4", report)

    entries = data["entries"]
    fom = extract_table4(data)

    assert fom["pstat_leaky_all_pct"] > 150.0

    # Exacerbation of the slow corner (vs Table 2's N=9/N=9 ~ the same
    # study re-run here as the combined (9,-q)/(9,+q) slow cell).
    assert fom["delay_slow_combined_all_pct"] > 30.0

    # SNM collapse at maximum asymmetry (p: 18/-q, n: 9/+q).
    assert fom["snm_asym_all_pct"] < -50.0

    # Every cell with both devices at N=18 leaks multiples of nominal.
    for (p_spec, n_spec), entry in entries.items():
        if p_spec[0] == 18 and n_spec[0] == 18:
            assert entry.static_power_pct[1] > 100.0
