"""Characterization harness overhead, measured.

The golden-regression gate (``repro characterize``) wraps every
experiment runner in load/diff/render machinery; this bench pins down
what that machinery costs on its own and end to end, persisted to
``BENCH_characterize.json`` at the repository root:

* **Golden load + diff** — load every committed golden under
  ``goldens/`` and diff a full 14-experiment measurement set against
  it.  This is the pure harness overhead a characterization run pays
  on top of the physics; the measured set is the goldens' own fast
  block, so every diff must come back ``pass``.
* **Docs rendering** — ``render_all`` produces the 14 generated pages
  plus the index from the committed goldens.  Rendering is required to
  be deterministic (two passes bitwise equal) because CI diffs the
  committed pages against regeneration.
* **End-to-end fast check** — ``characterize`` on the smoke subset
  (fig2 + table1, reduced grids), recording wall time, per-experiment
  runner time, and the residual harness overhead between them.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the repeat counts and the
end-to-end subset and relaxes the timing assertions to sanity bounds;
it never rewrites the committed ``BENCH_characterize.json``.
"""

import json
import os
import time
from pathlib import Path

from repro.characterize.diffing import diff_experiment
from repro.characterize.goldens import load_goldens
from repro.characterize.markdown import render_all
from repro.characterize.runner import characterize
from repro.characterize.specs import SPECS
from repro.reporting.tables import format_table

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_characterize.json"
GOLDEN_ROOT = ROOT / "goldens"

DIFF_REPEATS = 20 if SMOKE else 200
RENDER_REPEATS = 5 if SMOKE else 50
E2E_IDS = ["fig2"] if SMOKE else ["fig2", "table1"]


def _bench_load_and_diff() -> dict:
    """Full golden load plus a 14-experiment diff pass, best-of-N."""
    goldens = load_goldens(root=GOLDEN_ROOT)
    assert set(goldens) == set(SPECS)
    measured = {eid: dict(goldens[eid]["modes"]["fast"])
                for eid in SPECS}

    best_load = best_diff = float("inf")
    n_metrics = 0
    for _ in range(DIFF_REPEATS):
        start = time.perf_counter()
        fresh = load_goldens(root=GOLDEN_ROOT)
        best_load = min(best_load, time.perf_counter() - start)
        start = time.perf_counter()
        diffs = {
            eid: diff_experiment(SPECS[eid], measured[eid],
                                 fresh.get(eid), "fast")
            for eid in SPECS
        }
        best_diff = min(best_diff, time.perf_counter() - start)
        assert all(diff.ok for diff in diffs.values())
        n_metrics = sum(len(diff.metrics) for diff in diffs.values())

    return {
        "experiments": len(SPECS),
        "metrics": n_metrics,
        "load_all_ms": best_load * 1e3,
        "diff_all_ms": best_diff * 1e3,
        "diff_per_metric_us": best_diff / n_metrics * 1e6,
    }


def _bench_render() -> dict:
    """Render every generated page from the committed goldens."""
    first = render_all(golden_root=GOLDEN_ROOT)
    best = float("inf")
    for _ in range(RENDER_REPEATS):
        start = time.perf_counter()
        pages = render_all(golden_root=GOLDEN_ROOT)
        best = min(best, time.perf_counter() - start)
        assert pages == first  # determinism backs the CI drift check
    total_bytes = sum(len(text.encode("utf-8")) for text in first.values())
    return {
        "pages": len(first),
        "total_bytes": total_bytes,
        "render_all_ms": best * 1e3,
        "render_per_page_ms": best / len(first) * 1e3,
    }


def _bench_end_to_end() -> dict:
    """A real fast-mode check on the smoke subset, overhead isolated."""
    run = characterize(list(E2E_IDS), fast=True, golden_root=GOLDEN_ROOT)
    assert run.ok, f"drift in {run.failing_ids()}"
    runner_s = sum(run.timings_s.values())
    return {
        "ids": list(E2E_IDS),
        "mode": run.mode,
        "wall_s": run.wall_s,
        "runner_s": runner_s,
        "harness_overhead_ms": (run.wall_s - runner_s) * 1e3,
        "timings_s": {eid: run.timings_s[eid] for eid in E2E_IDS},
    }


def test_characterize_harness(save_report):
    diffing = _bench_load_and_diff()
    rendering = _bench_render()
    end_to_end = _bench_end_to_end()

    rows = [
        [f"golden load ({diffing['experiments']} files)",
         f"{diffing['load_all_ms']:.2f} ms", ""],
        [f"diff pass ({diffing['metrics']} metrics)",
         f"{diffing['diff_all_ms']:.3f} ms",
         f"{diffing['diff_per_metric_us']:.1f} us/metric"],
        [f"docs render ({rendering['pages']} pages)",
         f"{rendering['render_all_ms']:.2f} ms",
         f"{rendering['render_per_page_ms']:.2f} ms/page"],
        [f"end-to-end fast check ({','.join(end_to_end['ids'])})",
         f"{end_to_end['wall_s']:.2f} s",
         f"overhead {end_to_end['harness_overhead_ms']:.1f} ms"],
    ]
    report = format_table(
        ["path", "time", "detail"], rows,
        title="Characterization harness overhead (best of repeated runs)")
    save_report("characterize_harness", report)
    print(report)

    # The harness must stay negligible next to the physics: a full
    # load+diff+render cycle is bounded in absolute terms (loose enough
    # for slow shared runners), and the end-to-end overhead — wall time
    # minus runner time — stays under a second.
    assert diffing["load_all_ms"] + diffing["diff_all_ms"] < 500.0
    assert rendering["render_all_ms"] < 1000.0
    assert end_to_end["harness_overhead_ms"] < 1000.0

    if SMOKE:
        return

    payload = {
        "schema": "repro-bench-characterize/1",
        "load_and_diff": diffing,
        "rendering": rendering,
        "end_to_end": end_to_end,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
