"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper
(or an ablation), asserts its shape anchors, and writes the paper-style
report to ``benchmarks/output/``.  ``pytest benchmarks/ --benchmark-only``
runs everything; individual artifacts run with e.g.
``pytest benchmarks/bench_table2_width.py --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.reporting.experiments import nominal_technology

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def tech():
    """Nominal technology (device table built once per session)."""
    return nominal_technology()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def save_report(output_dir):
    """Writer that stores a report under benchmarks/output/<name>.txt."""

    def _save(name: str, report: str) -> Path:
        path = output_dir / f"{name}.txt"
        path.write_text(report + "\n")
        return path

    return _save
