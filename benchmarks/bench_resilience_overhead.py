"""Resilience overhead: disabled hooks must cost nothing measurable.

The resilience layer (:mod:`repro.runtime.resilience` /
:mod:`repro.runtime.faults`) threads three kinds of hooks through the
sweep hot paths: ``if faults.ACTIVE:`` guards in front of every
injectable site, the retry-ladder wrapper around every cell solve, and
the checkpoint ``due()`` accounting per completed row.  The design
claim — same as the sanitizer's — is that with faults disabled and
checkpointing off, a sweep is indistinguishable from the pre-resilience
engine.  This bench pins that claim with the
``bench_sanitizer_overhead`` methodology:

* **micro** — the ``faults.ACTIVE`` guard and a single-rung
  ``run_ladder`` call are timed in tight loops with asserted ceilings;
* **macro** — a small ``sweep_iv`` runs repeatedly with the resilience
  machinery in its disabled state; two runs are asserted mutually
  consistent, and a run with an armed-but-never-firing fault plan (the
  worst realistic case: every guard taken but no injection) must stay
  within noise of the disabled runs.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the grids for CI; the
assertions are unchanged.
"""

import os
import time
import timeit

import numpy as np

from repro.device.geometry import GNRFETGeometry
from repro.device.iv import sweep_iv
from repro.reporting.tables import format_table
from repro.runtime import faults
from repro.runtime.resilience import run_ladder

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

N_VG = 5 if SMOKE else 9
N_VD = 3 if SMOKE else 5
N_REPEATS = 3 if SMOKE else 5


def _time_sweep(repeats: int) -> list[float]:
    geom = GNRFETGeometry(n_index=12)
    vg = np.linspace(0.0, 0.6, N_VG)
    vd = np.linspace(0.0, 0.5, N_VD)
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        sweep_iv(geom, vg, vd, workers=1)
        times.append(time.perf_counter() - start)
    return times


def test_disabled_fault_guard_is_nanoseconds(save_report):
    """``if faults.ACTIVE:`` costs tens of ns when no plan is armed."""
    faults.disable()
    n = 200_000
    per_call = timeit.timeit("faults.ACTIVE and None",
                             globals={"faults": faults},
                             number=n) / n
    assert per_call < 0.5e-6, (
        f"disabled guard costs {per_call * 1e9:.0f} ns/site; "
        "expected tens of nanoseconds")


def test_single_rung_ladder_is_microseconds(save_report):
    """A ladder whose first rung succeeds adds only call overhead."""
    n = 50_000
    per_call = timeit.timeit(
        "run_ladder(rungs, site='scf')",
        globals={"run_ladder": run_ladder,
                 "rungs": [("base", lambda: 1.0)]},
        number=n) / n
    assert per_call < 20e-6, (
        f"single-rung ladder costs {per_call * 1e6:.1f} us/solve; "
        "expected single-digit microseconds")


def test_sweep_overhead(save_report):
    faults.disable()
    assert not faults.ACTIVE

    off_a = min(_time_sweep(N_REPEATS))
    off_b = min(_time_sweep(N_REPEATS))

    # Armed-but-silent plan: every guard branch taken, zero injections
    # (the fault indices sit far outside the grid).
    faults.enable("scf@999999;worker@999999")
    try:
        armed = min(_time_sweep(N_REPEATS))
    finally:
        faults.disable()

    rows = [
        ["disabled (run A)", f"{off_a * 1e3:.1f}", "1.000"],
        ["disabled (run B)", f"{off_b * 1e3:.1f}",
         f"{off_b / max(off_a, 1e-12):.3f}"],
        ["armed, never fires", f"{armed * 1e3:.1f}",
         f"{armed / max(off_a, 1e-12):.3f}"],
    ]
    report = format_table(
        ["configuration", "sweep (ms)", "vs disabled"], rows,
        title=f"Resilience overhead, {N_VG}x{N_VD} sweep_iv "
              "(best of repeated runs)")
    save_report("resilience_overhead", report)
    print(report)

    # Two disabled runs must agree: the hooks sit below the wall-clock
    # noise floor of the sweep itself.
    assert abs(off_a - off_b) <= 0.5 * max(off_a, off_b)
    # Taking every guard branch without firing must stay within noise.
    assert armed < 1.5 * max(off_a, off_b)
