"""Extensions: oxide-thickness variation and temperature dependence.

Both are knobs the paper names but does not sweep ("difficulty of
control of the GNR width *or oxide thickness*"; room-temperature-only
simulation).  Assertions:

* oxide: thicker oxide -> less leakage but slower switching (the
  Schottky barriers thicken with the natural length ~ sqrt(t_ox));
* temperature: the ambipolar leakage floor is activated (Arrhenius
  behaviour with E_a a sizeable fraction of the half-gap) while the
  tunneling-dominated on-current moves weakly -> static power is the
  thermally fragile metric, reinforcing the paper's leakage story.
"""

from repro.characterize.specs import (
    extract_ext_oxide,
    extract_ext_temperature,
)
from repro.exploration.temperature import (
    leakage_activation_energy_ev,
    temperature_study,
)
from repro.reporting.experiments import nominal_technology
from repro.reporting.tables import format_table
from repro.variability.oxide import oxide_thickness_study


def test_oxide_thickness_extension(benchmark, tech, save_report):
    def run():
        return oxide_thickness_study(
            tech, thicknesses_nm=(1.2, 1.5, 1.8, 2.1))

    nominal, entries = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[f"{e.oxide_thickness_nm:.1f}",
             f"{e.metrics.delay_s * 1e12:.2f}",
             f"{e.delay_pct:+.0f}%",
             f"{e.metrics.static_power_w * 1e6:.4f}",
             f"{e.static_power_pct:+.0f}%",
             f"{e.snm_pct:+.0f}%"] for e in entries]
    save_report("ext_oxide_thickness", format_table(
        ["t_ox (nm)", "delay (ps)", "d-delay", "Pstat (uW)", "d-Pstat",
         "d-SNM"], rows,
        title="Oxide-thickness variation (all ribbons, fixed gate metal)"))

    delays = [e.metrics.delay_s for e in entries]
    leaks = [e.metrics.static_power_w for e in entries]
    assert all(a < b for a, b in zip(delays, delays[1:]))
    assert all(a > b for a, b in zip(leaks, leaks[1:]))
    # Net effect of +/-0.3 nm drift: ~15% on delay and ~10-20% on
    # leakage - an order gentler than a width family step, because the
    # leakage floor at the nominal alignment is thermionic-dominated
    # (only the tunneling part feels the natural length).
    fom = extract_ext_oxide({"nominal": nominal, "entries": entries})
    assert fom["delay_ratio_span"] > 1.25
    assert fom["leak_ratio_span"] > 1.2


def test_temperature_extension(benchmark, save_report):
    def run():
        points = temperature_study(
            temperatures_k=(250.0, 300.0, 350.0, 400.0))
        return points, leakage_activation_energy_ev(points)

    points, e_a = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[f"{p.temperature_k:.0f}", f"{p.i_on_a * 1e6:.2f}",
             f"{p.i_min_a * 1e9:.2f}", f"{p.vt_v:.3f}",
             f"{p.inverter_delay_s * 1e12:.2f}",
             f"{p.inverter_static_power_w * 1e6:.4f}"] for p in points]
    report = format_table(
        ["T (K)", "Ion (uA)", "Imin (nA)", "VT (V)", "delay est (ps)",
         "Pstat (uW)"], rows,
        title="Temperature sweep of the N=12 GNRFET / nominal inverter")
    report += (f"\n\nleakage activation energy E_a = {e_a * 1e3:.0f} meV "
               "(half-gap 304 meV, reduced by tunneling)")
    save_report("ext_temperature", report)

    leaks = [p.i_min_a for p in points]
    assert all(a < b for a, b in zip(leaks, leaks[1:]))
    fom = extract_ext_temperature({"points": points,
                                   "activation_energy_ev": e_a})
    assert 0.03 < fom["activation_energy_ev"] < 0.4
    assert fom["leak_ratio_span"] > 3.0 * fom["on_ratio_span"]
