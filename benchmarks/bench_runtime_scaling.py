"""Runtime scaling: serial vs parallel sweeps and cold vs warm cache.

Measures the two pillars of :mod:`repro.runtime` on a full
``build_device_table`` sweep (the hottest path in the repo — every
circuit-level experiment starts from one):

* **parallel scaling** — the same grid swept with 1 worker and with
  ``REPRO_WORKERS`` (default 4) workers; on a 4-core runner the speedup
  target is >= 2x (asserted only when the host actually has >= 4 cores,
  since a single-core container timeshares the pool);
* **cache scaling** — a cold build (empty ``REPRO_CACHE_DIR``) vs a warm
  rebuild in a fresh in-process state, target >= 10x.

The measured numbers land in ``benchmarks/output/runtime_scaling.txt``
so the speedups are tracked artifacts.  Smoke mode for CI: set
``REPRO_BENCH_SMOKE=1`` to shrink the grid (the assertions are
unchanged; only the wall-clock shrinks).
"""

import os
import time

import numpy as np

from repro.device.geometry import GNRFETGeometry
from repro.device.iv import sweep_iv
from repro.device.tables import build_device_table, clear_table_cache
from repro.runtime import CACHE_DIR_ENV, resolve_workers

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

if SMOKE:
    VG_GRID = np.round(np.arange(0.0, 0.4001, 0.1), 10)
    VD_GRID = np.array([0.0, 0.25, 0.5])
else:
    VG_GRID = np.round(np.arange(-0.40, 1.1001, 0.05), 10)
    VD_GRID = np.round(np.arange(0.0, 0.7501, 0.05), 10)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_runtime_scaling(tmp_path, monkeypatch, save_report):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    workers = max(2, resolve_workers(None)) if SMOKE else max(
        4, resolve_workers(None))
    cores = os.cpu_count() or 1

    # --- parallel scaling (cache bypassed so both runs really sweep) ----
    geom = GNRFETGeometry()
    serial_sweep, t_serial = _timed(
        lambda: sweep_iv(geom, VG_GRID, VD_GRID, workers=1))
    parallel_sweep, t_parallel = _timed(
        lambda: sweep_iv(geom, VG_GRID, VD_GRID, workers=workers))
    assert np.array_equal(serial_sweep.current_a, parallel_sweep.current_a)
    speedup = t_serial / max(t_parallel, 1e-9)

    # --- cache scaling --------------------------------------------------
    clear_table_cache(disk=True)
    cold, t_cold = _timed(
        lambda: build_device_table(geom, VG_GRID, VD_GRID))
    clear_table_cache(disk=False)  # drop in-process layer, keep disk
    warm, t_warm = _timed(
        lambda: build_device_table(geom, VG_GRID, VD_GRID))
    assert np.array_equal(cold.current_a, warm.current_a)
    cache_speedup = t_cold / max(t_warm, 1e-9)

    report = "\n".join([
        "runtime scaling: build_device_table sweep "
        f"({VG_GRID.size}x{VD_GRID.size} bias points"
        f"{', smoke' if SMOKE else ''})",
        f"host cores:            {cores}",
        f"pool workers:          {workers}",
        "",
        f"serial sweep:          {t_serial:8.3f} s",
        f"parallel sweep:        {t_parallel:8.3f} s   "
        f"({speedup:.2f}x vs serial)",
        f"cold-cache build:      {t_cold:8.3f} s",
        f"warm-cache rebuild:    {t_warm:8.3f} s   "
        f"({cache_speedup:.1f}x vs cold)",
        "",
        "parallel grids bit-identical to serial: True",
        "warm table bit-identical to cold:       True",
    ])
    save_report("runtime_scaling", report)

    assert cache_speedup >= 10.0, (
        f"warm-cache rebuild only {cache_speedup:.1f}x faster than cold")
    if cores >= 4 and not SMOKE:
        assert speedup >= 2.0, (
            f"parallel sweep only {speedup:.2f}x faster on {cores} cores")
